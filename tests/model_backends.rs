//! Label-model backend acceptance: the closed-form moment backend must
//! track the exact generative backend's marginals closely on synthetic
//! data, and its fit must be ≥10× faster than the exact Newton fit at
//! 100k×25. The wall-clock comparison at full precision lives in
//! `crates/bench/benches/model_backends.rs`
//! (`BENCH_model_backends.json`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snorkel::core::label_model::{LabelModel, MomentModel};
use snorkel::core::model::{GenerativeModel, LabelScheme, TrainConfig};
use snorkel::matrix::{LabelMatrix, LabelMatrixBuilder, ShardedMatrix, Vote};

/// Planted conditionally-independent binary suite (the moment
/// estimator's model assumptions).
fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> LabelMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LabelMatrixBuilder::new(m, accs.len());
    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        for (j, &acc) in accs.iter().enumerate() {
            if rng.gen::<f64>() < pl {
                b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
            }
        }
    }
    b.build()
}

/// The realistic dev-loop suite used across the workspace's tests.
const SUITE: [f64; 10] = [0.9, 0.85, 0.82, 0.78, 0.75, 0.72, 0.7, 0.67, 0.63, 0.6];

#[test]
fn moment_marginals_within_5e2_of_exact() {
    let m = 40_000;
    let lambda = planted(m, &SUITE, 0.4, 8);
    let cfg = TrainConfig::default();

    let mut exact = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
    exact.fit(&lambda, &cfg);
    let mut moment = MomentModel::new(SUITE.len(), LabelScheme::Binary);
    moment.fit(&lambda, None, &cfg);

    let reference = exact.marginals(&lambda);
    let approx = LabelModel::marginals(&moment, &lambda, None);
    let mut sup = 0.0f64;
    let mut mean = 0.0f64;
    for (a, b) in approx.iter().zip(&reference) {
        for (pa, pb) in a.iter().zip(b) {
            let d = (pa - pb).abs();
            sup = sup.max(d);
            mean += d;
        }
    }
    mean /= (2 * m) as f64;
    println!("moment vs exact marginals: sup {sup:.4}, mean {mean:.5}");
    assert!(
        sup < 5e-2,
        "moment marginals drifted {sup:.4} (> 5e-2) from the exact model's"
    );
}

#[test]
fn moment_fit_is_10x_faster_than_newton_at_100k() {
    let m = 100_000;
    let n = 25;
    // Mostly-unique vote patterns (the regime where training cost is
    // proportional to per-pass work, not pattern-index bookkeeping —
    // pattern-collapsed corpora are covered by the bench artifact).
    let accs: Vec<f64> = (0..n).map(|j| 0.9 - 0.014 * j as f64).collect();
    let lambda = planted(m, &accs, 0.3, 7);
    // Both backends fit through the same prebuilt plan, so the timing
    // compares the training loops, not index construction.
    let plan = ShardedMatrix::build(&lambda, 0);
    let cfg = TrainConfig::default();

    let t0 = Instant::now();
    let mut exact = GenerativeModel::new(n, LabelScheme::Binary);
    exact.fit_with(&lambda, &plan, &cfg);
    let exact_time = t0.elapsed();

    let t1 = Instant::now();
    let mut moment = MomentModel::new(n, LabelScheme::Binary);
    moment.fit(&lambda, Some(&plan), &cfg);
    let moment_time = t1.elapsed();

    let speedup = exact_time.as_secs_f64() / moment_time.as_secs_f64().max(1e-9);
    println!(
        "100k×25 fit: exact {:.1} ms, moment {:.2} ms → {speedup:.0}×",
        1e3 * exact_time.as_secs_f64(),
        1e3 * moment_time.as_secs_f64()
    );
    assert!(
        speedup >= 10.0,
        "moment fit only {speedup:.1}× faster than Newton (want ≥10×)"
    );

    // The speed is not bought with garbage: both backends order the
    // planted LF accuracies the same way at the top and bottom.
    let ea = exact.implied_accuracies();
    let ma = moment.implied_accuracies();
    let max_gap = ea
        .iter()
        .zip(&ma)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_gap < 0.1,
        "implied accuracies diverged by {max_gap:.3} between backends"
    );
}
