//! Scale-out acceptance: on a 100k×25 pattern-sparse corpus the
//! deduplicated path must run `marginals` + `fit` at least 2× faster
//! than the row-wise baseline while producing identical outputs
//! (bit-identical marginals under fixed weights; same optimum after
//! fitting). The full-scale 1M×25 measurement lives in
//! `crates/bench/benches/scaleout.rs`.

use std::time::Instant;

use snorkel::core::model::{GenerativeModel, LabelScheme, Scaleout, TrainConfig};
use snorkel::datasets::synthetic::pattern_sparse_matrix;
use snorkel::matrix::ShardedMatrix;

#[test]
fn dedup_beats_rowwise_2x_at_100k() {
    let m = 100_000;
    let (lambda, _) = pattern_sparse_matrix(m, 25, 300, 0.12, 0.75, 0.005, 7);
    let plan = ShardedMatrix::build(&lambda, 0);
    assert!(
        plan.dedup_ratio() > 20.0,
        "corpus must be pattern-sparse, got ratio {:.1}",
        plan.dedup_ratio()
    );

    let rw_cfg = TrainConfig {
        scaleout: Scaleout::RowWise,
        tol: 1e-15,
        ..TrainConfig::default()
    };
    let sh_cfg = TrainConfig {
        scaleout: Scaleout::Sharded { shards: 0 },
        tol: 1e-15,
        ..TrainConfig::default()
    };

    // --- fit ---
    let scheme = LabelScheme::Binary;
    let t0 = Instant::now();
    let mut dense = GenerativeModel::new(25, scheme);
    dense.fit(&lambda, &rw_cfg);
    let fit_rowwise = t0.elapsed();

    let t1 = Instant::now();
    let mut sharded = GenerativeModel::new(25, scheme);
    sharded.fit(&lambda, &sh_cfg);
    let fit_sharded = t1.elapsed();

    // --- marginals ---
    let t2 = Instant::now();
    let reference = dense.marginals_rowwise(&lambda);
    let marg_rowwise = t2.elapsed();

    let t3 = Instant::now();
    let dedup = dense.marginals_with(&lambda, &plan);
    let marg_sharded = t3.elapsed();

    // Identical outputs: inference is bit-identical under the same
    // weights; the two fits land on the same optimum. At this scale the
    // likelihood is flat to ~1e-11 around the optimum (both NLLs agree
    // to that), and two independently converged runs can sit ~1e-7
    // apart in posteriors along the flattest directions — the bound
    // here is the honest noise floor of run-to-convergence comparison,
    // not of the dedup arithmetic (which proptest pins to ≤1e-12).
    assert_eq!(dedup, reference, "dedup marginals must be bit-identical");
    let fitted = sharded.marginals_rowwise(&lambda);
    let mut gap = 0.0f64;
    for (a, b) in reference.iter().zip(&fitted) {
        for (pa, pb) in a.iter().zip(b) {
            gap = gap.max((pa - pb).abs());
        }
    }
    assert!(gap < 1e-6, "fit outputs diverged by {gap:e}");

    // ≥2× on the combined workload (the margin in practice is far
    // larger; 2× keeps the assert robust on noisy shared hardware).
    let rowwise = fit_rowwise + marg_rowwise;
    let scaleout = fit_sharded + marg_sharded;
    let speedup = rowwise.as_secs_f64() / scaleout.as_secs_f64().max(1e-9);
    eprintln!(
        "scaleout 100k×25: fit {:?} → {:?}, marginals {:?} → {:?}, combined speedup {speedup:.1}×, \
         {} patterns (dedup ratio {:.1})",
        fit_rowwise,
        fit_sharded,
        marg_rowwise,
        marg_sharded,
        plan.num_patterns(),
        plan.dedup_ratio()
    );
    assert!(
        speedup >= 2.0,
        "scale-out path must be ≥2× faster (fit {fit_rowwise:?}+marg {marg_rowwise:?} vs \
         fit {fit_sharded:?}+marg {marg_sharded:?}, speedup {speedup:.2}×)"
    );
}
