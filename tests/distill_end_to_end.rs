//! Distill-and-serve end to end (paper §2.4): the discriminative model
//! trained on the label model's probabilistic labels must *generalize
//! beyond the labeling functions' coverage* — on held-out candidates
//! where every LF abstains, majority vote is stuck at a coin flip while
//! the distilled model classifies from features alone.

use snorkel::context::{CandidateId, Corpus};
use snorkel::core::pipeline::{DiscTrainer, DiscTrainerConfig, Pipeline, PipelineConfig};
use snorkel::disc::DistillConfig;
use snorkel::lf::{BoxedLf, KeywordBetweenLf};
use snorkel::matrix::Vote;
use snorkel::nlp::tokenize;

/// Binary relation corpus. Positive sentences use a *covered* verb
/// ("causes"/"induces", both known to LFs) plus an *uncovered* cue
/// ("triggers"); negatives mirror it ("treats"/"cures" covered,
/// "blocks" uncovered). Held-out candidates carry only the uncovered
/// cue — zero LF coverage by construction.
struct Fixture {
    corpus: Corpus,
    train: Vec<CandidateId>,
    holdout: Vec<(CandidateId, Vote)>,
}

fn fixture(train_rows: usize, holdout_rows: usize) -> Fixture {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    let mut add = |verb: &str, i: usize| {
        let text = format!("chem{} {verb} disease{}", i % 23, i % 17);
        let tokens = tokenize(&text);
        let last = tokens.len();
        let s = corpus.add_sentence(doc, &text, tokens);
        let a = corpus.add_span(s, 0, 1, Some("Chemical"));
        let b = corpus.add_span(s, last - 1, last, Some("Disease"));
        corpus.add_candidate(vec![a, b])
    };
    let mut train = Vec::new();
    for i in 0..train_rows {
        // The covered verbs co-occur with the uncovered cue words, so
        // the cue's feature weight is learned from LF-covered rows.
        let verb = if i % 2 == 0 {
            "causes and triggers"
        } else {
            "treats and blocks"
        };
        train.push(add(verb, i));
    }
    let mut holdout = Vec::new();
    for i in 0..holdout_rows {
        let (verb, gold): (&str, Vote) = if i % 2 == 0 {
            ("triggers", 1)
        } else {
            ("blocks", -1)
        };
        holdout.push((add(verb, 1000 + i), gold));
    }
    Fixture {
        corpus,
        train,
        holdout,
    }
}

fn suite() -> Vec<BoxedLf> {
    vec![
        Box::new(KeywordBetweenLf::new("lf_causes", &["causes"], 1, 1)),
        Box::new(KeywordBetweenLf::new("lf_induces", &["induces"], 1, 1)),
        Box::new(KeywordBetweenLf::new("lf_treats", &["treats"], -1, -1)),
        Box::new(KeywordBetweenLf::new("lf_cures", &["cures"], -1, -1)),
    ]
}

#[test]
fn distilled_model_beats_majority_vote_on_zero_coverage_holdout() {
    let fx = fixture(300, 80);
    let lfs = suite();

    // Every held-out candidate has zero LF coverage: all four LFs
    // abstain, so the label-model path (any backend) is uniform and
    // majority vote scores exactly chance.
    for &(id, _) in &fx.holdout {
        let view = fx.corpus.candidate(id);
        assert!(
            lfs.iter().all(|lf| lf.label(&view) == 0),
            "held-out candidate is covered — fixture broken"
        );
    }

    let cfg = PipelineConfig {
        distill: Some(DiscTrainerConfig {
            train: DistillConfig {
                dim: 1 << 14,
                epochs: 30,
                batch_size: 32,
                ..DistillConfig::default()
            },
            ..DiscTrainerConfig::with_dim(1 << 14)
        }),
        ..PipelineConfig::default()
    };
    let pipeline = Pipeline::new(cfg);
    let (_, report) = pipeline.run(&lfs, &fx.corpus, &fx.train);
    let disc = report.disc.as_ref().expect("distill stage ran");
    let disc_report = report.disc_report.expect("distill report");
    assert!(disc_report.rows_trained > 0);

    // Majority vote on zero coverage: uniform posterior, tie-broken —
    // accuracy is chance no matter the tie-break. Score it as the best
    // case for MV: a constant class guess (the majority gold class).
    let holdout_ids: Vec<CandidateId> = fx.holdout.iter().map(|&(id, _)| id).collect();
    let gold: Vec<Vote> = fx.holdout.iter().map(|&(_, g)| g).collect();
    let n_pos = gold.iter().filter(|&&g| g == 1).count();
    let mv_best_accuracy = n_pos.max(gold.len() - n_pos) as f64 / gold.len() as f64;
    assert!(
        mv_best_accuracy <= 0.51,
        "fixture must be class-balanced so chance ≈ 0.5"
    );

    // The distilled model answers from features alone.
    let trainer = DiscTrainer::new(pipeline.config.distill.clone().unwrap());
    let xs = trainer.featurize(&fx.corpus, &holdout_ids);
    let preds: Vec<Vote> = xs.iter().map(|x| disc.predict_vote(x)).collect();
    let accuracy = snorkel::disc::accuracy(&preds, &gold);

    assert!(
        accuracy >= 0.9,
        "distilled model should classify zero-coverage candidates from \
         their features: accuracy {accuracy:.3}"
    );
    assert!(
        accuracy > mv_best_accuracy + 0.25,
        "distilled {accuracy:.3} must clearly beat the majority-vote \
         ceiling {mv_best_accuracy:.3} on zero-coverage candidates"
    );
}

#[test]
fn distilled_probabilities_are_calibrated_distributions() {
    let fx = fixture(200, 20);
    let pipeline = Pipeline::new(PipelineConfig {
        distill: Some(DiscTrainerConfig::with_dim(1 << 12)),
        ..PipelineConfig::default()
    });
    let (_, report) = pipeline.run(&suite(), &fx.corpus, &fx.train);
    let disc = report.disc.expect("distilled");
    let trainer = DiscTrainer::new(pipeline.config.distill.clone().unwrap());
    let ids: Vec<CandidateId> = fx.holdout.iter().map(|&(id, _)| id).collect();
    for x in trainer.featurize(&fx.corpus, &ids) {
        let p = disc.predict_proba(&x);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
