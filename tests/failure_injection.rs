//! Failure-injection tests: the pipeline must stay sane under degenerate
//! and adversarial inputs — empty matrices, all-abstain suites,
//! adversarial LFs, single-class corpora, and duplicate-heavy suites.

use snorkel::core::model::{ClassBalance, GenerativeModel, LabelScheme, Scaleout, TrainConfig};
use snorkel::core::pipeline::{run_pipeline, Pipeline, PipelineConfig};
use snorkel::core::structure::{learn_structure, StructureConfig};
use snorkel::core::vote::majority_vote;
use snorkel::datasets::synthetic::{heterogeneous_matrix, independent_matrix};
use snorkel::matrix::{LabelMatrix, LabelMatrixBuilder, ShardedMatrix};

#[test]
fn empty_matrix_flows_through() {
    let lambda = LabelMatrixBuilder::new(0, 4).build();
    let (labels, report) = run_pipeline(&lambda);
    assert!(labels.is_empty());
    assert_eq!(report.label_density, 0.0);
    let report = learn_structure(&lambda, &StructureConfig::default());
    assert!(report.pairs.is_empty());
}

#[test]
fn all_abstain_matrix_yields_uniform_labels() {
    let lambda = LabelMatrixBuilder::new(50, 3).build(); // no votes at all
    let (labels, _) = run_pipeline(&lambda);
    assert_eq!(labels.len(), 50);
    for row in labels {
        assert!(
            (row[0] - 0.5).abs() < 0.35,
            "no-evidence rows stay near uniform"
        );
    }
}

#[test]
fn adversarial_lf_is_downweighted() {
    // Three good LFs + one consistently wrong one: the fitted weight of
    // the adversary must be the smallest.
    let (lambda, _) = heterogeneous_matrix(3000, &[0.85, 0.85, 0.8, 0.15], 0.6, 99);
    let mut gm = GenerativeModel::new(4, LabelScheme::Binary);
    gm.fit(&lambda, &TrainConfig::default());
    let w = gm.accuracy_weights();
    assert!(
        w[3] < w[0] && w[3] < w[1] && w[3] < w[2],
        "adversarial LF must get the lowest weight: {w:?}"
    );
    assert!(
        w[3] < 0.0,
        "adversarial LF weight should be negative: {}",
        w[3]
    );
}

#[test]
fn single_class_votes_do_not_panic() {
    // Every LF only ever votes +1.
    let mut b = LabelMatrixBuilder::new(100, 3);
    for i in 0..100 {
        for j in 0..3 {
            if (i + j) % 3 == 0 {
                b.set(i, j, 1);
            }
        }
    }
    let lambda = b.build();
    let (labels, _) = run_pipeline(&lambda);
    assert_eq!(labels.len(), 100);
    assert!(labels.iter().all(|r| r[0].is_finite()));
    let mv = majority_vote(&lambda);
    assert!(mv.iter().all(|&v| v == 1 || v == 0));
}

#[test]
fn duplicate_heavy_suite_stays_stable() {
    // 10 exact copies of one LF plus 2 independents: the correlated fit
    // must produce finite weights and calibrated-ish labels.
    let (base, _) = independent_matrix(1000, 3, 0.8, 0.6, 5);
    let mut b = LabelMatrixBuilder::new(1000, 12);
    for i in 0..1000 {
        let (cols, votes) = base.row(i);
        for (&c, &v) in cols.iter().zip(votes) {
            if c == 0 {
                for copy in 0..10 {
                    b.set(i, copy, v);
                }
            } else {
                b.set(i, 9 + c as usize, v);
            }
        }
    }
    let lambda = b.build();
    let pairs: Vec<(usize, usize)> = (0..10)
        .flat_map(|a| ((a + 1)..10).map(move |b2| (a, b2)))
        .collect();
    let mut gm = GenerativeModel::new(12, LabelScheme::Binary).with_correlations(&pairs);
    gm.fit(&lambda, &TrainConfig::default());
    assert!(gm.accuracy_weights().iter().all(|w| w.is_finite()));
    assert!(gm.correlation_weights().iter().all(|w| w.is_finite()));
    let probs = gm.prob_positive(&lambda);
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
}

#[test]
fn forced_mv_matches_direct_majority_vote() {
    let (lambda, _) = independent_matrix(500, 5, 0.75, 0.4, 8);
    let cfg = PipelineConfig {
        force_strategy: Some(snorkel::core::ModelingStrategy::MajorityVote),
        ..PipelineConfig::default()
    };
    let (labels, _) = Pipeline::new(cfg).run_from_matrix(&lambda);
    let mv = majority_vote(&lambda);
    for (row, &v) in labels.iter().zip(&mv) {
        match v {
            1 => assert_eq!(row[0], 1.0),
            -1 => assert_eq!(row[0], 0.0),
            _ => assert_eq!(row[0], 0.5),
        }
    }
}

#[test]
fn class_balance_variants_all_train() {
    let (lambda, _) = independent_matrix(800, 4, 0.8, 0.5, 3);
    for balance in [
        ClassBalance::Uniform,
        ClassBalance::FromMajorityVote,
        ClassBalance::Fixed(vec![0.2, 0.8]),
    ] {
        let mut gm = GenerativeModel::new(4, LabelScheme::Binary);
        let cfg = TrainConfig {
            class_balance: balance,
            ..TrainConfig::default()
        };
        gm.fit(&lambda, &cfg);
        assert!(gm.accuracy_weights().iter().all(|w| w.is_finite()));
        let prior = gm.implied_class_prior();
        assert!((prior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Adversarial pattern shapes: the sharded scale-out path must degrade
// *identically* to the dense (row-wise) path — same marginals bit for
// bit under fixed weights, same optimum (≤1e-9) after fitting.
// ---------------------------------------------------------------------

/// Fit the same model through the row-wise and the sharded path and
/// assert both degrade identically: fitted marginals within `1e-9`, and
/// the sharded *inference* of the row-wise model bit-identical.
fn assert_sharded_degrades_identically(lambda: &LabelMatrix, shards: usize) {
    let scheme = LabelScheme::from_cardinality(lambda.cardinality());
    // The convergence test's gradient threshold scales with the row
    // count; on adversarial shapes with near-zero-coverage LFs the
    // default tol leaves those LFs' weights loosely pinned, so drive
    // both paths to the arithmetic noise floor before comparing.
    let rw_cfg = TrainConfig {
        scaleout: Scaleout::RowWise,
        tol: 1e-15,
        ..TrainConfig::default()
    };
    let sh_cfg = TrainConfig {
        scaleout: Scaleout::Sharded { shards },
        tol: 1e-15,
        ..TrainConfig::default()
    };
    let mut dense = GenerativeModel::new(lambda.num_lfs(), scheme);
    dense.fit(lambda, &rw_cfg);
    let mut sharded = GenerativeModel::new(lambda.num_lfs(), scheme);
    sharded.fit(lambda, &sh_cfg);

    // Inference path: bit-identical under the same weights.
    let plan = ShardedMatrix::build(lambda, shards);
    let reference = dense.marginals_rowwise(lambda);
    assert_eq!(
        dense.marginals_with(lambda, &plan),
        reference,
        "sharded marginals must be bit-identical to the dense path"
    );

    // Training path: same optimum, and everything stays finite.
    let fitted = sharded.marginals_rowwise(lambda);
    for (r, (a, b)) in reference.iter().zip(&fitted).enumerate() {
        for (pa, pb) in a.iter().zip(b) {
            assert!(pa.is_finite() && pb.is_finite(), "row {r} not finite");
            assert!(
                (pa - pb).abs() < 1e-9,
                "row {r}: dense {pa} vs sharded {pb}"
            );
        }
    }
}

#[test]
fn sharded_all_abstain_corpus_matches_dense() {
    // 10k rows, not a single vote: exactly one (empty) pattern.
    let lambda = LabelMatrixBuilder::new(10_000, 5).build();
    let plan = ShardedMatrix::build(&lambda, 3);
    assert_eq!(plan.num_patterns(), 3); // the empty pattern, once per shard
    assert!(plan.dedup_ratio() > 3000.0);
    assert_sharded_degrades_identically(&lambda, 3);
}

#[test]
fn sharded_dominant_pattern_matches_dense() {
    // One signature covers 99.9% of rows; the rest is a scattered tail.
    // (Every LF keeps full coverage — the adversarial dimension here is
    // the extreme multiplicity skew, not weak identification, which
    // would leave the optimum genuinely under-determined on *both*
    // paths.)
    let m = 10_000;
    let mut b = LabelMatrixBuilder::new(m, 4);
    for i in 0..m {
        if i % 1000 == 999 {
            // 0.1% tail: two rare fully-conflicting signatures.
            let flip: i8 = if i % 2000 == 999 { 1 } else { -1 };
            b.set(i, 0, -flip);
            b.set(i, 1, -1);
            b.set(i, 2, flip);
            b.set(i, 3, -1);
        } else {
            b.set(i, 0, 1);
            b.set(i, 1, 1);
            b.set(i, 2, -1);
            b.set(i, 3, 1);
        }
    }
    let lambda = b.build();
    let plan = ShardedMatrix::build(&lambda, 4);
    assert!(
        plan.dedup_ratio() > 500.0,
        "dominant pattern must dedup massively, got {:.1}",
        plan.dedup_ratio()
    );
    assert_sharded_degrades_identically(&lambda, 4);
}

#[test]
fn sharded_duplicate_lf_columns_match_dense() {
    // 6 exact copies of one column + 2 independents: the degenerate
    // suite must not behave differently under dedup.
    let (base, _) = independent_matrix(2000, 3, 0.8, 0.5, 11);
    let mut b = LabelMatrixBuilder::new(2000, 8);
    for i in 0..2000 {
        let (cols, votes) = base.row(i);
        for (&c, &v) in cols.iter().zip(votes) {
            if c == 0 {
                for copy in 0..6 {
                    b.set(i, copy, v);
                }
            } else {
                b.set(i, 5 + c as usize, v);
            }
        }
    }
    let lambda = b.build();
    assert_sharded_degrades_identically(&lambda, 2);
    // Shard count 1 and 0 (= all cores) degrade identically too.
    assert_sharded_degrades_identically(&lambda, 1);
    assert_sharded_degrades_identically(&lambda, 0);
}

#[test]
#[should_panic(expected = "one entry per class")]
fn wrong_arity_class_balance_panics() {
    let (lambda, _) = independent_matrix(50, 2, 0.8, 0.5, 3);
    let mut gm = GenerativeModel::new(2, LabelScheme::Binary);
    let cfg = TrainConfig {
        class_balance: ClassBalance::Fixed(vec![0.2, 0.3, 0.5]),
        ..TrainConfig::default()
    };
    gm.fit(&lambda, &cfg);
}
