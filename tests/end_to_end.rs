//! Cross-crate integration tests: the full Snorkel flow from raw text to
//! trained discriminative model, on every task type.

use snorkel::core::model::{ClassBalance, GenerativeModel, LabelScheme, TrainConfig};
use snorkel::core::optimizer::{choose_strategy, ModelingStrategy, OptimizerConfig};
use snorkel::core::pipeline::{Pipeline, PipelineConfig};
use snorkel::datasets::{cdr, chem, crowd, radiology, spouses, TaskConfig};
use snorkel::disc::metrics::{accuracy, f1_score, roc_auc};
use snorkel::disc::{LogRegConfig, LogisticRegression, Mlp, MlpConfig, TextFeaturizer};

fn uniform_cfg() -> TrainConfig {
    TrainConfig {
        class_balance: ClassBalance::Uniform,
        // The paper's prior assumes LFs beat random guessing (footnote 8:
        // accuracies in 62%–82%); without the clamp a handful of weak CDR
        // LFs pick up negative weights and flip votes, dragging the GM
        // below the unweighted majority vote on some corpus realizations.
        clamp_nonadversarial: true,
        ..TrainConfig::default()
    }
}

#[test]
fn cdr_end_to_end_beats_majority_vote_and_chance() {
    let task = cdr::build(TaskConfig {
        num_candidates: 1200,
        seed: 42,
    });
    let lambda_train = task.train_matrix();
    let lambda_test = task.label_matrix(&task.test);
    let gold_test = task.gold_of(&task.test);

    let mut gm = GenerativeModel::new(lambda_train.num_lfs(), LabelScheme::Binary);
    gm.fit(&lambda_train, &uniform_cfg());

    // Generative predictions must beat the unweighted majority vote.
    let mv = snorkel::core::vote::majority_vote(&lambda_test);
    let gm_pred = gm.predicted_labels(&lambda_test);
    let f1_mv = f1_score(&mv, &gold_test);
    let f1_gm = f1_score(&gm_pred, &gold_test);
    assert!(
        f1_gm >= f1_mv - 0.02,
        "GM F1 {f1_gm:.3} must not trail MV F1 {f1_mv:.3}"
    );
    assert!(f1_gm > 0.4, "GM F1 {f1_gm:.3} must be far above chance");

    // Discriminative model trained on probabilistic labels generalizes.
    let featurizer = TextFeaturizer::with_buckets(1 << 14);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let mut disc = LogisticRegression::new(1 << 14);
    disc.fit(
        &x_train,
        &gm.prob_positive(&lambda_train),
        &LogRegConfig {
            dim: 1 << 14,
            epochs: 8,
            ..LogRegConfig::default()
        },
    );
    let auc = roc_auc(&disc.predict_proba_all(&x_test), &gold_test);
    assert!(auc > 0.7, "disc AUC {auc:.3}");
}

#[test]
fn disc_model_extends_recall_beyond_lfs() {
    // The §4.1.1 generalization claim: the discriminative model improves
    // over the generative model "primarily by increasing recall" — the
    // generative model can only act on candidates some LF voted on,
    // while the end model scores every candidate from its features.
    let task = spouses::build(TaskConfig {
        num_candidates: 2000,
        seed: 7,
    });
    let lambda_train = task.train_matrix();
    let lambda_test = task.label_matrix(&task.test);
    let gold_test = task.gold_of(&task.test);

    let mut gm = GenerativeModel::new(lambda_train.num_lfs(), LabelScheme::Binary);
    gm.fit(&lambda_train, &uniform_cfg());

    // Generative recall under the appendix A.5 convention: rows with no
    // votes get label 0, counted as negative.
    let gen_pred = gm.predicted_labels(&lambda_test);
    let gen = snorkel::disc::metrics::precision_recall_f1(&gen_pred, &gold_test);

    let featurizer = TextFeaturizer::with_buckets(1 << 14);
    let train_ids: Vec<_> = task.train.iter().map(|&r| task.candidates[r]).collect();
    let test_ids: Vec<_> = task.test.iter().map(|&r| task.candidates[r]).collect();
    let x_train = featurizer.featurize_all(&task.corpus, &train_ids);
    let x_test = featurizer.featurize_all(&task.corpus, &test_ids);
    let mut disc = LogisticRegression::new(1 << 14);
    disc.fit(
        &x_train,
        &gm.prob_positive(&lambda_train),
        &LogRegConfig {
            dim: 1 << 14,
            epochs: 12,
            learning_rate: 0.05,
            ..LogRegConfig::default()
        },
    );
    let disc_pred = disc.predict_all(&x_test);
    let disc_prf = snorkel::disc::metrics::precision_recall_f1(&disc_pred, &gold_test);

    assert!(
        disc_prf.recall >= gen.recall - 0.02,
        "disc recall {:.3} must extend the generative model's {:.3}",
        disc_prf.recall,
        gen.recall
    );
    // And the disc scores every candidate, LF-covered or not: its
    // probabilities on LF-invisible rows must be finite and varied
    // (the generative model can only output the prior there).
    let uncovered: Vec<usize> = (0..lambda_test.num_points())
        .filter(|&i| lambda_test.row(i).0.is_empty())
        .collect();
    if uncovered.len() >= 2 {
        let scores: Vec<f64> = uncovered
            .iter()
            .map(|&i| disc.predict_proba(&x_test[i]))
            .collect();
        assert!(scores.iter().all(|s| s.is_finite()));
        let min = scores.iter().cloned().fold(1.0, f64::min);
        let max = scores.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 1e-6,
            "disc must discriminate among LF-invisible rows ({min:.4}..{max:.4})"
        );
    }
}

#[test]
fn optimizer_strategies_match_table1_pattern() {
    // Chem → MV; CDR → GM (the Table 1 headline contrast).
    let chem_task = chem::build(TaskConfig {
        num_candidates: 1200,
        seed: 3,
    });
    let cdr_task = cdr::build(TaskConfig {
        num_candidates: 1200,
        seed: 3,
    });
    let cfg = OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    };
    let chem_decision = choose_strategy(&chem_task.train_matrix(), &cfg);
    let cdr_decision = choose_strategy(&cdr_task.train_matrix(), &cfg);
    assert_eq!(
        chem_decision.strategy,
        ModelingStrategy::MajorityVote,
        "Chem must select MV (A~* = {:.4})",
        chem_decision.predicted_advantage
    );
    assert!(
        matches!(
            cdr_decision.strategy,
            ModelingStrategy::GenerativeModel { .. }
        ),
        "CDR must select GM (A~* = {:.4})",
        cdr_decision.predicted_advantage
    );
}

#[test]
fn crowd_five_class_flow() {
    let task = crowd::build(TaskConfig {
        num_candidates: 632,
        seed: 11,
    });
    let lambda = task.label_matrix(&task.train);
    assert_eq!(lambda.cardinality(), 5);

    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::MultiClass(5));
    gm.fit(&lambda, &uniform_cfg());

    // The generative model must beat the raw majority vote of workers.
    let gold_train = task.gold_of(&task.train);
    let mv = snorkel::core::vote::majority_vote(&lambda);
    let gm_pred = gm.predicted_labels(&lambda);
    let acc_mv = accuracy(&mv, &gold_train);
    let acc_gm = accuracy(&gm_pred, &gold_train);
    assert!(
        acc_gm >= acc_mv - 0.02,
        "GM accuracy {acc_gm:.3} vs MV {acc_mv:.3}"
    );
    assert!(acc_gm > 0.6, "GM label accuracy {acc_gm:.3}");

    // Learned worker reliability must correlate with the truth.
    let r = snorkel::linalg::stats::pearson(&gm.implied_accuracies(), &task.worker_accuracies);
    assert!(r > 0.5, "worker-accuracy correlation {r:.2}");
}

#[test]
fn radiology_cross_modal_flow() {
    let task = radiology::build(TaskConfig {
        num_candidates: 900,
        seed: 13,
    });
    let lambda = task.label_matrix(&task.train);
    let mut gm = GenerativeModel::new(lambda.num_lfs(), LabelScheme::Binary);
    gm.fit(&lambda, &uniform_cfg());
    let soft = gm.prob_positive(&lambda);

    let cfg = MlpConfig {
        input_dim: task.image_dim,
        hidden_dim: 16,
        epochs: 30,
        ..MlpConfig::default()
    };
    let mut mlp = Mlp::new(&cfg);
    mlp.fit(&task.images_of(&task.train), &soft, &cfg);
    let auc = roc_auc(
        &mlp.predict_proba_all(&task.images_of(&task.test)),
        &task.gold_of(&task.test),
    );
    assert!(auc > 0.75, "cross-modal AUC {auc:.3}");
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let task = spouses::build(TaskConfig {
        num_candidates: 800,
        seed: 21,
    });
    let lambda = task.train_matrix();
    let run = || {
        let (labels, report) = Pipeline::new(PipelineConfig {
            train: uniform_cfg(),
            ..PipelineConfig::default()
        })
        .run_from_matrix(&lambda);
        (labels, format!("{:?}", report.strategy))
    };
    let (a_labels, a_strategy) = run();
    let (b_labels, b_strategy) = run();
    assert_eq!(a_strategy, b_strategy);
    assert_eq!(
        a_labels, b_labels,
        "pipeline must be bit-for-bit deterministic"
    );
}

#[test]
fn task_generation_is_deterministic_across_builds() {
    let a = cdr::build(TaskConfig {
        num_candidates: 400,
        seed: 5,
    });
    let b = cdr::build(TaskConfig {
        num_candidates: 400,
        seed: 5,
    });
    assert_eq!(a.gold, b.gold);
    assert_eq!(a.train, b.train);
    assert_eq!(
        a.train_matrix(),
        b.train_matrix(),
        "label matrices must be identical across builds"
    );
}
