//! The paper's worked examples as executable tests.

use snorkel::core::model::{ClassBalance, GenerativeModel, LabelScheme, TrainConfig};
use snorkel::datasets::synthetic::heterogeneous_matrix;
use snorkel::lf::{lf, KeywordBetweenLf, LfExecutor};
use snorkel::matrix::LabelMatrixBuilder;
use snorkel::nlp::{CandidateExtractor, DictionaryTagger, DocumentIngester};

/// Example 1.1 / Figure 1: a 90%-accurate low-coverage source and a
/// 60%-accurate high-coverage source. Majority vote ties on conflicts;
/// the generative model resolves them toward the accurate source and
/// the training labels carry that lineage.
#[test]
fn example_1_1_lineage() {
    // Three sources (two is the classical non-identifiable case):
    // accuracies 0.9 / 0.6 / 0.75.
    let (lambda, _) = heterogeneous_matrix(4000, &[0.9, 0.6, 0.75], 0.7, 1);
    let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
    gm.fit(&lambda, &TrainConfig::default());

    // Conflict: source 0 says +1, source 1 says −1.
    let post = gm.posterior(&[0, 1], &[1, -1]);
    assert!(
        post[0] > 0.6,
        "conflicts must resolve toward the accurate source: {post:?}"
    );
    // And the lineage survives in the soft label: the probabilistic
    // label is strictly between 0.5 and 1 (confidence, not certainty).
    assert!(post[0] < 0.99);
}

/// Example 2.1–2.3: the running CDR candidates and the LF_causes
/// labeling function, written exactly as the paper sketches it.
#[test]
fn example_2_3_lf_causes() {
    let mut tagger = DictionaryTagger::new();
    tagger.add_phrase("magnesium", "Chemical");
    tagger.add_phrases(["quadriplegic", "preeclampsia"], "Disease");
    let ingester = DocumentIngester::with_tagger(tagger);
    let mut corpus = snorkel::context::Corpus::new();
    ingester.ingest(
        &mut corpus,
        "abstract",
        "We study a patient who became quadriplegic after parenteral magnesium \
         administration for preeclampsia.",
    );
    let candidates = CandidateExtractor::new("Chemical", "Disease").extract(&mut corpus);
    assert_eq!(candidates.len(), 2, "two candidates as in Example 2.1");

    // The paper's hand-written LF: "causes" between chemical and disease.
    let lf_causes = lf("LF_causes", |x| {
        let (_, ce) = x.span(0).word_range();
        let (ds, _) = x.span(1).word_range();
        let words = x.sentence().words();
        if ce <= ds && words[ce..ds].contains(&"causes") {
            1
        } else if !x.span_precedes(0, 1) && x.words_between(0, 1).contains(&"causes") {
            -1
        } else {
            0
        }
    });
    // Neither candidate's sentence contains "causes": both abstain.
    for &c in &candidates {
        assert_eq!(lf_causes.label(&corpus.candidate(c)), 0);
    }

    // On a sentence that does assert causation, it votes.
    let mut tagger = DictionaryTagger::new();
    tagger.add_phrase("magnesium", "Chemical");
    tagger.add_phrase("weakness", "Disease");
    let ingester = DocumentIngester::with_tagger(tagger);
    let mut corpus2 = snorkel::context::Corpus::new();
    ingester.ingest(&mut corpus2, "d", "Magnesium causes weakness.");
    let cands2 = CandidateExtractor::new("Chemical", "Disease").extract(&mut corpus2);
    assert_eq!(lf_causes.label(&corpus2.candidate(cands2[0])), 1);
}

/// Example 3.1: 10 LFs where 5 are perfectly correlated with accuracy
/// 50% and 5 are conditionally independent with high accuracy. The
/// independent model over-trusts the block; modeling the correlations
/// fixes the estimates.
#[test]
fn example_3_1_catastrophic_correlations() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(31);
    let m = 3000;
    let mut b = LabelMatrixBuilder::new(m, 10);
    for i in 0..m {
        let y: i8 = if rng.gen::<bool>() { 1 } else { -1 };
        let block: i8 = if rng.gen::<f64>() < 0.5 { y } else { -y };
        for j in 0..5 {
            b.set(i, j, block);
        }
        for j in 5..10 {
            b.set(i, j, if rng.gen::<f64>() < 0.95 { y } else { -y });
        }
    }
    let lambda = b.build();

    let cfg = TrainConfig {
        class_balance: ClassBalance::Uniform,
        ..TrainConfig::default()
    };

    let mut indep = GenerativeModel::new(10, LabelScheme::Binary);
    indep.fit(&lambda, &cfg);

    let pairs: Vec<(usize, usize)> = (0..5)
        .flat_map(|a| ((a + 1)..5).map(move |b2| (a, b2)))
        .collect();
    let mut corr = GenerativeModel::new(10, LabelScheme::Binary).with_correlations(&pairs);
    corr.fit(&lambda, &cfg);

    // Under the correlated model, the good independent LFs must carry
    // more total weight than the whole 50%-accurate block.
    let w = corr.accuracy_weights();
    let block_sum: f64 = w[..5].iter().sum();
    let good_sum: f64 = w[5..].iter().sum();
    assert!(
        good_sum > block_sum,
        "correlated fit must trust the independent LFs: block {block_sum:.2} vs good {good_sum:.2}"
    );

    // And its conflict resolution must side with the good LFs where the
    // independent model sides with the block.
    let cols: Vec<u32> = (0..10).collect();
    let votes: Vec<i8> = vec![1, 1, 1, 1, 1, -1, -1, -1, -1, -1];
    let p_corr = corr.posterior(&cols, &votes);
    assert!(
        p_corr[1] > 0.5,
        "block (+1) vs good LFs (−1): correlated model must pick −1, got {:?}",
        p_corr
    );
}

/// §2.1's "simplicity was critical": a complete LF suite is just a vec
/// of boxed trait objects; executor output is identical regardless of
/// how LFs were constructed (closure, declarative, generator).
#[test]
fn heterogeneous_suite_uniformity() {
    let mut tagger = DictionaryTagger::new();
    tagger.add_phrase("aspirin", "Chemical");
    tagger.add_phrase("headache", "Disease");
    let ingester = DocumentIngester::with_tagger(tagger);
    let mut corpus = snorkel::context::Corpus::new();
    ingester.ingest(
        &mut corpus,
        "d",
        "Aspirin treats headache. Aspirin causes headache.",
    );
    let cands = CandidateExtractor::new("Chemical", "Disease").extract(&mut corpus);

    let suite: Vec<snorkel::lf::BoxedLf> = vec![
        lf(
            "closure",
            |x| if x.token_distance(0, 1) <= 2 { 1 } else { 0 },
        ),
        Box::new(KeywordBetweenLf::new("declarative", &["treats"], -1, -1)),
    ];
    let lambda = LfExecutor::new().apply(&suite, &corpus, &cands);
    assert_eq!(lambda.num_points(), 2);
    assert_eq!(lambda.num_lfs(), 2);
    assert_eq!(lambda.get(0, 1), -1, "treats sentence");
    assert_eq!(lambda.get(1, 1), 0, "causes sentence");
}
