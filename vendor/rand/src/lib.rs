//! Vendored, minimal, API-compatible stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a fast,
//! well-studied PRNG that comfortably passes the statistical demands of the
//! workspace's planted-dataset tests. Streams are **deterministic per seed**
//! but are *not* bit-compatible with upstream `rand`'s `StdRng` (ChaCha12);
//! every consumer in this workspace only relies on determinism, not on a
//! particular stream.

#![forbid(unsafe_code)]

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait UniformSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] accepts (the stand-in for
/// `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (bias < 2^-64, irrelevant at test scale).
#[inline]
fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + draw_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly (`bool`, `f64`, `f32`, `u32`, `u64`).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; SplitMix64 cannot
            // produce four consecutive zeros, but belt and braces:
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` when empty).
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(
            StdRng::seed_from_u64(42).gen::<u64>(),
            c.gen::<u64>(),
            "different seeds must diverge"
        );
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
        // Inclusive ranges reach both endpoints.
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.gen_range(-1i8..=1) {
                -1 => saw_lo = true,
                1 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50! leaves this astronomically unlikely"
        );
    }
}
