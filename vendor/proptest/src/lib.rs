//! Vendored, minimal, API-compatible stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! workspace vendors the slice of proptest it uses: the [`proptest!`] macro,
//! `prop_assert*` macros, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, [`prop_oneof!`], `Just`, integer and
//! float range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::char::range`, `prop::sample::Index`, `any`, and regex-string
//! strategies (`"[a-e]{0,12}"`-style literals).
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the case seed
//!   in the panic message; cases are deterministic per (test name, case
//!   index), so failures reproduce exactly on re-run.
//! * Case count defaults to 64 (set via `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod string_gen;
pub mod test_runner;

/// `prop::…` namespace mirroring upstream's module layout.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Character strategies (`prop::char::range`).
    pub mod char {
        pub use crate::strategy::char_range as range;
    }
    /// Sampling helpers (`prop::sample::Index`).
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// Arbitrary-type strategies (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Produce the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// One-stop import for tests, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Each parameter is drawn from its strategy for
/// every case; the body runs once per case.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    // Name the case so a failure's panic location plus this
                    // counter reproduce it exactly (cases are deterministic).
                    let __guard = $crate::test_runner::CaseGuard::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    { $body }
                    __guard.passed();
                }
            }
        )*
    };
}
