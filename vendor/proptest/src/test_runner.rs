//! Case scheduling: configuration, per-case RNG derivation, and failure
//! reporting for the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration. Only `cases` is honored by this vendored
/// implementation.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test's fully qualified name, mixed with the case index:
/// deterministic, collision-irrelevant seeds, stable across runs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1))
}

/// Prints which case was running if the body panics (this crate does not
/// shrink; the deterministic case index is the reproduction handle).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    passed: bool,
}

impl CaseGuard {
    /// Arm the guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            passed: false,
        }
    }

    /// Disarm: the case finished without panicking.
    pub fn passed(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.passed && std::thread::panicking() {
            eprintln!(
                "proptest case failed: {} case #{} (deterministic; re-run reproduces it)",
                self.name, self.case
            );
        }
    }
}
