//! Value-generation strategies: the [`Strategy`] trait, combinators, and
//! the built-in strategies the workspace's property tests use.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type from an RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// a strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive structures: `self` generates leaves; `recurse` builds a
    /// strategy for one level on top of a strategy for the level below.
    /// Recursion is capped at `depth` levels (the other two parameters,
    /// upstream's size hints, are accepted for compatibility and ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = recurse(cur.clone()).boxed();
            // Bias toward the recursive arm so structures have interior
            // depth; the base arm guarantees termination at every level.
            cur = Union::weighted(vec![(1, base.clone()), (3, rec)]).boxed();
        }
        cur
    }
}

/// Cheaply clonable type-erased strategy handle.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        self.0.sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice between strategies of a common value type; backs
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Equal-weight choice.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Explicitly weighted choice.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "Union needs at least one option");
        let total_weight = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "Union needs positive total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// String literals are regex strategies, as in upstream proptest:
/// `"[a-e]{0,12}" : Strategy<Value = String>`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string_gen::generate(self, rng)
    }
}

/// Element-count specification for [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec<T>` strategy; see [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Inclusive character range strategy (`prop::char::range`).
#[derive(Clone, Copy, Debug)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

/// `prop::char::range(lo, hi)` — uniform over valid scalar values.
pub fn char_range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range");
    CharRange {
        lo: lo as u32,
        hi: hi as u32,
    }
}

impl Strategy for CharRange {
    type Value = char;
    fn sample(&self, rng: &mut StdRng) -> char {
        // Rejection-sample the surrogate gap; every other code point in a
        // valid range converts.
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(self.lo..=self.hi)) {
                return c;
            }
        }
    }
}

/// An index "into any collection": stores a unit-interval position and
/// projects onto a concrete length via [`Index::index`]
/// (`prop::sample::Index`).
#[derive(Clone, Copy, Debug)]
pub struct Index(f64);

impl Index {
    /// Project onto a collection of `len` elements. Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.0 * len as f64) as usize).min(len - 1)
    }
}

/// Strategy behind `any::<Index>()`.
#[derive(Clone, Copy, Debug)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn sample(&self, rng: &mut StdRng) -> Index {
        Index(rng.gen::<f64>())
    }
}

impl crate::arbitrary::Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> IndexStrategy {
        IndexStrategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (1usize..24, -1i8..=1).sample(&mut r);
            assert!((1..24).contains(&a));
            assert!((-1..=1).contains(&b));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut r = rng();
        let u = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 1,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(T::Leaf).prop_recursive(3, 16, 4, |inner| vec(inner, 1..4).prop_map(T::Node));
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..100 {
            max_depth = max_depth.max(depth(&s.sample(&mut r)));
        }
        assert!(max_depth > 1, "recursion never taken");
        assert!(max_depth <= 4, "depth cap exceeded: {max_depth}");
    }

    #[test]
    fn index_projects_within_len() {
        let mut r = rng();
        for _ in 0..100 {
            let idx = crate::arbitrary::any::<Index>().sample(&mut r);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }
}
