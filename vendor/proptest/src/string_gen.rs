//! Random string generation from a regex subset — the implementation
//! behind `"[a-e]{0,12}"`-style string-literal strategies.
//!
//! Supported syntax (the subset the workspace's tests use, plus the
//! obvious neighbors): literals, `.`, escapes (`\n`, `\t`, `\\`, `\.`,
//! `\d`, and the Unicode-property forms `\PC` / `\p{..}` approximated as
//! "printable"), character classes `[a-z0-9 -]` with ranges, groups
//! `( … | … )`, and quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (`*`/`+`
//! are capped at 8 repetitions).

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Clone, Debug)]
enum Node {
    /// Alternation of sequences.
    Alt(Vec<Vec<Node>>),
    /// One literal character.
    Lit(char),
    /// Inclusive character ranges (a single char is a degenerate range).
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character, multibyte included.
    Printable,
    /// `.` — any printable character except newline (vacuously, Printable
    /// already excludes control characters; kept separate for clarity).
    Dot,
    /// `node{lo,hi}` repetition, bounds inclusive.
    Repeat(Box<Node>, u32, u32),
}

/// A small pool of multibyte scalars so `\PC`-style strategies exercise
/// UTF-8 boundary handling, not just ASCII.
const MULTIBYTE: &[char] = ['é', 'ß', 'Ω', 'λ', '中', '€', '…', '→', 'ñ', '🙂'].as_slice();

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let node = Parser::new(pattern).parse();
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Alt(alts) => {
            let seq = &alts[rng.gen_range(0..alts.len())];
            for n in seq {
                emit(n, rng, out);
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            // Weight ranges by size for near-uniform member choice.
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    let c = char::from_u32(lo as u32 + pick as u32).unwrap_or(lo); // surrogate gap: fall back to range start
                    out.push(c);
                    return;
                }
                pick -= span;
            }
            unreachable!("pick < total");
        }
        Node::Printable | Node::Dot => {
            // 85% printable ASCII, 15% multibyte.
            if rng.gen::<f64>() < 0.85 {
                out.push(char::from_u32(rng.gen_range(0x20u32..=0x7E)).expect("printable ascii"));
            } else {
                out.push(MULTIBYTE[rng.gen_range(0..MULTIBYTE.len())]);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn new(pattern: &str) -> Self {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn parse(mut self) -> Node {
        let node = self.parse_alt();
        assert!(
            self.pos == self.chars.len(),
            "unsupported trailing syntax in pattern at {}: {:?}",
            self.pos,
            self.chars.iter().collect::<String>()
        );
        node
    }

    fn parse_alt(&mut self) -> Node {
        let mut alts = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_seq());
        }
        Node::Alt(alts)
    }

    fn parse_seq(&mut self) -> Vec<Node> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            seq.push(self.parse_quantified(atom));
        }
        seq
    }

    fn parse_quantified(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('{') => {
                self.bump();
                let mut lo = String::new();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lo.push(self.bump());
                }
                let lo: u32 = lo.parse().expect("repetition lower bound");
                let hi = if self.peek() == Some(',') {
                    self.bump();
                    let mut hi = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        hi.push(self.bump());
                    }
                    hi.parse().expect("repetition upper bound")
                } else {
                    lo
                };
                assert_eq!(self.bump(), '}', "unterminated repetition");
                Node::Repeat(Box::new(atom), lo, hi)
            }
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            _ => atom,
        }
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                // Swallow the non-capturing marker; generation has no groups.
                if self.peek() == Some('?') {
                    self.bump();
                    assert_eq!(self.bump(), ':', "only (?: groups are supported");
                }
                let node = self.parse_alt();
                assert_eq!(self.bump(), ')', "unterminated group");
                node
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::Dot,
            c => Node::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.bump() {
            'n' => Node::Lit('\n'),
            't' => Node::Lit('\t'),
            'r' => Node::Lit('\r'),
            'd' => Node::Class(vec![('0', '9')]),
            // Unicode property classes, approximated: `\PC` (not-control)
            // and `\p{..}` both generate printable characters.
            'P' => {
                self.bump(); // the single-letter property name
                Node::Printable
            }
            'p' => {
                if self.peek() == Some('{') {
                    while self.bump() != '}' {}
                } else {
                    self.bump();
                }
                Node::Printable
            }
            c => Node::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        assert_ne!(self.peek(), Some('^'), "negated classes are unsupported");
        let mut ranges = Vec::new();
        loop {
            let c = self.bump();
            if c == ']' {
                break;
            }
            let lo = if c == '\\' {
                match self.bump() {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            } else {
                c
            };
            // `-` is a range operator only between two chars; a trailing
            // `-` (as in `[.,;!?-]`) is a literal.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.bump();
                assert!(lo <= hi, "inverted class range {lo}-{hi}");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        Node::Class(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(5);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_repetition() {
        for s in samples("[a-e]{0,12}", 200) {
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }
    }

    #[test]
    fn class_with_trailing_dash_and_punct() {
        let all: String = samples("[a-zA-Z0-9 .,;!?-]{0,80}", 100).concat();
        assert!(all
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || " .,;!?-".contains(c)));
        assert!(
            all.contains('-') || all.len() < 200,
            "dash should appear in bulk samples"
        );
    }

    #[test]
    fn printable_property_is_non_control() {
        let mut lens = std::collections::BTreeSet::new();
        for s in samples("\\PC{0,120}", 200) {
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            lens.insert(s.chars().count());
        }
        assert!(lens.len() > 10, "lengths should vary: {lens:?}");
        assert!(lens.iter().all(|&l| l <= 120));
    }

    #[test]
    fn groups_alternation_and_optionals() {
        for s in samples("([A-Z][a-z]{1,8}( [a-z]{1,8}){0,6}[.!?] ?){0,5}", 100) {
            for sentence in s.split_inclusive(['.', '!', '?']) {
                let first = sentence.trim_start().chars().next();
                if let Some(c) = first {
                    assert!(c.is_ascii_uppercase() || c.is_whitespace(), "{s:?}");
                }
            }
        }
        let variants = samples("(?:ab|cd)", 50);
        assert!(variants.iter().any(|s| s == "ab"));
        assert!(variants.iter().any(|s| s == "cd"));
    }

    #[test]
    fn newline_escape_in_class() {
        let all: String = samples("[a-e \\n]{0,16}", 300).concat();
        assert!(all.contains('\n'));
        assert!(all
            .chars()
            .all(|c| ('a'..='e').contains(&c) || c == ' ' || c == '\n'));
    }
}
