//! Vendored, minimal, API-compatible stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the criterion API its benches use:
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples; the per-iteration median, minimum, and maximum are
//! printed. There are no HTML reports, statistics beyond the three numbers,
//! or saved baselines — `cargo bench` output is the interface.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink (re-exported for convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms or 3 iterations, whichever first,
        // estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1_000)
        {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;

        // Pick an inner batch so each sample lasts ≥ ~2ms.
        let batch = if per_iter >= Duration::from_millis(2) {
            1u32
        } else {
            (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1)) as u32 + 1
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_one(full_id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let mut sorted = b.samples.clone();
    sorted.sort();
    if sorted.is_empty() {
        println!("{full_id:<60} (no samples: Bencher::iter never called)");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{full_id:<60} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's default is 100; ours is 20 to
    /// keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// End the group (accepted for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmark ids; harness
        // flags that cargo forwards (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = id.into().id;
        if self.matches(&full) {
            run_one(&full, 20, &mut f);
        }
        self
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
