//! # snorkel
//!
//! Façade crate for `snorkel-rs`, a from-scratch Rust reproduction of
//! *Snorkel: Rapid Training Data Creation with Weak Supervision*
//! (Ratner et al., VLDB 2017).
//!
//! This crate re-exports the workspace's public API so applications (and
//! the repository's `examples/` and `tests/`) can depend on a single
//! crate:
//!
//! * [`context`] — the context-hierarchy data model (documents, sentences,
//!   spans, entities, candidates).
//! * [`nlp`] — the lightweight NLP substrate (tokenizer, sentence
//!   splitter, dictionary NER, candidate extraction).
//! * [`pattern`] — the pattern/regex engine used by declarative labeling
//!   functions.
//! * [`lf`] — the labeling-function interface: the [`lf::LabelingFunction`]
//!   trait, declarative operators, generators, and the parallel executor.
//! * [`matrix`] — the sparse label matrix `Λ` and labeling diagnostics.
//! * [`core`] — the data-programming core: the pluggable
//!   [`core::label_model::LabelModel`] backend API (majority vote,
//!   closed-form moment estimator, exact generative model),
//!   dependency-structure learning, the Algorithm-1 model-selection
//!   optimizer, and the end-to-end [`core::pipeline`].
//! * [`incr`] — the incremental labeling engine for the interactive dev
//!   loop: content-addressed LF-result caching, delta Λ updates, and
//!   warm-started training behind [`incr::IncrementalSession`].
//! * [`stream`] — the streaming ingestion plane: running moment
//!   sufficient statistics for online refits, windowed drift detection,
//!   and bounded ingest admission ([`stream::StreamState`],
//!   [`stream::DriftDetector`], [`stream::IngestGate`]).
//! * [`serve`] — durable session snapshots (versioned, checksummed
//!   binary format) and the concurrent TCP labeling service
//!   ([`serve::LabelServer`]).
//! * [`disc`] — noise-aware discriminative models and evaluation metrics.
//! * [`obs`] — zero-dependency observability: atomic metrics, spans, a
//!   process-global registry, and Prometheus-text exposition (the
//!   `METRICS`/`SLOWLOG` verbs of the serving layer).
//! * [`datasets`] — synthetic analogues of the paper's six applications.
//! * [`linalg`] — dense/sparse numerics shared by the model crates.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the canonical three-stage flow:
//! write labeling functions → fit the generative model → train a
//! discriminative model on the probabilistic labels.

#![forbid(unsafe_code)]

pub use snorkel_arena as arena;
pub use snorkel_context as context;
pub use snorkel_core as core;
pub use snorkel_datasets as datasets;
pub use snorkel_disc as disc;
pub use snorkel_incr as incr;
pub use snorkel_lf as lf;
pub use snorkel_linalg as linalg;
pub use snorkel_matrix as matrix;
pub use snorkel_nlp as nlp;
pub use snorkel_obs as obs;
pub use snorkel_pattern as pattern;
pub use snorkel_serve as serve;
pub use snorkel_stream as stream;
