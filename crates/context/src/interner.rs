//! A concurrent string interner.
//!
//! Entity types, vocabulary items, and metadata keys repeat massively
//! across a corpus; interning them keeps the arenas compact and makes
//! equality checks integer comparisons. Reads take a shared lock; the
//! write path (first sighting of a string) takes the exclusive lock.

use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An interned string handle.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index backing this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Thread-safe string interner.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Shared lock. Writers only ever extend the arenas, so a poisoned
    /// lock (a panicking writer) leaves the map in a consistent state;
    /// recover rather than propagate.
    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Intern a string, returning its stable symbol.
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&sym) = self.read().map.get(s) {
            return sym;
        }
        let mut inner = self.write();
        // Double-check: another writer may have interned between locks.
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(inner.strings.len()).expect("interner overflow"));
        inner.strings.push(s.to_string());
        inner.map.insert(s.to_string(), sym);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.read().map.get(s).copied()
    }

    /// Resolve a symbol back to its string (owned, because the interner
    /// is behind a lock).
    pub fn resolve(&self, sym: Symbol) -> String {
        self.read().strings[sym.index()].clone()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.read().strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("Chemical");
        let b = i.intern("Disease");
        let a2 = i.intern("Chemical");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "Chemical");
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        i.intern("present");
        assert!(i.get("present").is_some());
    }

    #[test]
    fn concurrent_interning_yields_consistent_symbols() {
        use std::sync::Arc;
        let i = Arc::new(Interner::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let i = Arc::clone(&i);
            handles.push(std::thread::spawn(move || {
                let mut syms = Vec::new();
                for k in 0..50 {
                    // All threads intern the same 10 strings.
                    syms.push((k % 10, i.intern(&format!("s{}", k % 10))));
                }
                let _ = t;
                syms
            }));
        }
        let mut canonical: HashMap<usize, Symbol> = HashMap::new();
        for h in handles {
            for (k, sym) in h.join().expect("thread ok") {
                let entry = canonical.entry(k).or_insert(sym);
                assert_eq!(*entry, sym, "same string must intern to same symbol");
            }
        }
        assert_eq!(i.len(), 10);
    }
}
