//! Tokens: the word-level unit of the context hierarchy.

/// One token of a sentence, with byte offsets into the sentence text and
/// an optional lemma (set by the NLP preprocessing substrate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Surface text of the token.
    pub text: String,
    /// Byte offset of the token start within its sentence.
    pub start: usize,
    /// Byte offset one past the token end within its sentence.
    pub end: usize,
    /// Lemmatized form; equal to lowercased `text` when no lemmatizer ran.
    pub lemma: String,
}

impl Token {
    /// A token whose lemma defaults to the lowercased surface form.
    pub fn new(text: impl Into<String>, start: usize, end: usize) -> Self {
        let text = text.into();
        let lemma = text.to_lowercase();
        Token {
            text,
            start,
            end,
            lemma,
        }
    }

    /// A token with an explicit lemma.
    pub fn with_lemma(
        text: impl Into<String>,
        start: usize,
        end: usize,
        lemma: impl Into<String>,
    ) -> Self {
        Token {
            text: text.into(),
            start,
            end,
            lemma: lemma.into(),
        }
    }

    /// Length of the token in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the token covers no bytes (never produced by the
    /// tokenizer; present for completeness of the API).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lemma_is_lowercase() {
        let t = Token::new("Causes", 0, 6);
        assert_eq!(t.lemma, "causes");
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn explicit_lemma() {
        let t = Token::with_lemma("causes", 0, 6, "cause");
        assert_eq!(t.lemma, "cause");
    }
}
