//! The raw context-hierarchy records stored by [`crate::Corpus`].
//!
//! These are plain data; navigation (span text, words between spans,
//! parent documents) lives on the view types in [`crate::corpus`], which
//! carry a corpus reference.

use std::collections::BTreeMap;

use crate::ids::{CandidateId, DocId, SentenceId, SpanId};
use crate::token::Token;

/// A document: the root context type.
#[derive(Clone, Debug)]
pub struct Document {
    /// This document's id.
    pub id: DocId,
    /// A stable external name (file name, PubMed id, …).
    pub name: String,
    /// Child sentences in reading order.
    pub sentences: Vec<SentenceId>,
    /// Free-form metadata (e.g. MeSH codes for radiology reports, source
    /// feed for news). Sorted map so iteration order is deterministic.
    pub meta: BTreeMap<String, String>,
}

/// A sentence: a tokenized unit of text within a document.
#[derive(Clone, Debug)]
pub struct Sentence {
    /// This sentence's id.
    pub id: SentenceId,
    /// Parent document.
    pub doc: DocId,
    /// Position of this sentence within its document (0-based).
    pub position: usize,
    /// Raw sentence text.
    pub text: String,
    /// Tokens with byte offsets into `text`.
    pub tokens: Vec<Token>,
    /// Child spans (tagged mentions) in creation order.
    pub spans: Vec<SpanId>,
}

/// A span: a contiguous token range within a sentence, optionally tagged
/// with an entity type ("Chemical", "Disease", "Person", …).
#[derive(Clone, Debug)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Parent sentence.
    pub sentence: SentenceId,
    /// First token index (inclusive).
    pub token_start: usize,
    /// One past the last token index (exclusive).
    pub token_end: usize,
    /// Entity tag, if any.
    pub entity_type: Option<String>,
}

impl Span {
    /// Number of tokens covered.
    pub fn num_tokens(&self) -> usize {
        self.token_end - self.token_start
    }
}

/// A candidate: a tuple of spans forming one data point `x`.
///
/// Relation-extraction candidates hold two spans; unary classification
/// candidates hold one. All spans of a candidate must share a sentence
/// (enforced by [`crate::Corpus::add_candidate`]), mirroring the paper's
/// co-occurrence candidate extraction.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// This candidate's id; doubles as its row in the label matrix.
    pub id: CandidateId,
    /// The member spans, in argument order.
    pub spans: Vec<SpanId>,
}

impl Candidate {
    /// Number of argument spans (the candidate's arity).
    pub fn arity(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_token_count() {
        let s = Span {
            id: SpanId::from_index(0),
            sentence: SentenceId::from_index(0),
            token_start: 2,
            token_end: 5,
            entity_type: Some("Chemical".into()),
        };
        assert_eq!(s.num_tokens(), 3);
    }

    #[test]
    fn candidate_arity() {
        let c = Candidate {
            id: CandidateId::from_index(0),
            spans: vec![SpanId::from_index(0), SpanId::from_index(1)],
        };
        assert_eq!(c.arity(), 2);
    }
}
