//! # snorkel-context
//!
//! The context-hierarchy data model (paper §2, Figure 3).
//!
//! Snorkel stores input data in a *context hierarchy*: `Document →
//! Sentence → Span`, with spans optionally tagged as entity mentions.
//! *Candidates* — the data points `x` to classify — are tuples of spans
//! (binary relation mentions are span pairs; unary classification tasks
//! use a single span). The original system kept this hierarchy in
//! PostgreSQL behind a SQLAlchemy ORM; here it is an arena-allocated
//! in-memory store ([`Corpus`]) with typed ids and cheap navigation views,
//! which preserves exactly what labeling functions need: traversing from a
//! candidate to its spans, sentence, words, and document metadata.
//!
//! ```
//! use snorkel_context::{Corpus, Token};
//!
//! let mut corpus = Corpus::new();
//! let doc = corpus.add_document("doc-1");
//! let sent = corpus.add_sentence(
//!     doc,
//!     "magnesium causes weakness",
//!     vec![
//!         Token::with_lemma("magnesium", 0, 9, "magnesium"),
//!         Token::with_lemma("causes", 10, 16, "cause"),
//!         Token::with_lemma("weakness", 17, 25, "weakness"),
//!     ],
//! );
//! let chem = corpus.add_span(sent, 0, 1, Some("Chemical"));
//! let dis = corpus.add_span(sent, 2, 3, Some("Disease"));
//! let cand = corpus.add_candidate(vec![chem, dis]);
//!
//! let view = corpus.candidate(cand);
//! assert_eq!(view.span(0).text(), "magnesium");
//! assert_eq!(view.words_between(0, 1), &["causes"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod hierarchy;
mod ids;
mod interner;
mod token;

pub use corpus::{CandidateView, Corpus, DocumentView, SentenceView, SpanView};
pub use hierarchy::{Candidate, Document, Sentence, Span};
pub use ids::{CandidateId, DocId, SentenceId, SpanId};
pub use interner::{Interner, Symbol};
pub use token::Token;
