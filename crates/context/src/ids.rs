//! Typed arena ids.
//!
//! Every context type gets its own `u32`-backed id so that ids from
//! different arenas cannot be confused at compile time. Ids are dense
//! (assigned sequentially by [`crate::Corpus`]) and therefore double as
//! row indices — the label matrix indexes candidates by
//! `CandidateId::index()`.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Construct from a dense index (use only with indices handed
            /// out by the owning [`crate::Corpus`]).
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("arena index exceeds u32"))
            }

            /// The dense index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::Document`].
    DocId
);
define_id!(
    /// Identifier of a [`crate::Sentence`].
    SentenceId
);
define_id!(
    /// Identifier of a [`crate::Span`].
    SpanId
);
define_id!(
    /// Identifier of a [`crate::Candidate`] (a data point `x`).
    CandidateId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let id = CandidateId::from_index(41);
        assert_eq!(id.index(), 41);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = DocId::from_index(1);
        let b = DocId::from_index(2);
        assert!(a < b);
        let set: HashSet<DocId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SpanId::from_index(7).to_string(), "SpanId(7)");
    }
}
