//! The arena-allocated corpus store and its navigation views.
//!
//! [`Corpus`] owns four dense arenas (documents, sentences, spans,
//! candidates). Construction is single-threaded (dataset generation);
//! after that the corpus is read-only and freely shared across labeling
//! threads as `&Corpus`.
//!
//! Views ([`CandidateView`], [`SpanView`], [`SentenceView`],
//! [`DocumentView`]) pair a record with the corpus reference and expose
//! the traversals labeling functions use — the Rust equivalent of the
//! paper's ORM-backed `x.chemical.get_word_range()` /
//! `x.parent.words[ce+1:ds]` idioms.

use std::collections::BTreeMap;

use crate::hierarchy::{Candidate, Document, Sentence, Span};
use crate::ids::{CandidateId, DocId, SentenceId, SpanId};
use crate::token::Token;

/// In-memory context-hierarchy store.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    documents: Vec<Document>,
    sentences: Vec<Sentence>,
    spans: Vec<Span>,
    candidates: Vec<Candidate>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Append a document.
    pub fn add_document(&mut self, name: impl Into<String>) -> DocId {
        let id = DocId::from_index(self.documents.len());
        self.documents.push(Document {
            id,
            name: name.into(),
            sentences: Vec::new(),
            meta: BTreeMap::new(),
        });
        id
    }

    /// Attach a metadata key/value pair to a document.
    pub fn set_doc_meta(&mut self, doc: DocId, key: impl Into<String>, value: impl Into<String>) {
        self.documents[doc.index()]
            .meta
            .insert(key.into(), value.into());
    }

    /// Append a sentence to a document. Token offsets must be
    /// monotonically increasing and within the text; this is validated.
    pub fn add_sentence(
        &mut self,
        doc: DocId,
        text: impl Into<String>,
        tokens: Vec<Token>,
    ) -> SentenceId {
        let text = text.into();
        let mut prev_end = 0usize;
        for t in &tokens {
            assert!(
                t.start >= prev_end && t.end >= t.start && t.end <= text.len(),
                "add_sentence: token offsets [{}, {}) invalid for text of {} bytes",
                t.start,
                t.end,
                text.len()
            );
            prev_end = t.end;
        }
        let id = SentenceId::from_index(self.sentences.len());
        let position = self.documents[doc.index()].sentences.len();
        self.sentences.push(Sentence {
            id,
            doc,
            position,
            text,
            tokens,
            spans: Vec::new(),
        });
        self.documents[doc.index()].sentences.push(id);
        id
    }

    /// Tag a token range of a sentence as a span (entity mention).
    pub fn add_span(
        &mut self,
        sentence: SentenceId,
        token_start: usize,
        token_end: usize,
        entity_type: Option<&str>,
    ) -> SpanId {
        let sent = &self.sentences[sentence.index()];
        assert!(
            token_start < token_end && token_end <= sent.tokens.len(),
            "add_span: token range [{token_start}, {token_end}) invalid for sentence with {} tokens",
            sent.tokens.len()
        );
        let id = SpanId::from_index(self.spans.len());
        self.spans.push(Span {
            id,
            sentence,
            token_start,
            token_end,
            entity_type: entity_type.map(str::to_string),
        });
        self.sentences[sentence.index()].spans.push(id);
        id
    }

    /// Create a candidate from argument spans. All spans must belong to
    /// the same sentence (the paper's co-occurrence candidates), and at
    /// least one span is required.
    pub fn add_candidate(&mut self, spans: Vec<SpanId>) -> CandidateId {
        assert!(!spans.is_empty(), "add_candidate: at least one span");
        let sent = self.spans[spans[0].index()].sentence;
        for s in &spans {
            assert_eq!(
                self.spans[s.index()].sentence,
                sent,
                "add_candidate: spans must share a sentence"
            );
        }
        let id = CandidateId::from_index(self.candidates.len());
        self.candidates.push(Candidate { id, spans });
        id
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Number of documents.
    pub fn num_documents(&self) -> usize {
        self.documents.len()
    }

    /// Number of sentences.
    pub fn num_sentences(&self) -> usize {
        self.sentences.len()
    }

    /// Number of spans.
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// View a document.
    pub fn document(&self, id: DocId) -> DocumentView<'_> {
        DocumentView {
            corpus: self,
            doc: &self.documents[id.index()],
        }
    }

    /// View a sentence.
    pub fn sentence(&self, id: SentenceId) -> SentenceView<'_> {
        SentenceView {
            corpus: self,
            sent: &self.sentences[id.index()],
        }
    }

    /// View a span.
    pub fn span(&self, id: SpanId) -> SpanView<'_> {
        SpanView {
            corpus: self,
            span: &self.spans[id.index()],
        }
    }

    /// View a candidate.
    pub fn candidate(&self, id: CandidateId) -> CandidateView<'_> {
        CandidateView {
            corpus: self,
            cand: &self.candidates[id.index()],
        }
    }

    /// Iterate all candidate ids in creation (= matrix-row) order.
    pub fn candidate_ids(&self) -> impl Iterator<Item = CandidateId> + '_ {
        (0..self.candidates.len()).map(CandidateId::from_index)
    }

    /// Iterate all document ids in creation order.
    pub fn document_ids(&self) -> impl Iterator<Item = DocId> + '_ {
        (0..self.documents.len()).map(DocId::from_index)
    }
}

// ----------------------------------------------------------------------
// Views
// ----------------------------------------------------------------------

/// Read-only navigation handle for a document.
#[derive(Clone, Copy)]
pub struct DocumentView<'a> {
    corpus: &'a Corpus,
    doc: &'a Document,
}

impl<'a> DocumentView<'a> {
    /// The document id.
    pub fn id(&self) -> DocId {
        self.doc.id
    }

    /// External document name.
    pub fn name(&self) -> &'a str {
        &self.doc.name
    }

    /// Metadata value for `key`, if set.
    pub fn meta(&self, key: &str) -> Option<&'a str> {
        self.doc.meta.get(key).map(String::as_str)
    }

    /// All metadata pairs in key order.
    pub fn meta_pairs(&self) -> impl Iterator<Item = (&'a str, &'a str)> {
        self.doc.meta.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of sentences.
    pub fn num_sentences(&self) -> usize {
        self.doc.sentences.len()
    }

    /// Iterate sentence views in reading order.
    pub fn sentences(&self) -> impl Iterator<Item = SentenceView<'a>> + '_ {
        let corpus = self.corpus;
        self.doc
            .sentences
            .iter()
            .map(move |id| corpus.sentence(*id))
    }
}

/// Read-only navigation handle for a sentence.
#[derive(Clone, Copy)]
pub struct SentenceView<'a> {
    corpus: &'a Corpus,
    sent: &'a Sentence,
}

impl<'a> SentenceView<'a> {
    /// The sentence id.
    pub fn id(&self) -> SentenceId {
        self.sent.id
    }

    /// Raw text.
    pub fn text(&self) -> &'a str {
        &self.sent.text
    }

    /// All tokens.
    pub fn tokens(&self) -> &'a [Token] {
        &self.sent.tokens
    }

    /// Number of tokens.
    pub fn num_tokens(&self) -> usize {
        self.sent.tokens.len()
    }

    /// Surface form of token `i`.
    pub fn word(&self, i: usize) -> &'a str {
        &self.sent.tokens[i].text
    }

    /// Lemma of token `i`.
    pub fn lemma(&self, i: usize) -> &'a str {
        &self.sent.tokens[i].lemma
    }

    /// All surface forms (allocates the vector, not the strings).
    pub fn words(&self) -> Vec<&'a str> {
        self.sent.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// All lemmas.
    pub fn lemmas(&self) -> Vec<&'a str> {
        self.sent.tokens.iter().map(|t| t.lemma.as_str()).collect()
    }

    /// Position within the parent document (0-based).
    pub fn position(&self) -> usize {
        self.sent.position
    }

    /// Parent document view.
    pub fn doc(&self) -> DocumentView<'a> {
        self.corpus.document(self.sent.doc)
    }

    /// Spans tagged in this sentence.
    pub fn spans(&self) -> impl Iterator<Item = SpanView<'a>> + '_ {
        let corpus = self.corpus;
        self.sent.spans.iter().map(move |id| corpus.span(*id))
    }
}

/// Read-only navigation handle for a span.
#[derive(Clone, Copy)]
pub struct SpanView<'a> {
    corpus: &'a Corpus,
    span: &'a Span,
}

impl<'a> SpanView<'a> {
    /// The span id.
    pub fn id(&self) -> SpanId {
        self.span.id
    }

    /// The covered text, sliced from the sentence.
    pub fn text(&self) -> &'a str {
        let sent = &self.corpus.sentences[self.span.sentence.index()];
        let start = sent.tokens[self.span.token_start].start;
        let end = sent.tokens[self.span.token_end - 1].end;
        &sent.text[start..end]
    }

    /// `(first_token, one_past_last_token)` — the paper's
    /// `get_word_range()`.
    pub fn word_range(&self) -> (usize, usize) {
        (self.span.token_start, self.span.token_end)
    }

    /// Byte range within the sentence text.
    pub fn char_range(&self) -> (usize, usize) {
        let sent = &self.corpus.sentences[self.span.sentence.index()];
        (
            sent.tokens[self.span.token_start].start,
            sent.tokens[self.span.token_end - 1].end,
        )
    }

    /// The entity tag, if any.
    pub fn entity_type(&self) -> Option<&'a str> {
        self.span.entity_type.as_deref()
    }

    /// Parent sentence view.
    pub fn sentence(&self) -> SentenceView<'a> {
        self.corpus.sentence(self.span.sentence)
    }

    /// Surface forms of the covered tokens.
    pub fn words(&self) -> Vec<&'a str> {
        let sent = &self.corpus.sentences[self.span.sentence.index()];
        sent.tokens[self.span.token_start..self.span.token_end]
            .iter()
            .map(|t| t.text.as_str())
            .collect()
    }
}

/// Read-only navigation handle for a candidate — the object labeling
/// functions receive.
#[derive(Clone, Copy)]
pub struct CandidateView<'a> {
    corpus: &'a Corpus,
    cand: &'a Candidate,
}

impl<'a> CandidateView<'a> {
    /// The candidate id (== its label-matrix row).
    pub fn id(&self) -> CandidateId {
        self.cand.id
    }

    /// Number of argument spans.
    pub fn arity(&self) -> usize {
        self.cand.spans.len()
    }

    /// The `k`-th argument span.
    pub fn span(&self, k: usize) -> SpanView<'a> {
        self.corpus.span(self.cand.spans[k])
    }

    /// The shared sentence of all argument spans — the paper's
    /// `x.parent`.
    pub fn sentence(&self) -> SentenceView<'a> {
        self.span(0).sentence()
    }

    /// Parent document.
    pub fn doc(&self) -> DocumentView<'a> {
        self.sentence().doc()
    }

    /// Tokens strictly between spans `a` and `b` (in textual order, so
    /// the call is symmetric); empty when the spans touch or overlap.
    pub fn tokens_between(&self, a: usize, b: usize) -> &'a [Token] {
        let (sa, ea) = self.span(a).word_range();
        let (sb, eb) = self.span(b).word_range();
        let (lo_end, hi_start) = if ea <= sb { (ea, sb) } else { (eb, sa) };
        let sent = self.sentence();
        if lo_end <= hi_start && hi_start <= sent.num_tokens() {
            &sent.tokens()[lo_end..hi_start]
        } else {
            &[]
        }
    }

    /// Surface forms strictly between spans `a` and `b`.
    pub fn words_between(&self, a: usize, b: usize) -> Vec<&'a str> {
        self.tokens_between(a, b)
            .iter()
            .map(|t| t.text.as_str())
            .collect()
    }

    /// Lemmas strictly between spans `a` and `b`.
    pub fn lemmas_between(&self, a: usize, b: usize) -> Vec<&'a str> {
        self.tokens_between(a, b)
            .iter()
            .map(|t| t.lemma.as_str())
            .collect()
    }

    /// True when span `a` appears strictly before span `b` in the
    /// sentence.
    pub fn span_precedes(&self, a: usize, b: usize) -> bool {
        self.span(a).word_range().1 <= self.span(b).word_range().0
    }

    /// Token distance between spans (0 when adjacent or overlapping).
    pub fn token_distance(&self, a: usize, b: usize) -> usize {
        self.tokens_between(a, b).len()
    }

    /// Argument span texts in order, for slot-template filling.
    pub fn span_texts(&self) -> Vec<&'a str> {
        (0..self.arity()).map(|k| self.span(k).text()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the running CDR example from the paper.
    fn cdr_corpus() -> (Corpus, CandidateId, CandidateId) {
        let mut c = Corpus::new();
        let doc = c.add_document("pubmed-1");
        c.set_doc_meta(doc, "source", "synthetic");
        let text = "magnesium causes quadriplegic state after preeclampsia treatment";
        let tokens = simple_tokens(text);
        let sent = c.add_sentence(doc, text, tokens);
        let chem = c.add_span(sent, 0, 1, Some("Chemical"));
        let dis1 = c.add_span(sent, 2, 3, Some("Disease"));
        let dis2 = c.add_span(sent, 5, 6, Some("Disease"));
        let cand1 = c.add_candidate(vec![chem, dis1]);
        let cand2 = c.add_candidate(vec![chem, dis2]);
        (c, cand1, cand2)
    }

    fn simple_tokens(text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for w in text.split(' ') {
            out.push(Token::new(w, start, start + w.len()));
            start += w.len() + 1;
        }
        out
    }

    #[test]
    fn navigation_matches_paper_idioms() {
        let (c, cand1, _) = cdr_corpus();
        let x = c.candidate(cand1);
        // x.chemical.get_word_range()
        assert_eq!(x.span(0).word_range(), (0, 1));
        assert_eq!(x.span(0).text(), "magnesium");
        assert_eq!(x.span(0).entity_type(), Some("Chemical"));
        // x.parent.words[ce+1:ds]
        assert_eq!(x.words_between(0, 1), vec!["causes"]);
        assert!(x.span_precedes(0, 1));
        assert!(!x.span_precedes(1, 0));
        assert_eq!(x.token_distance(0, 1), 1);
        assert_eq!(x.doc().name(), "pubmed-1");
        assert_eq!(x.doc().meta("source"), Some("synthetic"));
        assert_eq!(x.sentence().position(), 0);
    }

    #[test]
    fn words_between_is_symmetric() {
        let (c, _, cand2) = cdr_corpus();
        let x = c.candidate(cand2);
        assert_eq!(x.words_between(0, 1), x.words_between(1, 0));
        assert_eq!(
            x.words_between(0, 1),
            vec!["causes", "quadriplegic", "state", "after"]
        );
    }

    #[test]
    fn span_char_range_slices_text() {
        let (c, cand1, _) = cdr_corpus();
        let x = c.candidate(cand1);
        let (s, e) = x.span(1).char_range();
        assert_eq!(&x.sentence().text()[s..e], "quadriplegic");
    }

    #[test]
    fn counts_and_iteration() {
        let (c, _, _) = cdr_corpus();
        assert_eq!(c.num_documents(), 1);
        assert_eq!(c.num_sentences(), 1);
        assert_eq!(c.num_spans(), 3);
        assert_eq!(c.num_candidates(), 2);
        assert_eq!(c.candidate_ids().count(), 2);
        let doc = c.document(DocId::from_index(0));
        assert_eq!(doc.num_sentences(), 1);
        assert_eq!(doc.sentences().next().unwrap().num_tokens(), 7);
        let sent = c.sentence(SentenceId::from_index(0));
        assert_eq!(sent.spans().count(), 3);
        assert_eq!(sent.words()[1], "causes");
        assert_eq!(sent.lemmas()[1], "causes");
    }

    #[test]
    fn overlapping_spans_have_empty_between() {
        let mut c = Corpus::new();
        let doc = c.add_document("d");
        let text = "a b c";
        let sent = c.add_sentence(doc, text, simple_tokens(text));
        let s1 = c.add_span(sent, 0, 2, None);
        let s2 = c.add_span(sent, 1, 3, None);
        let cand = c.add_candidate(vec![s1, s2]);
        assert!(c.candidate(cand).words_between(0, 1).is_empty());
        assert_eq!(c.candidate(cand).token_distance(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "token range")]
    fn bad_span_range_panics() {
        let mut c = Corpus::new();
        let doc = c.add_document("d");
        let sent = c.add_sentence(doc, "a", simple_tokens("a"));
        let _ = c.add_span(sent, 0, 2, None);
    }

    #[test]
    #[should_panic(expected = "share a sentence")]
    fn cross_sentence_candidate_panics() {
        let mut c = Corpus::new();
        let doc = c.add_document("d");
        let s1 = c.add_sentence(doc, "a", simple_tokens("a"));
        let s2 = c.add_sentence(doc, "b", simple_tokens("b"));
        let sp1 = c.add_span(s1, 0, 1, None);
        let sp2 = c.add_span(s2, 0, 1, None);
        let _ = c.add_candidate(vec![sp1, sp2]);
    }

    #[test]
    #[should_panic(expected = "token offsets")]
    fn bad_token_offsets_panic() {
        let mut c = Corpus::new();
        let doc = c.add_document("d");
        let _ = c.add_sentence(doc, "ab", vec![Token::new("ab", 1, 0)]);
    }
}
