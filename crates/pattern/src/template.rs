//! Slot templates: the paper's `lf_search("{{1}}.*\Wcauses\W.*{{2}}")`.
//!
//! A [`SlotTemplate`] is a pattern containing `{{k}}` placeholders. At
//! labeling time the candidate's span texts are spliced in (escaped so
//! they match literally) and the filled pattern is compiled and matched
//! against the candidate's sentence. Compiled fills are memoized per
//! template instance, because LF suites apply the same template to many
//! candidates whose span texts repeat heavily.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::parser::PatternError;
use crate::vm::Regex;

/// A pattern with `{{0}}`, `{{1}}`, … placeholders for candidate spans.
#[derive(Debug)]
pub struct SlotTemplate {
    /// Literal pattern pieces between placeholders; `pieces.len() ==
    /// slots.len() + 1`.
    pieces: Vec<String>,
    /// Slot index for each gap between pieces.
    slots: Vec<usize>,
    case_insensitive: bool,
    source: String,
    /// Memoized compiled regexes keyed by the joined slot values.
    cache: Mutex<HashMap<Vec<String>, Regex>>,
}

impl SlotTemplate {
    /// Parse a template. Placeholders are `{{k}}` with `k` a decimal slot
    /// index. Returns an error if a placeholder is malformed or the
    /// pattern body (with slots replaced by `x`) fails to compile.
    pub fn new(template: &str, case_insensitive: bool) -> Result<Self, PatternError> {
        let mut pieces = Vec::new();
        let mut slots = Vec::new();
        let mut current = String::new();
        let chars: Vec<char> = template.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '{' && chars.get(i + 1) == Some(&'{') {
                let close = find_close(&chars, i + 2).ok_or_else(|| PatternError {
                    position: i,
                    message: "unterminated {{slot}}".to_string(),
                })?;
                let digits: String = chars[i + 2..close].iter().collect();
                let k: usize = digits.parse().map_err(|_| PatternError {
                    position: i + 2,
                    message: format!("bad slot index '{digits}'"),
                })?;
                pieces.push(std::mem::take(&mut current));
                slots.push(k);
                i = close + 2; // past "}}"
            } else {
                current.push(chars[i]);
                i += 1;
            }
        }
        pieces.push(current);

        // Validate the body compiles with dummy fills.
        let max_slot = slots.iter().copied().max().map_or(0, |m| m + 1);
        let dummy: Vec<&str> = vec!["x"; max_slot];
        let filled = fill_pieces(&pieces, &slots, &dummy).map_err(|e| PatternError {
            position: 0,
            message: format!("template requires slot {e} but validation fill had too few"),
        })?;
        let _probe = if case_insensitive {
            Regex::new_case_insensitive(&filled)?
        } else {
            Regex::new(&filled)?
        };

        Ok(SlotTemplate {
            pieces,
            slots,
            case_insensitive,
            source: template.to_string(),
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The template source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of distinct slot indices referenced (max index + 1).
    pub fn arity(&self) -> usize {
        self.slots.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Fill the slots with literal span texts and test the result against
    /// `text`. Span texts are regex-escaped. Panics if too few `values`
    /// are supplied for the template's arity (a programmer error in LF
    /// construction, caught by [`SlotTemplate::arity`]).
    pub fn is_match(&self, values: &[&str], text: &str) -> bool {
        let key: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        let mut cache = self.cache.lock().expect("template cache poisoned");
        if let Some(re) = cache.get(&key) {
            return re.is_match(text);
        }
        let filled = fill_pieces(&self.pieces, &self.slots, values)
            .unwrap_or_else(|k| panic!("template slot {{{{{k}}}}} missing a value"));
        let re = if self.case_insensitive {
            Regex::new_case_insensitive(&filled)
        } else {
            Regex::new(&filled)
        }
        .expect("validated at construction; escaped fills cannot break compilation");
        let hit = re.is_match(text);
        cache.insert(key, re);
        hit
    }
}

fn find_close(chars: &[char], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < chars.len() {
        if chars[i] == '}' && chars[i + 1] == '}' {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Join pieces and escaped slot values; `Err(k)` if slot `k` has no value.
fn fill_pieces(pieces: &[String], slots: &[usize], values: &[&str]) -> Result<String, usize> {
    let mut out = String::new();
    for (i, piece) in pieces.iter().enumerate() {
        out.push_str(piece);
        if i < slots.len() {
            let k = slots[i];
            let v = values.get(k).ok_or(k)?;
            out.push_str(&crate::escape(v));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lf_search_template() {
        let t = SlotTemplate::new(r"{{0}}.*\Wcauses\W.*{{1}}", false).unwrap();
        assert_eq!(t.arity(), 2);
        assert!(t.is_match(
            &["magnesium", "quadriplegic"],
            "parenteral magnesium administration causes a quadriplegic state",
        ));
        assert!(!t.is_match(
            &["magnesium", "quadriplegic"],
            "quadriplegic after parenteral magnesium",
        ));
    }

    #[test]
    fn slot_values_are_escaped() {
        let t = SlotTemplate::new("{{0}} end", false).unwrap();
        // A span containing metacharacters must match literally.
        assert!(t.is_match(&["a+b"], "xx a+b end"));
        assert!(!t.is_match(&["a+b"], "xx aab end"));
    }

    #[test]
    fn repeated_slot() {
        let t = SlotTemplate::new("{{0}} and {{0}}", false).unwrap();
        assert_eq!(t.arity(), 1);
        assert!(t.is_match(&["x"], "x and x"));
        assert!(!t.is_match(&["x"], "x and y"));
    }

    #[test]
    fn case_insensitive_template() {
        let t = SlotTemplate::new("{{0}} causes", true).unwrap();
        assert!(t.is_match(&["Aspirin"], "ASPIRIN CAUSES pain"));
    }

    #[test]
    fn template_errors() {
        assert!(SlotTemplate::new("{{", false).is_err());
        assert!(SlotTemplate::new("{{x}}", false).is_err());
        assert!(SlotTemplate::new("{{0}}(", false).is_err());
    }

    #[test]
    fn zero_slot_template_is_plain_pattern() {
        let t = SlotTemplate::new("plain", false).unwrap();
        assert_eq!(t.arity(), 0);
        assert!(t.is_match(&[], "a plain sentence"));
    }

    #[test]
    #[should_panic(expected = "missing a value")]
    fn too_few_values_panics() {
        let t = SlotTemplate::new("{{1}}", false).unwrap();
        let _ = t.is_match(&["only-zero"], "text");
    }

    #[test]
    fn cache_returns_consistent_answers() {
        let t = SlotTemplate::new("{{0}} causes {{1}}", false).unwrap();
        for _ in 0..3 {
            assert!(t.is_match(&["a", "b"], "a causes b"));
            assert!(!t.is_match(&["a", "c"], "a causes b"));
        }
    }
}
