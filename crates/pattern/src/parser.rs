//! Recursive-descent parser producing the pattern AST.
//!
//! Grammar (standard precedence, loosest to tightest):
//!
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom ('*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}')?
//! atom        := literal | '.' | class | group | anchor | escape
//! ```

use std::fmt;

/// Error produced when a pattern fails to parse or compile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternError {
    /// Char offset into the pattern where the problem was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for PatternError {}

/// Maximum total quantifier expansion (`{m,n}` is unrolled at compile
/// time); guards against pathological patterns exploding the NFA.
pub(crate) const MAX_REPEAT: u32 = 256;

/// A set of character ranges, possibly negated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CharClass {
    pub negated: bool,
    /// Inclusive ranges, not necessarily sorted or disjoint.
    pub ranges: Vec<(char, char)>,
}

impl CharClass {
    pub(crate) fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }

    fn digit() -> Self {
        CharClass {
            negated: false,
            ranges: vec![('0', '9')],
        }
    }

    fn word() -> Self {
        CharClass {
            negated: false,
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
        }
    }

    fn space() -> Self {
        CharClass {
            negated: false,
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\x0b', '\x0c'),
            ],
        }
    }

    fn negate(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// Fold every range to include both cases (ASCII letters only, which
    /// covers the corpora this workspace generates).
    pub(crate) fn case_fold(&mut self) {
        let mut extra = Vec::new();
        for &(lo, hi) in &self.ranges {
            if lo.is_ascii_uppercase() || hi.is_ascii_uppercase() {
                extra.push((
                    lo.to_ascii_lowercase().max('a'),
                    hi.to_ascii_lowercase().min('z'),
                ));
            }
            if lo.is_ascii_lowercase() || hi.is_ascii_lowercase() {
                extra.push((
                    lo.to_ascii_uppercase().max('A'),
                    hi.to_ascii_uppercase().min('Z'),
                ));
            }
        }
        self.ranges.extend(extra);
    }
}

/// Is `c` a "word" character for `\b` purposes?
#[inline]
pub(crate) fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Pattern abstract syntax tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any char except `\n`.
    AnyChar,
    /// A character class.
    Class(CharClass),
    /// A sequence.
    Concat(Vec<Ast>),
    /// `a|b|c`.
    Alternate(Vec<Ast>),
    /// `node{min,max}`; `max == None` means unbounded.
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// `^`.
    AnchorStart,
    /// `$`.
    AnchorEnd,
    /// `\b`.
    WordBoundary,
    /// `\B`.
    NotWordBoundary,
}

pub(crate) fn parse(pattern: &str) -> Result<Ast, PatternError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected ')'"));
    }
    Ok(ast)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> PatternError {
        PatternError {
            position: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                // Only treat as a quantifier if it parses as {m}, {m,},
                // or {m,n}; otherwise '{' is a literal (Python behaviour).
                if let Some((min, max, consumed)) = self.try_parse_counted() {
                    self.pos += consumed;
                    (min, max)
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(
            atom,
            Ast::AnchorStart | Ast::AnchorEnd | Ast::WordBoundary | Ast::NotWordBoundary
        ) {
            return Err(self.err("quantifier after anchor/assertion"));
        }
        if let Some(mx) = max {
            if mx < min {
                return Err(self.err("bad repeat range: max < min"));
            }
            if mx > MAX_REPEAT {
                return Err(self.err("repeat bound too large"));
            }
        } else if min > MAX_REPEAT {
            return Err(self.err("repeat bound too large"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Attempt to read `{m}`, `{m,}`, or `{m,n}` starting at the current
    /// `{`; returns `(min, max, chars_consumed)` without consuming on
    /// failure.
    fn try_parse_counted(&self) -> Option<(u32, Option<u32>, usize)> {
        let rest = &self.chars[self.pos..];
        debug_assert_eq!(rest.first(), Some(&'{'));
        let mut i = 1;
        let mut min_digits = String::new();
        while i < rest.len() && rest[i].is_ascii_digit() {
            min_digits.push(rest[i]);
            i += 1;
        }
        if min_digits.is_empty() {
            return None;
        }
        let min: u32 = min_digits.parse().ok()?;
        match rest.get(i) {
            Some('}') => Some((min, Some(min), i + 1)),
            Some(',') => {
                i += 1;
                let mut max_digits = String::new();
                while i < rest.len() && rest[i].is_ascii_digit() {
                    max_digits.push(rest[i]);
                    i += 1;
                }
                if rest.get(i) != Some(&'}') {
                    return None;
                }
                let max = if max_digits.is_empty() {
                    None
                } else {
                    Some(max_digits.parse().ok()?)
                };
                Some((min, max, i + 1))
            }
            _ => None,
        }
    }

    fn atom(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            Some('(') => {
                // Support (?:...) as an explicit non-capturing group; all
                // groups are non-capturing in this engine.
                if self.peek() == Some('?') {
                    let save = self.pos;
                    self.bump();
                    if self.peek() == Some(':') {
                        self.bump();
                    } else {
                        self.pos = save;
                        return Err(self.err("unsupported group flag (only (?:...) allowed)"));
                    }
                }
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => self.escape(false),
            Some(c @ ('*' | '+' | '?')) => Err(PatternError {
                position: self.pos - 1,
                message: format!("dangling quantifier '{c}'"),
            }),
            Some(c) => Ok(Ast::Literal(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    /// Parse one escape sequence; `in_class` restricts which escapes are
    /// legal (no `\b` inside classes).
    fn escape(&mut self, in_class: bool) -> Result<Ast, PatternError> {
        let c = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
        let ast = match c {
            'd' => Ast::Class(CharClass::digit()),
            'D' => Ast::Class(CharClass::digit().negate()),
            'w' => Ast::Class(CharClass::word()),
            'W' => Ast::Class(CharClass::word().negate()),
            's' => Ast::Class(CharClass::space()),
            'S' => Ast::Class(CharClass::space().negate()),
            'b' if !in_class => Ast::WordBoundary,
            'B' if !in_class => Ast::NotWordBoundary,
            't' => Ast::Literal('\t'),
            'n' => Ast::Literal('\n'),
            'r' => Ast::Literal('\r'),
            '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$'
            | '-' | '/' | '\'' | '"' | ' ' => Ast::Literal(c),
            other => {
                return Err(PatternError {
                    position: self.pos - 1,
                    message: format!("unknown escape '\\{other}'"),
                })
            }
        };
        Ok(ast)
    }

    fn class(&mut self) -> Result<Ast, PatternError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = self
                .bump()
                .ok_or_else(|| self.err("unclosed character class"))?;
            match c {
                ']' if !first => break,
                '\\' => match self.escape(true)? {
                    Ast::Literal(l) => ranges.push((l, l)),
                    Ast::Class(inner) => {
                        if inner.negated {
                            return Err(self.err("negated escape inside class unsupported"));
                        }
                        ranges.extend(inner.ranges);
                    }
                    _ => return Err(self.err("bad escape inside class")),
                },
                lo => {
                    // A range `lo-hi` if followed by '-' and a non-']' char.
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&h| h != ']')
                    {
                        self.bump(); // '-'
                        let hi = match self.bump().expect("checked above") {
                            '\\' => match self.escape(true)? {
                                Ast::Literal(l) => l,
                                _ => return Err(self.err("class escape cannot end a range")),
                            },
                            h => h,
                        };
                        if hi < lo {
                            return Err(self.err("inverted class range"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
            first = false;
        }
        if ranges.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class(CharClass { negated, ranges }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_alternation_precedence() {
        // a|bc == Alternate(a, Concat(b, c))
        let ast = parse("a|bc").unwrap();
        match ast {
            Ast::Alternate(branches) => {
                assert_eq!(branches[0], Ast::Literal('a'));
                assert!(matches!(branches[1], Ast::Concat(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_counted_repeats() {
        let ast = parse("a{2,5}").unwrap();
        assert_eq!(
            ast,
            Ast::Repeat {
                node: Box::new(Ast::Literal('a')),
                min: 2,
                max: Some(5)
            }
        );
        let ast = parse("a{3,}").unwrap();
        assert!(matches!(
            ast,
            Ast::Repeat {
                min: 3,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn brace_without_digits_is_literal() {
        // Python semantics: "a{x}" has literal braces.
        let ast = parse("a{x}").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('x'),
                Ast::Literal('}'),
            ])
        );
    }

    #[test]
    fn class_ranges_and_negation() {
        let ast = parse("[a-c^]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(!c.negated);
                assert!(c.matches('b'));
                assert!(c.matches('^'));
                assert!(!c.matches('d'));
            }
            other => panic!("unexpected {other:?}"),
        }
        let ast = parse("[^0-9]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.negated);
                assert!(c.matches('x'));
                assert!(!c.matches('5'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leading_close_bracket_is_literal_in_class() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.matches(']'));
                assert!(c.matches('a'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        assert!(parse("a(b").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("*a").is_err());
        assert!(parse(r"\q").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a)b").is_err());
    }

    #[test]
    fn escapes_in_and_out_of_class() {
        assert!(parse(r"\d\w\s\b\B").is_ok());
        assert!(parse(r"[\d\w]").is_ok());
        // \b inside a class is rejected (we don't support backspace).
        assert!(parse(r"[\b]").is_err());
    }

    #[test]
    fn repeat_bound_guard() {
        assert!(parse("a{1,300}").is_err());
        assert!(parse(&format!("a{{1,{MAX_REPEAT}}}")).is_ok());
    }

    #[test]
    fn word_class_membership() {
        assert!(is_word_char('a'));
        assert!(is_word_char('_'));
        assert!(is_word_char('7'));
        assert!(!is_word_char(' '));
        assert!(!is_word_char('-'));
    }
}
