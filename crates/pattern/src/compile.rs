//! Thompson-NFA compilation of the pattern AST.
//!
//! Each AST node compiles to a fragment of instructions with a single
//! entry point; fragments are stitched together with `Split`/`Jmp`.
//! Counted repeats are unrolled (bounded by `MAX_REPEAT`), which keeps
//! the VM trivial at the cost of program size — fine for LF patterns.

use crate::parser::{Ast, CharClass};

/// One NFA instruction.
#[derive(Clone, Debug)]
pub(crate) enum Inst {
    /// Consume a specific char.
    Char(char),
    /// Consume any char except `\n`.
    AnyChar,
    /// Consume a char matching the class.
    Class(CharClass),
    /// Try `a` first, then `b` (order irrelevant for is_match/longest).
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Zero-width: start of input.
    AssertStart,
    /// Zero-width: end of input.
    AssertEnd,
    /// Zero-width: word boundary.
    AssertWordBoundary,
    /// Zero-width: not a word boundary.
    AssertNotWordBoundary,
    /// Accept.
    Match,
}

/// A compiled program plus flags.
#[derive(Clone, Debug)]
pub(crate) struct Program {
    pub insts: Vec<Inst>,
    pub case_insensitive: bool,
}

pub(crate) fn compile(ast: &Ast, case_insensitive: bool) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        ci: case_insensitive,
    };
    c.emit_node(ast);
    c.insts.push(Inst::Match);
    Program {
        insts: c.insts,
        case_insensitive,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    ci: bool,
}

impl Compiler {
    fn emit_node(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                let c = if self.ci { c.to_ascii_lowercase() } else { *c };
                self.insts.push(Inst::Char(c));
            }
            Ast::AnyChar => self.insts.push(Inst::AnyChar),
            Ast::Class(cls) => {
                let mut cls = cls.clone();
                if self.ci {
                    cls.case_fold();
                }
                self.insts.push(Inst::Class(cls));
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit_node(p);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
            Ast::AnchorStart => self.insts.push(Inst::AssertStart),
            Ast::AnchorEnd => self.insts.push(Inst::AssertEnd),
            Ast::WordBoundary => self.insts.push(Inst::AssertWordBoundary),
            Ast::NotWordBoundary => self.insts.push(Inst::AssertNotWordBoundary),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // For branches [b0, b1, ..., bk]:
        //   split L0, Lnext ; b0 ; jmp END ; split L1, ... ; bk ; END
        let mut jmp_ends = Vec::new();
        for (i, b) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(0, 0)); // patched below
                let branch_start = self.insts.len();
                self.emit_node(b);
                jmp_ends.push(self.insts.len());
                self.insts.push(Inst::Jmp(0)); // patched below
                let next = self.insts.len();
                self.insts[split_at] = Inst::Split(branch_start, next);
            } else {
                self.emit_node(b);
            }
        }
        let end = self.insts.len();
        for j in jmp_ends {
            self.insts[j] = Inst::Jmp(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Required copies.
        for _ in 0..min {
            self.emit_node(node);
        }
        match max {
            None => {
                // Star over one more copy: L: split(body, end); body; jmp L
                let l = self.insts.len();
                self.insts.push(Inst::Split(0, 0));
                let body = self.insts.len();
                self.emit_node(node);
                self.insts.push(Inst::Jmp(l));
                let end = self.insts.len();
                self.insts[l] = Inst::Split(body, end);
            }
            Some(mx) => {
                // (mx - min) optional copies, each its own split to END.
                let mut splits = Vec::new();
                for _ in min..mx {
                    let s = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    let body = self.insts.len();
                    self.emit_node(node);
                    splits.push((s, body));
                }
                let end = self.insts.len();
                for (s, body) in splits {
                    self.insts[s] = Inst::Split(body, end);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap(), false)
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        assert_eq!(p.insts.len(), 3); // a, b, Match
        assert!(matches!(p.insts[2], Inst::Match));
    }

    #[test]
    fn star_loops_back() {
        let p = prog("a*");
        // split, char a, jmp, match
        assert_eq!(p.insts.len(), 4);
        match (&p.insts[0], &p.insts[2]) {
            (Inst::Split(body, end), Inst::Jmp(back)) => {
                assert_eq!(*body, 1);
                assert_eq!(*end, 3);
                assert_eq!(*back, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counted_repeat_unrolls() {
        let p = prog("a{2,4}");
        // 2 required chars + 2 optional (split+char each) + match = 2+4+1
        assert_eq!(p.insts.len(), 7);
    }

    #[test]
    fn case_insensitive_folds_literals() {
        let p = compile(&parse("AbC").unwrap(), true);
        let chars: Vec<char> = p
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Char(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(chars, vec!['a', 'b', 'c']);
    }
}
