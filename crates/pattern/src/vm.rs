//! Pike-style NFA virtual machine.
//!
//! The VM executes the compiled [`Program`](crate::compile::Program) over
//! a haystack in `O(len · insts)` worst case: a thread set (deduplicated
//! by generation stamps) advances one input char at a time, following
//! epsilon transitions (splits, jumps, zero-width assertions) eagerly.
//!
//! Two entry points:
//! * [`Regex::is_match`] — unanchored containment test (new threads are
//!   injected at every position).
//! * [`Regex::find`] — leftmost-longest match, returned as byte offsets
//!   aligned to char boundaries so callers can slice the haystack.

use crate::compile::{compile, Inst, Program};
use crate::parser::{is_word_char, parse, PatternError};

/// A successful match: byte offsets into the searched text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the first matched char.
    pub start: usize,
    /// Byte offset one past the last matched char.
    pub end: usize,
}

impl Match {
    /// Slice the matched region out of the original text.
    pub fn as_str<'t>(&self, text: &'t str) -> &'t str {
        &text[self.start..self.end]
    }

    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a zero-width match.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A compiled pattern.
///
/// Construction parses and compiles once; matching never allocates more
/// than the two thread lists (reused across steps within one call).
#[derive(Clone, Debug)]
pub struct Regex {
    program: Program,
    pattern: String,
}

impl Regex {
    /// Compile a case-sensitive pattern.
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        let ast = parse(pattern)?;
        Ok(Regex {
            program: compile(&ast, false),
            pattern: pattern.to_string(),
        })
    }

    /// Compile a case-insensitive pattern (ASCII folding, which covers
    /// the corpora generated in this workspace).
    pub fn new_case_insensitive(pattern: &str) -> Result<Self, PatternError> {
        let ast = parse(pattern)?;
        Ok(Regex {
            program: compile(&ast, true),
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of compiled NFA instructions (diagnostics / benches).
    pub fn num_insts(&self) -> usize {
        self.program.insts.len()
    }

    fn fold(&self, c: char) -> char {
        if self.program.case_insensitive {
            c.to_ascii_lowercase()
        } else {
            c
        }
    }

    /// Unanchored containment test.
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().map(|c| self.fold(c)).collect();
        let mut vm = Vm::new(&self.program.insts);
        // Threads are injected at every start position, so reaching Match
        // anywhere means some substring matches.
        let n = chars.len();
        let mut current: Vec<usize> = Vec::new();
        let mut next: Vec<usize> = Vec::new();
        for pos in 0..=n {
            vm.new_generation();
            // Carry over surviving threads and inject a fresh start.
            for &pc in &current {
                if vm.add_thread(pc, pos, &chars) {
                    return true;
                }
            }
            if vm.add_thread(0, pos, &chars) {
                return true;
            }
            if pos == n {
                break;
            }
            let c = chars[pos];
            next.clear();
            for &pc in &vm.closure {
                match &self.program.insts[pc] {
                    Inst::Char(want) if *want == c => next.push(pc + 1),
                    Inst::AnyChar if c != '\n' => next.push(pc + 1),
                    Inst::Class(cls) if cls.matches(c) => next.push(pc + 1),
                    _ => {}
                }
            }
            std::mem::swap(&mut current, &mut next);
        }
        false
    }

    /// Leftmost-longest match as byte offsets, or `None`.
    pub fn find(&self, text: &str) -> Option<Match> {
        let mut byte_of_char: Vec<usize> = Vec::with_capacity(text.len() + 1);
        let mut chars: Vec<char> = Vec::with_capacity(text.len());
        for (b, c) in text.char_indices() {
            byte_of_char.push(b);
            chars.push(self.fold(c));
        }
        byte_of_char.push(text.len());
        for start in 0..=chars.len() {
            if let Some(end) = self.anchored_longest_end(&chars, start) {
                return Some(Match {
                    start: byte_of_char[start],
                    end: byte_of_char[end],
                });
            }
        }
        None
    }

    /// All non-overlapping leftmost-longest matches, scanning left to
    /// right. Zero-width matches advance by one char to guarantee
    /// termination.
    pub fn find_all(&self, text: &str) -> Vec<Match> {
        let mut out = Vec::new();
        let mut offset = 0;
        while offset <= text.len() {
            let Some(m) = self.find(&text[offset..]) else {
                break;
            };
            let abs = Match {
                start: offset + m.start,
                end: offset + m.end,
            };
            let next = if abs.is_empty() {
                // Skip one char forward past a zero-width match.
                match text[abs.end..].chars().next() {
                    Some(c) => abs.end + c.len_utf8(),
                    None => break,
                }
            } else {
                abs.end
            };
            out.push(abs);
            offset = next;
        }
        out
    }

    /// Longest end position (char index) of a match anchored at `start`.
    fn anchored_longest_end(&self, chars: &[char], start: usize) -> Option<usize> {
        let mut vm = Vm::new(&self.program.insts);
        let n = chars.len();
        let mut best: Option<usize> = None;
        vm.new_generation();
        if vm.add_thread(0, start, chars) {
            best = Some(start);
        }
        let mut current = vm.closure.clone();
        for pos in start..n {
            if current.is_empty() {
                break;
            }
            let c = chars[pos];
            let mut advanced: Vec<usize> = Vec::new();
            for &pc in &current {
                match &self.program.insts[pc] {
                    Inst::Char(want) if *want == c => advanced.push(pc + 1),
                    Inst::AnyChar if c != '\n' => advanced.push(pc + 1),
                    Inst::Class(cls) if cls.matches(c) => advanced.push(pc + 1),
                    _ => {}
                }
            }
            vm.new_generation();
            let mut matched = false;
            for pc in advanced {
                matched |= vm.add_thread(pc, pos + 1, chars);
            }
            if matched {
                best = Some(pos + 1);
            }
            current.clone_from(&vm.closure);
        }
        best
    }
}

/// Thread-set bookkeeping: epsilon closure with generation-stamped
/// deduplication.
struct Vm<'p> {
    insts: &'p [Inst],
    seen: Vec<u32>,
    generation: u32,
    closure: Vec<usize>,
}

impl<'p> Vm<'p> {
    fn new(insts: &'p [Inst]) -> Self {
        Vm {
            insts,
            seen: vec![0; insts.len()],
            generation: 0,
            closure: Vec::new(),
        }
    }

    fn new_generation(&mut self) {
        self.generation += 1;
        self.closure.clear();
    }

    /// Add `pc` and its epsilon closure at input position `pos`.
    /// Returns true if the closure contains `Match`.
    fn add_thread(&mut self, pc: usize, pos: usize, chars: &[char]) -> bool {
        if self.seen[pc] == self.generation {
            return false;
        }
        self.seen[pc] = self.generation;
        match &self.insts[pc] {
            Inst::Jmp(t) => self.add_thread(*t, pos, chars),
            Inst::Split(a, b) => {
                let (a, b) = (*a, *b);
                let ma = self.add_thread(a, pos, chars);
                let mb = self.add_thread(b, pos, chars);
                ma || mb
            }
            Inst::AssertStart => pos == 0 && self.add_thread(pc + 1, pos, chars),
            Inst::AssertEnd => pos == chars.len() && self.add_thread(pc + 1, pos, chars),
            Inst::AssertWordBoundary => {
                at_word_boundary(chars, pos) && self.add_thread(pc + 1, pos, chars)
            }
            Inst::AssertNotWordBoundary => {
                !at_word_boundary(chars, pos) && self.add_thread(pc + 1, pos, chars)
            }
            Inst::Match => true,
            Inst::Char(_) | Inst::AnyChar | Inst::Class(_) => {
                self.closure.push(pc);
                false
            }
        }
    }
}

fn at_word_boundary(chars: &[char], pos: usize) -> bool {
    let before = pos.checked_sub(1).map(|i| is_word_char(chars[i]));
    let after = chars.get(pos).map(|&c| is_word_char(c));
    matches!(
        (before, after),
        (None | Some(false), Some(true)) | (Some(true), None | Some(false))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn basic_matching() {
        assert!(re("abc").is_match("xxabcxx"));
        assert!(!re("abc").is_match("ab c"));
        assert!(re("a.c").is_match("a!c"));
        assert!(!re("a.c").is_match("a\nc"));
    }

    #[test]
    fn quantifiers() {
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbbc"));
        assert!(re("ab+c").is_match("abc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
        assert!(re("a{2,3}").is_match("aa"));
        assert!(re("^a{2,3}$").is_match("aaa"));
        assert!(!re("^a{2,3}$").is_match("aaaa"));
        assert!(!re("^a{2,3}$").is_match("a"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("(cause|induce)(s|d)?");
        assert!(r.is_match("caused"));
        assert!(r.is_match("induces"));
        assert!(r.is_match("cause"));
        assert!(!r.is_match("cuase"));
        assert!(re("(?:ab)+").is_match("abab"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_match("abc"));
        assert!(!re("^abc$").is_match("xabc"));
        assert!(!re("^abc$").is_match("abcx"));
        assert!(re("^").is_match("anything"));
        assert!(re("$").is_match(""));
    }

    #[test]
    fn word_boundaries() {
        let r = re(r"\bcat\b");
        assert!(r.is_match("a cat sat"));
        assert!(r.is_match("cat"));
        assert!(!r.is_match("concatenate"));
        assert!(!r.is_match("cats"));
        let nb = re(r"\Bcat");
        assert!(nb.is_match("concat"));
        assert!(!nb.is_match("a cat"));
    }

    #[test]
    fn classes() {
        assert!(re(r"\d{3}").is_match("abc123"));
        assert!(!re(r"^\d+$").is_match("12a"));
        assert!(re(r"[aeiou]+").is_match("xyzu"));
        assert!(re(r"[^aeiou ]+").is_match("rhythm"));
        assert!(re(r"[a-fA-F0-9]+").is_match("DEADbeef"));
        assert!(re(r"\w+@\w+\.com").is_match("mail me at bob@example.com ok"));
    }

    #[test]
    fn case_insensitive() {
        let r = Regex::new_case_insensitive("CaUsEs").unwrap();
        assert!(r.is_match("X CAUSES Y"));
        assert!(r.is_match("x causes y"));
        let r = Regex::new_case_insensitive("[a-z]+!").unwrap();
        assert!(r.is_match("HELLO!"));
    }

    #[test]
    fn find_leftmost_longest() {
        let r = re("a+");
        let m = r.find("xxaaayaa").unwrap();
        assert_eq!((m.start, m.end), (2, 5));
        assert_eq!(m.as_str("xxaaayaa"), "aaa");

        // Leftmost beats longest-overall.
        let r = re("a|aa");
        let m = r.find("baa").unwrap();
        assert_eq!((m.start, m.end), (1, 3), "longest at the leftmost start");
    }

    #[test]
    fn find_none() {
        assert!(re("zz").find("abc").is_none());
    }

    #[test]
    fn find_all_non_overlapping() {
        let r = re(r"\d+");
        let ms = r.find_all("a1b22c333");
        let spans: Vec<(usize, usize)> = ms.iter().map(|m| (m.start, m.end)).collect();
        assert_eq!(spans, vec![(1, 2), (3, 5), (6, 9)]);
    }

    #[test]
    fn find_all_zero_width_terminates() {
        let r = re("x*");
        let ms = r.find_all("ab");
        assert!(!ms.is_empty());
        assert!(ms.len() <= 3);
    }

    #[test]
    fn unicode_haystack_byte_offsets() {
        let r = re("ß");
        let text = "straße here";
        let m = r.find(text).unwrap();
        assert_eq!(m.as_str(text), "ß");
    }

    #[test]
    fn paper_example_pattern() {
        // The paper's LF_causes declarative form:
        // "{{1}}.*\Wcauses\W.*{{2}}" with slots pre-substituted.
        let r = re(r"magnesium.*\Wcauses\W.*quadriplegic");
        assert!(r.is_match("parenteral magnesium administration causes a quadriplegic state"));
        assert!(!r.is_match("quadriplegic after magnesium"));
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a*)* style blowup killers for backtrackers; the Pike VM must
        // stay fast and terminate.
        let r = re("(a|a)*b");
        let hay = "a".repeat(2000);
        assert!(!r.is_match(&hay));
        let mut hay2 = hay.clone();
        hay2.push('b');
        assert!(r.is_match(&hay2));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(re("").is_match(""));
        assert!(re("").is_match("abc"));
        let m = re("").find("abc").unwrap();
        assert_eq!((m.start, m.end), (0, 0));
    }
}
