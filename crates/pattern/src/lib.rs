//! # snorkel-pattern
//!
//! A small, self-contained pattern/regex engine for labeling functions.
//!
//! The original Snorkel expresses declarative pattern-based labeling
//! functions with Python regular expressions, e.g. the paper's
//! `lf_search("{{1}}.*\Wcauses\W.*{{2}}")`. This crate is the Rust
//! substitute: a from-scratch regex engine covering the constructs weak
//! supervision patterns actually use, plus the `{{k}}` slot-template layer
//! ([`SlotTemplate`]) that splices candidate span text into a pattern.
//!
//! ## Supported syntax
//!
//! * literals, `.` (any char except `\n`)
//! * classes `[abc]`, ranges `[a-z]`, negation `[^…]`
//! * escapes `\d \D \w \W \s \S` (usable inside classes too), `\b \B`
//!   word boundaries, `\t \n \r`, and escaped metacharacters
//! * quantifiers `*` `+` `?` `{m}` `{m,}` `{m,n}` (NFA-based, so
//!   greediness cannot cause exponential blowup)
//! * alternation `|`, grouping `( … )` (non-capturing)
//! * anchors `^` `$`
//! * case-insensitive compilation via [`Regex::new_case_insensitive`]
//!
//! The engine is a Thompson-NFA construction executed by a Pike-style
//! virtual machine: worst-case `O(len · states)` per search, no
//! catastrophic backtracking, no `unsafe`.
//!
//! ```
//! use snorkel_pattern::Regex;
//! let re = Regex::new(r"\bcauses?\b").unwrap();
//! assert!(re.is_match("magnesium causes weakness"));
//! assert!(!re.is_match("the causal story"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod parser;
mod template;
mod vm;

pub use parser::PatternError;
pub use template::SlotTemplate;
pub use vm::{Match, Regex};

/// Escape a literal string so it matches itself when embedded in a
/// pattern (used by [`SlotTemplate`] to splice span text).
///
/// ```
/// use snorkel_pattern::{escape, Regex};
/// let re = Regex::new(&escape("a+b (x)")).unwrap();
/// assert!(re.is_match("say a+b (x) now"));
/// ```
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        if matches!(
            c,
            '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$'
        ) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_metacharacters() {
        let nasty = r"a.b*c+d?e(f)g[h]i{j}k|l^m$n\o";
        let re = Regex::new(&escape(nasty)).unwrap();
        assert!(re.is_match(&format!("xx{nasty}yy")));
        assert!(!re.is_match("axbxc"));
    }
}
