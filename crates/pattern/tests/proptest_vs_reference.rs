//! Property tests: the Pike-VM engine must agree with a naive
//! backtracking reference matcher on a restricted pattern grammar, for
//! arbitrary haystacks.

use proptest::prelude::*;
use snorkel_pattern::Regex;

/// A deliberately simple AST mirroring the subset of syntax we generate;
/// matched by brute-force backtracking below.
#[derive(Clone, Debug)]
enum Node {
    Lit(char),
    Any,
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
    Concat(Vec<Node>),
    Alt(Box<Node>, Box<Node>),
}

impl Node {
    fn to_pattern(&self) -> String {
        match self {
            Node::Lit(c) => c.to_string(),
            Node::Any => ".".to_string(),
            Node::Star(n) => format!("(?:{})*", n.to_pattern()),
            Node::Plus(n) => format!("(?:{})+", n.to_pattern()),
            Node::Opt(n) => format!("(?:{})?", n.to_pattern()),
            Node::Concat(ns) => ns.iter().map(Node::to_pattern).collect(),
            Node::Alt(a, b) => format!("(?:{}|{})", a.to_pattern(), b.to_pattern()),
        }
    }

    /// All positions reachable by matching this node starting at `pos`.
    fn match_ends(&self, hay: &[char], pos: usize, depth: usize) -> Vec<usize> {
        if depth > 24 {
            return Vec::new(); // guard pathological recursion
        }
        match self {
            Node::Lit(c) => {
                if hay.get(pos) == Some(c) {
                    vec![pos + 1]
                } else {
                    Vec::new()
                }
            }
            Node::Any => {
                if pos < hay.len() && hay[pos] != '\n' {
                    vec![pos + 1]
                } else {
                    Vec::new()
                }
            }
            Node::Star(n) => {
                let mut ends = vec![pos];
                let mut frontier = vec![pos];
                while let Some(p) = frontier.pop() {
                    for e in n.match_ends(hay, p, depth + 1) {
                        if e > p && !ends.contains(&e) {
                            ends.push(e);
                            frontier.push(e);
                        }
                    }
                }
                ends
            }
            Node::Plus(n) => {
                let star = Node::Star(n.clone());
                let mut out = Vec::new();
                for first in n.match_ends(hay, pos, depth + 1) {
                    for e in star.match_ends(hay, first, depth + 1) {
                        if !out.contains(&e) {
                            out.push(e);
                        }
                    }
                }
                out
            }
            Node::Opt(n) => {
                let mut out = vec![pos];
                for e in n.match_ends(hay, pos, depth + 1) {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
                out
            }
            Node::Concat(ns) => {
                let mut positions = vec![pos];
                for n in ns {
                    let mut next = Vec::new();
                    for &p in &positions {
                        for e in n.match_ends(hay, p, depth + 1) {
                            if !next.contains(&e) {
                                next.push(e);
                            }
                        }
                    }
                    positions = next;
                    if positions.is_empty() {
                        break;
                    }
                }
                positions
            }
            Node::Alt(a, b) => {
                let mut out = a.match_ends(hay, pos, depth + 1);
                for e in b.match_ends(hay, pos, depth + 1) {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
                out
            }
        }
    }

    /// Unanchored containment by brute force.
    fn is_match(&self, hay: &str) -> bool {
        let chars: Vec<char> = hay.chars().collect();
        (0..=chars.len()).any(|s| !self.match_ends(&chars, s, 0).is_empty())
    }
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        prop::char::range('a', 'd').prop_map(Node::Lit),
        Just(Node::Any),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|n| Node::Star(Box::new(n))),
            inner.clone().prop_map(|n| Node::Plus(Box::new(n))),
            inner.clone().prop_map(|n| Node::Opt(Box::new(n))),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Node::Concat),
            (inner.clone(), inner).prop_map(|(a, b)| Node::Alt(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_agrees_with_backtracking_reference(
        node in node_strategy(),
        hay in "[a-e]{0,12}",
    ) {
        let pattern = node.to_pattern();
        let re = Regex::new(&pattern).expect("generated pattern must compile");
        prop_assert_eq!(
            re.is_match(&hay),
            node.is_match(&hay),
            "pattern {} on {:?}", pattern, hay
        );
    }

    #[test]
    fn escape_always_round_trips(text in "\\PC{0,24}") {
        let re = Regex::new(&snorkel_pattern::escape(&text)).expect("escaped text compiles");
        prop_assert!(re.is_match(&text));
    }

    #[test]
    fn find_returns_valid_char_aligned_spans(
        node in node_strategy(),
        hay in "[a-e \\n]{0,16}",
    ) {
        let re = Regex::new(&node.to_pattern()).expect("compiles");
        if let Some(m) = re.find(&hay) {
            prop_assert!(m.start <= m.end && m.end <= hay.len());
            prop_assert!(hay.is_char_boundary(m.start) && hay.is_char_boundary(m.end));
            // The matched slice itself must be a match.
            prop_assert!(re.is_match(m.as_str(&hay)) || m.is_empty());
        }
    }

    #[test]
    fn is_match_consistent_with_find(
        node in node_strategy(),
        hay in "[a-e]{0,12}",
    ) {
        let re = Regex::new(&node.to_pattern()).expect("compiles");
        prop_assert_eq!(re.is_match(&hay), re.find(&hay).is_some());
    }
}
