//! Property tests for the LF executor: output equals the brute-force
//! per-candidate application, regardless of thread count, row subset, or
//! suite composition.

use proptest::prelude::*;
use snorkel_lf::{lf, BoxedLf, LfExecutor};
use snorkel_matrix::LabelMatrixBuilder;
use snorkel_nlp::tokenize;

/// Deterministic corpus of `n` two-span candidates with varied text.
fn build_corpus(n: usize) -> (snorkel_context::Corpus, Vec<snorkel_context::CandidateId>) {
    let mut corpus = snorkel_context::Corpus::new();
    let doc = corpus.add_document("d");
    let verbs = ["causes", "treats", "meets", "likes", "blocks"];
    let mut ids = Vec::new();
    for i in 0..n {
        let text = format!("alpha{} {} beta{}", i % 7, verbs[i % verbs.len()], i % 5);
        let sent = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(sent, 0, 1, Some("A"));
        let b = corpus.add_span(sent, 2, 3, Some("B"));
        ids.push(corpus.add_candidate(vec![a, b]));
    }
    (corpus, ids)
}

/// A parameterized deterministic LF: votes by hashing the sentence text
/// with a salt, abstaining on a fraction of candidates.
fn salted_lf(salt: u64, abstain_mod: u64) -> BoxedLf {
    lf(format!("lf_salt_{salt}"), move |x| {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        (salt, x.sentence().text()).hash(&mut h);
        let v = h.finish();
        if v.is_multiple_of(abstain_mod) {
            0
        } else if v.is_multiple_of(2) {
            1
        } else {
            -1
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel execution is bit-for-bit identical to serial, for any
    /// suite size, corpus size, and thread count.
    #[test]
    fn parallel_equals_serial(
        n_cands in 1usize..60,
        salts in prop::collection::vec(0u64..1000, 1..6),
        threads in 2usize..8,
    ) {
        let (corpus, ids) = build_corpus(n_cands);
        let suite: Vec<BoxedLf> = salts.iter().map(|&s| salted_lf(s, 3)).collect();
        let serial = LfExecutor::new().apply(&suite, &corpus, &ids);
        let parallel = LfExecutor::new()
            .with_parallelism(threads)
            .apply(&suite, &corpus, &ids);
        prop_assert_eq!(serial, parallel);
    }

    /// The executor's matrix equals brute-force labeling.
    #[test]
    fn executor_matches_bruteforce(
        n_cands in 1usize..40,
        salts in prop::collection::vec(0u64..1000, 1..5),
    ) {
        let (corpus, ids) = build_corpus(n_cands);
        let suite: Vec<BoxedLf> = salts.iter().map(|&s| salted_lf(s, 4)).collect();
        let lambda = LfExecutor::new().apply(&suite, &corpus, &ids);

        let mut b = LabelMatrixBuilder::new(ids.len(), suite.len());
        for (row, &cid) in ids.iter().enumerate() {
            let view = corpus.candidate(cid);
            for (col, f) in suite.iter().enumerate() {
                b.set(row, col, f.label(&view));
            }
        }
        prop_assert_eq!(lambda, b.build());
    }

    /// Row-subset application equals selecting rows from the full run.
    #[test]
    fn subset_rows_consistent(
        n_cands in 4usize..40,
        salts in prop::collection::vec(0u64..1000, 1..4),
        stride in 1usize..4,
    ) {
        let (corpus, ids) = build_corpus(n_cands);
        let suite: Vec<BoxedLf> = salts.iter().map(|&s| salted_lf(s, 5)).collect();
        let full = LfExecutor::new().apply(&suite, &corpus, &ids);
        let picked_rows: Vec<usize> = (0..n_cands).step_by(stride).collect();
        let picked_ids: Vec<_> = picked_rows.iter().map(|&r| ids[r]).collect();
        let direct = LfExecutor::new().apply(&suite, &corpus, &picked_ids);
        prop_assert_eq!(direct, full.select_rows(&picked_rows).unwrap());
    }
}

/// `LabelingFunction` objects must be usable through the trait object
/// regardless of construction path (regression guard for the Send+Sync
/// bounds).
#[test]
fn boxed_lfs_cross_thread() {
    let (corpus, ids) = build_corpus(5);
    let suite: Vec<BoxedLf> = vec![salted_lf(1, 3), salted_lf(2, 3)];
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            suite
                .iter()
                .map(|f| f.label(&corpus.candidate(ids[0])))
                .collect::<Vec<_>>()
        });
        let votes = handle.join().expect("worker ok");
        assert_eq!(votes.len(), 2);
    });
}
