//! Declarative labeling-function operators (paper §2.1).
//!
//! These encode "the most common weak supervision function types" the
//! paper's library ships: text patterns with candidate slots, keyword
//! tests on the tokens between relation arguments, and thresholded weak
//! classifiers.

use snorkel_context::CandidateView;
use snorkel_matrix::{Vote, ABSTAIN};
use snorkel_pattern::SlotTemplate;

use crate::traits::LabelingFunction;

/// Slot-template pattern LF — the paper's declarative
/// `lf_search("{{1}}.*\Wcauses\W.*{{2}}", reverse_args=False)`.
///
/// At labeling time the candidate's span texts fill the template slots
/// (optionally reversed) and the filled pattern is matched against the
/// sentence text; a hit emits `label`, otherwise the LF abstains.
pub struct PatternLf {
    name: String,
    template: SlotTemplate,
    label: Vote,
    reverse_args: bool,
}

impl PatternLf {
    /// Build from a template source (see [`SlotTemplate`]); patterns are
    /// matched case-insensitively, which is what every pattern LF in the
    /// paper's tutorials does.
    pub fn new(
        name: impl Into<String>,
        template: &str,
        label: Vote,
    ) -> Result<Self, snorkel_pattern::PatternError> {
        Ok(PatternLf {
            name: name.into(),
            template: SlotTemplate::new(template, true)?,
            label,
            reverse_args: false,
        })
    }

    /// Fill slots with the candidate's spans in reverse order — the
    /// paper's `reverse_args` flag.
    pub fn with_reversed_args(mut self) -> Self {
        self.reverse_args = true;
        self
    }
}

impl LabelingFunction for PatternLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, x: &CandidateView<'_>) -> Vote {
        let mut values = x.span_texts();
        if self.reverse_args {
            values.reverse();
        }
        if values.len() < self.template.arity() {
            return ABSTAIN; // arity mismatch: never applicable
        }
        if self.template.is_match(&values, x.sentence().text()) {
            self.label
        } else {
            ABSTAIN
        }
    }
}

/// The running-example LF (paper Example 2.3): look for a keyword among
/// the tokens between the two argument spans; emit `label_forward` when
/// span 0 precedes span 1 and `label_reverse` otherwise.
pub struct KeywordBetweenLf {
    name: String,
    keywords: Vec<String>,
    use_lemmas: bool,
    label_forward: Vote,
    label_reverse: Vote,
}

impl KeywordBetweenLf {
    /// Match surface forms (case-insensitive).
    pub fn new(
        name: impl Into<String>,
        keywords: &[&str],
        label_forward: Vote,
        label_reverse: Vote,
    ) -> Self {
        KeywordBetweenLf {
            name: name.into(),
            keywords: keywords.iter().map(|k| k.to_lowercase()).collect(),
            use_lemmas: false,
            label_forward,
            label_reverse,
        }
    }

    /// Match lemmas instead of surface forms ("cause" hits "caused",
    /// "causes", "causing").
    pub fn on_lemmas(mut self) -> Self {
        self.use_lemmas = true;
        self
    }
}

impl LabelingFunction for KeywordBetweenLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, x: &CandidateView<'_>) -> Vote {
        if x.arity() < 2 {
            return ABSTAIN;
        }
        let hit = x.tokens_between(0, 1).iter().any(|t| {
            let w = if self.use_lemmas {
                t.lemma.to_lowercase()
            } else {
                t.text.to_lowercase()
            };
            self.keywords.contains(&w)
        });
        if !hit {
            return ABSTAIN;
        }
        if x.span_precedes(0, 1) {
            self.label_forward
        } else {
            self.label_reverse
        }
    }
}

/// A weak classifier as a labeling function (§2.1 "weak classifiers"):
/// a scoring function plus two thresholds. Scores at or above
/// `pos_threshold` vote `pos_label`; at or below `neg_threshold` vote
/// `neg_label`; in between the LF abstains.
pub struct ThresholdLf {
    name: String,
    score: Box<dyn Fn(&CandidateView<'_>) -> f64 + Send + Sync>,
    pos_threshold: f64,
    neg_threshold: f64,
    pos_label: Vote,
    neg_label: Vote,
}

impl ThresholdLf {
    /// Build from a scoring closure and thresholds
    /// (`neg_threshold < pos_threshold` required).
    pub fn new(
        name: impl Into<String>,
        score: impl Fn(&CandidateView<'_>) -> f64 + Send + Sync + 'static,
        neg_threshold: f64,
        pos_threshold: f64,
    ) -> Self {
        assert!(
            neg_threshold < pos_threshold,
            "ThresholdLf: need neg_threshold < pos_threshold"
        );
        ThresholdLf {
            name: name.into(),
            score: Box::new(score),
            pos_threshold,
            neg_threshold,
            pos_label: 1,
            neg_label: -1,
        }
    }

    /// Override the emitted labels (multi-class weak classifiers).
    pub fn with_labels(mut self, neg_label: Vote, pos_label: Vote) -> Self {
        self.neg_label = neg_label;
        self.pos_label = pos_label;
        self
    }
}

impl LabelingFunction for ThresholdLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, x: &CandidateView<'_>) -> Vote {
        let s = (self.score)(x);
        if s >= self.pos_threshold {
            self.pos_label
        } else if s <= self.neg_threshold {
            self.neg_label
        } else {
            ABSTAIN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_context::{CandidateId, Corpus};
    use snorkel_nlp::tokenize;

    /// "magnesium causes weakness" forward candidate and a reversed one.
    fn corpus() -> (Corpus, CandidateId, CandidateId) {
        let mut c = Corpus::new();
        let d = c.add_document("d");
        let t1 = "magnesium causes severe weakness";
        let s1 = c.add_sentence(d, t1, tokenize(t1));
        let chem1 = c.add_span(s1, 0, 1, Some("Chemical"));
        let dis1 = c.add_span(s1, 3, 4, Some("Disease"));
        let fwd = c.add_candidate(vec![chem1, dis1]);

        let t2 = "weakness caused by magnesium";
        let s2 = c.add_sentence(d, t2, tokenize(t2));
        let dis2 = c.add_span(s2, 0, 1, Some("Disease"));
        let chem2 = c.add_span(s2, 3, 4, Some("Chemical"));
        let rev = c.add_candidate(vec![chem2, dis2]); // span0=chem comes second
        (c, fwd, rev)
    }

    #[test]
    fn pattern_lf_matches_forward() {
        let (c, fwd, rev) = corpus();
        let p = PatternLf::new("lf_causes_pat", r"{{0}}.*\Wcauses\W.*{{1}}", 1).unwrap();
        assert_eq!(p.label(&c.candidate(fwd)), 1);
        assert_eq!(p.label(&c.candidate(rev)), 0);
    }

    #[test]
    fn pattern_lf_reversed_args() {
        let (c, fwd, _) = corpus();
        let p = PatternLf::new("rev", r"{{0}}.*\Wcauses\W.*{{1}}", -1)
            .unwrap()
            .with_reversed_args();
        // Reversed: {{0}}=weakness(second span text reversed) won't match.
        assert_eq!(p.label(&c.candidate(fwd)), 0);
    }

    #[test]
    fn keyword_between_directionality() {
        let (c, fwd, rev) = corpus();
        let k = KeywordBetweenLf::new("lf_causes", &["causes", "caused"], 1, -1);
        assert_eq!(k.label(&c.candidate(fwd)), 1, "chemical precedes disease");
        assert_eq!(k.label(&c.candidate(rev)), -1, "disease precedes chemical");
    }

    #[test]
    fn keyword_between_lemma_mode() {
        let (c, fwd, rev) = corpus();
        let k = KeywordBetweenLf::new("lf_cause_lemma", &["cause"], 1, -1).on_lemmas();
        assert_eq!(k.label(&c.candidate(fwd)), 1);
        assert_eq!(k.label(&c.candidate(rev)), -1); // "caused" lemmatizes to "cause"
    }

    #[test]
    fn keyword_between_abstains_without_keyword() {
        let (c, fwd, _) = corpus();
        let k = KeywordBetweenLf::new("lf_treats", &["treats"], 1, -1);
        assert_eq!(k.label(&c.candidate(fwd)), 0);
    }

    #[test]
    fn threshold_lf_bands() {
        let (c, fwd, _) = corpus();
        let t = ThresholdLf::new("wk", |x| x.token_distance(0, 1) as f64, 1.0, 3.0);
        // distance 2 → between thresholds → abstain
        assert_eq!(t.label(&c.candidate(fwd)), 0);
        let t2 = ThresholdLf::new("wk2", |x| x.token_distance(0, 1) as f64, 0.5, 1.5);
        assert_eq!(t2.label(&c.candidate(fwd)), 1);
        let t3 =
            ThresholdLf::new("wk3", |x| x.token_distance(0, 1) as f64, 2.5, 5.0).with_labels(-1, 1);
        assert_eq!(t3.label(&c.candidate(fwd)), -1);
    }

    #[test]
    #[should_panic(expected = "neg_threshold < pos_threshold")]
    fn threshold_order_enforced() {
        let _ = ThresholdLf::new("bad", |_| 0.0, 1.0, 0.0);
    }
}
