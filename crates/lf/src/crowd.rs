//! Crowdsourcing as labeling functions (paper §4.1.2, Crowd task).
//!
//! Snorkel subsumes crowd-label modeling by representing *each
//! crowdworker as a labeling function*: the worker's recorded answers
//! become the LF's votes, and the generative model's accuracy weights
//! recover per-worker reliability — the Dawid-Skene setting (§3.1).

use std::collections::HashMap;

use snorkel_context::{CandidateId, CandidateView};
use snorkel_matrix::{Vote, ABSTAIN};

use crate::traits::{BoxedLf, LabelingFunction};

/// One crowdworker's answer table as a labeling function.
pub struct CrowdWorkerLf {
    name: String,
    answers: HashMap<CandidateId, Vote>,
}

impl CrowdWorkerLf {
    /// Build from a worker id and their `(candidate, vote)` answers.
    pub fn new(worker_id: &str, answers: HashMap<CandidateId, Vote>) -> Self {
        CrowdWorkerLf {
            name: format!("lf_worker_{worker_id}"),
            answers,
        }
    }

    /// Number of items this worker answered.
    pub fn num_answers(&self) -> usize {
        self.answers.len()
    }
}

impl LabelingFunction for CrowdWorkerLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, x: &CandidateView<'_>) -> Vote {
        self.answers.get(&x.id()).copied().unwrap_or(ABSTAIN)
    }
}

/// Labeling-function generator for a crowdsourcing table: rows of
/// `(worker_id, candidate, vote)` expand into one [`CrowdWorkerLf`] per
/// distinct worker. Worker order is sorted by id for determinism.
pub fn crowd_lfs(table: &[(String, CandidateId, Vote)]) -> Vec<BoxedLf> {
    let mut per_worker: std::collections::BTreeMap<String, HashMap<CandidateId, Vote>> =
        std::collections::BTreeMap::new();
    for (worker, cand, vote) in table {
        per_worker
            .entry(worker.clone())
            .or_default()
            .insert(*cand, *vote);
    }
    per_worker
        .into_iter()
        .map(|(worker, answers)| Box::new(CrowdWorkerLf::new(&worker, answers)) as BoxedLf)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_context::{Corpus, Token};

    fn corpus_with(n: usize) -> (Corpus, Vec<CandidateId>) {
        let mut c = Corpus::new();
        let d = c.add_document("tweets");
        let mut ids = Vec::new();
        for i in 0..n {
            let text = format!("tweet {i}");
            let len = text.len();
            let s = c.add_sentence(d, text, vec![Token::new("tweet", 0, 5)]);
            let _ = len;
            let sp = c.add_span(s, 0, 1, Some("Tweet"));
            ids.push(c.add_candidate(vec![sp]));
        }
        (c, ids)
    }

    #[test]
    fn worker_lf_replays_answers() {
        let (corpus, ids) = corpus_with(3);
        let mut answers = HashMap::new();
        answers.insert(ids[0], 2 as Vote);
        answers.insert(ids[2], 5 as Vote);
        let w = CrowdWorkerLf::new("42", answers);
        assert_eq!(w.name(), "lf_worker_42");
        assert_eq!(w.num_answers(), 2);
        assert_eq!(w.label(&corpus.candidate(ids[0])), 2);
        assert_eq!(w.label(&corpus.candidate(ids[1])), ABSTAIN);
        assert_eq!(w.label(&corpus.candidate(ids[2])), 5);
    }

    #[test]
    fn generator_groups_by_worker() {
        let (_, ids) = corpus_with(2);
        let table = vec![
            ("w2".to_string(), ids[0], 1 as Vote),
            ("w1".to_string(), ids[0], 2 as Vote),
            ("w1".to_string(), ids[1], 3 as Vote),
        ];
        let lfs = crowd_lfs(&table);
        assert_eq!(lfs.len(), 2);
        // Deterministic sorted-by-id order.
        assert_eq!(lfs[0].name(), "lf_worker_w1");
        assert_eq!(lfs[1].name(), "lf_worker_w2");
    }

    #[test]
    fn empty_table_yields_no_lfs() {
        assert!(crowd_lfs(&[]).is_empty());
    }
}
