//! # snorkel-lf
//!
//! The labeling-function interface layer (paper §2.1): *a unifying
//! programming language for weak supervision*.
//!
//! A labeling function (LF) is a black-box function `λ : X → Y ∪ {∅}`
//! that votes on a candidate or abstains. This crate provides:
//!
//! * the [`LabelingFunction`] trait and the [`lf`] helper for arbitrary
//!   hand-written Rust closures (the paper's "custom Python functions");
//! * **declarative operators** covering the common weak-supervision
//!   families (§2.1): [`PatternLf`] (slot-template patterns — the
//!   paper's `lf_search`), [`KeywordBetweenLf`] (the running `LF_causes`
//!   example), [`ThresholdLf`] (weak classifiers with score thresholds);
//! * **distant supervision** from a [`KnowledgeBase`], including the
//!   LF *generator* of Example 2.4 ([`ontology_lfs`]) that expands one
//!   resource into one LF per KB subset;
//! * **crowdsourcing as labeling functions** ([`crowd_lfs`]), one LF per
//!   worker, subsuming crowd-label modeling (§4.1.2);
//! * the [`LfExecutor`], which applies an LF suite over a corpus —
//!   serially or across threads (LF application is embarrassingly
//!   parallel, paper appendix C) — and materializes the label matrix Λ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crowd;
mod declarative;
mod executor;
mod kb;
mod traits;

pub use crowd::{crowd_lfs, CrowdWorkerLf};
pub use declarative::{KeywordBetweenLf, PatternLf, ThresholdLf};
pub use executor::LfExecutor;
pub use kb::{ontology_lfs, KnowledgeBase, OntologyLf};
pub use traits::{lf, BoxedLf, FnLf, LabelingFunction};

/// Re-export of the vote type LFs emit (0 = abstain).
pub use snorkel_matrix::{Vote, ABSTAIN};
