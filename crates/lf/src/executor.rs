//! Applying a labeling-function suite over a corpus.
//!
//! LF execution is embarrassingly parallel (paper appendix C): each
//! candidate is labeled independently, so the executor splits the
//! candidate list into contiguous chunks, labels them on scoped worker
//! threads, and merges the per-chunk triplets into one [`LabelMatrix`].
//! The output is bit-for-bit identical regardless of thread count.

use snorkel_context::{CandidateId, Corpus};
use snorkel_matrix::{LabelMatrix, LabelMatrixBuilder, Vote};

use crate::traits::BoxedLf;

/// Applies LF suites, optionally across threads.
#[derive(Clone, Copy, Debug)]
pub struct LfExecutor {
    /// Number of worker threads: 1 = serial, 0 = use all available cores.
    pub parallelism: usize,
    /// Vote scheme cardinality for the produced matrix (2 = binary).
    pub cardinality: u8,
}

impl Default for LfExecutor {
    fn default() -> Self {
        LfExecutor {
            parallelism: 1,
            cardinality: 2,
        }
    }
}

impl LfExecutor {
    /// A serial executor for binary tasks.
    pub fn new() -> Self {
        LfExecutor::default()
    }

    /// Use up to `threads` workers; `0` means "use all available cores".
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Set the vote-scheme cardinality of the produced matrix. Panics on
    /// `k < 2`: a labeling task needs at least two classes, and silently
    /// accepting 0/1 produced matrices every downstream consumer rejects.
    pub fn with_cardinality(mut self, k: u8) -> Self {
        assert!(
            k >= 2,
            "LfExecutor cardinality must be at least 2 (got {k}); \
             binary tasks use 2, multi-class tasks use the class count"
        );
        self.cardinality = k;
        self
    }

    /// The worker count [`Self::apply`] will actually use: `parallelism`,
    /// with `0` resolved to the number of available cores.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.parallelism
        }
    }

    /// Apply `lfs` over `candidates` (rows follow `candidates` order).
    pub fn apply(
        &self,
        lfs: &[BoxedLf],
        corpus: &Corpus,
        candidates: &[CandidateId],
    ) -> LabelMatrix {
        let m = candidates.len();
        let n = lfs.len();
        let mut builder = LabelMatrixBuilder::with_cardinality(m, n, self.cardinality);

        let parallelism = self.effective_parallelism();
        if parallelism <= 1 || m < 2 {
            for (row, &cid) in candidates.iter().enumerate() {
                let view = corpus.candidate(cid);
                for (col, lf) in lfs.iter().enumerate() {
                    builder.set(row, col, lf.label(&view));
                }
            }
            return builder.build();
        }

        let threads = parallelism.min(m);
        let chunk = m.div_ceil(threads);
        let mut chunk_outputs: Vec<Vec<(usize, usize, Vote)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, cand_chunk) in candidates.chunks(chunk).enumerate() {
                let base = t * chunk;
                handles.push(scope.spawn(move || {
                    let mut triplets = Vec::new();
                    for (off, &cid) in cand_chunk.iter().enumerate() {
                        let view = corpus.candidate(cid);
                        for (col, lf) in lfs.iter().enumerate() {
                            let v = lf.label(&view);
                            if v != 0 {
                                triplets.push((base + off, col, v));
                            }
                        }
                    }
                    triplets
                }));
            }
            for h in handles {
                chunk_outputs.push(h.join().expect("labeling worker panicked"));
            }
        });

        for triplets in chunk_outputs {
            for (i, j, v) in triplets {
                builder.set(i, j, v);
            }
        }
        builder.build()
    }

    /// Apply over *all* candidates of the corpus, in id order.
    pub fn apply_all(&self, lfs: &[BoxedLf], corpus: &Corpus) -> LabelMatrix {
        let candidates: Vec<CandidateId> = corpus.candidate_ids().collect();
        self.apply(lfs, corpus, &candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::lf;
    use snorkel_context::Corpus;
    use snorkel_nlp::tokenize;

    fn corpus(n: usize) -> (Corpus, Vec<CandidateId>) {
        let mut c = Corpus::new();
        let d = c.add_document("d");
        let mut ids = Vec::new();
        for i in 0..n {
            let text = if i % 3 == 0 {
                "alpha causes beta".to_string()
            } else {
                "alpha treats beta".to_string()
            };
            let s = c.add_sentence(d, &text, tokenize(&text));
            let a = c.add_span(s, 0, 1, Some("A"));
            let b = c.add_span(s, 2, 3, Some("B"));
            ids.push(c.add_candidate(vec![a, b]));
        }
        (c, ids)
    }

    fn suite() -> Vec<BoxedLf> {
        vec![
            lf("lf_causes", |x| {
                if x.words_between(0, 1).contains(&"causes") {
                    1
                } else {
                    0
                }
            }),
            lf("lf_treats", |x| {
                if x.words_between(0, 1).contains(&"treats") {
                    -1
                } else {
                    0
                }
            }),
            lf("lf_abstainer", |_| 0),
        ]
    }

    #[test]
    fn serial_application() {
        let (c, ids) = corpus(9);
        let lambda = LfExecutor::new().apply(&suite(), &c, &ids);
        assert_eq!(lambda.num_points(), 9);
        assert_eq!(lambda.num_lfs(), 3);
        assert_eq!(lambda.get(0, 0), 1);
        assert_eq!(lambda.get(1, 1), -1);
        assert_eq!(lambda.get(0, 2), 0);
        // Exactly one vote per row (LFs are mutually exclusive here).
        assert_eq!(lambda.nnz(), 9);
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, ids) = corpus(101);
        let serial = LfExecutor::new().apply(&suite(), &c, &ids);
        for threads in [2, 3, 8] {
            let par = LfExecutor::new()
                .with_parallelism(threads)
                .apply(&suite(), &c, &ids);
            assert_eq!(par, serial, "parallelism={threads} must be deterministic");
        }
    }

    #[test]
    fn apply_all_uses_id_order() {
        let (c, ids) = corpus(5);
        let a = LfExecutor::new().apply_all(&suite(), &c);
        let b = LfExecutor::new().apply(&suite(), &c, &ids);
        assert_eq!(a, b);
    }

    #[test]
    fn row_subset_and_order_respected() {
        let (c, ids) = corpus(6);
        let reversed: Vec<CandidateId> = ids.iter().rev().copied().collect();
        let lambda = LfExecutor::new().apply(&suite(), &c, &reversed);
        // Row 5 is candidate 0, which says "causes".
        assert_eq!(lambda.get(5, 0), 1);
    }

    #[test]
    fn parallelism_zero_means_all_cores() {
        let exec = LfExecutor::new().with_parallelism(0);
        assert_eq!(exec.parallelism, 0);
        assert!(exec.effective_parallelism() >= 1);
        // And the result is still bit-identical to serial.
        let (c, ids) = corpus(50);
        let serial = LfExecutor::new().apply(&suite(), &c, &ids);
        let auto = exec.apply(&suite(), &c, &ids);
        assert_eq!(auto, serial);
    }

    #[test]
    #[should_panic(expected = "cardinality must be at least 2")]
    fn cardinality_zero_rejected() {
        let _ = LfExecutor::new().with_cardinality(0);
    }

    #[test]
    #[should_panic(expected = "cardinality must be at least 2")]
    fn cardinality_one_rejected() {
        let _ = LfExecutor::new().with_cardinality(1);
    }

    #[test]
    fn empty_inputs() {
        let (c, _) = corpus(3);
        let lambda = LfExecutor::new().apply(&suite(), &c, &[]);
        assert_eq!(lambda.num_points(), 0);
        let no_lfs = LfExecutor::new().apply(&[], &c, &c.candidate_ids().collect::<Vec<_>>());
        assert_eq!(no_lfs.num_lfs(), 0);
        assert_eq!(no_lfs.nnz(), 0);
    }
}
