//! Applying a labeling-function suite over a corpus.
//!
//! LF execution is embarrassingly parallel (paper appendix C): each
//! candidate is labeled independently, so the executor splits the
//! candidate list into contiguous chunks, labels them on scoped worker
//! threads, and merges the per-chunk triplets into one [`LabelMatrix`].
//! The output is bit-for-bit identical regardless of thread count.

use snorkel_context::{CandidateId, Corpus};
use snorkel_matrix::{is_legal_vote, LabelMatrix, LabelMatrixBuilder, Vote, ABSTAIN};

use crate::traits::BoxedLf;

/// Per-LF tallies for one `apply` call, accumulated locally (plain
/// integers, no atomics) and flushed to the global registry once per LF
/// when the call completes.
#[derive(Clone, Copy, Default)]
struct LfTally {
    invocations: u64,
    abstains: u64,
    /// Votes outside the matrix's legal range for its cardinality. The
    /// matrix builder rejects these downstream; the counter exists so a
    /// misbehaving LF is visible in a `METRICS` scrape, not only as a
    /// panic in a log.
    errors: u64,
}

impl LfTally {
    #[inline]
    fn observe(&mut self, cardinality: u8, v: Vote) {
        self.invocations += 1;
        if v == ABSTAIN {
            self.abstains += 1;
        } else if !is_legal_vote(cardinality, v) {
            self.errors += 1;
        }
    }

    fn merge(&mut self, other: LfTally) {
        self.invocations += other.invocations;
        self.abstains += other.abstains;
        self.errors += other.errors;
    }
}

/// Accumulates per-LF tallies during an `apply` call and publishes them
/// as `snorkel_lf_{invocations,abstains,errors}_total{lf="…"}` on drop
/// — so illegal votes are already counted when the matrix layer's
/// rejection panic unwinds through the executor.
struct TallyGuard<'a> {
    lfs: &'a [BoxedLf],
    tallies: Vec<LfTally>,
}

impl<'a> TallyGuard<'a> {
    fn new(lfs: &'a [BoxedLf]) -> Self {
        TallyGuard {
            lfs,
            tallies: vec![LfTally::default(); lfs.len()],
        }
    }
}

impl Drop for TallyGuard<'_> {
    fn drop(&mut self) {
        let registry = snorkel_obs::global();
        for (lf, tally) in self.lfs.iter().zip(&self.tallies) {
            let labels = [("lf", lf.name())];
            registry
                .counter("snorkel_lf_invocations_total", &labels)
                .add(tally.invocations);
            registry
                .counter("snorkel_lf_abstains_total", &labels)
                .add(tally.abstains);
            if tally.errors > 0 {
                registry
                    .counter("snorkel_lf_errors_total", &labels)
                    .add(tally.errors);
            }
        }
    }
}

/// Applies LF suites, optionally across threads.
#[derive(Clone, Copy, Debug)]
pub struct LfExecutor {
    /// Number of worker threads: 1 = serial, 0 = use all available cores.
    pub parallelism: usize,
    /// Vote scheme cardinality for the produced matrix (2 = binary).
    pub cardinality: u8,
}

impl Default for LfExecutor {
    fn default() -> Self {
        LfExecutor {
            parallelism: 1,
            cardinality: 2,
        }
    }
}

impl LfExecutor {
    /// A serial executor for binary tasks.
    pub fn new() -> Self {
        LfExecutor::default()
    }

    /// Use up to `threads` workers; `0` means "use all available cores".
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Set the vote-scheme cardinality of the produced matrix. Panics on
    /// `k < 2`: a labeling task needs at least two classes, and silently
    /// accepting 0/1 produced matrices every downstream consumer rejects.
    pub fn with_cardinality(mut self, k: u8) -> Self {
        assert!(
            k >= 2,
            "LfExecutor cardinality must be at least 2 (got {k}); \
             binary tasks use 2, multi-class tasks use the class count"
        );
        self.cardinality = k;
        self
    }

    /// The worker count [`Self::apply`] will actually use: `parallelism`,
    /// with `0` resolved to the number of available cores.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.parallelism
        }
    }

    /// Apply `lfs` over `candidates` (rows follow `candidates` order).
    pub fn apply(
        &self,
        lfs: &[BoxedLf],
        corpus: &Corpus,
        candidates: &[CandidateId],
    ) -> LabelMatrix {
        let m = candidates.len();
        let n = lfs.len();
        let mut builder = LabelMatrixBuilder::with_cardinality(m, n, self.cardinality);

        let mut guard = TallyGuard::new(lfs);
        let parallelism = self.effective_parallelism();
        if parallelism <= 1 || m < 2 {
            for (row, &cid) in candidates.iter().enumerate() {
                let view = corpus.candidate(cid);
                for (col, lf) in lfs.iter().enumerate() {
                    let v = lf.label(&view);
                    guard.tallies[col].observe(self.cardinality, v);
                    builder.set(row, col, v);
                }
            }
            return builder.build();
        }

        // One worker's output: its (row, col, vote) triplets plus the
        // per-LF tallies it accumulated locally.
        type ChunkOutput = (Vec<(usize, usize, Vote)>, Vec<LfTally>);
        let threads = parallelism.min(m);
        let chunk = m.div_ceil(threads);
        let mut chunk_outputs: Vec<ChunkOutput> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, cand_chunk) in candidates.chunks(chunk).enumerate() {
                let base = t * chunk;
                handles.push(scope.spawn(move || {
                    let mut triplets = Vec::new();
                    let mut local = vec![LfTally::default(); n];
                    for (off, &cid) in cand_chunk.iter().enumerate() {
                        let view = corpus.candidate(cid);
                        for (col, lf) in lfs.iter().enumerate() {
                            let v = lf.label(&view);
                            local[col].observe(self.cardinality, v);
                            if v != 0 {
                                triplets.push((base + off, col, v));
                            }
                        }
                    }
                    (triplets, local)
                }));
            }
            for h in handles {
                chunk_outputs.push(h.join().expect("labeling worker panicked"));
            }
        });

        for (triplets, local) in chunk_outputs {
            for (col, tally) in local.into_iter().enumerate() {
                guard.tallies[col].merge(tally);
            }
            for (i, j, v) in triplets {
                builder.set(i, j, v);
            }
        }
        builder.build()
    }

    /// Apply over *all* candidates of the corpus, in id order.
    pub fn apply_all(&self, lfs: &[BoxedLf], corpus: &Corpus) -> LabelMatrix {
        let candidates: Vec<CandidateId> = corpus.candidate_ids().collect();
        self.apply(lfs, corpus, &candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::lf;
    use snorkel_context::Corpus;
    use snorkel_nlp::tokenize;

    fn corpus(n: usize) -> (Corpus, Vec<CandidateId>) {
        let mut c = Corpus::new();
        let d = c.add_document("d");
        let mut ids = Vec::new();
        for i in 0..n {
            let text = if i % 3 == 0 {
                "alpha causes beta".to_string()
            } else {
                "alpha treats beta".to_string()
            };
            let s = c.add_sentence(d, &text, tokenize(&text));
            let a = c.add_span(s, 0, 1, Some("A"));
            let b = c.add_span(s, 2, 3, Some("B"));
            ids.push(c.add_candidate(vec![a, b]));
        }
        (c, ids)
    }

    fn suite() -> Vec<BoxedLf> {
        vec![
            lf("lf_causes", |x| {
                if x.words_between(0, 1).contains(&"causes") {
                    1
                } else {
                    0
                }
            }),
            lf("lf_treats", |x| {
                if x.words_between(0, 1).contains(&"treats") {
                    -1
                } else {
                    0
                }
            }),
            lf("lf_abstainer", |_| 0),
        ]
    }

    #[test]
    fn serial_application() {
        let (c, ids) = corpus(9);
        let lambda = LfExecutor::new().apply(&suite(), &c, &ids);
        assert_eq!(lambda.num_points(), 9);
        assert_eq!(lambda.num_lfs(), 3);
        assert_eq!(lambda.get(0, 0), 1);
        assert_eq!(lambda.get(1, 1), -1);
        assert_eq!(lambda.get(0, 2), 0);
        // Exactly one vote per row (LFs are mutually exclusive here).
        assert_eq!(lambda.nnz(), 9);
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, ids) = corpus(101);
        let serial = LfExecutor::new().apply(&suite(), &c, &ids);
        for threads in [2, 3, 8] {
            let par = LfExecutor::new()
                .with_parallelism(threads)
                .apply(&suite(), &c, &ids);
            assert_eq!(par, serial, "parallelism={threads} must be deterministic");
        }
    }

    #[test]
    fn apply_all_uses_id_order() {
        let (c, ids) = corpus(5);
        let a = LfExecutor::new().apply_all(&suite(), &c);
        let b = LfExecutor::new().apply(&suite(), &c, &ids);
        assert_eq!(a, b);
    }

    #[test]
    fn row_subset_and_order_respected() {
        let (c, ids) = corpus(6);
        let reversed: Vec<CandidateId> = ids.iter().rev().copied().collect();
        let lambda = LfExecutor::new().apply(&suite(), &c, &reversed);
        // Row 5 is candidate 0, which says "causes".
        assert_eq!(lambda.get(5, 0), 1);
    }

    #[test]
    fn parallelism_zero_means_all_cores() {
        let exec = LfExecutor::new().with_parallelism(0);
        assert_eq!(exec.parallelism, 0);
        assert!(exec.effective_parallelism() >= 1);
        // And the result is still bit-identical to serial.
        let (c, ids) = corpus(50);
        let serial = LfExecutor::new().apply(&suite(), &c, &ids);
        let auto = exec.apply(&suite(), &c, &ids);
        assert_eq!(auto, serial);
    }

    #[test]
    #[should_panic(expected = "cardinality must be at least 2")]
    fn cardinality_zero_rejected() {
        let _ = LfExecutor::new().with_cardinality(0);
    }

    #[test]
    #[should_panic(expected = "cardinality must be at least 2")]
    fn cardinality_one_rejected() {
        let _ = LfExecutor::new().with_cardinality(1);
    }

    #[test]
    fn apply_publishes_per_lf_counters() {
        let (c, ids) = corpus(9);
        let registry = snorkel_obs::global();
        // The global registry is shared across tests, so assert deltas.
        let inv = registry.counter("snorkel_lf_invocations_total", &[("lf", "lf_abstainer")]);
        let abs = registry.counter("snorkel_lf_abstains_total", &[("lf", "lf_abstainer")]);
        let causes_abs = registry.counter("snorkel_lf_abstains_total", &[("lf", "lf_causes")]);
        let (inv0, abs0, causes_abs0) = (inv.get(), abs.get(), causes_abs.get());
        let _ = LfExecutor::new().apply(&suite(), &c, &ids);
        assert_eq!(inv.get() - inv0, 9);
        assert_eq!(abs.get() - abs0, 9, "lf_abstainer always abstains");
        assert_eq!(
            causes_abs.get() - causes_abs0,
            6,
            "lf_causes votes on every third"
        );
        // Parallel path flushes the same tallies.
        let _ = LfExecutor::new()
            .with_parallelism(4)
            .apply(&suite(), &c, &ids);
        assert_eq!(inv.get() - inv0, 18);
        assert_eq!(abs.get() - abs0, 18);
    }

    #[test]
    fn illegal_votes_are_counted_as_errors() {
        let (c, ids) = corpus(3);
        let bad = vec![lf("lf_bad", |_| 99)];
        let errs = snorkel_obs::global().counter("snorkel_lf_errors_total", &[("lf", "lf_bad")]);
        let before = errs.get();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            LfExecutor::new().apply(&bad, &c, &ids)
        }));
        // The matrix layer still rejects the votes (panicking on the
        // first one); the guard flushes what it saw during unwinding.
        assert!(result.is_err(), "illegal votes are rejected downstream");
        assert_eq!(errs.get() - before, 1);
    }

    #[test]
    fn empty_inputs() {
        let (c, _) = corpus(3);
        let lambda = LfExecutor::new().apply(&suite(), &c, &[]);
        assert_eq!(lambda.num_points(), 0);
        let no_lfs = LfExecutor::new().apply(&[], &c, &c.candidate_ids().collect::<Vec<_>>());
        assert_eq!(no_lfs.num_lfs(), 0);
        assert_eq!(no_lfs.nnz(), 0);
    }
}
