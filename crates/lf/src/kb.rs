//! Distant supervision: knowledge bases as labeling functions.
//!
//! Distant supervision heuristically aligns data points with an external
//! knowledge base (paper §2.1). [`KnowledgeBase`] stores entity pairs in
//! named *subsets* ("Causes", "Treats", …) because — per Example 2.4 —
//! different subsets of a KB have different accuracy and coverage and
//! should be modeled by *separate* labeling functions. [`ontology_lfs`]
//! is that labeling-function generator: one line expands a KB into one
//! [`OntologyLf`] per subset.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use snorkel_context::CandidateView;
use snorkel_matrix::{Vote, ABSTAIN};

use crate::traits::{BoxedLf, LabelingFunction};

/// A knowledge base of entity pairs organized into named subsets.
///
/// Pair lookup is case-insensitive on both arguments. The pair `(a, b)`
/// is directional: symmetric relations should insert both orders (see
/// [`KnowledgeBase::add_pair_symmetric`]).
#[derive(Clone, Debug, Default)]
pub struct KnowledgeBase {
    name: String,
    subsets: BTreeMap<String, HashSet<(String, String)>>,
}

impl KnowledgeBase {
    /// An empty KB with a display name (e.g. `"CTD"`).
    pub fn new(name: impl Into<String>) -> Self {
        KnowledgeBase {
            name: name.into(),
            subsets: BTreeMap::new(),
        }
    }

    /// The KB's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert a directed pair into a subset.
    pub fn add_pair(&mut self, subset: &str, a: &str, b: &str) {
        self.subsets
            .entry(subset.to_string())
            .or_default()
            .insert((a.to_lowercase(), b.to_lowercase()));
    }

    /// Insert both orders of a pair (symmetric relations like Spouses).
    pub fn add_pair_symmetric(&mut self, subset: &str, a: &str, b: &str) {
        self.add_pair(subset, a, b);
        self.add_pair(subset, b, a);
    }

    /// Test membership of a directed pair in a subset.
    pub fn contains(&self, subset: &str, a: &str, b: &str) -> bool {
        self.subsets
            .get(subset)
            .is_some_and(|s| s.contains(&(a.to_lowercase(), b.to_lowercase())))
    }

    /// Names of all subsets, sorted.
    pub fn subset_names(&self) -> Vec<&str> {
        self.subsets.keys().map(String::as_str).collect()
    }

    /// Number of pairs in a subset (0 if absent).
    pub fn subset_len(&self, subset: &str) -> usize {
        self.subsets.get(subset).map_or(0, HashSet::len)
    }

    /// Remove and return a uniform-ish half of a subset's pairs
    /// (deterministic: keeps pairs whose hash is even). Used by the CDR
    /// evaluation protocol, which deletes half of CTD and evaluates on
    /// candidates not contained in the remaining half (§4.1.1).
    pub fn split_off_half(&mut self, subset: &str) -> HashSet<(String, String)> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let Some(set) = self.subsets.get_mut(subset) else {
            return HashSet::new();
        };
        let mut removed = HashSet::new();
        let mut kept = HashSet::new();
        for pair in set.drain() {
            let mut h = DefaultHasher::new();
            pair.hash(&mut h);
            if h.finish().is_multiple_of(2) {
                kept.insert(pair);
            } else {
                removed.insert(pair);
            }
        }
        *set = kept;
        removed
    }
}

/// Distant-supervision LF: vote `label` when the candidate's span texts
/// appear as a pair in one KB subset, abstain otherwise.
pub struct OntologyLf {
    name: String,
    kb: Arc<KnowledgeBase>,
    subset: String,
    label: Vote,
}

impl OntologyLf {
    /// LF over one subset of a shared KB.
    pub fn new(kb: Arc<KnowledgeBase>, subset: &str, label: Vote) -> Self {
        OntologyLf {
            name: format!("lf_{}_{}", kb.name(), subset),
            kb,
            subset: subset.to_string(),
            label,
        }
    }
}

impl LabelingFunction for OntologyLf {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, x: &CandidateView<'_>) -> Vote {
        if x.arity() < 2 {
            return ABSTAIN;
        }
        let a = x.span(0).text();
        let b = x.span(1).text();
        if self.kb.contains(&self.subset, a, b) {
            self.label
        } else {
            ABSTAIN
        }
    }
}

/// The labeling-function generator of Example 2.4:
///
/// ```text
/// LFs_CTD = Ontology(ctd, {"Causes": True, "Treats": False})
/// ```
///
/// expands to one [`OntologyLf`] per `(subset, label)` mapping entry.
///
/// ```
/// use std::sync::Arc;
/// use snorkel_lf::{ontology_lfs, KnowledgeBase};
/// let mut kb = KnowledgeBase::new("ctd");
/// kb.add_pair("Causes", "magnesium", "weakness");
/// kb.add_pair("Treats", "magnesium", "preeclampsia");
/// let lfs = ontology_lfs(Arc::new(kb), &[("Causes", 1), ("Treats", -1)]);
/// assert_eq!(lfs.len(), 2);
/// ```
pub fn ontology_lfs(kb: Arc<KnowledgeBase>, mapping: &[(&str, Vote)]) -> Vec<BoxedLf> {
    mapping
        .iter()
        .map(|&(subset, label)| {
            Box::new(OntologyLf::new(Arc::clone(&kb), subset, label)) as BoxedLf
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_context::Corpus;
    use snorkel_nlp::tokenize;

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new("ctd");
        kb.add_pair("Causes", "Magnesium", "Weakness");
        kb.add_pair("Treats", "magnesium", "preeclampsia");
        kb
    }

    fn candidate(corpus: &mut Corpus, a: &str, b: &str) -> snorkel_context::CandidateId {
        let d = corpus.add_document("d");
        let text = format!("{a} with {b}");
        let s = corpus.add_sentence(d, &text, tokenize(&text));
        let sa = corpus.add_span(s, 0, 1, Some("Chemical"));
        let sb = corpus.add_span(s, 2, 3, Some("Disease"));
        corpus.add_candidate(vec![sa, sb])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let kb = kb();
        assert!(kb.contains("Causes", "MAGNESIUM", "weakness"));
        assert!(!kb.contains("Causes", "magnesium", "preeclampsia"));
        assert!(!kb.contains("Missing", "a", "b"));
    }

    #[test]
    fn ontology_lf_votes_by_subset() {
        let kb = Arc::new(kb());
        let mut corpus = Corpus::new();
        let cand = candidate(&mut corpus, "magnesium", "weakness");
        let causes = OntologyLf::new(Arc::clone(&kb), "Causes", 1);
        let treats = OntologyLf::new(Arc::clone(&kb), "Treats", -1);
        assert_eq!(causes.label(&corpus.candidate(cand)), 1);
        assert_eq!(treats.label(&corpus.candidate(cand)), 0);
        assert_eq!(causes.name(), "lf_ctd_Causes");
    }

    #[test]
    fn generator_expands_mapping() {
        let lfs = ontology_lfs(Arc::new(kb()), &[("Causes", 1), ("Treats", -1)]);
        assert_eq!(lfs.len(), 2);
        assert_eq!(lfs[0].name(), "lf_ctd_Causes");
        assert_eq!(lfs[1].name(), "lf_ctd_Treats");
    }

    #[test]
    fn symmetric_pairs() {
        let mut kb = KnowledgeBase::new("dbpedia");
        kb.add_pair_symmetric("spouse", "Alice", "Bob");
        assert!(kb.contains("spouse", "bob", "alice"));
        assert!(kb.contains("spouse", "alice", "bob"));
        assert_eq!(kb.subset_len("spouse"), 2);
    }

    #[test]
    fn split_off_half_partitions() {
        let mut kb = KnowledgeBase::new("ctd");
        for i in 0..100 {
            kb.add_pair("Causes", &format!("chem{i}"), &format!("dis{i}"));
        }
        let removed = kb.split_off_half("Causes");
        let kept = kb.subset_len("Causes");
        assert_eq!(kept + removed.len(), 100);
        assert!(kept > 20 && removed.len() > 20, "split is roughly even");
        for (a, b) in &removed {
            assert!(!kb.contains("Causes", a, b));
        }
    }

    #[test]
    fn split_off_missing_subset_is_empty() {
        let mut kb = KnowledgeBase::new("x");
        assert!(kb.split_off_half("nope").is_empty());
    }
}
