//! The core labeling-function abstraction.

use snorkel_context::CandidateView;
use snorkel_matrix::Vote;

/// A labeling function `λ : X → Y ∪ {∅}`.
///
/// Implementations must be `Send + Sync`: LF application is parallelized
/// across candidates, with the LF suite shared read-only between threads.
/// Returning [`snorkel_matrix::ABSTAIN`] (0) abstains.
pub trait LabelingFunction: Send + Sync {
    /// Stable human-readable name, surfaced in diagnostics.
    fn name(&self) -> &str;

    /// Vote on one candidate (0 = abstain).
    fn label(&self, x: &CandidateView<'_>) -> Vote;
}

/// Owned, type-erased labeling function.
pub type BoxedLf = Box<dyn LabelingFunction>;

/// A labeling function defined by an arbitrary closure — the Rust
/// equivalent of the paper's hand-written Python LFs (Example 2.3).
pub struct FnLf<F> {
    name: String,
    f: F,
}

impl<F> FnLf<F>
where
    F: Fn(&CandidateView<'_>) -> Vote + Send + Sync,
{
    /// Wrap a closure as a named LF.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnLf {
            name: name.into(),
            f,
        }
    }
}

impl<F> LabelingFunction for FnLf<F>
where
    F: Fn(&CandidateView<'_>) -> Vote + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self, x: &CandidateView<'_>) -> Vote {
        (self.f)(x)
    }
}

/// Convenience constructor boxing a closure LF.
///
/// ```
/// use snorkel_lf::{lf, LabelingFunction};
/// let my_lf = lf("lf_short_distance", |x| {
///     if x.arity() == 2 && x.token_distance(0, 1) <= 2 { 1 } else { 0 }
/// });
/// assert_eq!(my_lf.name(), "lf_short_distance");
/// ```
pub fn lf<F>(name: impl Into<String>, f: F) -> BoxedLf
where
    F: Fn(&CandidateView<'_>) -> Vote + Send + Sync + 'static,
{
    Box::new(FnLf::new(name, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_context::{Corpus, Token};

    fn tiny_corpus() -> (Corpus, snorkel_context::CandidateId) {
        let mut c = Corpus::new();
        let d = c.add_document("d");
        let s = c.add_sentence(
            d,
            "a causes b",
            vec![
                Token::new("a", 0, 1),
                Token::new("causes", 2, 8),
                Token::new("b", 9, 10),
            ],
        );
        let s1 = c.add_span(s, 0, 1, Some("X"));
        let s2 = c.add_span(s, 2, 3, Some("Y"));
        let cand = c.add_candidate(vec![s1, s2]);
        (c, cand)
    }

    #[test]
    fn closure_lf_votes() {
        let (corpus, cand) = tiny_corpus();
        let my = lf("causes_between", |x| {
            if x.words_between(0, 1).contains(&"causes") {
                1
            } else {
                0
            }
        });
        assert_eq!(my.label(&corpus.candidate(cand)), 1);
    }

    #[test]
    fn lfs_are_shareable_across_threads() {
        let my = lf("const", |_| 1);
        let (corpus, cand) = tiny_corpus();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| my.label(&corpus.candidate(cand)));
            assert_eq!(h.join().expect("thread ok"), 1);
        });
    }
}
