//! Property tests for the streaming plane (ISSUE 9 satellite):
//!
//! 1. **Online equals batch, bit-identically.** After *any* sequence of
//!    ingested batches, the running [`MomentStats`] carried by
//!    [`StreamState`] equal a single-pass recompute over the
//!    concatenated rows — bit-for-bit, not approximately — and the
//!    online moment solve (`fit_from_stats`) therefore reproduces the
//!    cold `fit` weights exactly.
//! 2. **Drift score calibration.** Two windows drawn from the same
//!    empirical distribution score exactly 0; a window with one LF's
//!    votes flipped scores strictly positive.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snorkel_core::label_model::{LabelModel, MomentModel, MomentStats};
use snorkel_core::model::{LabelScheme, TrainConfig};
use snorkel_matrix::{LabelMatrixBuilder, Vote};
use snorkel_stream::{DriftConfig, StreamState};

/// One random sparse row over `n` LFs: sorted columns + binary votes.
fn random_row(n: usize, density: f64, rng: &mut StdRng) -> (Vec<u32>, Vec<Vote>) {
    let mut cols = Vec::new();
    let mut votes = Vec::new();
    for j in 0..n {
        if rng.gen::<f64>() < density {
            cols.push(j as u32);
            votes.push(if rng.gen::<bool>() { 1 } else { -1 });
        }
    }
    (cols, votes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Running stats after any batch-arrival schedule equal a
    /// single-pass batch recompute over the same rows, bit-identically,
    /// and the online solve matches the cold fit's weights exactly.
    #[test]
    fn online_stats_match_batch_recompute_bitwise(
        n in 2usize..6,
        batch_sizes in prop::collection::vec(1usize..40, 1..8),
        density in 0.2f64..0.9,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = StreamState::new(n, LabelScheme::Binary, DriftConfig::default());
        let mut all_rows: Vec<(Vec<u32>, Vec<Vote>)> = Vec::new();

        // Online path: rows arrive in arbitrary batch groupings.
        for &size in &batch_sizes {
            for _ in 0..size {
                let (cols, votes) = random_row(n, density, &mut rng);
                state.observe_row(&cols, &votes);
                all_rows.push((cols, votes));
            }
            state.note_batch(size);
        }

        // Batch path: one pass over the concatenated rows.
        let mut batch = MomentStats::new(n, LabelScheme::Binary);
        for (cols, votes) in &all_rows {
            batch.accumulate(cols, votes, 1.0);
        }
        prop_assert_eq!(state.stats(), &batch, "running totals diverged from batch recompute");

        // The solves agree bit-for-bit too: online from running stats,
        // cold from the materialized matrix.
        let mut b = LabelMatrixBuilder::new(all_rows.len(), n);
        for (i, (cols, votes)) in all_rows.iter().enumerate() {
            for (&c, &v) in cols.iter().zip(votes) {
                b.set(i, c as usize, v);
            }
        }
        let lambda = b.build();
        let cfg = TrainConfig::default();
        let mut online = MomentModel::new(n, LabelScheme::Binary);
        online.fit_from_stats(state.stats(), &cfg);
        let mut cold = MomentModel::new(n, LabelScheme::Binary);
        cold.fit(&lambda, None, &cfg);
        for (a, b) in online
            .accuracy_weights()
            .iter()
            .zip(cold.accuracy_weights())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "online solve != cold fit");
        }
    }

    /// Feeding the detector the same row multiset twice (reference
    /// window, then a second window) scores exactly 0 — identical
    /// empirical distributions are not drift.
    #[test]
    fn identical_windows_score_exactly_zero(
        n in 2usize..6,
        window in 4usize..32,
        density in 0.3f64..0.9,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(Vec<u32>, Vec<Vote>)> =
            (0..window).map(|_| random_row(n, density, &mut rng)).collect();
        let cfg = DriftConfig { window_rows: window, ..DriftConfig::default() };
        let mut state = StreamState::new(n, LabelScheme::Binary, cfg);
        for (cols, votes) in &rows {
            state.observe_row(cols, votes); // fills + seals the reference
        }
        prop_assert_eq!(state.drift_score(), 0.0);
        for (cols, votes) in &rows {
            state.observe_row(cols, votes); // identical second window
        }
        prop_assert_eq!(state.drift_score(), 0.0, "identical windows must score exactly 0");
        prop_assert!(!state.drifted());
    }

    /// Flipping one LF's votes in the second window scores strictly
    /// positive: its agreement with the plurality inverts.
    #[test]
    fn flipped_lf_window_scores_positive(
        n in 3usize..6,
        window in 8usize..32,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Correlated suite: every LF votes the planted label, so the
        // plurality is unanimous and agreement rates start at 1.
        let rows: Vec<(Vec<u32>, Vec<Vote>)> = (0..window)
            .map(|_| {
                let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
                ((0..n as u32).collect(), vec![y; n])
            })
            .collect();
        let cfg = DriftConfig { window_rows: window, ..DriftConfig::default() };
        let mut state = StreamState::new(n, LabelScheme::Binary, cfg);
        for (cols, votes) in &rows {
            state.observe_row(cols, votes);
        }
        // Second window: LF 0 flips against the rest of the suite.
        for (cols, votes) in &rows {
            let mut flipped = votes.clone();
            flipped[0] = -flipped[0];
            state.observe_row(cols, &flipped);
        }
        prop_assert!(
            state.drift_score() > 0.0,
            "flipped LF must register positive drift, got {}",
            state.drift_score()
        );
        prop_assert!(state.per_lf_scores()[0] > 0.0);
    }
}
