//! # snorkel-stream
//!
//! The **streaming ingestion plane**: the state a labeling service
//! needs to keep accepting candidate batches *while it serves* — the
//! paper's deployment setting (and Snorkel DryBell's production story)
//! of LFs voting over live traffic rather than a frozen corpus.
//!
//! Batch ingestion already exists (`IncrementalSession` appends rows
//! and re-fits); what it lacks is a cost model that survives continuous
//! arrival. A cold moment fit is one pass over Λ — `O(m)` per batch is
//! `O(m²)` over a stream's life. This crate closes that gap with three
//! pieces, all owned here and threaded through `incr` and `serve`:
//!
//! * [`StreamState`] — the per-session streaming state: a running
//!   [`snorkel_core::label_model::MomentStats`] folded forward per
//!   ingested batch, so the moment backend's closed-form accuracies
//!   re-solve from totals in `O(n³)` (`MomentModel::fit_from_stats`) —
//!   **no pass over Λ, ever, in steady state**. The invariant that the
//!   running totals equal a batch recompute over the same rows
//!   bit-for-bit is property-tested in `tests/proptest_stream.rs`.
//! * [`DriftDetector`] — windowed per-LF coverage/agreement/conflict
//!   statistics over the ingested stream (a ring of fixed-size
//!   [`WindowStats`]), compared against a frozen reference window via a
//!   normalized divergence score in `[0, 1]`. A score crossing the
//!   configured threshold reports [`StreamState::drifted`], which the
//!   session answers with an automatic warm refit (bumping
//!   `refresh_generation`, so `PREDICT` staleness lag becomes visible
//!   under drift) and a [`DriftDetector::rebase`] to the new regime.
//! * [`IngestGate`] — bounded admission for the ingest path: a
//!   lock-free depth counter with an RAII permit. When the configured
//!   bound is reached, the serving layer refuses with
//!   `ERR backpressure` / `STATUS_ERR` instead of queueing unboundedly
//!   (`docs/PROTOCOL.md` has the normative grammar).
//!
//! Freezing: [`FrozenStream`] is the plain-data image persisted in the
//! snapshot format's v4 `STRM` section (`docs/SNAPSHOT_FORMAT.md`) —
//! running moment totals, drift configuration, reference window, and
//! the lifetime counters — so a kill/resume keeps the online model warm
//! and the drift baseline intact. The in-memory ring of *recent*
//! windows is deliberately not persisted: it is diagnostic state, and a
//! resumed process re-fills it within one window of traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod gate;
mod state;

pub use drift::{DriftConfig, DriftDetector, WindowStats};
pub use gate::{IngestGate, IngestPermit};
pub use state::{FrozenStream, StreamState, ThawStreamError};
