//! Per-session streaming state: the running moment statistics, the
//! drift detector, and the lifetime counters, plus the frozen image
//! persisted in snapshot format v4's `STRM` section.

use crate::drift::{DriftConfig, DriftDetector, WindowStats};
use snorkel_core::label_model::{MomentStats, MomentStatsParts};
use snorkel_core::model::LabelScheme;
use snorkel_matrix::{LabelMatrix, Vote};
use snorkel_obs::{Counter, Gauge};
use std::sync::Arc;
use std::sync::OnceLock;

/// Metrics of the streaming plane owned by this crate (the serving
/// layer registers the queue/backpressure series, `incr` the per-LF
/// gauges and latency histogram — each layer names what it owns).
struct StreamMetrics {
    /// `snorkel_stream_ingest_batches_total`
    batches: Arc<Counter>,
    /// `snorkel_stream_ingest_rows_total`
    rows: Arc<Counter>,
    /// `snorkel_stream_auto_refits_total`
    auto_refits: Arc<Counter>,
    /// `snorkel_stream_drift_score_ppm` — overall score × 10⁶ (the
    /// registry's gauges are integers; scores live in `[0, 1]`).
    drift_score: Arc<Gauge>,
}

/// Encode a `[0, 1]` score for an integer gauge (parts per million).
fn score_ppm(score: f64) -> i64 {
    (score * 1_000_000.0).round() as i64
}

fn stream_metrics() -> &'static StreamMetrics {
    static METRICS: OnceLock<StreamMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = snorkel_obs::global();
        StreamMetrics {
            batches: reg.counter("snorkel_stream_ingest_batches_total", &[]),
            rows: reg.counter("snorkel_stream_ingest_rows_total", &[]),
            auto_refits: reg.counter("snorkel_stream_auto_refits_total", &[]),
            drift_score: reg.gauge("snorkel_stream_drift_score_ppm", &[]),
        }
    })
}

/// The streaming state a session keeps alive between ingested batches:
/// a running [`MomentStats`] (the online moment backend's input), a
/// [`DriftDetector`], and lifetime counters. One instance per session;
/// the session folds each ingested row in under its write lock and
/// refits from the totals — no pass over Λ in steady state.
#[derive(Clone, Debug)]
pub struct StreamState {
    stats: MomentStats,
    detector: DriftDetector,
    batches: u64,
    rows: u64,
    auto_refits: u64,
}

impl StreamState {
    /// Fresh streaming state over `n` LFs under `scheme`.
    pub fn new(n: usize, scheme: LabelScheme, config: DriftConfig) -> Self {
        StreamState {
            stats: MomentStats::new(n, scheme),
            detector: DriftDetector::new(n, scheme, config),
            batches: 0,
            rows: 0,
            auto_refits: 0,
        }
    }

    /// Number of LF columns the state covers.
    pub fn num_lfs(&self) -> usize {
        self.stats.num_lfs()
    }

    /// The label scheme the statistics run under.
    pub fn scheme(&self) -> LabelScheme {
        self.stats.scheme()
    }

    /// The running sufficient statistics (feed to
    /// `MomentModel::fit_from_stats` / `LabelModel::fit_online`).
    pub fn stats(&self) -> &MomentStats {
        &self.stats
    }

    /// The drift detector (windows, reference, configuration).
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Fold one ingested row into both the running statistics and the
    /// drift detector's current window.
    pub fn observe_row(&mut self, cols: &[u32], votes: &[Vote]) {
        self.stats.accumulate(cols, votes, 1.0);
        self.detector.observe_row(cols, votes);
        self.rows += 1;
    }

    /// Mark one ingested batch complete and publish the stream gauges.
    pub fn note_batch(&mut self, batch_rows: usize) {
        self.batches += 1;
        let m = stream_metrics();
        m.batches.inc();
        m.rows.add(batch_rows as u64);
        m.drift_score.set(score_ppm(self.detector.score()));
    }

    /// Latest overall drift score (max per-LF divergence vs reference).
    pub fn drift_score(&self) -> f64 {
        self.detector.score()
    }

    /// Latest per-LF divergence scores.
    pub fn per_lf_scores(&self) -> &[f64] {
        self.detector.per_lf_scores()
    }

    /// Whether the latest sealed window crossed the drift threshold.
    pub fn drifted(&self) -> bool {
        self.detector.drifted()
    }

    /// Lifetime ingested batches.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Lifetime ingested rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Lifetime automatic drift-triggered refits.
    pub fn auto_refits(&self) -> u64 {
        self.auto_refits
    }

    /// Record that drift was answered with an automatic warm refit:
    /// bumps the counter and re-anchors the detector so the post-refit
    /// regime is the new baseline.
    pub fn record_auto_refit(&mut self) {
        self.auto_refits += 1;
        self.detector.rebase();
        let m = stream_metrics();
        m.auto_refits.inc();
        m.drift_score.set(score_ppm(self.detector.score()));
    }

    /// Rebuild the running statistics from Λ after a structural suite
    /// edit (LFs added/removed re-shape every per-LF vector). The
    /// batch recompute is acceptable here — edits are rare, ingest is
    /// not — and lifetime counters survive; the drift baseline restarts
    /// because per-LF windows are not comparable across suite shapes.
    pub fn rebuild_from_matrix(&mut self, lambda: &LabelMatrix) {
        let n = lambda.num_lfs();
        let scheme = self.stats.scheme();
        let mut stats = MomentStats::new(n, scheme);
        stats.accumulate_matrix(lambda);
        self.stats = stats;
        self.detector = DriftDetector::new(n, scheme, self.detector.config().clone());
    }

    /// Export the persistent image (snapshot `STRM` section payload).
    pub fn freeze(&self) -> FrozenStream {
        FrozenStream {
            stats: self.stats.to_parts(),
            config: self.detector.config().clone(),
            reference: self.detector.reference().cloned(),
            batches: self.batches,
            rows: self.rows,
            auto_refits: self.auto_refits,
            drift_score: self.detector.score(),
            per_lf_scores: self.detector.per_lf_scores().to_vec(),
        }
    }

    /// Rebuild from a frozen image, validating every invariant
    /// (snapshot decoders hand this untrusted data). The window ring
    /// and the partially filled current window restart empty — they
    /// are diagnostic state a resumed process re-fills within one
    /// window of traffic.
    pub fn thaw(frozen: FrozenStream) -> Result<StreamState, ThawStreamError> {
        let stats = MomentStats::from_parts(frozen.stats).map_err(ThawStreamError::BadStats)?;
        let n = stats.num_lfs();
        let scheme = stats.scheme();
        frozen
            .config
            .validate()
            .map_err(ThawStreamError::BadConfig)?;
        if let Some(reference) = &frozen.reference {
            reference.validate(n).map_err(ThawStreamError::BadWindow)?;
        }
        if frozen.per_lf_scores.len() != n {
            return Err(ThawStreamError::BadStats(format!(
                "per-LF scores have {} entries, want {n}",
                frozen.per_lf_scores.len()
            )));
        }
        for score in frozen.per_lf_scores.iter().chain([&frozen.drift_score]) {
            if !(score.is_finite() && (0.0..=1.0).contains(score)) {
                return Err(ThawStreamError::BadStats(format!(
                    "drift score {score} outside [0, 1]"
                )));
            }
        }
        let detector = DriftDetector::restore(
            n,
            scheme,
            frozen.config,
            frozen.reference,
            WindowStats::new(n),
            frozen.drift_score,
            frozen.per_lf_scores,
        );
        Ok(StreamState {
            stats,
            detector,
            batches: frozen.batches,
            rows: frozen.rows,
            auto_refits: frozen.auto_refits,
        })
    }
}

/// The plain-data image of a [`StreamState`] — what snapshot format v4
/// persists in the `STRM` section: running moment totals, drift
/// configuration, the frozen reference window, the latest scores, and
/// the lifetime counters. The diagnostic window ring is deliberately
/// not part of the image.
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenStream {
    /// Running moment sufficient statistics.
    pub stats: MomentStatsParts,
    /// Drift detector configuration.
    pub config: DriftConfig,
    /// Frozen reference window (absent until the first window sealed).
    pub reference: Option<WindowStats>,
    /// Lifetime ingested batches.
    pub batches: u64,
    /// Lifetime ingested rows.
    pub rows: u64,
    /// Lifetime automatic drift-triggered refits.
    pub auto_refits: u64,
    /// Latest overall drift score.
    pub drift_score: f64,
    /// Latest per-LF divergence scores (`num_lfs` entries).
    pub per_lf_scores: Vec<f64>,
}

/// Why a [`FrozenStream`] was rejected at thaw time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThawStreamError {
    /// The moment statistics or scores are malformed; the string names
    /// the violated invariant.
    BadStats(String),
    /// The reference window's counts are inconsistent.
    BadWindow(String),
    /// The drift configuration is out of range.
    BadConfig(String),
}

impl std::fmt::Display for ThawStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThawStreamError::BadStats(why) => write!(f, "bad stream statistics: {why}"),
            ThawStreamError::BadWindow(why) => write!(f, "bad reference window: {why}"),
            ThawStreamError::BadConfig(why) => write!(f, "bad drift config: {why}"),
        }
    }
}

impl std::error::Error for ThawStreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_state(rows: usize) -> StreamState {
        let config = DriftConfig {
            window_rows: 4,
            ..DriftConfig::default()
        };
        let mut state = StreamState::new(3, LabelScheme::Binary, config);
        for i in 0..rows {
            let v = if i % 2 == 0 { 1 } else { -1 };
            state.observe_row(&[0, 1, 2], &[v, v, -v]);
        }
        state.note_batch(rows);
        state
    }

    #[test]
    fn freeze_thaw_round_trips() {
        let mut state = filled_state(10);
        state.record_auto_refit();
        let frozen = state.freeze();
        let thawed = StreamState::thaw(frozen.clone()).expect("thaw");
        assert_eq!(thawed.stats(), state.stats());
        assert_eq!(thawed.batches(), state.batches());
        assert_eq!(thawed.rows(), state.rows());
        assert_eq!(thawed.auto_refits(), state.auto_refits());
        assert_eq!(thawed.drift_score(), state.drift_score());
        assert_eq!(thawed.detector().reference(), state.detector().reference());
        // Round-tripping the thawed state reproduces the same image.
        assert_eq!(thawed.freeze(), frozen);
    }

    #[test]
    fn thaw_rejects_corruption() {
        let state = filled_state(10);
        let good = state.freeze();

        let mut bad = good.clone();
        bad.per_lf_scores.pop();
        assert!(matches!(
            StreamState::thaw(bad),
            Err(ThawStreamError::BadStats(_))
        ));

        let mut bad = good.clone();
        bad.drift_score = f64::NAN;
        assert!(matches!(
            StreamState::thaw(bad),
            Err(ThawStreamError::BadStats(_))
        ));

        let mut bad = good.clone();
        bad.config.window_rows = 0;
        assert!(matches!(
            StreamState::thaw(bad),
            Err(ThawStreamError::BadConfig(_))
        ));

        let mut bad = good.clone();
        if let Some(reference) = &mut bad.reference {
            reference.agree_mv[0] = reference.total_mv[0] + 1;
        }
        assert!(matches!(
            StreamState::thaw(bad),
            Err(ThawStreamError::BadWindow(_))
        ));
    }

    #[test]
    fn rebuild_from_matrix_keeps_counters_and_matches_batch() {
        use snorkel_matrix::LabelMatrixBuilder;
        let mut state = filled_state(8);
        let mut b = LabelMatrixBuilder::new(6, 4);
        for i in 0..6 {
            let v: Vote = if i % 2 == 0 { 1 } else { -1 };
            b.set(i, 0, v);
            b.set(i, 1, v);
            b.set(i, 3, -v);
        }
        let lambda = b.build();
        state.rebuild_from_matrix(&lambda);
        assert_eq!(state.num_lfs(), 4);
        assert_eq!(state.batches(), 1, "lifetime counters survive rebuild");
        let mut batch = MomentStats::new(4, LabelScheme::Binary);
        batch.accumulate_matrix(&lambda);
        assert_eq!(state.stats(), &batch);
    }
}
