//! Windowed per-LF drift detection over the ingested stream.
//!
//! The detector keeps a **current window** that fills as rows stream
//! in; every `window_rows` rows it seals the window, scores it against
//! the frozen **reference window**, and pushes it onto a bounded ring
//! of recent windows. The first sealed window becomes the reference;
//! after an automatic refit the caller re-anchors with
//! [`DriftDetector::rebase`] so the post-refit regime is the new
//! baseline.
//!
//! The score is a normalized divergence in `[0, 1]`: per LF, the mean
//! of the absolute coverage-rate delta and the absolute
//! plurality-agreement-rate delta between the window and the reference
//! (equivalently `1 − conflict`, so conflict shifts move it too); the
//! overall score is the max across LFs — one collapsed or flipped LF
//! is drift even when the suite average looks calm. Two windows drawn
//! from identical empirical distributions score exactly 0; a flipped
//! LF moves its agreement rate and scores positive (both are
//! property-tested).

use snorkel_core::model::LabelScheme;
use snorkel_matrix::Vote;
use std::collections::VecDeque;

/// Configuration of the drift detector, persisted in snapshots so a
/// resumed process keeps the same sensitivity.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftConfig {
    /// Rows per window. Smaller windows react faster but are noisier.
    pub window_rows: usize,
    /// Sealed windows retained in the diagnostic ring.
    pub ring_windows: usize,
    /// Divergence score above which the stream counts as drifted.
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window_rows: 512,
            ring_windows: 8,
            threshold: 0.25,
        }
    }
}

impl DriftConfig {
    /// Structural validation (snapshot decoders hand this untrusted
    /// data). The error string names the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_rows == 0 {
            return Err("drift window_rows must be positive".into());
        }
        if self.ring_windows == 0 {
            return Err("drift ring_windows must be positive".into());
        }
        if !(self.threshold.is_finite() && self.threshold > 0.0) {
            return Err(format!("bad drift threshold {}", self.threshold));
        }
        Ok(())
    }
}

/// Per-LF vote statistics over one fixed-size window of ingested rows:
/// coverage, agreement with the row's plurality class, and (implied)
/// conflict. Counts are exact integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowStats {
    /// Rows folded into this window.
    pub rows: u64,
    /// Per-LF non-abstain vote counts.
    pub votes: Vec<u64>,
    /// Per-LF votes agreeing with the row's plurality class.
    pub agree_mv: Vec<u64>,
    /// Per-LF votes on rows that have a unique plurality class.
    pub total_mv: Vec<u64>,
}

impl WindowStats {
    /// An empty window over `n` LFs.
    pub fn new(n: usize) -> Self {
        WindowStats {
            rows: 0,
            votes: vec![0; n],
            agree_mv: vec![0; n],
            total_mv: vec![0; n],
        }
    }

    /// Number of LF columns the window covers.
    pub fn num_lfs(&self) -> usize {
        self.votes.len()
    }

    /// Per-LF coverage rate within the window.
    pub fn coverage(&self, j: usize) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.votes[j] as f64 / self.rows as f64
        }
    }

    /// Per-LF agreement rate with the plurality vote (`None` when the
    /// LF never voted on a plurality-covered row in this window).
    pub fn agreement(&self, j: usize) -> Option<f64> {
        if self.total_mv[j] == 0 {
            None
        } else {
            Some(self.agree_mv[j] as f64 / self.total_mv[j] as f64)
        }
    }

    /// Per-LF conflict rate (`1 −` agreement; `None` as
    /// [`agreement`](Self::agreement)).
    pub fn conflict(&self, j: usize) -> Option<f64> {
        self.agreement(j).map(|a| 1.0 - a)
    }

    /// Structural validation for thawed windows.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (name, vec) in [
            ("votes", &self.votes),
            ("agree_mv", &self.agree_mv),
            ("total_mv", &self.total_mv),
        ] {
            if vec.len() != n {
                return Err(format!("window {name} has {} entries, want {n}", vec.len()));
            }
        }
        for j in 0..n {
            if self.votes[j] > self.rows || self.total_mv[j] > self.votes[j] {
                return Err(format!("window counts inconsistent at LF {j}"));
            }
            if self.agree_mv[j] > self.total_mv[j] {
                return Err(format!("window agreements exceed votes at LF {j}"));
            }
        }
        Ok(())
    }

    fn observe(&mut self, scheme: LabelScheme, cols: &[u32], votes: &[Vote], tally: &mut [usize]) {
        self.rows += 1;
        tally.iter_mut().for_each(|t| *t = 0);
        for (&c, &v) in cols.iter().zip(votes) {
            self.votes[c as usize] += 1;
            if let Some(class) = scheme.class_of_vote(v) {
                tally[class] += 1;
            }
        }
        let best = tally.iter().copied().max().unwrap_or(0);
        if best == 0 || tally.iter().filter(|&&t| t == best).count() != 1 {
            return;
        }
        let mv = tally.iter().position(|&t| t == best).expect("best exists");
        for (&c, &v) in cols.iter().zip(votes) {
            if let Some(class) = scheme.class_of_vote(v) {
                let j = c as usize;
                self.total_mv[j] += 1;
                if class == mv {
                    self.agree_mv[j] += 1;
                }
            }
        }
    }
}

/// Normalized divergence of `w` from `r`, per LF: the mean of the
/// absolute coverage delta and the absolute agreement delta, each in
/// `[0, 1]`. The agreement term contributes only when both windows
/// observed the LF on plurality-covered rows (a coverage collapse is
/// already the coverage term's job).
fn divergence_per_lf(w: &WindowStats, r: &WindowStats, out: &mut [f64]) {
    for (j, slot) in out.iter_mut().enumerate().take(w.num_lfs()) {
        let cov = (w.coverage(j) - r.coverage(j)).abs();
        let agr = match (w.agreement(j), r.agreement(j)) {
            (Some(a), Some(b)) => (a - b).abs(),
            _ => 0.0,
        };
        *slot = (cov + agr) / 2.0;
    }
}

/// The windowed drift detector. Feed rows with
/// [`observe_row`](Self::observe_row); read
/// [`score`](Self::score) / [`per_lf_scores`](Self::per_lf_scores);
/// re-anchor with [`rebase`](Self::rebase) after acting on drift.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    scheme: LabelScheme,
    current: WindowStats,
    reference: Option<WindowStats>,
    ring: VecDeque<WindowStats>,
    /// Per-LF scores of the most recently sealed window vs the
    /// reference; the overall score is their max.
    scores: Vec<f64>,
    score: f64,
    tally: Vec<usize>,
}

impl DriftDetector {
    /// A detector over `n` LFs under `scheme`.
    pub fn new(n: usize, scheme: LabelScheme, config: DriftConfig) -> Self {
        config.validate().expect("invalid drift config");
        DriftDetector {
            config,
            scheme,
            current: WindowStats::new(n),
            reference: None,
            ring: VecDeque::new(),
            scores: vec![0.0; n],
            score: 0.0,
            tally: vec![0; scheme.num_classes()],
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Number of LF columns the detector covers.
    pub fn num_lfs(&self) -> usize {
        self.current.num_lfs()
    }

    /// The frozen reference window, once the first window has sealed.
    pub fn reference(&self) -> Option<&WindowStats> {
        self.reference.as_ref()
    }

    /// The in-progress (unsealed) window.
    pub fn current(&self) -> &WindowStats {
        &self.current
    }

    /// The sealed windows still in the diagnostic ring, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &WindowStats> {
        self.ring.iter()
    }

    /// Fold one ingested row into the current window, sealing and
    /// scoring it when it fills.
    pub fn observe_row(&mut self, cols: &[u32], votes: &[Vote]) {
        let mut tally = std::mem::take(&mut self.tally);
        self.current.observe(self.scheme, cols, votes, &mut tally);
        self.tally = tally;
        if self.current.rows as usize >= self.config.window_rows {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let n = self.num_lfs();
        let sealed = std::mem::replace(&mut self.current, WindowStats::new(n));
        match &self.reference {
            None => {
                self.reference = Some(sealed.clone());
                self.scores.iter_mut().for_each(|s| *s = 0.0);
                self.score = 0.0;
            }
            Some(reference) => {
                divergence_per_lf(&sealed, reference, &mut self.scores);
                self.score = self.scores.iter().cloned().fold(0.0, f64::max);
            }
        }
        self.ring.push_back(sealed);
        while self.ring.len() > self.config.ring_windows {
            self.ring.pop_front();
        }
    }

    /// Overall drift score: the max per-LF divergence of the most
    /// recently sealed window from the reference. 0 until two windows
    /// exist.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Per-LF divergence scores of the most recently sealed window.
    pub fn per_lf_scores(&self) -> &[f64] {
        &self.scores
    }

    /// Whether the latest sealed window crossed the threshold.
    pub fn drifted(&self) -> bool {
        self.score > self.config.threshold
    }

    /// Re-anchor after acting on drift: the most recently sealed
    /// window becomes the new reference and the score resets — the
    /// post-refit regime is the new baseline.
    pub fn rebase(&mut self) {
        if let Some(latest) = self.ring.back() {
            self.reference = Some(latest.clone());
        }
        self.scores.iter_mut().for_each(|s| *s = 0.0);
        self.score = 0.0;
    }

    /// Restore a detector from thawed state (reference window and
    /// partially filled current window; the ring restarts empty).
    pub(crate) fn restore(
        n: usize,
        scheme: LabelScheme,
        config: DriftConfig,
        reference: Option<WindowStats>,
        current: WindowStats,
        score: f64,
        scores: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(current.num_lfs(), n);
        DriftDetector {
            config,
            scheme,
            current,
            reference,
            ring: VecDeque::new(),
            scores,
            score,
            tally: vec![0; scheme.num_classes()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut DriftDetector, rows: &[(&[u32], &[Vote])]) {
        for (cols, votes) in rows {
            d.observe_row(cols, votes);
        }
    }

    #[test]
    fn identical_windows_score_zero() {
        let mut d = DriftDetector::new(
            3,
            LabelScheme::Binary,
            DriftConfig {
                window_rows: 4,
                ..DriftConfig::default()
            },
        );
        let pattern: Vec<(&[u32], &[Vote])> = vec![
            (&[0, 1], &[1, 1]),
            (&[0, 2], &[1, -1]),
            (&[1], &[-1]),
            (&[0, 1, 2], &[1, 1, 1]),
        ];
        feed(&mut d, &pattern); // seals the reference
        assert!(d.reference().is_some());
        assert_eq!(d.score(), 0.0);
        feed(&mut d, &pattern); // identical distribution
        assert_eq!(d.score(), 0.0, "identical windows must score exactly 0");
        assert!(!d.drifted());
    }

    #[test]
    fn flipped_lf_scores_positive_and_rebase_resets() {
        let cfg = DriftConfig {
            window_rows: 4,
            threshold: 0.1,
            ..DriftConfig::default()
        };
        let mut d = DriftDetector::new(3, LabelScheme::Binary, cfg);
        let agree: Vec<(&[u32], &[Vote])> = vec![
            (&[0, 1, 2], &[1, 1, 1]),
            (&[0, 1, 2], &[-1, -1, -1]),
            (&[0, 1, 2], &[1, 1, 1]),
            (&[0, 1, 2], &[-1, -1, -1]),
        ];
        // LF 2 flips against the other two.
        let flipped: Vec<(&[u32], &[Vote])> = vec![
            (&[0, 1, 2], &[1, 1, -1]),
            (&[0, 1, 2], &[-1, -1, 1]),
            (&[0, 1, 2], &[1, 1, -1]),
            (&[0, 1, 2], &[-1, -1, 1]),
        ];
        feed(&mut d, &agree);
        feed(&mut d, &flipped);
        assert!(d.score() > 0.0, "flipped LF must score positive");
        assert!(d.drifted());
        assert!(d.per_lf_scores()[2] > d.per_lf_scores()[0]);
        d.rebase();
        assert_eq!(d.score(), 0.0);
        assert!(!d.drifted());
        // The flipped regime is now the baseline: more of it is calm.
        feed(&mut d, &flipped);
        assert_eq!(d.score(), 0.0);
    }

    #[test]
    fn ring_is_bounded() {
        let mut d = DriftDetector::new(
            1,
            LabelScheme::Binary,
            DriftConfig {
                window_rows: 1,
                ring_windows: 3,
                ..DriftConfig::default()
            },
        );
        for _ in 0..10 {
            d.observe_row(&[0], &[1]);
        }
        assert_eq!(d.ring().count(), 3);
    }
}
