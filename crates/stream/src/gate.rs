//! Bounded admission for the ingest path.
//!
//! The serving layer admits an `INGEST` request only if it can obtain
//! an [`IngestPermit`] from the session's [`IngestGate`]; when the
//! configured bound is reached it refuses with `ERR backpressure`
//! (text) or `STATUS_ERR` (binary) instead of queueing unboundedly.
//! The gate is a lock-free depth counter — admission never touches the
//! session lock, so a saturated ingest pipeline sheds load without
//! delaying readers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A bounded admission counter for in-flight ingest batches.
///
/// `try_enter` either hands back an RAII [`IngestPermit`] (releasing
/// the slot on drop, including on panic and early-error paths) or
/// `None` when the gate is full. Cloning shares the counter.
#[derive(Clone, Debug)]
pub struct IngestGate {
    inner: Arc<GateInner>,
}

#[derive(Debug)]
struct GateInner {
    depth: AtomicUsize,
    capacity: usize,
    rejected: AtomicUsize,
}

impl IngestGate {
    /// A gate admitting at most `capacity` concurrent ingests.
    /// Capacity 0 refuses everything (a drain/maintenance mode).
    pub fn new(capacity: usize) -> Self {
        IngestGate {
            inner: Arc::new(GateInner {
                depth: AtomicUsize::new(0),
                capacity,
                rejected: AtomicUsize::new(0),
            }),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Ingest batches currently holding a permit.
    pub fn depth(&self) -> usize {
        self.inner.depth.load(Ordering::Acquire)
    }

    /// Lifetime count of refused admissions.
    pub fn rejected(&self) -> usize {
        self.inner.rejected.load(Ordering::Relaxed)
    }

    /// Try to admit one ingest batch. `None` means backpressure: the
    /// caller must refuse the request, not block.
    pub fn try_enter(&self) -> Option<IngestPermit> {
        let mut depth = self.inner.depth.load(Ordering::Acquire);
        loop {
            if depth >= self.inner.capacity {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inner.depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Some(IngestPermit {
                        gate: Arc::clone(&self.inner),
                    })
                }
                Err(observed) => depth = observed,
            }
        }
    }
}

/// An admitted ingest slot; dropping it releases the slot.
#[derive(Debug)]
pub struct IngestPermit {
    gate: Arc<GateInner>,
}

impl Drop for IngestPermit {
    fn drop(&mut self) {
        self.gate.depth.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_and_releases_on_drop() {
        let gate = IngestGate::new(2);
        let a = gate.try_enter().expect("slot 1");
        let _b = gate.try_enter().expect("slot 2");
        assert_eq!(gate.depth(), 2);
        assert!(gate.try_enter().is_none(), "full gate must refuse");
        assert_eq!(gate.rejected(), 1);
        drop(a);
        assert_eq!(gate.depth(), 1);
        assert!(gate.try_enter().is_some());
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let gate = IngestGate::new(0);
        assert!(gate.try_enter().is_none());
    }

    #[test]
    fn clones_share_the_counter() {
        let gate = IngestGate::new(1);
        let other = gate.clone();
        let _p = gate.try_enter().expect("slot");
        assert_eq!(other.depth(), 1);
        assert!(other.try_enter().is_none());
    }

    #[test]
    fn permit_released_even_on_panic() {
        let gate = IngestGate::new(1);
        let clone = gate.clone();
        let result = std::panic::catch_unwind(move || {
            let _p = clone.try_enter().expect("slot");
            panic!("ingest failed mid-flight");
        });
        assert!(result.is_err());
        assert_eq!(gate.depth(), 0, "panic must not leak the slot");
    }
}
