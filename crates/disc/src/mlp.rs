//! A small dense multi-layer perceptron with noise-aware training.
//!
//! The stand-in for the paper's ResNet-50: the Radiology cross-modal
//! task trains an image classifier on dense feature vectors (synthetic
//! "embeddings") with probabilistic labels from text-side labeling
//! functions. One ReLU hidden layer is ample for those features and
//! keeps the from-scratch backprop auditable.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use snorkel_linalg::math::sigmoid;
use snorkel_linalg::Mat;
use snorkel_matrix::Vote;

use crate::adam::Adam;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Init / shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            input_dim: 32,
            hidden_dim: 32,
            epochs: 50,
            learning_rate: 0.005,
            l2: 1e-5,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Binary MLP: `input → ReLU(hidden) → scalar logit`.
#[derive(Clone, Debug)]
pub struct Mlp {
    w1: Mat, // hidden × input
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

impl Mlp {
    /// Glorot-ish random initialization.
    pub fn new(cfg: &MlpConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale1 = (2.0 / (cfg.input_dim + cfg.hidden_dim) as f64).sqrt();
        let w1 = Mat::from_fn(cfg.hidden_dim, cfg.input_dim, |_, _| {
            (rng.gen::<f64>() * 2.0 - 1.0) * scale1
        });
        let scale2 = (2.0 / (cfg.hidden_dim + 1) as f64).sqrt();
        let w2 = (0..cfg.hidden_dim)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale2)
            .collect();
        Mlp {
            w1,
            b1: vec![0.0; cfg.hidden_dim],
            w2,
            b2: 0.0,
        }
    }

    fn forward(&self, x: &[f64], hidden: &mut Vec<f64>) -> f64 {
        hidden.resize(self.b1.len(), 0.0);
        self.w1.matvec(x, hidden);
        for (h, b) in hidden.iter_mut().zip(&self.b1) {
            *h = (*h + b).max(0.0); // ReLU
        }
        snorkel_linalg::math::dot(hidden, &self.w2) + self.b2
    }

    /// `P(y = +1 | x)`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let mut hidden = Vec::new();
        sigmoid(self.forward(x, &mut hidden))
    }

    /// Probabilities for a batch.
    pub fn predict_proba_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Hard ±1 predictions at 0.5.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<Vote> {
        xs.iter()
            .map(|x| if self.predict_proba(x) > 0.5 { 1 } else { -1 })
            .collect()
    }

    /// Train with the noise-aware binary log-loss on soft targets
    /// `P(y=+1)`. Returns final-epoch mean loss.
    pub fn fit(&mut self, xs: &[Vec<f64>], soft: &[f64], cfg: &MlpConfig) -> f64 {
        assert_eq!(xs.len(), soft.len(), "fit: one target per example");
        let h = cfg.hidden_dim;
        let d = cfg.input_dim;
        let n_params = h * d + h + h + 1;
        let mut adam = Adam::new(n_params, cfg.learning_rate);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut grad = vec![0.0; n_params];
        let mut hidden = Vec::with_capacity(h);
        let mut last_loss = 0.0;

        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(cfg.batch_size) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                for &i in batch {
                    let x = &xs[i];
                    assert_eq!(x.len(), d, "input dim mismatch at row {i}");
                    let s = self.forward(x, &mut hidden);
                    let p = sigmoid(s);
                    let t = soft[i];
                    epoch_loss -= t * p.max(1e-12).ln() + (1.0 - t) * (1.0 - p).max(1e-12).ln();
                    let delta = p - t; // dL/ds
                                       // Backprop: w2 & b2.
                    let (gw1, rest) = grad.split_at_mut(h * d);
                    let (gb1, rest) = rest.split_at_mut(h);
                    let (gw2, gb2) = rest.split_at_mut(h);
                    for j in 0..h {
                        gw2[j] += delta * hidden[j];
                    }
                    gb2[0] += delta;
                    // Hidden layer.
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue; // ReLU gate
                        }
                        let dj = delta * self.w2[j];
                        gb1[j] += dj;
                        let row = &mut gw1[j * d..(j + 1) * d];
                        for (g, &xv) in row.iter_mut().zip(x) {
                            *g += dj * xv;
                        }
                    }
                }
                // Average + L2, then one Adam step over the flat params.
                let bf = batch.len() as f64;
                let mut params = self.flatten();
                for (g, p) in grad.iter_mut().zip(&params) {
                    *g = *g / bf + cfg.l2 * p;
                }
                adam.step(&mut params, &grad);
                self.unflatten(&params, h, d);
            }
            last_loss = epoch_loss / xs.len() as f64;
        }
        last_loss
    }

    /// Train on hard ±1 labels (gold 0 rows get weight-less 0.5 targets
    /// and are effectively ignored by the symmetric loss).
    pub fn fit_hard(&mut self, xs: &[Vec<f64>], gold: &[Vote], cfg: &MlpConfig) -> f64 {
        let pairs: Vec<(Vec<f64>, f64)> = xs
            .iter()
            .zip(gold)
            .filter(|&(_, &g)| g != 0)
            .map(|(x, &g)| (x.clone(), if g == 1 { 1.0 } else { 0.0 }))
            .collect();
        let (xs2, soft): (Vec<Vec<f64>>, Vec<f64>) = pairs.into_iter().unzip();
        self.fit(&xs2, &soft, cfg)
    }

    fn flatten(&self) -> Vec<f64> {
        let mut p =
            Vec::with_capacity(self.w1.rows() * self.w1.cols() + self.b1.len() + self.w2.len() + 1);
        p.extend_from_slice(self.w1.as_slice());
        p.extend_from_slice(&self.b1);
        p.extend_from_slice(&self.w2);
        p.push(self.b2);
        p
    }

    fn unflatten(&mut self, params: &[f64], h: usize, d: usize) {
        self.w1 = Mat::from_vec(h, d, params[..h * d].to_vec());
        self.b1.copy_from_slice(&params[h * d..h * d + h]);
        self.w2.copy_from_slice(&params[h * d + h..h * d + 2 * h]);
        self.b2 = params[h * d + 2 * h];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(input_dim: usize) -> MlpConfig {
        MlpConfig {
            input_dim,
            hidden_dim: 16,
            epochs: 200,
            learning_rate: 0.01,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn learns_xor() {
        // The canonical not-linearly-separable problem.
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys: Vec<Vote> = vec![-1, 1, 1, -1];
        // Four points cost nothing per epoch; the long schedule rides out
        // slow-converging init draws (seed 0 needs ~700 epochs).
        let c = MlpConfig {
            epochs: 1500,
            ..cfg(2)
        };
        let mut mlp = Mlp::new(&c);
        mlp.fit_hard(&xs, &ys, &c);
        assert_eq!(mlp.predict_all(&xs), ys, "XOR not learned");
    }

    #[test]
    fn learns_linear_separation_with_noise_aware_targets() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs = Vec::new();
        let mut gold = Vec::new();
        for _ in 0..400 {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            let base = y as f64;
            xs.push(vec![
                base + rng.gen::<f64>() * 0.6,
                -base + rng.gen::<f64>() * 0.6,
            ]);
            gold.push(y);
        }
        let soft: Vec<f64> = gold
            .iter()
            .map(|&y| if y == 1 { 0.85 } else { 0.15 })
            .collect();
        let c = MlpConfig {
            input_dim: 2,
            hidden_dim: 8,
            epochs: 60,
            ..MlpConfig::default()
        };
        let mut mlp = Mlp::new(&c);
        mlp.fit(&xs, &soft, &c);
        let acc = crate::metrics::accuracy(&mlp.predict_all(&xs), &gold);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_under_seed() {
        let xs = vec![vec![0.2, 0.8], vec![0.9, 0.1]];
        let soft = vec![1.0, 0.0];
        let c = cfg(2);
        let mut a = Mlp::new(&c);
        let mut b = Mlp::new(&c);
        a.fit(&xs, &soft, &c);
        b.fit(&xs, &soft, &c);
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn probabilities_in_range() {
        let c = cfg(3);
        let mlp = Mlp::new(&c);
        let p = mlp.predict_proba(&[1000.0, -1000.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn dim_mismatch_panics() {
        let c = cfg(2);
        let mut mlp = Mlp::new(&c);
        let _ = mlp.fit(&[vec![1.0]], &[1.0], &c);
    }
}
