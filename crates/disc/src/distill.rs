//! Distillation: shard-parallel noise-aware training of a serving model
//! on the label model's marginals.
//!
//! The label model can only score candidates that appear in Λ. The
//! *distilled* model is the discriminative half of the paper (§2.4): it
//! trains on the probabilistic labels `Ỹ` with the noise-aware expected
//! loss and generalizes to candidates **outside the labeling functions'
//! coverage** — the traffic a deployed labeling service mostly gets.
//!
//! [`DistilledModel`] wraps the crate's linear backends (binary
//! [`LogisticRegression`], multi-class [`SoftmaxRegression`]) behind one
//! marginal-row-in / posterior-out surface, and [`DistilledModel::fit`]
//! implements the training scheme the serving layer needs:
//!
//! * **Noise-aware weighting.** Every row trains on its full marginal
//!   distribution; rows whose marginal is close to uniform (the
//!   all-abstain posterior) carry almost no supervision signal, so each
//!   row's gradient is scaled by its *confidence*
//!   `(max_c p̃_c − 1/K) · K/(K−1) ∈ [0, 1]` and rows below
//!   [`DistillConfig::min_confidence`] are dropped outright.
//! * **Shard-parallel minibatches.** Training is data-parallel over the
//!   caller's row ranges — in production the ranges of the live
//!   `ShardedMatrix` plan, so distillation reuses the partition built
//!   for generative scale-out. Each step takes one minibatch *per
//!   shard* concurrently, merges the partial gradients **in shard
//!   order** (deterministic for any thread count), and applies a single
//!   Adam update.
//! * **Warm starts.** `fit` continues from the model's current weights,
//!   so the serving layer's retrain-after-edit converges in a fraction
//!   of the cold epochs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use snorkel_linalg::math::{sigmoid, softmax_in_place};
use snorkel_linalg::SparseVec;
use snorkel_matrix::Vote;

use crate::adam::Adam;
use crate::features::hash_feature;
use crate::logreg::LogisticRegression;
use crate::softmax::SoftmaxRegression;

/// Hash raw feature strings into an L2-normalized [`SparseVec`] — the
/// serving-side counterpart of [`crate::TextFeaturizer::featurize`] for
/// callers that ship pre-extracted feature names (the `PREDICT` wire
/// verb). Duplicate names merge by summation before normalization.
///
/// ```
/// use snorkel_disc::hash_features;
/// let v = hash_features(["u=magnesium", "btw=causes"], 1 << 18);
/// assert_eq!(v.nnz(), 2);
/// assert!((v.norm2_sq() - 1.0).abs() < 1e-9);
/// ```
pub fn hash_features<'a>(names: impl IntoIterator<Item = &'a str>, buckets: u32) -> SparseVec {
    let pairs: Vec<(u32, f64)> = names
        .into_iter()
        .map(|name| (hash_feature(name, buckets), 1.0))
        .collect();
    let mut v = SparseVec::from_pairs(pairs);
    v.l2_normalize();
    v
}

/// [`hash_features`] into caller-owned scratch: `pairs` is the hash
/// staging buffer, `out` receives the L2-normalized vector. Both keep
/// their capacity across calls, so a warm serving worker hashes every
/// request without touching the allocator. Produces exactly what
/// `hash_features` returns (same hash, same merge order, same
/// normalization).
pub fn hash_features_into<'a>(
    names: impl IntoIterator<Item = &'a str>,
    buckets: u32,
    pairs: &mut Vec<(u32, f64)>,
    out: &mut SparseVec,
) {
    pairs.clear();
    pairs.extend(
        names
            .into_iter()
            .map(|name| (hash_feature(name, buckets), 1.0)),
    );
    out.assign_from_pairs(pairs);
    out.l2_normalize();
}

/// Per-row confidence of a marginal distribution: 0 on the uniform
/// (all-abstain) posterior, 1 on a one-hot posterior.
pub fn marginal_confidence(row: &[f64]) -> f64 {
    let k = row.len();
    if k < 2 {
        return 0.0;
    }
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    ((max - 1.0 / k as f64) * k as f64 / (k - 1) as f64).clamp(0.0, 1.0)
}

/// Training configuration for [`DistilledModel::fit`].
#[derive(Clone, Debug, PartialEq)]
pub struct DistillConfig {
    /// Feature dimensionality (hash buckets).
    pub dim: u32,
    /// Training epochs (one pass over every shard's trainable rows).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength (applied to touched coordinates).
    pub l2: f64,
    /// Minibatch size *per shard and step*; the effective step batch is
    /// `batch_size × live shards`.
    pub batch_size: usize,
    /// Shuffle seed (per-shard streams are derived from it).
    pub seed: u64,
    /// Rows whose [`marginal_confidence`] is at or below this floor are
    /// dropped from training (no supervision signal); everything above
    /// it is down-weighted by its confidence, not clipped.
    pub min_confidence: f64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            dim: 1 << 18,
            epochs: 5,
            learning_rate: 0.02,
            l2: 1e-6,
            batch_size: 128,
            seed: 0,
            min_confidence: 1e-6,
        }
    }
}

/// What one [`DistilledModel::fit`] call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistillReport {
    /// Rows offered (the union of the row ranges).
    pub rows_total: usize,
    /// Rows that carried supervision signal and trained.
    pub rows_trained: usize,
    /// Rows dropped at the confidence floor (abstain-marginal rows).
    pub rows_dropped: usize,
    /// Mean confidence weight of the trained rows.
    pub mean_confidence: f64,
    /// Epochs run.
    pub epochs: usize,
    /// Optimizer steps taken (one merged Adam update each).
    pub steps: usize,
    /// Weighted mean training loss of the final epoch.
    pub final_loss: f64,
}

/// Stable plain-data encoding of a [`DistilledModel`] — the snapshot
/// surface for `snorkel-serve`. Weight vectors are stored sparse
/// (non-zero buckets only): a freshly distilled model touches a small
/// fraction of its hash space.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscModelParts {
    /// Feature dimensionality (hash buckets).
    pub dim: u32,
    /// Per-class sparse weight vectors, `(bucket, weight)` with strictly
    /// increasing buckets. One entry means the binary model (class +1
    /// scores); `K ≥ 2` entries mean the `K`-class softmax model.
    pub class_weights: Vec<Vec<(u32, f64)>>,
    /// Per-class biases, parallel to `class_weights` (one entry for the
    /// binary model).
    pub bias: Vec<f64>,
}

impl DiscModelParts {
    /// Check every structural invariant; [`DistilledModel::from_parts`]
    /// refuses parts that fail.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("disc model dim is zero".into());
        }
        if self.class_weights.is_empty() {
            return Err("disc model has no weight vectors".into());
        }
        if self.class_weights.len() != self.bias.len() {
            return Err(format!(
                "disc model has {} weight vectors but {} biases",
                self.class_weights.len(),
                self.bias.len()
            ));
        }
        for (c, w) in self.class_weights.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &(idx, val) in w {
                if idx >= self.dim {
                    return Err(format!(
                        "class {c} references bucket {idx} ≥ dim {}",
                        self.dim
                    ));
                }
                if prev.is_some_and(|p| p >= idx) {
                    return Err(format!("class {c} buckets are not strictly increasing"));
                }
                if !val.is_finite() {
                    return Err(format!("class {c} has a non-finite weight"));
                }
                prev = Some(idx);
            }
        }
        if self.bias.iter().any(|b| !b.is_finite()) {
            return Err("disc model has a non-finite bias".into());
        }
        Ok(())
    }
}

/// The distilled serving model: a noise-aware linear model over hashed
/// features, trained on label-model marginals and able to score
/// candidates **with zero LF coverage**. Class order matches the label
/// model's marginal rows (binary: index 0 = vote `+1`; multi-class:
/// index `c` = vote `c + 1`).
#[derive(Clone, Debug)]
pub enum DistilledModel {
    /// Binary tasks: logistic regression, `P(y = +1)` first.
    Binary(LogisticRegression),
    /// `K`-class tasks (`K > 2` at construction): softmax regression.
    Multi(SoftmaxRegression),
}

impl DistilledModel {
    /// Zero-initialized model for `num_classes` classes over `dim`
    /// hashed-feature buckets. Two classes build the binary backend.
    pub fn new(dim: u32, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        if num_classes == 2 {
            DistilledModel::Binary(LogisticRegression::new(dim))
        } else {
            DistilledModel::Multi(SoftmaxRegression::new(dim, num_classes))
        }
    }

    /// Feature dimensionality (hash buckets).
    pub fn dim(&self) -> u32 {
        match self {
            DistilledModel::Binary(m) => m.dim(),
            DistilledModel::Multi(m) => m.dim(),
        }
    }

    /// Number of classes scored.
    pub fn num_classes(&self) -> usize {
        match self {
            DistilledModel::Binary(_) => 2,
            DistilledModel::Multi(m) => m.num_classes(),
        }
    }

    /// Class posterior for one feature vector, in marginal-row order.
    pub fn predict_proba(&self, x: &SparseVec) -> Vec<f64> {
        match self {
            DistilledModel::Binary(m) => {
                let p = m.predict_proba(x);
                vec![p, 1.0 - p]
            }
            DistilledModel::Multi(m) => m.predict_proba(x),
        }
    }

    /// [`Self::predict_proba`] into a caller-owned slice of
    /// `num_classes()` elements, allocating nothing; the values written
    /// are bit-identical to `predict_proba`'s (same score, same
    /// sigmoid/softmax sequence). This is the kernel under the serving
    /// layer's `PREDICT` arena path.
    ///
    /// Panics if `out.len() != num_classes()`.
    pub fn predict_proba_into(&self, x: &SparseVec, out: &mut [f64]) {
        match self {
            DistilledModel::Binary(m) => {
                assert_eq!(out.len(), 2, "predict_proba_into needs two slots");
                let p = m.predict_proba(x);
                out[0] = p;
                out[1] = 1.0 - p;
            }
            DistilledModel::Multi(m) => m.predict_proba_into(x, out),
        }
    }

    /// Independent parameter groups: one weight vector + bias for the
    /// binary model, one per class for the softmax model.
    fn num_groups(&self) -> usize {
        match self {
            DistilledModel::Binary(_) => 1,
            DistilledModel::Multi(m) => m.num_classes(),
        }
    }

    /// MAP prediction as a vote value: `±1` for the binary model,
    /// `1..=K` for the multi-class model.
    pub fn predict_vote(&self, x: &SparseVec) -> Vote {
        match self {
            DistilledModel::Binary(m) => {
                if m.score(x) > 0.0 {
                    1
                } else {
                    -1
                }
            }
            DistilledModel::Multi(m) => (m.predict_class(x) + 1) as Vote,
        }
    }

    /// Export the model as plain data (see [`DiscModelParts`]).
    pub fn to_parts(&self) -> DiscModelParts {
        let sparse = |w: &[f64]| -> Vec<(u32, f64)> {
            w.iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect()
        };
        match self {
            DistilledModel::Binary(m) => {
                let (w, b) = m.raw();
                DiscModelParts {
                    dim: m.dim(),
                    class_weights: vec![sparse(w)],
                    bias: vec![b],
                }
            }
            DistilledModel::Multi(m) => {
                let (ws, bs) = m.raw();
                DiscModelParts {
                    dim: m.dim(),
                    class_weights: ws.iter().map(|w| sparse(w)).collect(),
                    bias: bs.to_vec(),
                }
            }
        }
    }

    /// Rebuild a model from validated parts; structurally invalid parts
    /// (out-of-range buckets, non-finite weights, shape mismatches) are
    /// refused with a message.
    pub fn from_parts(parts: &DiscModelParts) -> Result<DistilledModel, String> {
        parts.validate()?;
        let dense = |w: &[(u32, f64)]| -> Vec<f64> {
            let mut out = vec![0.0; parts.dim as usize];
            for &(idx, val) in w {
                out[idx as usize] = val;
            }
            out
        };
        if parts.class_weights.len() == 1 {
            Ok(DistilledModel::Binary(LogisticRegression::from_raw(
                dense(&parts.class_weights[0]),
                parts.bias[0],
            )))
        } else {
            Ok(DistilledModel::Multi(SoftmaxRegression::from_raw(
                parts.class_weights.iter().map(|w| dense(w)).collect(),
                parts.bias.clone(),
            )))
        }
    }

    /// Noise-aware fit on label-model marginals, warm-continuing from
    /// the current weights (a fresh model starts cold).
    ///
    /// `ranges` are the contiguous row ranges to parallelize over —
    /// normally the live `ShardedMatrix` plan's shard ranges; empty
    /// means one range covering every row. Results are deterministic
    /// for a given `(ranges, cfg)` regardless of how many threads run.
    ///
    /// # Panics
    /// If `xs` and `marginals` lengths differ, a range is out of
    /// bounds, or a marginal row's class count mismatches the model's.
    pub fn fit(
        &mut self,
        xs: &[SparseVec],
        marginals: &[Vec<f64>],
        ranges: &[(usize, usize)],
        cfg: &DistillConfig,
    ) -> DistillReport {
        assert_eq!(
            xs.len(),
            marginals.len(),
            "fit: one marginal row per example"
        );
        assert_eq!(
            self.dim(),
            cfg.dim,
            "fit: model dim {} != config dim {}",
            self.dim(),
            cfg.dim
        );
        let k = self.num_classes();
        let whole = [(0usize, xs.len())];
        let ranges: &[(usize, usize)] = if ranges.is_empty() { &whole } else { ranges };

        // Per-shard trainable rows and their confidence weights.
        let mut rows_total = 0usize;
        let mut weight_sum = 0.0f64;
        let mut shard_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(ranges.len());
        for &(lo, hi) in ranges {
            assert!(
                lo <= hi && hi <= xs.len(),
                "fit: range {lo}..{hi} out of bounds"
            );
            rows_total += hi - lo;
            let mut kept = Vec::new();
            for (i, row) in marginals.iter().enumerate().take(hi).skip(lo) {
                assert_eq!(row.len(), k, "fit: marginal row {i} has wrong class count");
                let w = marginal_confidence(row);
                if w > cfg.min_confidence {
                    weight_sum += w;
                    kept.push((i, w));
                }
            }
            shard_rows.push(kept);
        }
        let rows_trained: usize = shard_rows.iter().map(Vec::len).sum();
        let mut report = DistillReport {
            rows_total,
            rows_trained,
            rows_dropped: rows_total - rows_trained,
            mean_confidence: if rows_trained == 0 {
                0.0
            } else {
                weight_sum / rows_trained as f64
            },
            epochs: cfg.epochs,
            steps: 0,
            final_loss: 0.0,
        };
        if rows_trained == 0 {
            return report;
        }

        let groups = self.num_groups();
        let mut adams: Vec<Adam> = (0..groups)
            .map(|_| Adam::new(cfg.dim as usize, cfg.learning_rate))
            .collect();
        let mut bias_adam = Adam::new(groups, cfg.learning_rate);
        let batch = cfg.batch_size.max(1);

        for epoch in 0..cfg.epochs {
            // Per-shard shuffle streams: deterministic per (seed, shard,
            // epoch) and independent of every other shard.
            for (s, rows) in shard_rows.iter_mut().enumerate() {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed
                        ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (epoch as u64) << 32,
                );
                rows.shuffle(&mut rng);
            }
            let steps = shard_rows
                .iter()
                .map(|r| r.len().div_ceil(batch))
                .max()
                .unwrap_or(0);
            let mut epoch_loss = 0.0f64;
            let mut epoch_weight = 0.0f64;
            for step in 0..steps {
                let slices: Vec<&[(usize, f64)]> = shard_rows
                    .iter()
                    .map(|rows| {
                        let lo = (step * batch).min(rows.len());
                        let hi = ((step + 1) * batch).min(rows.len());
                        &rows[lo..hi]
                    })
                    .collect();
                // Accumulate partial gradients per shard — concurrently
                // when more than one shard has rows this step — and merge
                // in shard order.
                let live = slices.iter().filter(|s| !s.is_empty()).count();
                let partials: Vec<StepAccum> = if live <= 1 {
                    slices
                        .iter()
                        .map(|slice| self.accumulate(xs, marginals, slice))
                        .collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = slices
                            .iter()
                            .map(|slice| {
                                let model = &*self;
                                scope.spawn(move || model.accumulate(xs, marginals, slice))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("distill shard worker panicked"))
                            .collect()
                    })
                };
                let mut merged = StepAccum::new(groups);
                for p in partials {
                    merged.merge(p);
                }
                if merged.weight <= 0.0 {
                    continue;
                }
                epoch_loss += merged.loss;
                epoch_weight += merged.weight;
                self.apply_step(&merged, &mut adams, &mut bias_adam, cfg);
                report.steps += 1;
            }
            if epoch_weight > 0.0 {
                report.final_loss = epoch_loss / epoch_weight;
            }
        }
        report
    }

    /// Partial weighted gradient/loss over one slice of `(row, weight)`
    /// pairs. Purely sequential — the parallel structure lives in
    /// [`Self::fit`].
    fn accumulate(
        &self,
        xs: &[SparseVec],
        marginals: &[Vec<f64>],
        slice: &[(usize, f64)],
    ) -> StepAccum {
        let k = self.num_classes();
        let mut acc = StepAccum::new(self.num_groups());
        for &(i, w) in slice {
            let x = &xs[i];
            match self {
                DistilledModel::Binary(m) => {
                    let s = m.score(x);
                    let p = sigmoid(s);
                    let target = marginals[i][0];
                    let err = w * (p - target);
                    acc.loss -= w
                        * (target * sigmoid(s).max(1e-12).ln()
                            + (1.0 - target) * sigmoid(-s).max(1e-12).ln());
                    for (idx, val) in x.iter() {
                        acc.grad[0].push((idx, err * val));
                    }
                    acc.grad_bias[0] += err;
                }
                DistilledModel::Multi(m) => {
                    let mut probs: Vec<f64> = m.scores(x);
                    softmax_in_place(&mut probs);
                    for c in 0..k {
                        let err = w * (probs[c] - marginals[i][c]);
                        acc.loss -= w * marginals[i][c] * probs[c].max(1e-12).ln();
                        acc.grad_bias[c] += err;
                        for (idx, val) in x.iter() {
                            acc.grad[c].push((idx, err * val));
                        }
                    }
                }
            }
            acc.weight += w;
        }
        acc
    }

    /// One merged Adam update (weighted-mean gradient + L2 on touched
    /// coordinates).
    fn apply_step(
        &mut self,
        merged: &StepAccum,
        adams: &mut [Adam],
        bias_adam: &mut Adam,
        cfg: &DistillConfig,
    ) {
        let wf = merged.weight;
        let groups = self.num_groups();
        let mut bias_grad = vec![0.0; groups];
        for c in 0..groups {
            bias_grad[c] = merged.grad_bias[c] / wf;
            let grad = SparseVec::from_pairs(merged.grad[c].clone());
            let weights: &mut [f64] = match self {
                DistilledModel::Binary(m) => m.raw_mut().0,
                DistilledModel::Multi(m) => &mut m.raw_mut().0[c],
            };
            let mut g: Vec<f64> = grad.values().to_vec();
            for (gi, &idx) in g.iter_mut().zip(grad.indices()) {
                *gi = *gi / wf + cfg.l2 * weights[idx as usize];
            }
            adams[c].step_sparse(weights, grad.indices(), &g);
        }
        match self {
            DistilledModel::Binary(m) => {
                let (_, bias) = m.raw_mut();
                let mut slot = [*bias];
                bias_adam.step(&mut slot, &bias_grad);
                *bias = slot[0];
            }
            DistilledModel::Multi(m) => {
                let (_, bias) = m.raw_mut();
                bias_adam.step(bias, &bias_grad);
            }
        }
    }
}

/// Per-step gradient accumulator (one slot per class).
struct StepAccum {
    grad: Vec<Vec<(u32, f64)>>,
    grad_bias: Vec<f64>,
    loss: f64,
    weight: f64,
}

impl StepAccum {
    fn new(k: usize) -> Self {
        StepAccum {
            grad: vec![Vec::new(); k],
            grad_bias: vec![0.0; k],
            loss: 0.0,
            weight: 0.0,
        }
    }

    fn merge(&mut self, other: StepAccum) {
        for (mine, theirs) in self.grad.iter_mut().zip(other.grad) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.grad_bias.iter_mut().zip(other.grad_bias) {
            *mine += theirs;
        }
        self.loss += other.loss;
        self.weight += other.weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Planted binary data over 64 buckets: bucket 0 ⇒ +1, bucket 1 ⇒ −1,
    /// plus distractors; marginals encode per-row confidence.
    fn planted(n: usize, conf: f64, seed: u64) -> (Vec<SparseVec>, Vec<Vec<f64>>, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut xs, mut ms, mut gold) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..n {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            let mut pairs = vec![(if y == 1 { 0 } else { 1 }, 1.0)];
            for _ in 0..3 {
                pairs.push((rng.gen_range(2..64), 1.0));
            }
            let mut v = SparseVec::from_pairs(pairs);
            v.l2_normalize();
            xs.push(v);
            let p = if y == 1 { conf } else { 1.0 - conf };
            ms.push(vec![p, 1.0 - p]);
            gold.push(y);
        }
        (xs, ms, gold)
    }

    fn cfg() -> DistillConfig {
        DistillConfig {
            dim: 64,
            epochs: 20,
            ..DistillConfig::default()
        }
    }

    #[test]
    fn learns_from_soft_marginals() {
        let (xs, ms, gold) = planted(600, 0.9, 1);
        let mut m = DistilledModel::new(64, 2);
        let report = m.fit(&xs, &ms, &[], &cfg());
        assert_eq!(report.rows_trained, 600);
        let preds: Vec<Vote> = xs.iter().map(|x| m.predict_vote(x)).collect();
        let acc = crate::metrics::accuracy(&preds, &gold);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn sharded_fit_is_deterministic_and_learns() {
        let (xs, ms, gold) = planted(600, 0.85, 2);
        let ranges = [(0, 200), (200, 400), (400, 600)];
        let mut a = DistilledModel::new(64, 2);
        let mut b = DistilledModel::new(64, 2);
        a.fit(&xs, &ms, &ranges, &cfg());
        b.fit(&xs, &ms, &ranges, &cfg());
        for x in &xs[..20] {
            assert_eq!(a.predict_proba(x), b.predict_proba(x), "non-deterministic");
        }
        let preds: Vec<Vote> = xs.iter().map(|x| a.predict_vote(x)).collect();
        assert!(crate::metrics::accuracy(&preds, &gold) > 0.9);
    }

    #[test]
    fn abstain_marginals_are_dropped() {
        let (xs, mut ms, _) = planted(200, 0.9, 3);
        for m in ms.iter_mut().take(120) {
            *m = vec![0.5, 0.5]; // uniform = no signal
        }
        let mut m = DistilledModel::new(64, 2);
        let report = m.fit(&xs, &ms, &[], &cfg());
        assert_eq!(report.rows_dropped, 120);
        assert_eq!(report.rows_trained, 80);
    }

    #[test]
    fn all_abstain_trains_nothing() {
        let (xs, _, _) = planted(50, 0.9, 4);
        let ms = vec![vec![0.5, 0.5]; 50];
        let mut m = DistilledModel::new(64, 2);
        let report = m.fit(&xs, &ms, &[], &cfg());
        assert_eq!(report.rows_trained, 0);
        assert_eq!(report.steps, 0);
        assert_eq!(m.predict_proba(&xs[0]), vec![0.5, 0.5]);
    }

    #[test]
    fn warm_fit_continues_from_weights() {
        let (xs, ms, gold) = planted(400, 0.9, 5);
        let mut cold = DistilledModel::new(64, 2);
        cold.fit(&xs, &ms, &[], &cfg());
        // A short warm continuation must not regress.
        let warm_cfg = DistillConfig { epochs: 2, ..cfg() };
        let mut warm = cold.clone();
        warm.fit(&xs, &ms, &[], &warm_cfg);
        let preds: Vec<Vote> = xs.iter().map(|x| warm.predict_vote(x)).collect();
        assert!(crate::metrics::accuracy(&preds, &gold) > 0.95);
    }

    #[test]
    fn multiclass_distills() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut xs, mut ms, mut gold) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..600 {
            let c = rng.gen_range(0..3u32);
            let mut pairs = vec![(c, 1.0)];
            pairs.push((rng.gen_range(3..32), 1.0));
            let mut v = SparseVec::from_pairs(pairs);
            v.l2_normalize();
            xs.push(v);
            let mut m = vec![0.1; 3];
            m[c as usize] = 0.8;
            ms.push(m);
            gold.push((c + 1) as Vote);
        }
        let mut m = DistilledModel::new(32, 3);
        m.fit(
            &xs,
            &ms,
            &[(0, 300), (300, 600)],
            &DistillConfig {
                dim: 32,
                epochs: 25,
                ..DistillConfig::default()
            },
        );
        let preds: Vec<Vote> = xs.iter().map(|x| m.predict_vote(x)).collect();
        let acc = crate::metrics::accuracy(&preds, &gold);
        assert!(acc > 0.9, "accuracy {acc}");
        let p = m.predict_proba(&xs[0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn into_variants_match_owned_paths_bitwise() {
        // hash_features_into reuses scratch and matches hash_features.
        let names = ["u=magnesium", "btw=causes", "w=the", "u=magnesium"];
        let mut pairs = Vec::new();
        let mut x = SparseVec::new();
        hash_features_into(names.iter().copied(), 1 << 10, &mut pairs, &mut x);
        assert_eq!(x, crate::hash_features(names.iter().copied(), 1 << 10));

        // predict_proba_into matches predict_proba on both backends.
        let (xs, ms, _) = planted(300, 0.9, 8);
        let mut bin = DistilledModel::new(64, 2);
        bin.fit(&xs, &ms, &[], &cfg());
        let mut tri = DistilledModel::new(64, 3);
        let ms3: Vec<Vec<f64>> = (0..xs.len())
            .map(|i| {
                let p = ms[i][0];
                vec![p, (1.0 - p) * 0.75, (1.0 - p) * 0.25]
            })
            .collect();
        tri.fit(
            &xs,
            &ms3,
            &[],
            &DistillConfig {
                dim: 64,
                epochs: 3,
                ..DistillConfig::default()
            },
        );
        for model in [&bin, &tri] {
            let mut out = vec![f64::NAN; model.num_classes()];
            for x in &xs[..40] {
                model.predict_proba_into(x, &mut out);
                let reference = model.predict_proba(x);
                let out_bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                let ref_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
                assert_eq!(out_bits, ref_bits);
            }
        }
    }

    #[test]
    fn parts_round_trip_bit_exact() {
        let (xs, ms, _) = planted(200, 0.9, 7);
        let mut m = DistilledModel::new(64, 2);
        m.fit(&xs, &ms, &[], &cfg());
        let parts = m.to_parts();
        let back = DistilledModel::from_parts(&parts).unwrap();
        for x in &xs[..20] {
            assert_eq!(m.predict_proba(x), back.predict_proba(x));
        }
        // Multi-class too.
        let mut mm = DistilledModel::new(32, 3);
        let ms3: Vec<Vec<f64>> = ms.iter().map(|_| vec![0.6, 0.3, 0.1]).collect();
        let xs3: Vec<SparseVec> = xs
            .iter()
            .map(|x| {
                let pairs: Vec<(u32, f64)> = x.iter().map(|(i, v)| (i % 32, v)).collect();
                SparseVec::from_pairs(pairs)
            })
            .collect();
        mm.fit(
            &xs3,
            &ms3,
            &[],
            &DistillConfig {
                dim: 32,
                epochs: 2,
                ..DistillConfig::default()
            },
        );
        let back = DistilledModel::from_parts(&mm.to_parts()).unwrap();
        assert_eq!(mm.predict_proba(&xs3[0]), back.predict_proba(&xs3[0]));
    }

    #[test]
    fn invalid_parts_are_refused() {
        let good = DistilledModel::new(8, 2).to_parts();
        assert!(DistilledModel::from_parts(&good).is_ok());
        let mut bad = good.clone();
        bad.class_weights[0] = vec![(9, 1.0)]; // bucket ≥ dim
        assert!(DistilledModel::from_parts(&bad).is_err());
        let mut bad = good.clone();
        bad.bias.push(0.0); // shape mismatch
        assert!(DistilledModel::from_parts(&bad).is_err());
        let mut bad = good.clone();
        bad.class_weights[0] = vec![(3, 1.0), (3, 2.0)]; // not increasing
        assert!(DistilledModel::from_parts(&bad).is_err());
        let mut bad = good;
        bad.bias[0] = f64::NAN;
        assert!(DistilledModel::from_parts(&bad).is_err());
    }

    #[test]
    fn confidence_weighting() {
        assert_eq!(marginal_confidence(&[0.5, 0.5]), 0.0);
        assert!((marginal_confidence(&[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((marginal_confidence(&[0.75, 0.25]) - 0.5).abs() < 1e-12);
        // Uniform 3-class is zero; one-hot is one.
        let third = 1.0 / 3.0;
        assert!(marginal_confidence(&[third, third, third]).abs() < 1e-12);
        assert!((marginal_confidence(&[0.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
