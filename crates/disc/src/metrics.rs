//! Evaluation metrics.
//!
//! Conventions follow the paper's appendix A.5: for binary tasks a
//! prediction of `0` (abstain / no label) is scored as a *negative*
//! prediction, "giving the generative model the benefit of the doubt
//! given the known class imbalance" of the relation-extraction tasks.

use snorkel_matrix::Vote;

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prf {
    /// Precision `tp / (tp + fp)`; 0 when no positive predictions.
    pub precision: f64,
    /// Recall `tp / (tp + fn)`; 0 when no positive golds.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
    /// Raw counts `(tp, fp, fn, tn)`.
    pub counts: (usize, usize, usize, usize),
}

/// Compute precision/recall/F1 for binary predictions against gold
/// labels. Predicted `0` counts as negative; gold `0` rows (unlabeled)
/// are skipped.
pub fn precision_recall_f1(pred: &[Vote], gold: &[Vote]) -> Prf {
    assert_eq!(pred.len(), gold.len(), "metrics: length mismatch");
    let (mut tp, mut fp, mut fn_, mut tn) = (0usize, 0usize, 0usize, 0usize);
    for (&p, &g) in pred.iter().zip(gold) {
        if g == 0 {
            continue;
        }
        let predicted_pos = p == 1; // 0 and −1 both count as negative
        match (predicted_pos, g == 1) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
        counts: (tp, fp, fn_, tn),
    }
}

/// F1 only (convenience).
pub fn f1_score(pred: &[Vote], gold: &[Vote]) -> f64 {
    precision_recall_f1(pred, gold).f1
}

/// Multi-class accuracy; gold `0` rows skipped, predicted `0` always
/// wrong.
pub fn accuracy(pred: &[Vote], gold: &[Vote]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "metrics: length mismatch");
    let mut hits = 0usize;
    let mut total = 0usize;
    for (&p, &g) in pred.iter().zip(gold) {
        if g == 0 {
            continue;
        }
        total += 1;
        if p == g {
            hits += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Rank-based ROC-AUC (the Mann-Whitney U statistic) of scores against
/// binary gold labels, with tied scores receiving average ranks. Gold
/// `0` rows are skipped. Returns 0.5 when either class is absent (the
/// undefined case).
pub fn roc_auc(scores: &[f64], gold: &[Vote]) -> f64 {
    assert_eq!(scores.len(), gold.len(), "metrics: length mismatch");
    let mut pairs: Vec<(f64, bool)> = scores
        .iter()
        .zip(gold)
        .filter(|&(_, &g)| g != 0)
        .map(|(&s, &g)| (s, g == 1))
        .collect();
    let n_pos = pairs.iter().filter(|&&(_, p)| p).count();
    let n_neg = pairs.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN scores"));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < pairs.len() {
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        // Ranks are 1-based; ties share the average rank of the group.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for p in &pairs[i..j] {
            if p.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Log loss (cross-entropy) of probability-of-positive scores against
/// binary gold; clamps probabilities away from {0, 1}.
pub fn log_loss(probs: &[f64], gold: &[Vote]) -> f64 {
    assert_eq!(probs.len(), gold.len(), "metrics: length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &g) in probs.iter().zip(gold) {
        if g == 0 {
            continue;
        }
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        total -= if g == 1 { p.ln() } else { (1.0 - p).ln() };
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_basic() {
        let pred = vec![1, 1, -1, -1, 1, 0];
        let gold = vec![1, -1, 1, -1, 1, 1];
        // tp=2 (idx 0,4), fp=1 (idx 1), fn=2 (idx 2, 5 — the 0 pred), tn=1.
        let m = precision_recall_f1(&pred, &gold);
        assert_eq!(m.counts, (2, 1, 2, 1));
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        let f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((m.f1 - f1).abs() < 1e-12);
    }

    #[test]
    fn prf_degenerate() {
        // No positive predictions.
        let m = precision_recall_f1(&[-1, -1], &[1, -1]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
        // Perfect.
        let m = precision_recall_f1(&[1, -1], &[1, -1]);
        assert_eq!(m.f1, 1.0);
        // Unlabeled gold skipped entirely.
        let m = precision_recall_f1(&[1, 1], &[0, 0]);
        assert_eq!(m.counts, (0, 0, 0, 0));
    }

    #[test]
    fn accuracy_multiclass() {
        let pred = vec![1, 2, 3, 0];
        let gold = vec![1, 2, 4, 4];
        assert!((accuracy(&pred, &gold) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let gold = vec![-1, -1, 1, 1];
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &gold) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &gold) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn auc_ties_average() {
        // All scores equal → AUC 0.5 by average ranks.
        let gold = vec![1, -1, 1, -1];
        assert!((roc_auc(&[0.5; 4], &gold) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[1, 1]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.7], &[0, 0]), 0.5);
    }

    #[test]
    fn auc_known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs correctly ordered: (0.8>0.6), (0.8>0.2), (0.4>0.2) = 3/4.
        let auc = roc_auc(&[0.8, 0.4, 0.6, 0.2], &[1, 1, -1, -1]);
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_loss_behaviour() {
        let gold = vec![1, -1];
        assert!(log_loss(&[0.99, 0.01], &gold) < 0.05);
        assert!(log_loss(&[0.01, 0.99], &gold) > 3.0);
        assert_eq!(log_loss(&[0.5], &[0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 1]);
    }

    #[test]
    fn empty_prediction_set_is_all_zeros() {
        // Every metric must tolerate zero examples without dividing by
        // zero: the well-defined degenerate value, not NaN or a panic.
        let m = precision_recall_f1(&[], &[]);
        assert_eq!(m.counts, (0, 0, 0, 0));
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
        assert_eq!(f1_score(&[], &[]), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(roc_auc(&[], &[]), 0.5, "undefined AUC is chance");
        assert_eq!(log_loss(&[], &[]), 0.0);
    }

    #[test]
    fn single_class_inputs() {
        // All gold positive: no negatives exist, so precision is 1 when
        // every prediction is positive, and AUC is the undefined 0.5.
        let gold_pos = vec![1, 1, 1];
        let m = precision_recall_f1(&[1, 1, -1], &gold_pos);
        assert_eq!(m.counts, (2, 0, 1, 0));
        assert_eq!(m.precision, 1.0);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(roc_auc(&[0.9, 0.8, 0.1], &gold_pos), 0.5);
        // All gold negative: zero positive predictions and zero positive
        // golds ⇒ precision, recall, and F1 all take their 0 convention.
        let gold_neg = vec![-1, -1, -1];
        let m = precision_recall_f1(&[-1, -1, -1], &gold_neg);
        assert_eq!(m.counts, (0, 0, 0, 3));
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
        assert_eq!(accuracy(&[-1, -1, -1], &gold_neg), 1.0);
        // Single-example degenerate case.
        assert_eq!(precision_recall_f1(&[1], &[1]).f1, 1.0);
        assert_eq!(roc_auc(&[0.7], &[1]), 0.5);
    }

    #[test]
    fn all_abstain_probabilistic_labels() {
        // A label model that abstained everywhere hands the metrics a
        // uniform 0.5 score per row: AUC is exactly chance (average
        // ranks over one big tie group) and log loss is exactly ln 2.
        let probs = vec![0.5; 6];
        let gold = vec![1, -1, 1, -1, 1, -1];
        assert!((roc_auc(&probs, &gold) - 0.5).abs() < 1e-12);
        assert!((log_loss(&probs, &gold) - std::f64::consts::LN_2).abs() < 1e-12);
        // Thresholding uniform scores at 0.5 predicts "not positive"
        // everywhere (score > 0.5 is false): recall collapses to 0.
        let preds: Vec<Vote> = probs
            .iter()
            .map(|&p| if p > 0.5 { 1 } else { -1 })
            .collect();
        let m = precision_recall_f1(&preds, &gold);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        // With gold also unlabeled (all 0), everything is skipped.
        assert_eq!(log_loss(&probs, &[0; 6]), 0.0);
        assert_eq!(roc_auc(&probs, &[0; 6]), 0.5);
    }

    #[test]
    fn f1_and_auc_agree_with_hand_computed_values() {
        // 8 rows, hand-counted: tp=3, fp=1, fn=2, tn=2 (one predicted-0
        // on a positive gold counts as a false negative).
        let pred = vec![1, 1, 1, 1, -1, -1, 0, -1];
        let gold = vec![1, 1, 1, -1, 1, -1, 1, -1];
        let m = precision_recall_f1(&pred, &gold);
        assert_eq!(m.counts, (3, 1, 2, 2));
        let precision = 3.0 / 4.0;
        let recall = 3.0 / 5.0;
        let f1 = 2.0 * precision * recall / (precision + recall); // = 2/3
        assert!((m.precision - precision).abs() < 1e-12);
        assert!((m.recall - recall).abs() < 1e-12);
        assert!((m.f1 - f1).abs() < 1e-12);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12, "hand arithmetic check");

        // AUC by hand over the same gold with scores: positives
        // {0.9, 0.6, 0.4, 0.8, 0.3}, negatives {0.7, 0.2, 0.5}.
        // Correctly ordered pairs (pos > neg): 0.9 beats all 3, 0.8
        // beats all 3, 0.6 beats {0.5, 0.2}, 0.4 beats {0.2}, 0.3
        // beats {0.2} ⇒ 10 of 15.
        let scores = vec![0.9, 0.6, 0.4, 0.7, 0.8, 0.2, 0.3, 0.5];
        let auc = roc_auc(&scores, &gold);
        assert!((auc - 10.0 / 15.0).abs() < 1e-12);
        assert!(
            (auc - f1).abs() < 1e-12,
            "both hand computations land on 2/3 — cross-check"
        );
    }
}
