//! Noise-aware binary logistic regression over sparse features.
//!
//! The loss is the expected log-loss under the probabilistic label
//! (paper §2.3): for soft target `p̃_i = P(y_i = +1)` and score `s_i`,
//!
//! ```text
//! ℓ_i = −[ p̃_i log σ(s_i) + (1 − p̃_i) log σ(−s_i) ]    ∂ℓ_i/∂s_i = σ(s_i) − p̃_i
//! ```
//!
//! Hard supervision is the special case `p̃ ∈ {0, 1}`, which is exactly
//! how the hand-label baselines are trained — same model, same
//! optimizer, different targets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use snorkel_linalg::math::sigmoid;
use snorkel_linalg::SparseVec;
use snorkel_matrix::Vote;

use crate::adam::Adam;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct LogRegConfig {
    /// Feature dimensionality (hash buckets).
    pub dim: u32,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Shuffle/ordering seed.
    pub seed: u64,
    /// Drop training rows whose soft label is within `abstain_margin` of
    /// 0.5 (no supervision signal; Snorkel trains on covered points).
    pub abstain_margin: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            dim: 1 << 18,
            epochs: 10,
            learning_rate: 0.01,
            l2: 1e-6,
            batch_size: 32,
            seed: 0,
            abstain_margin: 1e-6,
        }
    }
}

/// Sparse binary logistic regression.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Zero-initialized model of the given dimensionality.
    pub fn new(dim: u32) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim as usize],
            bias: 0.0,
        }
    }

    /// Rebuild from a dense weight vector and bias (snapshot decode).
    pub(crate) fn from_raw(weights: Vec<f64>, bias: f64) -> Self {
        LogisticRegression { weights, bias }
    }

    /// Feature dimensionality (weight-vector length).
    pub(crate) fn dim(&self) -> u32 {
        self.weights.len() as u32
    }

    /// Borrow the raw parameters (weights, bias).
    pub(crate) fn raw(&self) -> (&[f64], f64) {
        (&self.weights, self.bias)
    }

    /// Mutably borrow the raw parameters (weights, bias).
    pub(crate) fn raw_mut(&mut self) -> (&mut [f64], &mut f64) {
        (&mut self.weights, &mut self.bias)
    }

    /// The raw score `w·x + b`.
    pub fn score(&self, x: &SparseVec) -> f64 {
        x.dot_dense(&self.weights) + self.bias
    }

    /// `P(y = +1 | x)`.
    pub fn predict_proba(&self, x: &SparseVec) -> f64 {
        sigmoid(self.score(x))
    }

    /// Probabilities for a batch.
    pub fn predict_proba_all(&self, xs: &[SparseVec]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Hard ±1 predictions at threshold 0.5.
    pub fn predict_all(&self, xs: &[SparseVec]) -> Vec<Vote> {
        xs.iter()
            .map(|x| if self.score(x) > 0.0 { 1 } else { -1 })
            .collect()
    }

    /// Train on soft targets `P(y=+1)` with the noise-aware loss.
    /// Returns the mean training loss of the final epoch.
    pub fn fit(&mut self, xs: &[SparseVec], soft: &[f64], cfg: &LogRegConfig) -> f64 {
        assert_eq!(xs.len(), soft.len(), "fit: one target per example");
        assert_eq!(
            self.weights.len(),
            cfg.dim as usize,
            "fit: model/config dim mismatch"
        );
        // Keep only rows carrying supervision signal.
        let trainable: Vec<usize> = (0..xs.len())
            .filter(|&i| (soft[i] - 0.5).abs() > cfg.abstain_margin)
            .collect();
        if trainable.is_empty() {
            return 0.0;
        }
        let mut adam = Adam::new(cfg.dim as usize, cfg.learning_rate);
        let mut bias_adam = Adam::new(1, cfg.learning_rate);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order = trainable.clone();
        let mut last_epoch_loss = 0.0;

        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(cfg.batch_size) {
                // Accumulate sparse gradient over the batch.
                let mut grad_pairs: Vec<(u32, f64)> = Vec::new();
                let mut grad_bias = 0.0;
                for &i in batch {
                    let s = self.score(&xs[i]);
                    let p = sigmoid(s);
                    let err = p - soft[i]; // ∂ℓ/∂s
                    epoch_loss += -(soft[i] * sigmoid(s).max(1e-12).ln()
                        + (1.0 - soft[i]) * sigmoid(-s).max(1e-12).ln());
                    for (idx, val) in xs[i].iter() {
                        grad_pairs.push((idx, err * val));
                    }
                    grad_bias += err;
                }
                let bf = batch.len() as f64;
                let grad = SparseVec::from_pairs(grad_pairs);
                // L2 on active coordinates only (proximal-style sparse reg).
                let mut g: Vec<f64> = grad.values().to_vec();
                for (gi, &idx) in g.iter_mut().zip(grad.indices()) {
                    *gi = *gi / bf + cfg.l2 * self.weights[idx as usize];
                }
                adam.step_sparse(&mut self.weights, grad.indices(), &g);
                let mut bias_slot = [self.bias];
                bias_adam.step(&mut bias_slot, &[grad_bias / bf]);
                self.bias = bias_slot[0];
            }
            last_epoch_loss = epoch_loss / order.len() as f64;
        }
        last_epoch_loss
    }

    /// Train on hard ±1 labels (hand-supervision baseline); rows with
    /// gold 0 are skipped.
    pub fn fit_hard(&mut self, xs: &[SparseVec], gold: &[Vote], cfg: &LogRegConfig) -> f64 {
        let soft: Vec<f64> = gold
            .iter()
            .map(|&g| match g {
                1 => 1.0,
                -1 => 0.0,
                _ => 0.5, // dropped by the abstain margin
            })
            .collect();
        self.fit(xs, &soft, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: feature 0 ⇒ positive, feature 1 ⇒
    /// negative, plus distractor features.
    fn toy(n: usize, seed: u64) -> (Vec<SparseVec>, Vec<Vote>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            let mut pairs = vec![(if y == 1 { 0 } else { 1 }, 1.0)];
            for _ in 0..3 {
                pairs.push((rng.gen_range(2..64), 1.0));
            }
            let mut v = SparseVec::from_pairs(pairs);
            v.l2_normalize();
            xs.push(v);
            ys.push(y);
        }
        (xs, ys)
    }

    fn cfg() -> LogRegConfig {
        LogRegConfig {
            dim: 64,
            epochs: 30,
            ..LogRegConfig::default()
        }
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = toy(500, 1);
        let mut lr = LogisticRegression::new(64);
        lr.fit_hard(&xs, &ys, &cfg());
        let preds = lr.predict_all(&xs);
        let acc = crate::metrics::accuracy(&preds, &ys);
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn soft_labels_train_like_hard_when_confident() {
        let (xs, ys) = toy(500, 2);
        let soft: Vec<f64> = ys.iter().map(|&y| if y == 1 { 0.9 } else { 0.1 }).collect();
        let mut lr = LogisticRegression::new(64);
        lr.fit(&xs, &soft, &cfg());
        let acc = crate::metrics::accuracy(&lr.predict_all(&xs), &ys);
        assert!(acc > 0.95, "soft-label accuracy {acc}");
    }

    #[test]
    fn uninformative_labels_learn_nothing() {
        let (xs, _) = toy(200, 3);
        let soft = vec![0.5; 200];
        let mut lr = LogisticRegression::new(64);
        let loss = lr.fit(&xs, &soft, &cfg());
        assert_eq!(loss, 0.0, "all rows dropped by abstain margin");
        assert!(lr.predict_proba(&xs[0]) == 0.5);
    }

    #[test]
    fn fit_is_deterministic() {
        let (xs, ys) = toy(200, 4);
        let mut a = LogisticRegression::new(64);
        let mut b = LogisticRegression::new(64);
        a.fit_hard(&xs, &ys, &cfg());
        b.fit_hard(&xs, &ys, &cfg());
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (xs, ys) = toy(100, 5);
        let mut lr = LogisticRegression::new(64);
        lr.fit_hard(&xs, &ys, &cfg());
        for p in lr.predict_proba_all(&xs) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn noise_aware_training_is_robust_to_label_noise() {
        // 30% of labels flipped; soft targets encode the calibrated
        // per-label confidence (0.7/0.3). The soft and hard fits carry
        // the same information here, so we check the noise-aware loss is
        // *comparable* (within a few points) and far above chance — the
        // paper's point is that soft targets lose nothing while
        // propagating lineage.
        use rand::Rng;
        let (xs, ys) = toy(600, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let noisy: Vec<Vote> = ys
            .iter()
            .map(|&y| if rng.gen::<f64>() < 0.3 { -y } else { y })
            .collect();
        let soft: Vec<f64> = noisy
            .iter()
            .map(|&y| if y == 1 { 0.7 } else { 0.3 })
            .collect();

        let mut hard_model = LogisticRegression::new(64);
        hard_model.fit_hard(&xs, &noisy, &cfg());
        let mut soft_model = LogisticRegression::new(64);
        soft_model.fit(&xs, &soft, &cfg());

        let acc_hard = crate::metrics::accuracy(&hard_model.predict_all(&xs), &ys);
        let acc_soft = crate::metrics::accuracy(&soft_model.predict_all(&xs), &ys);
        assert!(acc_soft > 0.85, "soft fit collapsed: {acc_soft:.3}");
        assert!(
            (acc_soft - acc_hard).abs() < 0.05,
            "soft {acc_soft:.3} vs hard {acc_hard:.3}"
        );
    }
}
