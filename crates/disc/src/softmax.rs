//! Noise-aware multinomial (softmax) regression over sparse features.
//!
//! The multi-class counterpart of [`crate::LogisticRegression`], used for
//! the Crowd task (5-way sentiment). Targets are full posterior rows
//! from the generative model; the loss is cross-entropy against the soft
//! distribution, whose gradient at the logits is `softmax(s) − t`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use snorkel_linalg::math::softmax_in_place;
use snorkel_linalg::SparseVec;
use snorkel_matrix::Vote;

use crate::adam::Adam;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct SoftmaxConfig {
    /// Feature dimensionality (hash buckets).
    pub dim: u32,
    /// Number of classes.
    pub classes: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        SoftmaxConfig {
            dim: 1 << 16,
            classes: 2,
            epochs: 10,
            learning_rate: 0.01,
            l2: 1e-6,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Sparse multinomial logistic regression. Weights are one dense vector
/// per class; classes are 0-based dense indices (callers map them to
/// vote values `1..=K`).
#[derive(Clone, Debug)]
pub struct SoftmaxRegression {
    /// Per-class weight vectors, `classes × dim`.
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

impl SoftmaxRegression {
    /// Zero-initialized model.
    pub fn new(dim: u32, classes: usize) -> Self {
        assert!(classes >= 2, "need at least two classes");
        SoftmaxRegression {
            weights: vec![vec![0.0; dim as usize]; classes],
            bias: vec![0.0; classes],
        }
    }

    /// Rebuild from per-class dense weights and biases (snapshot
    /// decode). Panics unless shapes agree and `classes ≥ 2`.
    pub(crate) fn from_raw(weights: Vec<Vec<f64>>, bias: Vec<f64>) -> Self {
        assert!(weights.len() >= 2, "need at least two classes");
        assert_eq!(weights.len(), bias.len(), "one bias per class");
        assert!(
            weights.windows(2).all(|w| w[0].len() == w[1].len()),
            "ragged class weights"
        );
        SoftmaxRegression { weights, bias }
    }

    /// Feature dimensionality (per-class weight-vector length).
    pub(crate) fn dim(&self) -> u32 {
        self.weights[0].len() as u32
    }

    /// Borrow the raw parameters (per-class weights, biases).
    pub(crate) fn raw(&self) -> (&[Vec<f64>], &[f64]) {
        (&self.weights, &self.bias)
    }

    /// Mutably borrow the raw parameters (per-class weights, biases).
    pub(crate) fn raw_mut(&mut self) -> (&mut Vec<Vec<f64>>, &mut Vec<f64>) {
        (&mut self.weights, &mut self.bias)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.weights.len()
    }

    /// Raw per-class logits `w_c·x + b_c` (before the softmax).
    pub(crate) fn scores(&self, x: &SparseVec) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| x.dot_dense(w) + b)
            .collect()
    }

    /// Class probability distribution for one example.
    pub fn predict_proba(&self, x: &SparseVec) -> Vec<f64> {
        let mut scores = self.scores(x);
        softmax_in_place(&mut scores);
        scores
    }

    /// [`Self::predict_proba`] into a caller-owned slice of
    /// `num_classes()` elements, allocating nothing. Same float-op
    /// sequence (per-class dot + bias, then softmax in place), so the
    /// written values are bit-identical to `predict_proba`'s.
    ///
    /// Panics if `out.len() != num_classes()`.
    pub fn predict_proba_into(&self, x: &SparseVec, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.weights.len(),
            "predict_proba_into needs one slot per class"
        );
        for (slot, (w, b)) in out.iter_mut().zip(self.weights.iter().zip(&self.bias)) {
            *slot = x.dot_dense(w) + b;
        }
        softmax_in_place(out);
    }

    /// MAP class (0-based) per example.
    pub fn predict_class(&self, x: &SparseVec) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .map(|(i, _)| i)
            .expect("non-empty class set")
    }

    /// MAP classes as 1-based vote values (`class + 1`), matching the
    /// multi-class vote scheme.
    pub fn predict_votes(&self, xs: &[SparseVec]) -> Vec<Vote> {
        xs.iter()
            .map(|x| (self.predict_class(x) + 1) as Vote)
            .collect()
    }

    /// Train on soft target distributions (`targets[i].len() ==
    /// classes`, each row summing to ~1). Returns final-epoch mean loss.
    pub fn fit(&mut self, xs: &[SparseVec], targets: &[Vec<f64>], cfg: &SoftmaxConfig) -> f64 {
        assert_eq!(xs.len(), targets.len(), "fit: one target row per example");
        assert_eq!(self.weights.len(), cfg.classes, "fit: class count mismatch");
        let k = cfg.classes;
        let mut adams: Vec<Adam> = (0..k)
            .map(|_| Adam::new(cfg.dim as usize, cfg.learning_rate))
            .collect();
        let mut bias_adam = Adam::new(k, cfg.learning_rate);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut last_loss = 0.0;

        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(cfg.batch_size) {
                let mut grad_pairs: Vec<Vec<(u32, f64)>> = vec![Vec::new(); k];
                let mut grad_bias = vec![0.0; k];
                for &i in batch {
                    let probs = self.predict_proba(&xs[i]);
                    for c in 0..k {
                        let err = probs[c] - targets[i][c];
                        epoch_loss -= targets[i][c] * probs[c].max(1e-12).ln();
                        grad_bias[c] += err;
                        for (idx, val) in xs[i].iter() {
                            grad_pairs[c].push((idx, err * val));
                        }
                    }
                }
                let bf = batch.len() as f64;
                for c in 0..k {
                    let grad = SparseVec::from_pairs(std::mem::take(&mut grad_pairs[c]));
                    let mut g: Vec<f64> = grad.values().to_vec();
                    for (gi, &idx) in g.iter_mut().zip(grad.indices()) {
                        *gi = *gi / bf + cfg.l2 * self.weights[c][idx as usize];
                    }
                    adams[c].step_sparse(&mut self.weights[c], grad.indices(), &g);
                    grad_bias[c] /= bf;
                }
                bias_adam.step(&mut self.bias, &grad_bias);
            }
            last_loss = epoch_loss / order.len() as f64;
        }
        last_loss
    }

    /// Train on hard class labels given as 1-based votes (`1..=K`);
    /// votes of 0 (unlabeled) are skipped.
    pub fn fit_hard(&mut self, xs: &[SparseVec], gold: &[Vote], cfg: &SoftmaxConfig) -> f64 {
        let keep: Vec<usize> = (0..xs.len()).filter(|&i| gold[i] != 0).collect();
        let xs_kept: Vec<SparseVec> = keep.iter().map(|&i| xs[i].clone()).collect();
        let targets: Vec<Vec<f64>> = keep
            .iter()
            .map(|&i| {
                let mut t = vec![0.0; cfg.classes];
                t[(gold[i] as usize) - 1] = 1.0;
                t
            })
            .collect();
        self.fit(&xs_kept, &targets, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// 3-class toy data: feature c is diagnostic of class c.
    fn toy(n: usize, seed: u64) -> (Vec<SparseVec>, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..3u32);
            let mut pairs = vec![(c, 1.0)];
            for _ in 0..2 {
                pairs.push((rng.gen_range(3..32), 1.0));
            }
            let mut v = SparseVec::from_pairs(pairs);
            v.l2_normalize();
            xs.push(v);
            ys.push((c + 1) as Vote);
        }
        (xs, ys)
    }

    fn cfg() -> SoftmaxConfig {
        SoftmaxConfig {
            dim: 32,
            classes: 3,
            epochs: 30,
            ..SoftmaxConfig::default()
        }
    }

    #[test]
    fn learns_three_classes() {
        let (xs, ys) = toy(600, 1);
        let mut m = SoftmaxRegression::new(32, 3);
        m.fit_hard(&xs, &ys, &cfg());
        let acc = crate::metrics::accuracy(&m.predict_votes(&xs), &ys);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (xs, ys) = toy(100, 2);
        let mut m = SoftmaxRegression::new(32, 3);
        m.fit_hard(&xs, &ys, &cfg());
        for x in &xs[..10] {
            let p = m.predict_proba(x);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn soft_targets_work() {
        let (xs, ys) = toy(600, 3);
        // Smoothed one-hot targets.
        let targets: Vec<Vec<f64>> = ys
            .iter()
            .map(|&y| {
                let mut t = vec![0.1; 3];
                t[(y as usize) - 1] = 0.8;
                t
            })
            .collect();
        let mut m = SoftmaxRegression::new(32, 3);
        m.fit(&xs, &targets, &cfg());
        let acc = crate::metrics::accuracy(&m.predict_votes(&xs), &ys);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn unlabeled_rows_skipped_in_hard_fit() {
        let (xs, mut ys) = toy(200, 4);
        for y in ys.iter_mut().take(50) {
            *y = 0;
        }
        let mut m = SoftmaxRegression::new(32, 3);
        m.fit_hard(&xs, &ys, &cfg());
        let acc = crate::metrics::accuracy(&m.predict_votes(&xs), &ys);
        assert!(acc > 0.85);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        let _ = SoftmaxRegression::new(8, 1);
    }
}
