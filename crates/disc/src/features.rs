//! Hashed text features.
//!
//! The discriminative text models consume a [`snorkel_linalg::SparseVec`]
//! of hashed features per candidate. Feature hashing (the "hashing
//! trick") replaces a vocabulary dictionary: each feature string maps to
//! a bucket by FNV-1a, so the featurizer is stateless, deterministic,
//! and needs no fitting pass — which also means train and test sets can
//! never leak vocabulary into each other.
//!
//! The feature families mirror what a biLSTM sees implicitly and are the
//! standard sparse-model recipe for relation extraction:
//!
//! * sentence unigrams and bigrams (lemma level);
//! * the words *between* the two argument spans (the region that almost
//!   always carries the relation signal);
//! * windows of ±`window` tokens around each span;
//! * span texts, entity types, argument order, and a bucketed token
//!   distance.

use snorkel_context::CandidateView;
use snorkel_linalg::SparseVec;

/// FNV-1a hash of a feature string into `[0, buckets)`.
///
/// ```
/// use snorkel_disc::hash_feature;
/// let a = hash_feature("w=cause", 1 << 18);
/// assert_eq!(a, hash_feature("w=cause", 1 << 18), "deterministic");
/// assert!(a < (1 << 18));
/// ```
pub fn hash_feature(name: &str, buckets: u32) -> u32 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % buckets as u64) as u32
}

/// Stateless hashed featurizer for candidates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextFeaturizer {
    /// Number of hash buckets (feature dimensionality).
    pub buckets: u32,
    /// Context window around spans, in tokens.
    pub window: usize,
    /// Emit sentence bigrams in addition to unigrams.
    pub bigrams: bool,
}

impl Default for TextFeaturizer {
    fn default() -> Self {
        TextFeaturizer {
            buckets: 1 << 18,
            window: 2,
            bigrams: true,
        }
    }
}

impl TextFeaturizer {
    /// Featurizer with the given dimensionality.
    pub fn with_buckets(buckets: u32) -> Self {
        TextFeaturizer {
            buckets,
            ..TextFeaturizer::default()
        }
    }

    /// Extract the L2-normalized hashed feature vector of a candidate.
    pub fn featurize(&self, x: &CandidateView<'_>) -> SparseVec {
        let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(64);
        let mut emit = |name: String| pairs.push((hash_feature(&name, self.buckets), 1.0));

        let sent = x.sentence();
        let lemmas: Vec<&str> = (0..sent.num_tokens()).map(|i| sent.lemma(i)).collect();

        // Sentence unigrams / bigrams.
        for w in &lemmas {
            emit(format!("u={w}"));
        }
        if self.bigrams {
            for pair in lemmas.windows(2) {
                emit(format!("b={}_{}", pair[0], pair[1]));
            }
        }

        // Span-level features.
        for k in 0..x.arity() {
            let span = x.span(k);
            emit(format!("span{k}={}", span.text().to_lowercase()));
            if let Some(ty) = span.entity_type() {
                emit(format!("type{k}={ty}"));
            }
            // Window around the span.
            let (s, e) = span.word_range();
            let lo = s.saturating_sub(self.window);
            let hi = (e + self.window).min(lemmas.len());
            for w in &lemmas[lo..s] {
                emit(format!("left{k}={w}"));
            }
            for w in &lemmas[e..hi] {
                emit(format!("right{k}={w}"));
            }
        }

        // Relation-level features for binary candidates.
        if x.arity() >= 2 {
            // The argument-pair conjunction: lets the model carry what it
            // learned about a pair from cue-rich mentions over to
            // cue-free mentions of the same pair (Example 2.5).
            emit(format!(
                "pair={}|{}",
                x.span(0).text().to_lowercase(),
                x.span(1).text().to_lowercase()
            ));
            for w in x.lemmas_between(0, 1) {
                emit(format!("btw={w}"));
            }
            if self.bigrams {
                let between = x.lemmas_between(0, 1);
                for pair in between.windows(2) {
                    emit(format!("btwb={}_{}", pair[0], pair[1]));
                }
            }
            emit(format!("order={}", x.span_precedes(0, 1)));
            emit(format!("dist={}", distance_bucket(x.token_distance(0, 1))));
        }

        let mut v = SparseVec::from_pairs(pairs);
        v.l2_normalize();
        v
    }

    /// Featurize a batch of candidates.
    pub fn featurize_all<'a>(
        &self,
        corpus: &snorkel_context::Corpus,
        candidates: impl IntoIterator<Item = &'a snorkel_context::CandidateId>,
    ) -> Vec<SparseVec> {
        candidates
            .into_iter()
            .map(|&id| self.featurize(&corpus.candidate(id)))
            .collect()
    }
}

/// Coarse distance buckets (exact small distances, log-ish beyond).
fn distance_bucket(d: usize) -> &'static str {
    match d {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        4..=6 => "4-6",
        7..=10 => "7-10",
        _ => "10+",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_context::Corpus;
    use snorkel_nlp::tokenize;

    fn corpus() -> (
        Corpus,
        snorkel_context::CandidateId,
        snorkel_context::CandidateId,
    ) {
        let mut c = Corpus::new();
        let d = c.add_document("d");
        let t1 = "magnesium causes severe weakness";
        let s1 = c.add_sentence(d, t1, tokenize(t1));
        let a1 = c.add_span(s1, 0, 1, Some("Chemical"));
        let b1 = c.add_span(s1, 3, 4, Some("Disease"));
        let c1 = c.add_candidate(vec![a1, b1]);

        let t2 = "aspirin treats severe headache";
        let s2 = c.add_sentence(d, t2, tokenize(t2));
        let a2 = c.add_span(s2, 0, 1, Some("Chemical"));
        let b2 = c.add_span(s2, 3, 4, Some("Disease"));
        let c2 = c.add_candidate(vec![a2, b2]);
        (c, c1, c2)
    }

    #[test]
    fn deterministic_and_normalized() {
        let (c, c1, _) = corpus();
        let f = TextFeaturizer::default();
        let v1 = f.featurize(&c.candidate(c1));
        let v2 = f.featurize(&c.candidate(c1));
        assert_eq!(v1, v2);
        assert!((v1.norm2_sq() - 1.0).abs() < 1e-9);
        assert!(v1.nnz() > 10);
    }

    #[test]
    fn different_candidates_differ() {
        let (c, c1, c2) = corpus();
        let f = TextFeaturizer::default();
        let v1 = f.featurize(&c.candidate(c1));
        let v2 = f.featurize(&c.candidate(c2));
        // Shared structure ("severe", distance, types) but different
        // content words: cosine must be strictly between 0 and 1.
        let cos = v1.dot_sparse(&v2);
        assert!(cos > 0.05 && cos < 0.95, "cosine {cos}");
    }

    #[test]
    fn buckets_bound_indices() {
        let (c, c1, _) = corpus();
        let f = TextFeaturizer::with_buckets(64);
        let v = f.featurize(&c.candidate(c1));
        assert!(v.dim_lower_bound() <= 64);
    }

    #[test]
    fn hash_distributes() {
        // Not a statistical test — just confirm different names spread
        // across buckets rather than colliding trivially.
        let buckets = 1 << 12;
        let hashes: std::collections::HashSet<u32> = (0..100)
            .map(|i| hash_feature(&format!("w=word{i}"), buckets))
            .collect();
        assert!(hashes.len() > 90);
    }

    #[test]
    fn featurize_all_matches_single() {
        let (c, c1, c2) = corpus();
        let f = TextFeaturizer::default();
        let all = f.featurize_all(&c, &[c1, c2]);
        assert_eq!(all[0], f.featurize(&c.candidate(c1)));
        assert_eq!(all[1], f.featurize(&c.candidate(c2)));
    }
}
