//! Error analysis: the TP/FP/TN/FN buckets of the paper's appendix C.
//!
//! Snorkel's development loop is iterative: after evaluating on the dev
//! split, the candidates are separated into true-positive,
//! false-positive, true-negative, and false-negative buckets so users
//! can "identify common patterns that are either not covered or
//! misclassified by their current labeling functions". This module is
//! that viewer's data layer.

use snorkel_matrix::Vote;

/// Which bucket a prediction/gold pair falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Predicted positive, gold positive.
    TruePositive,
    /// Predicted positive, gold negative.
    FalsePositive,
    /// Predicted negative, gold negative.
    TrueNegative,
    /// Predicted negative, gold positive.
    FalseNegative,
}

/// Dev-set error buckets with the row indices of each.
#[derive(Clone, Debug, Default)]
pub struct ErrorBuckets {
    /// Rows predicted positive with positive gold.
    pub true_positives: Vec<usize>,
    /// Rows predicted positive with negative gold.
    pub false_positives: Vec<usize>,
    /// Rows predicted negative with negative gold.
    pub true_negatives: Vec<usize>,
    /// Rows predicted negative with positive gold.
    pub false_negatives: Vec<usize>,
}

impl ErrorBuckets {
    /// Split rows into buckets. Predicted `0` counts as negative (the
    /// appendix A.5 convention); gold `0` rows (unlabeled) are skipped.
    pub fn from_predictions(pred: &[Vote], gold: &[Vote]) -> Self {
        assert_eq!(pred.len(), gold.len(), "one prediction per gold label");
        let mut out = ErrorBuckets::default();
        for (i, (&p, &g)) in pred.iter().zip(gold).enumerate() {
            if g == 0 {
                continue;
            }
            match (p == 1, g == 1) {
                (true, true) => out.true_positives.push(i),
                (true, false) => out.false_positives.push(i),
                (false, false) => out.true_negatives.push(i),
                (false, true) => out.false_negatives.push(i),
            }
        }
        out
    }

    /// Bucket of a single row (by linear scan; buckets are small).
    pub fn bucket_of(&self, row: usize) -> Option<Bucket> {
        if self.true_positives.contains(&row) {
            Some(Bucket::TruePositive)
        } else if self.false_positives.contains(&row) {
            Some(Bucket::FalsePositive)
        } else if self.true_negatives.contains(&row) {
            Some(Bucket::TrueNegative)
        } else if self.false_negatives.contains(&row) {
            Some(Bucket::FalseNegative)
        } else {
            None
        }
    }

    /// Counts as `(tp, fp, tn, fn)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.true_positives.len(),
            self.false_positives.len(),
            self.true_negatives.len(),
            self.false_negatives.len(),
        )
    }

    /// A one-line summary of the shape of the errors — what a user reads
    /// to decide whether to write precision-oriented or recall-oriented
    /// LFs next.
    pub fn advice(&self) -> &'static str {
        let (tp, fp, _, fn_) = self.counts();
        if tp + fp + fn_ == 0 {
            "no labeled rows to analyze"
        } else if fp > 2 * fn_ {
            "errors are precision-dominated: add negative-evidence LFs or tighten patterns"
        } else if fn_ > 2 * fp {
            "errors are recall-dominated: broaden patterns or add new weak-supervision sources"
        } else {
            "errors are balanced: inspect both buckets for systematic misses"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_labeled_rows() {
        let pred = vec![1, 1, -1, -1, 0, 1];
        let gold = vec![1, -1, -1, 1, 1, 0];
        let b = ErrorBuckets::from_predictions(&pred, &gold);
        assert_eq!(b.true_positives, vec![0]);
        assert_eq!(b.false_positives, vec![1]);
        assert_eq!(b.true_negatives, vec![2]);
        // Row 4: predicted 0 → negative, gold positive → FN.
        assert_eq!(b.false_negatives, vec![3, 4]);
        assert_eq!(b.counts(), (1, 1, 1, 2));
        // Row 5 unlabeled → in no bucket.
        assert_eq!(b.bucket_of(5), None);
        assert_eq!(b.bucket_of(0), Some(Bucket::TruePositive));
    }

    #[test]
    fn advice_tracks_error_shape() {
        let precision_bad = ErrorBuckets::from_predictions(&[1, 1, 1, 1, 1], &[1, -1, -1, -1, -1]);
        assert!(precision_bad.advice().contains("precision"));
        let recall_bad = ErrorBuckets::from_predictions(&[-1, -1, -1, -1, 1], &[1, 1, 1, -1, 1]);
        assert!(recall_bad.advice().contains("recall"));
        let empty = ErrorBuckets::from_predictions(&[], &[]);
        assert!(empty.advice().contains("no labeled rows"));
    }

    #[test]
    #[should_panic(expected = "one prediction per gold")]
    fn length_mismatch_panics() {
        let _ = ErrorBuckets::from_predictions(&[1], &[1, -1]);
    }
}
