//! # snorkel-disc
//!
//! Noise-aware discriminative models and evaluation metrics (paper
//! §2.3).
//!
//! Snorkel's end goal is a classifier that *generalizes beyond* the
//! labeling functions: it trains any model with a standard loss on the
//! probabilistic labels `Ỹ` by minimizing the noise-aware empirical risk
//!
//! ```text
//! θ̂ = argmin_θ Σ_i E_{y∼Ỹ_i} [ ℓ(h_θ(x_i), y) ]
//! ```
//!
//! which for log-loss is exactly cross-entropy against the soft label.
//! The paper used a biLSTM (text) and a pre-trained ResNet-50 (images);
//! those stacks are substituted here by models that preserve every
//! comparison the evaluation makes, since all arms share the end model:
//!
//! * [`LogisticRegression`] — sparse linear model over hashed text
//!   features ([`TextFeaturizer`]), for the relation-extraction tasks;
//! * [`SoftmaxRegression`] — its multi-class counterpart (Crowd task);
//! * [`Mlp`] — a dense ReLU network for dense feature vectors (the
//!   Radiology task's stand-in for ResNet embeddings).
//!
//! All three train with Adam, support soft (probabilistic) *and* hard
//! labels — the hand-supervision baselines are literally the same model
//! fit on hard labels — and are deterministic under a fixed seed.
//!
//! [`DistilledModel`] wraps the linear models behind the serving-side
//! distillation surface: shard-parallel noise-aware
//! training on label-model marginals (abstain-marginal rows
//! down-weighted), warm refits, and a stable [`DiscModelParts`]
//! encoding that `snorkel-serve` snapshots.
//!
//! [`metrics`] implements precision/recall/F1 (with the appendix A.5
//! convention that an abstaining/zero prediction counts as a negative),
//! accuracy, and rank-based ROC-AUC.
//!
//! # Example: hash features → noise-aware fit → predict
//!
//! ```
//! use snorkel_disc::{hash_features, DistillConfig, DistilledModel};
//!
//! // Hashed feature vectors for four candidates. In production these
//! // come from `TextFeaturizer::featurize`; `hash_features` is the
//! // raw-feature-string path the `PREDICT` wire verb uses.
//! let dim = 1 << 10;
//! let xs = vec![
//!     hash_features(["btw=causes", "u=magnesium"], dim),
//!     hash_features(["btw=causes", "u=cisplatin"], dim),
//!     hash_features(["btw=treats", "u=aspirin"], dim),
//!     hash_features(["btw=treats", "u=ibuprofen"], dim),
//! ];
//!
//! // Probabilistic labels from a label model: P(+1) first. The last
//! // row is an all-abstain (uniform) marginal — it carries no signal
//! // and is dropped by the confidence weighting.
//! let marginals = vec![
//!     vec![0.9, 0.1],
//!     vec![0.8, 0.2],
//!     vec![0.15, 0.85],
//!     vec![0.5, 0.5],
//! ];
//!
//! let mut model = DistilledModel::new(dim, 2);
//! let cfg = DistillConfig { dim, epochs: 40, ..DistillConfig::default() };
//! let report = model.fit(&xs, &marginals, &[], &cfg);
//! assert_eq!(report.rows_trained, 3);
//! assert_eq!(report.rows_dropped, 1);
//!
//! // The distilled model scores a candidate no labeling function ever
//! // saw — zero LF coverage — from its features alone.
//! let unseen = hash_features(["btw=causes", "u=etoposide"], dim);
//! let p = model.predict_proba(&unseen);
//! assert!(p[0] > 0.5, "'causes' features should score positive: {p:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
pub mod analysis;
mod distill;
mod features;
mod logreg;
pub mod metrics;
mod mlp;
mod softmax;

pub use adam::Adam;
pub use analysis::{Bucket, ErrorBuckets};
pub use distill::{
    hash_features, hash_features_into, marginal_confidence, DiscModelParts, DistillConfig,
    DistillReport, DistilledModel,
};
pub use features::{hash_feature, TextFeaturizer};
pub use logreg::{LogRegConfig, LogisticRegression};
pub use metrics::{accuracy, f1_score, precision_recall_f1, roc_auc, Prf};
pub use mlp::{Mlp, MlpConfig};
pub use softmax::{SoftmaxConfig, SoftmaxRegression};
