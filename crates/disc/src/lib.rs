//! # snorkel-disc
//!
//! Noise-aware discriminative models and evaluation metrics (paper
//! §2.3).
//!
//! Snorkel's end goal is a classifier that *generalizes beyond* the
//! labeling functions: it trains any model with a standard loss on the
//! probabilistic labels `Ỹ` by minimizing the noise-aware empirical risk
//!
//! ```text
//! θ̂ = argmin_θ Σ_i E_{y∼Ỹ_i} [ ℓ(h_θ(x_i), y) ]
//! ```
//!
//! which for log-loss is exactly cross-entropy against the soft label.
//! The paper used a biLSTM (text) and a pre-trained ResNet-50 (images);
//! those stacks are substituted here by models that preserve every
//! comparison the evaluation makes, since all arms share the end model:
//!
//! * [`LogisticRegression`] — sparse linear model over hashed text
//!   features ([`TextFeaturizer`]), for the relation-extraction tasks;
//! * [`SoftmaxRegression`] — its multi-class counterpart (Crowd task);
//! * [`Mlp`] — a dense ReLU network for dense feature vectors (the
//!   Radiology task's stand-in for ResNet embeddings).
//!
//! All three train with Adam, support soft (probabilistic) *and* hard
//! labels — the hand-supervision baselines are literally the same model
//! fit on hard labels — and are deterministic under a fixed seed.
//!
//! [`metrics`] implements precision/recall/F1 (with the appendix A.5
//! convention that an abstaining/zero prediction counts as a negative),
//! accuracy, and rank-based ROC-AUC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
pub mod analysis;
mod features;
mod logreg;
pub mod metrics;
mod mlp;
mod softmax;

pub use adam::Adam;
pub use analysis::{Bucket, ErrorBuckets};
pub use features::{hash_feature, TextFeaturizer};
pub use logreg::{LogRegConfig, LogisticRegression};
pub use metrics::{accuracy, f1_score, precision_recall_f1, roc_auc, Prf};
pub use mlp::{Mlp, MlpConfig};
pub use softmax::{SoftmaxConfig, SoftmaxRegression};
