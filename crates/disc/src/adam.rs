//! Adam optimizer state (Kingma & Ba, 2014 — the optimizer the paper's
//! discriminative models were trained with).

/// Adam state over a flat parameter vector.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Fresh state for `dim` parameters with the given learning rate and
    /// the standard `(β1, β2, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(dim: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Scale the learning rate (step decay).
    pub fn decay_lr(&mut self, factor: f64) {
        self.lr *= factor;
    }

    /// Apply one update: `params ← params − lr · m̂ / (√v̂ + ε)` with
    /// bias-corrected moments. `grad` is the gradient of the *loss*
    /// (descent direction).
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "Adam: dim mismatch");
        assert_eq!(grad.len(), self.m.len(), "Adam: grad dim mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Sparse update for the indices in `idx` with matching `grad`
    /// entries (used by the hashed-feature linear models, whose
    /// per-example gradients touch only active buckets). Moment decay is
    /// applied lazily only to touched coordinates — a standard sparse-
    /// Adam approximation.
    pub fn step_sparse(&mut self, params: &mut [f64], idx: &[u32], grad: &[f64]) {
        assert_eq!(idx.len(), grad.len(), "Adam: sparse dim mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (&i, &g) in idx.iter().zip(grad) {
            let i = i as usize;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x − 3)², gradient 2(x − 3).
        let mut x = vec![0.0];
        let mut adam = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn sparse_step_touches_only_active() {
        let mut params = vec![1.0, 1.0, 1.0];
        let mut adam = Adam::new(3, 0.1);
        adam.step_sparse(&mut params, &[1], &[1.0]);
        assert_eq!(params[0], 1.0);
        assert_eq!(params[2], 1.0);
        assert!(params[1] < 1.0);
    }

    #[test]
    fn lr_decay() {
        let mut adam = Adam::new(1, 0.1);
        adam.decay_lr(0.5);
        assert!((adam.learning_rate() - 0.05).abs() < 1e-12);
    }
}
