//! # snorkel-arena
//!
//! Reset-and-reuse scratch buffers for the serving and refresh hot
//! paths, plus the allocation-counting test harness that proves they
//! work.
//!
//! The deployment regime this workspace targets (Snorkel DryBell-style
//! serving) answers the same small family of requests millions of
//! times. At that scale per-request heap churn — a `Vec` per decoded
//! row, a `String` per feature, a fresh posterior buffer per reply —
//! dominates the arithmetic it wraps. The classic fix is an arena: a
//! region owned by the worker, grown to the high-water mark of the
//! traffic it has seen, and *reset* (not freed) between units of work.
//! Stable Rust has no placement-new, so the arenas here are
//! reset-and-reuse buffers: clearing a `Vec` keeps its capacity, and a
//! buffer that has served one request at size N serves every subsequent
//! request of size ≤ N without touching the allocator.
//!
//! Two building blocks:
//!
//! * [`ScratchVec<T>`] — a `Vec<T>` wrapper whose API makes the
//!   reset-and-reuse contract explicit: [`ScratchVec::reset`] clears
//!   without shrinking, and [`ScratchVec::bytes`] reports the
//!   high-water footprint (capacity is monotone under reset, so the
//!   current capacity *is* the high-water mark).
//! * [`FlatRows<T>`] — a structure-of-arrays jagged 2-D buffer: one
//!   flat value arena plus `(offset, len)` bounds per row. This is the
//!   layout the pattern index already uses for vote signatures; it
//!   stores N rows in exactly 2 allocations (amortized zero), keeps
//!   row values contiguous for vectorization, and resets in O(1).
//!
//! The proof side lives in [`alloc_check`]: a counting global
//! allocator (install with `#[global_allocator]` in a test or bench
//! binary) and helpers for asserting an allocation budget over a
//! workload. `crates/obs/tests/no_alloc.rs` and the serve read-path
//! test both build on it.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_check;

pub use alloc_check::CountingAlloc;

/// A reset-and-reuse buffer: a `Vec<T>` that is cleared between units
/// of work and never shrunk, so steady-state reuse is allocation-free.
///
/// Dereferences to `Vec<T>`, so every `Vec` method is available; the
/// wrapper exists to carry the contract (callers `reset()` at the
/// start of each unit of work) and the footprint accounting
/// ([`Self::bytes`]).
///
/// ```
/// use snorkel_arena::ScratchVec;
/// let mut buf: ScratchVec<u32> = ScratchVec::new();
/// buf.extend_from_slice(&[1, 2, 3]);
/// let cap = buf.capacity();
/// buf.reset();
/// assert!(buf.is_empty());
/// assert_eq!(buf.capacity(), cap, "reset keeps capacity");
/// ```
#[derive(Debug, Default, Clone)]
pub struct ScratchVec<T> {
    buf: Vec<T>,
}

impl<T> ScratchVec<T> {
    /// An empty scratch buffer (no allocation until first use).
    pub fn new() -> Self {
        ScratchVec { buf: Vec::new() }
    }

    /// Clear contents, keeping the allocation. The next fill up to the
    /// high-water mark reuses the existing block.
    #[inline]
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// High-water footprint in bytes: `capacity × size_of::<T>()`.
    /// `Vec` capacity never shrinks under `clear`, so this is the
    /// largest size this buffer has ever needed.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> std::ops::Deref for ScratchVec<T> {
    type Target = Vec<T>;
    #[inline]
    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T> std::ops::DerefMut for ScratchVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

/// A structure-of-arrays jagged 2-D scratch buffer: row values live
/// contiguously in one flat arena, with `(offset, len)` bounds per row.
///
/// Compared to `Vec<Vec<T>>` this stores any number of rows in two
/// allocations (amortized zero once warm), keeps each row's values
/// adjacent for the vectorizer, and resets in O(1) without freeing.
///
/// ```
/// use snorkel_arena::FlatRows;
/// let mut rows: FlatRows<u8> = FlatRows::new();
/// rows.push_row(b"alpha");
/// rows.push_row(b"be");
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows.row(1), b"be");
/// rows.reset();
/// assert_eq!(rows.len(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct FlatRows<T> {
    vals: ScratchVec<T>,
    bounds: ScratchVec<(u32, u32)>,
}

impl<T> FlatRows<T> {
    /// An empty row buffer (no allocation until first use).
    pub fn new() -> Self {
        FlatRows {
            vals: ScratchVec::new(),
            bounds: ScratchVec::new(),
        }
    }

    /// Clear all rows, keeping both allocations.
    #[inline]
    pub fn reset(&mut self) {
        self.vals.reset();
        self.bounds.reset();
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Start a new empty row at the end; [`Self::push`] appends to it.
    #[inline]
    pub fn begin_row(&mut self) {
        self.bounds.push((self.vals.len() as u32, 0));
    }

    /// Append one value to the row opened by [`Self::begin_row`].
    ///
    /// Panics if no row is open.
    #[inline]
    pub fn push(&mut self, v: T) {
        self.vals.push(v);
        self.bounds.last_mut().expect("begin_row before push").1 += 1;
    }

    /// One row's values.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let (off, len) = self.bounds[i];
        &self.vals[off as usize..off as usize + len as usize]
    }

    /// The flat value arena (all rows, concatenated).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// High-water footprint in bytes across both internal buffers.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.vals.bytes() + self.bounds.bytes()
    }
}

impl<T: Copy> FlatRows<T> {
    /// Append one complete row (copied from a slice).
    #[inline]
    pub fn push_row(&mut self, row: &[T]) {
        self.bounds.push((self.vals.len() as u32, row.len() as u32));
        self.vals.extend_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_vec_reset_keeps_capacity_and_pointer() {
        let mut buf: ScratchVec<u64> = ScratchVec::new();
        buf.extend(0..1000);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        buf.reset();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        buf.extend(0..1000);
        assert_eq!(
            buf.as_ptr(),
            ptr,
            "refill below high water reuses the block"
        );
        assert_eq!(buf.bytes(), cap * 8);
    }

    #[test]
    fn flat_rows_round_trip_and_reset() {
        let mut rows: FlatRows<u32> = FlatRows::new();
        rows.push_row(&[1, 2, 3]);
        rows.begin_row();
        rows.push(9);
        rows.push_row(&[]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.row(0), &[1, 2, 3]);
        assert_eq!(rows.row(1), &[9]);
        assert_eq!(rows.row(2), &[] as &[u32]);
        assert_eq!(rows.values(), &[1, 2, 3, 9]);
        let bytes = rows.bytes();
        rows.reset();
        assert!(rows.is_empty());
        assert_eq!(rows.bytes(), bytes, "reset keeps both allocations");
    }
}
