//! The allocation-counting test harness: a global allocator shim that
//! counts every `alloc`/`realloc`, and helpers for asserting a budget.
//!
//! Install the shim in a test or bench **binary** (one per process —
//! `#[global_allocator]` is a process-global singleton):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: snorkel_arena::CountingAlloc = snorkel_arena::CountingAlloc::new();
//! ```
//!
//! then measure with [`allocation_count`] deltas or
//! [`min_allocations_over`]. Two caveats, learned from
//! `crates/obs/tests/no_alloc.rs` (the first user of this pattern):
//!
//! * The counter is process-global, so ambient threads (the libtest
//!   harness, a background worker) pollute any single measurement.
//!   Take the **minimum over several attempts**: if the measured path
//!   itself allocated, every attempt would count it.
//! * Run release mode for enforcement. Debug builds of generic std
//!   code can allocate where release builds provably do not, so a
//!   zero-budget assert is only meaningful under `--release`
//!   (`cfg!(debug_assertions)` tells you which world you are in).

#![allow(unsafe_code)] // GlobalAlloc is an unsafe trait; this module is the one place we implement it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A counting global allocator: forwards to [`System`], incrementing a
/// process-global counter on every `alloc` and `realloc` (frees are
/// not counted — the budgets here are about *acquiring* memory on a
/// hot path, and a free implies a former alloc anyway).
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap acquisitions (allocs + reallocs) since process start. Only
/// meaningful when [`CountingAlloc`] is installed as the global
/// allocator; returns a frozen 0 otherwise.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Run `f` once and return `(allocations, result)` for the call.
/// Subject to ambient-thread noise — prefer [`min_allocations_over`]
/// for assertions.
pub fn allocations_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocation_count();
    let out = f();
    (allocation_count() - before, out)
}

/// Run `f` up to `attempts` times and return the **minimum** number of
/// allocations observed in one run — the noise-robust statistic for
/// "this path allocates N times": ambient threads can only inflate a
/// sample, never deflate it. Returns early on a zero sample.
pub fn min_allocations_over(attempts: usize, mut f: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..attempts.max(1) {
        let (n, ()) = allocations_in(&mut f);
        min = min.min(n);
        if min == 0 {
            break;
        }
    }
    min
}
