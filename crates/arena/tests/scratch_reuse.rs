//! The arena contract, proven with the crate's own counting allocator:
//! after a warm-up pass establishes the high-water mark, refilling a
//! [`ScratchVec`]/[`FlatRows`] is zero-allocation, and growth past the
//! mark allocates exactly as `Vec` growth does (then the new mark
//! holds). Lives in its own test binary because `#[global_allocator]`
//! is process-global.

use snorkel_arena::{alloc_check, CountingAlloc, FlatRows, ScratchVec};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn refill_below_high_water_is_allocation_free() {
    let mut cols: ScratchVec<u32> = ScratchVec::new();
    let mut rows: FlatRows<u8> = FlatRows::new();
    // Warm-up: grow both buffers to their working size.
    cols.extend(0..4096);
    for _ in 0..64 {
        rows.push_row(&[7u8; 100]);
    }
    cols.reset();
    rows.reset();

    let min = alloc_check::min_allocations_over(5, || {
        for pass in 0..100u32 {
            cols.reset();
            rows.reset();
            cols.extend(0..4096);
            for _ in 0..64 {
                rows.push_row(&[pass as u8; 100]);
            }
        }
    });
    assert_eq!(min, 0, "steady-state refill must not touch the allocator");
    assert_eq!(cols.len(), 4096);
    assert_eq!(rows.len(), 64);
}

#[test]
fn growth_raises_the_high_water_mark_then_reuse_resumes() {
    let mut buf: ScratchVec<u64> = ScratchVec::new();
    buf.extend(0..100);
    buf.reset();
    let small = buf.bytes();

    // Growing past the mark allocates…
    let (grow_allocs, ()) = alloc_check::allocations_in(|| buf.extend(0..10_000));
    assert!(grow_allocs > 0, "growth past high water must allocate");
    let big = buf.bytes();
    assert!(big > small);

    // …and the new mark then serves the larger size allocation-free.
    let min = alloc_check::min_allocations_over(5, || {
        for _ in 0..50 {
            buf.reset();
            buf.extend(0..10_000);
        }
    });
    assert_eq!(min, 0, "post-growth refill must reuse the larger block");
    assert_eq!(buf.bytes(), big, "reset never shrinks the mark");
}
