//! The Chemical-Disease Relation task (paper §4.1.1, BioCreative V CDR).
//!
//! Candidates are co-occurring (chemical, disease) mention pairs; the
//! positive class is a causal link. The synthetic corpus mirrors the
//! real task's shape: 33 labeling functions — text patterns, distant
//! supervision from a CTD-like knowledge base whose subsets ("Causes",
//! "Treats", …) have different accuracy/coverage (Example 2.4), context-
//! hierarchy heuristics, and thresholded weak classifiers — with ~24.6%
//! positives and label density around 1.8 (Tables 1–2).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use snorkel_lf::{
    lf, ontology_lfs, BoxedLf, KeywordBetweenLf, KnowledgeBase, PatternLf, ThresholdLf,
};

use crate::names::NamePool;
use crate::task::{
    build_relation_corpus, noisy_kb_subset, split_rows, LfType, RelationCorpusSpec, RelationTask,
    TaskConfig,
};

const POS_TEMPLATES: &[&str] = &[
    "{A} causes {B} in a subset of patients.",
    "Administration of {A} induced severe {B}.",
    "High doses of {A} caused transient {B}.",
    "{A} treatment resulted in {B} within weeks.",
    "{B} developed after {A} exposure.",
    "Cases of {B} following {A} therapy were documented.",
    "Exposure to {A} was linked to {B} in the trial.",
    "{B} was attributed to {A} toxicity.",
    "{B} was caused by prolonged {A} infusion.",
    "Chronic {A} use may aggravate {B}.",
    "{A} was administered daily and the patient subsequently developed {B}.",
];

const NEG_TEMPLATES: &[&str] = &[
    "{A} is used to treat {B} effectively.",
    "{A} therapy improved {B} symptoms markedly.",
    "Patients with {B} received {A} during admission.",
    "{A} had no effect on {B} severity.",
    "{A} and {B} were discussed in the review.",
    "{B} was managed before {A} administration began.",
    "{A} prevented recurrence of {B} in most cases.",
    "Screening for {B} preceded {A} dosing.",
    "{A} was evaluated in the management plan for chronic refractory {B}.",
];

const FILLER: &[&str] = &[
    "The cohort was followed for two years.",
    "Laboratory values remained within normal limits.",
    "Informed consent was obtained from all participants.",
    "The study was approved by the review board.",
    "Baseline characteristics were balanced across arms.",
];

/// Build the CDR task.
pub fn build(cfg: TaskConfig) -> RelationTask {
    let mut pool = NamePool::new(cfg.seed.wrapping_add(0xCD2));
    let spec = RelationCorpusSpec {
        type_a: "Chemical",
        type_b: "Disease",
        entities_a: pool.chemicals(60),
        entities_b: pool.diseases(60),
        // Base rate below Table 2's 24.6% because positive-pair repeats
        // (repeat_pair_rate) add extra positive candidates.
        pos_rate: 0.185,
        pos_templates: POS_TEMPLATES.to_vec(),
        neg_templates: NEG_TEMPLATES.to_vec(),
        filler: FILLER.to_vec(),
        template_flip: 0.12,
        sentences_per_doc: (4, 10),
        filler_rate: 0.25,
        relation_density: 0.06,
        symmetric: false,
        ambig_templates: vec![],
        ambig_rate: 0.0,
        style_cue: None,
        repeat_pair_rate: 0.18,
    };
    let gen = build_relation_corpus(&spec, cfg.num_candidates, cfg.seed.wrapping_add(1));

    // CTD-like KB. Per the paper's protocol, the usable KB reflects only
    // about half of the true relations (they removed half of CTD and
    // evaluated on held-out candidates), so subset recalls are ≤ 0.5.
    let mut kb_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let mut kb = KnowledgeBase::new("ctd");
    let (ea, eb) = (&spec.entities_a, &spec.entities_b);
    noisy_kb_subset(
        &mut kb,
        "Causes_curated",
        &gen.relations,
        ea,
        eb,
        0.35,
        6,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Causes_inferred",
        &gen.relations,
        ea,
        eb,
        0.5,
        60,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Marker",
        &gen.relations,
        ea,
        eb,
        0.25,
        40,
        &mut kb_rng,
    );
    // Treats/Therapy/Unrelated: mostly non-causal pairs (negative signal).
    noisy_kb_subset(
        &mut kb,
        "Treats_curated",
        &gen.relations,
        ea,
        eb,
        0.02,
        60,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Treats_inferred",
        &gen.relations,
        ea,
        eb,
        0.05,
        150,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Therapy",
        &gen.relations,
        ea,
        eb,
        0.02,
        80,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Prevents",
        &gen.relations,
        ea,
        eb,
        0.03,
        50,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Unrelated",
        &gen.relations,
        ea,
        eb,
        0.08,
        120,
        &mut kb_rng,
    );
    let kb = Arc::new(kb);

    let (lfs, lf_types) = build_lfs(&kb);
    let (train, dev, test) = split_rows(
        gen.candidates.len(),
        0.065, // Table 7 proportions: 888 / 13780
        0.335, // 4620 / 13780
        cfg.seed.wrapping_add(3),
    );

    RelationTask {
        name: "CDR".to_string(),
        corpus: gen.corpus,
        candidates: gen.candidates,
        gold: gen.gold,
        train,
        dev,
        test,
        lfs,
        lf_types,
        kb: Some(kb),
        relations: gen.relations,
    }
}

/// The 33-LF suite (15 pattern, 8 distant supervision, 6 structure,
/// 4 weak classifiers).
fn build_lfs(kb: &Arc<KnowledgeBase>) -> (Vec<BoxedLf>, Vec<LfType>) {
    let mut lfs: Vec<BoxedLf> = Vec::with_capacity(33);
    let mut types = Vec::with_capacity(33);
    let push = |lf: BoxedLf, t: LfType, lfs: &mut Vec<BoxedLf>, types: &mut Vec<LfType>| {
        lfs.push(lf);
        types.push(t);
    };

    // ---- Text patterns (15) -----------------------------------------
    let patterns: Vec<BoxedLf> = vec![
        Box::new(KeywordBetweenLf::new(
            "lf_causes",
            &["causes", "caused", "causing"],
            1,
            0,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_induced",
            &["induced", "induces"],
            1,
            0,
        )),
        Box::new(KeywordBetweenLf::new("lf_resulted", &["resulted"], 1, 0)),
        Box::new(KeywordBetweenLf::new(
            "lf_aggravate",
            &["aggravate", "aggravates"],
            1,
            0,
        )),
        Box::new(PatternLf::new("lf_toxicity", r"{{0}} toxicity", 1).expect("pattern")),
        Box::new(PatternLf::new("lf_linked_to", r"{{0}} was linked to {{1}}", 1).expect("pattern")),
        Box::new(
            PatternLf::new("lf_developed_after", r"{{1}} developed after {{0}}", 1)
                .expect("pattern"),
        ),
        Box::new(PatternLf::new("lf_following", r"{{1}} following {{0}}", 1).expect("pattern")),
        Box::new(
            PatternLf::new("lf_caused_by", r"{{1}} was caused by .*{{0}}", 1).expect("pattern"),
        ),
        Box::new(
            PatternLf::new("lf_attributed", r"{{1}} was attributed to {{0}}", 1).expect("pattern"),
        ),
        Box::new(KeywordBetweenLf::new(
            "lf_treat",
            &["treat", "treats", "treating"],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_improved",
            &["improved", "improves"],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new("lf_received", &["received"], -1, -1)),
        Box::new(
            PatternLf::new("lf_no_effect", r"{{0}} had no effect on {{1}}", -1).expect("pattern"),
        ),
        Box::new(KeywordBetweenLf::new(
            "lf_prevented",
            &["prevented", "prevents"],
            -1,
            -1,
        )),
    ];
    for p in patterns {
        push(p, LfType::Pattern, &mut lfs, &mut types);
    }

    // ---- Distant supervision (8) — one LF per KB subset (Ex. 2.4) ----
    let ds = ontology_lfs(
        Arc::clone(kb),
        &[
            ("Causes_curated", 1),
            ("Causes_inferred", 1),
            ("Marker", 1),
            ("Treats_curated", -1),
            ("Treats_inferred", -1),
            ("Therapy", -1),
            ("Prevents", -1),
            ("Unrelated", -1),
        ],
    );
    for d in ds {
        push(d, LfType::DistantSupervision, &mut lfs, &mut types);
    }

    // ---- Structure-based (6): context-hierarchy heuristics -----------
    let causal_words = [
        "causes", "caused", "causing", "induced", "induces", "resulted",
    ];
    let neutral_words = [
        "treat",
        "treats",
        "improved",
        "received",
        "prevented",
        "managed",
    ];

    push(
        lf("lf_multiple_mentions", move |x| {
            // The same pair mentioned in 2+ sentences of one document
            // suggests a real relation.
            let a = x.span(0).text().to_lowercase();
            let b = x.span(1).text().to_lowercase();
            let mut hits = 0;
            for sent in x.doc().sentences() {
                let text = sent.text().to_lowercase();
                if text.contains(&a) && text.contains(&b) {
                    hits += 1;
                }
            }
            if hits >= 2 {
                1
            } else {
                0
            }
        }),
        LfType::StructureBased,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_close_causal", move |x| {
            let close = x.token_distance(0, 1) <= 2;
            let causal = x
                .sentence()
                .tokens()
                .iter()
                .any(|t| causal_words.contains(&t.text.to_lowercase().as_str()));
            if close && causal {
                1
            } else {
                0
            }
        }),
        LfType::StructureBased,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_far_apart", |x| {
            if x.token_distance(0, 1) >= 7 {
                -1
            } else {
                0
            }
        }),
        LfType::StructureBased,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_disease_first_neutral", move |x| {
            // Disease before chemical with a neutral verb in between:
            // usually a treatment context.
            if !x.span_precedes(0, 1)
                && x.words_between(0, 1)
                    .iter()
                    .any(|w| neutral_words.contains(&w.to_lowercase().as_str()))
            {
                -1
            } else {
                0
            }
        }),
        LfType::StructureBased,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_first_sentence", move |x| {
            // Abstract-style leading sentences state causal findings.
            let causal = x
                .sentence()
                .tokens()
                .iter()
                .any(|t| causal_words.contains(&t.text.to_lowercase().as_str()));
            if x.sentence().position() == 0 && causal {
                1
            } else {
                0
            }
        }),
        LfType::StructureBased,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_and_conjunction", |x| {
            // "A and B were discussed": pure co-mention, not causal.
            let between = x.words_between(0, 1);
            if between.len() == 1 && between[0].eq_ignore_ascii_case("and") {
                -1
            } else {
                0
            }
        }),
        LfType::StructureBased,
        &mut lfs,
        &mut types,
    );

    // ---- Weak classifiers (4) -----------------------------------------
    push(
        Box::new(
            ThresholdLf::new(
                "lf_causal_score",
                move |x| {
                    // Score only the region between the argument spans —
                    // keyword counts elsewhere in the sentence are too
                    // weakly tied to this candidate. The classifier is
                    // "trained on another domain": it only scores
                    // candidates whose disease suffix it has seen.
                    let dis = x.span(1).text().to_lowercase();
                    if !(dis.ends_with("osis") || dis.ends_with("itis") || dis.ends_with("emia")) {
                        return 0.0;
                    }
                    let mut score = 0.0;
                    for t in x.tokens_between(0, 1) {
                        let w = t.text.to_lowercase();
                        if causal_words.contains(&w.as_str()) {
                            score += 1.0;
                        }
                        if neutral_words.contains(&w.as_str()) {
                            score -= 1.0;
                        }
                    }
                    score
                },
                -0.5,
                0.5,
            )
            .with_labels(-1, 1),
        ),
        LfType::WeakClassifier,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_negation", |x| {
            let negated = x
                .sentence()
                .tokens()
                .iter()
                .any(|t| matches!(t.text.to_lowercase().as_str(), "no" | "not" | "without"));
            if negated {
                -1
            } else {
                0
            }
        }),
        LfType::WeakClassifier,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_dose_context", |x| {
            // Dose/infusion vocabulary marks adverse-event reporting.
            let dosed = x
                .sentence()
                .tokens()
                .iter()
                .any(|t| matches!(t.text.to_lowercase().as_str(), "doses" | "infusion"));
            if dosed {
                1
            } else {
                0
            }
        }),
        LfType::WeakClassifier,
        &mut lfs,
        &mut types,
    );
    push(
        lf("lf_legacy_model", |x| {
            // A deliberately weak "classifier trained on another
            // dataset": votes on a pseudo-random slice of candidates
            // with barely-better-than-chance correlation to the truth
            // (it keys on surface suffixes of the argument names).
            let chem = x.span(0).text().to_lowercase();
            let dis = x.span(1).text().to_lowercase();
            if (chem.ends_with("ol") || chem.ends_with("ine")) && dis.ends_with("osis") {
                if x.token_distance(0, 1) <= 4 {
                    1
                } else {
                    -1
                }
            } else {
                0
            }
        }),
        LfType::WeakClassifier,
        &mut lfs,
        &mut types,
    );

    assert_eq!(lfs.len(), 33, "CDR suite must have 33 LFs (Table 2)");
    (lfs, types)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_matrix::stats::matrix_stats;

    fn small_task() -> RelationTask {
        build(TaskConfig {
            num_candidates: 600,
            seed: 7,
        })
    }

    #[test]
    fn suite_shape_matches_table2() {
        let t = small_task();
        assert_eq!(t.lfs.len(), 33);
        assert_eq!(t.lf_types.len(), 33);
        assert_eq!(t.lf_indices_of(&[LfType::Pattern]).len(), 15);
        assert_eq!(t.lf_indices_of(&[LfType::DistantSupervision]).len(), 8);
        assert_eq!(t.lf_indices_of(&[LfType::StructureBased]).len(), 6);
        assert_eq!(t.lf_indices_of(&[LfType::WeakClassifier]).len(), 4);
    }

    #[test]
    fn pos_rate_near_paper() {
        let t = small_task();
        let pos = t.pct_positive();
        assert!((pos - 0.246).abs() < 0.08, "%pos = {pos:.3}");
    }

    #[test]
    fn label_density_in_paper_ballpark() {
        let t = small_task();
        let lambda = t.train_matrix();
        let d = lambda.label_density();
        // Paper reports d_Λ = 1.8 for CDR; allow a generous band.
        assert!((1.0..3.2).contains(&d), "label density {d:.2}");
    }

    #[test]
    fn lfs_beat_chance_on_average() {
        let t = small_task();
        let lambda = t.label_matrix(&t.test);
        let gold = t.gold_of(&t.test);
        let accs = snorkel_matrix::stats::empirical_accuracies(&lambda, &gold);
        let measured: Vec<f64> = accs.into_iter().flatten().collect();
        assert!(!measured.is_empty());
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        assert!(mean > 0.6, "mean LF accuracy {mean:.3}");
    }

    #[test]
    fn coverage_is_partial() {
        let t = small_task();
        let lambda = t.train_matrix();
        let stats = matrix_stats(&lambda);
        assert!(
            stats.coverage > 0.4 && stats.coverage < 1.0,
            "coverage {}",
            stats.coverage
        );
        // Some conflicts must exist for the generative model to resolve.
        assert!(
            stats.conflict_rate > 0.02,
            "conflict {}",
            stats.conflict_rate
        );
    }

    #[test]
    fn splits_partition_candidates() {
        let t = small_task();
        assert_eq!(
            t.train.len() + t.dev.len() + t.test.len(),
            t.candidates.len()
        );
        assert!(t.dev.len() < t.test.len());
        assert!(t.test.len() < t.train.len());
    }
}
