//! Deterministic entity-name generation.
//!
//! Synthetic corpora need pools of chemical, disease, and person names
//! that look word-like (the tokenizer, NER dictionary, and pattern LFs
//! all treat them as ordinary tokens) and are collision-free. Names are
//! built from seeded syllable draws plus domain suffixes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ONSETS: &[&str] = &[
    "b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "k", "l", "m", "n", "p", "pr", "r", "s",
    "st", "t", "tr", "v", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ia", "io"];
const CHEM_SUFFIXES: &[&str] = &["ol", "ine", "ate", "ium", "ide", "one", "il", "an"];
const DISEASE_SUFFIXES: &[&str] = &["itis", "osis", "emia", "pathy", "algia", "oma", "plegia"];
const FIRST_NAMES: &[&str] = &[
    "Alice", "Bruno", "Carmen", "Diego", "Elena", "Felix", "Greta", "Hugo", "Irene", "Jonas",
    "Karla", "Liam", "Mona", "Nadia", "Oscar", "Petra", "Quinn", "Rosa", "Stefan", "Tara", "Ulric",
    "Vera", "Wanda", "Xavier", "Yara", "Zane",
];
const LAST_NAMES: &[&str] = &[
    "Alvarez", "Baker", "Castillo", "Dubois", "Eriksen", "Fischer", "Garcia", "Hansen", "Ibrahim",
    "Jensen", "Kovacs", "Larsen", "Moreau", "Novak", "Okafor", "Petrov", "Quintero", "Rossi",
    "Schmidt", "Tanaka", "Ueda", "Vargas", "Weber", "Xu", "Yamada", "Zhang",
];

/// Seeded generator of unique domain names.
#[derive(Debug)]
pub struct NamePool {
    rng: StdRng,
    used: std::collections::HashSet<String>,
}

impl NamePool {
    /// A pool with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        NamePool {
            rng: StdRng::seed_from_u64(seed),
            used: std::collections::HashSet::new(),
        }
    }

    fn syllables(&mut self, count: usize) -> String {
        let mut s = String::new();
        for _ in 0..count {
            s.push_str(ONSETS[self.rng.gen_range(0..ONSETS.len())]);
            s.push_str(VOWELS[self.rng.gen_range(0..VOWELS.len())]);
        }
        s
    }

    fn unique(&mut self, mut make: impl FnMut(&mut Self) -> String) -> String {
        loop {
            let candidate = make(self);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// A fresh chemical-looking name ("dratexol", "clomirium", …).
    pub fn chemical(&mut self) -> String {
        self.unique(|p| {
            let stem = p.syllables(2);
            let suffix = CHEM_SUFFIXES[p.rng.gen_range(0..CHEM_SUFFIXES.len())];
            format!("{stem}{suffix}")
        })
    }

    /// A fresh disease-looking name ("brunopathy", "stelitis", …).
    pub fn disease(&mut self) -> String {
        self.unique(|p| {
            let stem = p.syllables(2);
            let suffix = DISEASE_SUFFIXES[p.rng.gen_range(0..DISEASE_SUFFIXES.len())];
            format!("{stem}{suffix}")
        })
    }

    /// A fresh "First Last" person name; the pool cycles through
    /// combinations, suffixing a number once exhausted.
    pub fn person(&mut self) -> String {
        self.unique(|p| {
            let f = FIRST_NAMES[p.rng.gen_range(0..FIRST_NAMES.len())];
            let l = LAST_NAMES[p.rng.gen_range(0..LAST_NAMES.len())];
            if p.used.contains(&format!("{f} {l}")) {
                format!("{f} {l}{}", p.rng.gen_range(2..99))
            } else {
                format!("{f} {l}")
            }
        })
    }

    /// Batch helpers.
    pub fn chemicals(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.chemical()).collect()
    }

    /// Batch of disease names.
    pub fn diseases(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.disease()).collect()
    }

    /// Batch of person names.
    pub fn persons(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.person()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_deterministic() {
        let mut a = NamePool::new(1);
        let mut b = NamePool::new(1);
        let ca = a.chemicals(200);
        let cb = b.chemicals(200);
        assert_eq!(ca, cb, "same seed, same names");
        let set: std::collections::HashSet<&String> = ca.iter().collect();
        assert_eq!(set.len(), 200, "all unique");
    }

    #[test]
    fn suffixes_match_domain() {
        let mut p = NamePool::new(2);
        let chem = p.chemical();
        assert!(CHEM_SUFFIXES.iter().any(|s| chem.ends_with(s)), "{chem}");
        let dis = p.disease();
        assert!(DISEASE_SUFFIXES.iter().any(|s| dis.ends_with(s)), "{dis}");
    }

    #[test]
    fn persons_have_two_tokens() {
        let mut p = NamePool::new(3);
        for name in p.persons(50) {
            assert!(name.split_whitespace().count() >= 2, "{name}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NamePool::new(10);
        let mut b = NamePool::new(11);
        assert_ne!(a.chemicals(20), b.chemicals(20));
    }

    #[test]
    fn pools_do_not_cross_contaminate_types() {
        let mut p = NamePool::new(4);
        let c = p.chemicals(30);
        let d = p.diseases(30);
        for name in &c {
            assert!(!d.contains(name));
        }
    }
}
