//! Shared scaffolding for the relation-extraction tasks.
//!
//! Each task (Chem, EHR, CDR, Spouses) instantiates a
//! `RelationCorpusSpec` — entity pools, sentence templates per class,
//! and noise rates — and a labeling-function suite. The generator turns
//! the spec into a corpus whose ground truth is a planted pair-level
//! relation set `R`: a candidate is positive iff its `(a, b)` span pair
//! is in `R`. Sentence templates are chosen *conditionally on* the
//! label, with a tunable flip probability, so pattern LFs see realistic
//! precision and text features carry learnable-but-imperfect signal.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_context::{CandidateId, Corpus};
use snorkel_lf::{BoxedLf, KnowledgeBase, LfExecutor, Vote};
use snorkel_matrix::LabelMatrix;
use snorkel_nlp::{CandidateExtractor, DictionaryTagger, DocumentIngester};

/// Category of a labeling function (Table 6's ablation axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LfType {
    /// Word / phrase / pattern heuristics.
    Pattern,
    /// External knowledge-base alignment.
    DistantSupervision,
    /// Heuristics over the context hierarchy (position, distance,
    /// document structure).
    StructureBased,
    /// Thresholded weak classifiers.
    WeakClassifier,
    /// One crowdworker's answers.
    Crowd,
}

/// Generation-scale configuration.
#[derive(Clone, Copy, Debug)]
pub struct TaskConfig {
    /// Approximate number of candidates to generate (train+dev+test).
    pub num_candidates: usize,
    /// Master seed for the task's RNG streams.
    pub seed: u64,
}

impl TaskConfig {
    /// Laptop-scale default.
    pub fn small() -> Self {
        TaskConfig {
            num_candidates: 2000,
            seed: 0,
        }
    }

    /// Explicit scale.
    pub fn with_candidates(n: usize) -> Self {
        TaskConfig {
            num_candidates: n,
            seed: 0,
        }
    }

    /// Change the seed (different corpus realization).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig::small()
    }
}

/// A fully materialized relation-extraction task.
pub struct RelationTask {
    /// Task name ("CDR", "Chem", …).
    pub name: String,
    /// The corpus (documents, sentences, tagged spans, candidates).
    pub corpus: Corpus,
    /// All candidates in matrix-row order.
    pub candidates: Vec<CandidateId>,
    /// Ground-truth label per candidate (parallel to `candidates`).
    pub gold: Vec<Vote>,
    /// Row indices of the (unlabeled-in-spirit) training split.
    pub train: Vec<usize>,
    /// Row indices of the small labeled development split.
    pub dev: Vec<usize>,
    /// Row indices of the held-out test split.
    pub test: Vec<usize>,
    /// The labeling-function suite.
    pub lfs: Vec<BoxedLf>,
    /// Category of each LF (parallel to `lfs`).
    pub lf_types: Vec<LfType>,
    /// The task's knowledge base, when distant supervision applies.
    pub kb: Option<Arc<KnowledgeBase>>,
    /// The planted relation set (pair-level ground truth).
    pub relations: HashSet<(String, String)>,
}

impl RelationTask {
    /// Apply the LF suite over a subset of rows.
    pub fn label_matrix(&self, rows: &[usize]) -> LabelMatrix {
        let ids: Vec<CandidateId> = rows.iter().map(|&r| self.candidates[r]).collect();
        LfExecutor::new().apply(&self.lfs, &self.corpus, &ids)
    }

    /// Apply the LF suite over the training split.
    pub fn train_matrix(&self) -> LabelMatrix {
        self.label_matrix(&self.train)
    }

    /// Apply a subset of LFs (by index) over a subset of rows — the
    /// Table 6 ablation hook.
    pub fn label_matrix_with_lfs(&self, rows: &[usize], lf_indices: &[usize]) -> LabelMatrix {
        let full = self.label_matrix(rows);
        full.select_columns(lf_indices)
            .expect("LF ablation indices must be in range")
    }

    /// Gold labels of a row subset.
    pub fn gold_of(&self, rows: &[usize]) -> Vec<Vote> {
        rows.iter().map(|&r| self.gold[r]).collect()
    }

    /// Indices of LFs of the given types.
    pub fn lf_indices_of(&self, types: &[LfType]) -> Vec<usize> {
        self.lf_types
            .iter()
            .enumerate()
            .filter(|(_, t)| types.contains(t))
            .map(|(i, _)| i)
            .collect()
    }

    /// Fraction of positive gold labels (Table 2's "% Pos.").
    pub fn pct_positive(&self) -> f64 {
        let pos = self.gold.iter().filter(|&&g| g == 1).count();
        pos as f64 / self.gold.len().max(1) as f64
    }

    /// Number of documents (Table 2's "# Docs").
    pub fn num_docs(&self) -> usize {
        self.corpus.num_documents()
    }
}

// ----------------------------------------------------------------------
// Corpus generation
// ----------------------------------------------------------------------

/// Specification of a synthetic relation corpus.
pub(crate) struct RelationCorpusSpec {
    /// Entity type of argument 0.
    pub type_a: &'static str,
    /// Entity type of argument 1.
    pub type_b: &'static str,
    /// Argument-0 entity surface forms.
    pub entities_a: Vec<String>,
    /// Argument-1 entity surface forms.
    pub entities_b: Vec<String>,
    /// Target fraction of positive candidates.
    pub pos_rate: f64,
    /// Positive-class sentence templates (`{A}`, `{B}` slots).
    pub pos_templates: Vec<&'static str>,
    /// Negative-class sentence templates.
    pub neg_templates: Vec<&'static str>,
    /// Entity-free filler sentences interleaved into documents.
    pub filler: Vec<&'static str>,
    /// Probability a sentence uses a template of the *wrong* class
    /// (pattern-LF noise).
    pub template_flip: f64,
    /// Sentences per document (min, max).
    pub sentences_per_doc: (usize, usize),
    /// Probability of inserting a filler sentence between relation
    /// sentences.
    pub filler_rate: f64,
    /// Fraction of all possible (a, b) pairs planted as true relations.
    pub relation_density: f64,
    /// Whether the relation is symmetric (person–person).
    pub symmetric: bool,
    /// Probability a relation sentence reuses the document's previous
    /// pair (gives document-structure LFs real signal).
    pub repeat_pair_rate: f64,
    /// Class-independent "ambiguous" templates: sentences that mention
    /// the pair without any LF-visible cue. They lower label density and
    /// create the Example 2.5 situation — candidates every LF abstains
    /// on that the discriminative model can still get right from
    /// features.
    pub ambig_templates: Vec<&'static str>,
    /// Probability a relation sentence uses an ambiguous template.
    pub ambig_rate: f64,
    /// Optional class-correlated *style cue* appended to relation
    /// sentences — a phrasing signal that no labeling function reads but
    /// the discriminative features capture. This is Example 2.5's
    /// mechanism: features co-occur with the heuristics on covered rows
    /// and persist on rows where every LF abstains. `(positive phrase,
    /// negative phrase, strength)`: the class-matched phrase is appended
    /// with probability `strength`, the mismatched one with
    /// `strength / 3`.
    pub style_cue: Option<(&'static str, &'static str, f64)>,
}

/// Output of corpus generation, consumed by the task builders.
pub(crate) struct GeneratedCorpus {
    pub corpus: Corpus,
    pub candidates: Vec<CandidateId>,
    pub gold: Vec<Vote>,
    pub relations: HashSet<(String, String)>,
}

pub(crate) fn build_relation_corpus(
    spec: &RelationCorpusSpec,
    num_candidates: usize,
    seed: u64,
) -> GeneratedCorpus {
    let mut rng = StdRng::seed_from_u64(seed);

    // Plant the relation set R.
    let total_pairs = spec.entities_a.len() * spec.entities_b.len();
    let n_rel = ((total_pairs as f64 * spec.relation_density).round() as usize).max(4);
    let mut relations: HashSet<(String, String)> = HashSet::new();
    while relations.len() < n_rel {
        let a = &spec.entities_a[rng.gen_range(0..spec.entities_a.len())];
        let b = &spec.entities_b[rng.gen_range(0..spec.entities_b.len())];
        if spec.symmetric && a == b {
            continue;
        }
        relations.insert((a.to_lowercase(), b.to_lowercase()));
        if spec.symmetric {
            relations.insert((b.to_lowercase(), a.to_lowercase()));
        }
    }

    // NER dictionary over all entities.
    let mut tagger = DictionaryTagger::new();
    tagger.add_phrases(spec.entities_a.iter().map(String::as_str), spec.type_a);
    tagger.add_phrases(spec.entities_b.iter().map(String::as_str), spec.type_b);
    let ingester = DocumentIngester::with_tagger(tagger);

    let mut corpus = Corpus::new();
    let mut produced = 0usize;
    let mut doc_idx = 0usize;
    while produced < num_candidates {
        let n_sents = rng.gen_range(spec.sentences_per_doc.0..=spec.sentences_per_doc.1);
        let mut doc_text = String::new();
        let mut last_pair: Option<(String, String)> = None;
        for _ in 0..n_sents {
            if produced >= num_candidates && !doc_text.is_empty() {
                break;
            }
            if rng.gen::<f64>() < spec.filler_rate && !spec.filler.is_empty() {
                let f = spec.filler[rng.gen_range(0..spec.filler.len())];
                doc_text.push_str(f);
                doc_text.push(' ');
                continue;
            }
            // Choose the pair conditioned on the target positive rate.
            // Documents dwell on their main *finding*: a previous
            // positive pair is revisited with probability
            // `repeat_pair_rate`, which is the real-world signal the
            // document-structure LFs exploit (task builders compensate
            // `pos_rate` for the extra positives this injects).
            let repeat = last_pair
                .clone()
                .filter(|_| rng.gen::<f64>() < spec.repeat_pair_rate);
            let (a, b) = match repeat {
                Some(p) => p,
                None => {
                    let want_pos = rng.gen::<f64>() < spec.pos_rate;
                    sample_pair(&mut rng, spec, &relations, want_pos)
                }
            };
            let is_pos = relations.contains(&(a.to_lowercase(), b.to_lowercase()));
            last_pair = if is_pos {
                Some((a.clone(), b.clone()))
            } else {
                None
            };
            // Template class, with flip noise.
            let use_pos_template = if rng.gen::<f64>() < spec.template_flip {
                !is_pos
            } else {
                is_pos
            };
            let pool = if !spec.ambig_templates.is_empty() && rng.gen::<f64>() < spec.ambig_rate {
                &spec.ambig_templates
            } else if use_pos_template {
                &spec.pos_templates
            } else {
                &spec.neg_templates
            };
            let template = pool[rng.gen_range(0..pool.len())];
            let mut sentence = template.replace("{A}", &a).replace("{B}", &b);
            if let Some((pos_cue, neg_cue, strength)) = &spec.style_cue {
                let (matched, other) = if is_pos {
                    (pos_cue, neg_cue)
                } else {
                    (neg_cue, pos_cue)
                };
                let cue = if rng.gen::<f64>() < *strength {
                    Some(matched)
                } else if rng.gen::<f64>() < *strength / 3.0 {
                    Some(other)
                } else {
                    None
                };
                if let Some(cue) = cue {
                    // Splice before the final period.
                    if let Some(stripped) = sentence.strip_suffix('.') {
                        sentence = format!("{stripped}, {cue}.");
                    }
                }
            }
            // Capitalize the sentence start (entity names are lowercase;
            // without this the sentence splitter correctly refuses to
            // break before a lowercase continuation).
            let sentence = capitalize_first(&sentence);
            doc_text.push_str(&sentence);
            doc_text.push(' ');
            produced += 1;
        }
        ingester.ingest(&mut corpus, &format!("doc-{doc_idx}"), doc_text.trim());
        doc_idx += 1;
    }

    // Extract candidates and derive gold from R membership.
    let candidates = CandidateExtractor::new(spec.type_a, spec.type_b).extract(&mut corpus);
    let gold: Vec<Vote> = candidates
        .iter()
        .map(|&id| {
            let v = corpus.candidate(id);
            let a = v.span(0).text().to_lowercase();
            let b = v.span(1).text().to_lowercase();
            if relations.contains(&(a, b)) {
                1
            } else {
                -1
            }
        })
        .collect();

    GeneratedCorpus {
        corpus,
        candidates,
        gold,
        relations,
    }
}

/// Uppercase the first alphabetic character of a sentence.
pub(crate) fn capitalize_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn sample_pair(
    rng: &mut StdRng,
    spec: &RelationCorpusSpec,
    relations: &HashSet<(String, String)>,
    want_pos: bool,
) -> (String, String) {
    // Sorted so indexing by RNG draw is deterministic across processes
    // (HashSet iteration order is randomized per instance).
    let mut rel_vec: Vec<&(String, String)> = relations.iter().collect();
    rel_vec.sort();
    for _ in 0..64 {
        if want_pos {
            let (a, b) = rel_vec[rng.gen_range(0..rel_vec.len())];
            // Recover original casing from the entity pools.
            let a_orig = spec
                .entities_a
                .iter()
                .find(|e| e.to_lowercase() == *a)
                .cloned()
                .unwrap_or_else(|| a.clone());
            let b_orig = spec
                .entities_b
                .iter()
                .find(|e| e.to_lowercase() == *b)
                .cloned()
                .unwrap_or_else(|| b.clone());
            return (a_orig, b_orig);
        }
        let a = spec.entities_a[rng.gen_range(0..spec.entities_a.len())].clone();
        let b = spec.entities_b[rng.gen_range(0..spec.entities_b.len())].clone();
        if spec.symmetric && a == b {
            continue;
        }
        if !relations.contains(&(a.to_lowercase(), b.to_lowercase())) {
            return (a, b);
        }
    }
    // Dense relation sets may make negatives rare; fall back to any pair.
    (
        spec.entities_a[rng.gen_range(0..spec.entities_a.len())].clone(),
        spec.entities_b[rng.gen_range(0..spec.entities_b.len())].clone(),
    )
}

/// Deterministic train/dev/test split with the given fractions.
///
/// The fractions follow the paper's Table 7 proportions, which at paper
/// scale leave hundreds of labeled rows; at laptop scale they can shrink
/// to single digits, so dev and test are floored at `min(150, n/6)` rows
/// each to keep evaluation meaningful.
pub(crate) fn split_rows(
    n: usize,
    dev_frac: f64,
    test_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(&mut rng);
    let floor = 150.min(n / 6);
    let n_dev = (((n as f64) * dev_frac).round() as usize).max(floor);
    let n_test = (((n as f64) * test_frac).round() as usize).max(floor);
    let dev = rows[..n_dev].to_vec();
    let test = rows[n_dev..n_dev + n_test].to_vec();
    let train = rows[n_dev + n_test..].to_vec();
    (train, dev, test)
}

/// Build a KB whose named subset contains a noisy sample of the true
/// relation set: `recall` of R's pairs, plus `noise_pairs` random false
/// pairs. Used by every distant-supervision suite.
#[allow(clippy::too_many_arguments)]
pub(crate) fn noisy_kb_subset(
    kb: &mut KnowledgeBase,
    subset: &str,
    relations: &HashSet<(String, String)>,
    entities_a: &[String],
    entities_b: &[String],
    recall: f64,
    noise_pairs: usize,
    rng: &mut StdRng,
) {
    // Sorted iteration so the recall coin flips hit the same pairs in
    // every process (HashSet order is instance-random).
    let mut sorted: Vec<&(String, String)> = relations.iter().collect();
    sorted.sort();
    for (a, b) in sorted {
        if rng.gen::<f64>() < recall {
            kb.add_pair(subset, a, b);
        }
    }
    for _ in 0..noise_pairs {
        let a = &entities_a[rng.gen_range(0..entities_a.len())];
        let b = &entities_b[rng.gen_range(0..entities_b.len())];
        if !relations.contains(&(a.to_lowercase(), b.to_lowercase())) {
            kb.add_pair(subset, a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NamePool;

    fn tiny_spec() -> RelationCorpusSpec {
        let mut pool = NamePool::new(42);
        RelationCorpusSpec {
            type_a: "Chemical",
            type_b: "Disease",
            entities_a: pool.chemicals(20),
            entities_b: pool.diseases(20),
            pos_rate: 0.3,
            pos_templates: vec!["Treatment with {A} causes {B} in patients."],
            neg_templates: vec!["Patients received {A} while monitored for {B}."],
            filler: vec!["The cohort was followed for two years."],
            template_flip: 0.1,
            sentences_per_doc: (2, 5),
            filler_rate: 0.2,
            relation_density: 0.1,
            symmetric: false,
            repeat_pair_rate: 0.1,
            ambig_templates: vec![],
            ambig_rate: 0.0,
            style_cue: None,
        }
    }

    #[test]
    fn generates_requested_scale() {
        let g = build_relation_corpus(&tiny_spec(), 300, 1);
        assert!(g.candidates.len() >= 300, "got {}", g.candidates.len());
        assert_eq!(g.candidates.len(), g.gold.len());
        assert!(g.corpus.num_documents() > 20);
    }

    #[test]
    fn pos_rate_is_roughly_respected() {
        let g = build_relation_corpus(&tiny_spec(), 1000, 2);
        let pos = g.gold.iter().filter(|&&v| v == 1).count() as f64 / g.gold.len() as f64;
        assert!((pos - 0.3).abs() < 0.1, "pos rate {pos}");
    }

    #[test]
    fn gold_matches_relation_membership() {
        let g = build_relation_corpus(&tiny_spec(), 200, 3);
        for (i, &id) in g.candidates.iter().enumerate() {
            let v = g.corpus.candidate(id);
            let key = (
                v.span(0).text().to_lowercase(),
                v.span(1).text().to_lowercase(),
            );
            assert_eq!(g.gold[i] == 1, g.relations.contains(&key));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_relation_corpus(&tiny_spec(), 150, 7);
        let b = build_relation_corpus(&tiny_spec(), 150, 7);
        assert_eq!(a.gold, b.gold);
        assert_eq!(a.corpus.num_sentences(), b.corpus.num_sentences());
    }

    #[test]
    fn candidates_have_correct_arg_types() {
        let g = build_relation_corpus(&tiny_spec(), 100, 4);
        for &id in &g.candidates[..20] {
            let v = g.corpus.candidate(id);
            assert_eq!(v.span(0).entity_type(), Some("Chemical"));
            assert_eq!(v.span(1).entity_type(), Some("Disease"));
        }
    }

    #[test]
    fn split_fractions() {
        let (train, dev, test) = split_rows(1200, 0.15, 0.3, 5);
        assert_eq!(dev.len(), 180);
        assert_eq!(test.len(), 360);
        assert_eq!(train.len(), 660);
        let all: std::collections::HashSet<usize> =
            train.iter().chain(&dev).chain(&test).copied().collect();
        assert_eq!(all.len(), 1200, "splits are disjoint and exhaustive");
    }

    #[test]
    fn split_floors_apply_at_small_scale() {
        // Paper-proportional fractions of 0.3% would leave 3 test rows;
        // the floor keeps evaluation splits usable.
        let (train, dev, test) = split_rows(1000, 0.004, 0.003, 5);
        assert_eq!(dev.len(), 150);
        assert_eq!(test.len(), 150);
        assert_eq!(train.len(), 700);
    }

    #[test]
    fn noisy_kb_has_recall_and_noise() {
        // A seed different from the corpus seed: with the same seed the
        // noise draws replay the exact RNG stream that planted R and
        // every noise pair collides with a true relation.
        let mut rng = StdRng::seed_from_u64(999);
        let g = build_relation_corpus(&tiny_spec(), 100, 6);
        let spec = tiny_spec();
        let mut kb = KnowledgeBase::new("test");
        noisy_kb_subset(
            &mut kb,
            "Causes",
            &g.relations,
            &spec.entities_a,
            &spec.entities_b,
            0.8,
            10,
            &mut rng,
        );
        let hits = g
            .relations
            .iter()
            .filter(|(a, b)| kb.contains("Causes", a, b))
            .count();
        assert!(hits as f64 >= 0.5 * g.relations.len() as f64);
        assert!(kb.subset_len("Causes") > hits, "noise pairs present");
    }
}
