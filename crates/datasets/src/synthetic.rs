//! Purely synthetic label matrices for the §3 tradeoff experiments.
//!
//! * [`independent_matrix`] — the Figure 4 setup: a class-balanced
//!   dataset of `m` points and `n` conditionally independent LFs with a
//!   common accuracy and voting propensity (the paper uses m = 1000,
//!   accuracy 75%, propensity 10%).
//! * [`correlated_matrix`] — the Figure 5 (left) setup: a suite where
//!   more than half the LFs are near-copies arranged in clusters, which
//!   the structure-learning sweep must discover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_matrix::{LabelMatrix, LabelMatrixBuilder, Vote};

/// Generate `n` independent binary LFs of equal accuracy/propensity over
/// `m` class-balanced points. Returns `(Λ, gold)`.
pub fn independent_matrix(
    m: usize,
    n: usize,
    accuracy: f64,
    propensity: f64,
    seed: u64,
) -> (LabelMatrix, Vec<Vote>) {
    assert!((0.0..=1.0).contains(&accuracy) && (0.0..=1.0).contains(&propensity));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LabelMatrixBuilder::new(m, n);
    let mut gold = Vec::with_capacity(m);
    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        gold.push(y);
        for j in 0..n {
            if rng.gen::<f64>() < propensity {
                b.set(i, j, if rng.gen::<f64>() < accuracy { y } else { -y });
            }
        }
    }
    (b.build(), gold)
}

/// Generate independent LFs with *heterogeneous* accuracies (one per
/// entry of `accuracies`), shared propensity. Returns `(Λ, gold)`.
pub fn heterogeneous_matrix(
    m: usize,
    accuracies: &[f64],
    propensity: f64,
    seed: u64,
) -> (LabelMatrix, Vec<Vote>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LabelMatrixBuilder::new(m, accuracies.len());
    let mut gold = Vec::with_capacity(m);
    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        gold.push(y);
        for (j, &acc) in accuracies.iter().enumerate() {
            if rng.gen::<f64>() < propensity {
                b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
            }
        }
    }
    (b.build(), gold)
}

/// Specification of one correlated LF cluster.
#[derive(Clone, Copy, Debug)]
pub struct Cluster {
    /// Number of LF copies in the cluster.
    pub size: usize,
    /// Accuracy of the cluster's shared base draw.
    pub accuracy: f64,
    /// Probability each copy *deviates* from the base draw (0 = perfect
    /// copies).
    pub deviation: f64,
}

/// Generate a suite of `independent` standalone LFs followed by the
/// given clusters of near-duplicate LFs (Figure 5 left: "more than half
/// the labeling functions are correlated"). All LFs share `propensity`
/// — cluster members vote whenever their base draw voted. Returns
/// `(Λ, gold, true_pairs)` where `true_pairs` lists the planted
/// correlated pairs (within-cluster, `j < k`).
pub fn correlated_matrix(
    m: usize,
    independent: usize,
    indep_accuracy: f64,
    clusters: &[Cluster],
    propensity: f64,
    seed: u64,
) -> (LabelMatrix, Vec<Vote>, Vec<(usize, usize)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = independent + clusters.iter().map(|c| c.size).sum::<usize>();
    let mut b = LabelMatrixBuilder::new(m, n);
    let mut gold = Vec::with_capacity(m);

    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        gold.push(y);
        for j in 0..independent {
            if rng.gen::<f64>() < propensity {
                b.set(
                    i,
                    j,
                    if rng.gen::<f64>() < indep_accuracy {
                        y
                    } else {
                        -y
                    },
                );
            }
        }
        let mut col = independent;
        for c in clusters {
            if rng.gen::<f64>() < propensity {
                let base: Vote = if rng.gen::<f64>() < c.accuracy { y } else { -y };
                for k in 0..c.size {
                    let vote = if rng.gen::<f64>() < c.deviation {
                        -base
                    } else {
                        base
                    };
                    b.set(i, col + k, vote);
                }
            }
            col += c.size;
        }
    }

    let mut true_pairs = Vec::new();
    let mut col = independent;
    for c in clusters {
        for a in 0..c.size {
            for b2 in (a + 1)..c.size {
                true_pairs.push((col + a, col + b2));
            }
        }
        col += c.size;
    }
    (b.build(), gold, true_pairs)
}

/// DryBell-shaped corpus for the scale-out experiments: a huge row
/// count collapsing onto a small set of distinct vote signatures.
///
/// `base_patterns` template signatures are drawn once (each LF votes
/// with probability `propensity`, correctly for the pattern's latent
/// class with probability `accuracy`), rows are assigned to templates
/// with a Zipf-skewed popularity (pattern `k` is ∝ `1/(k+1)` likely),
/// and each row independently perturbs one LF's vote with probability
/// `noise` — producing the realistic long tail of rare signatures.
/// Returns `(Λ, gold)` where `gold[i]` is row `i`'s template class.
pub fn pattern_sparse_matrix(
    m: usize,
    n: usize,
    base_patterns: usize,
    propensity: f64,
    accuracy: f64,
    noise: f64,
    seed: u64,
) -> (LabelMatrix, Vec<Vote>) {
    assert!(base_patterns > 0 && n > 0, "need ≥1 pattern and ≥1 LF");
    assert!((0.0..=1.0).contains(&propensity) && (0.0..=1.0).contains(&accuracy));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bases: Vec<(Vec<Vote>, Vote)> = Vec::with_capacity(base_patterns);
    for _ in 0..base_patterns {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        let mut sig = vec![0 as Vote; n];
        for s in sig.iter_mut() {
            if rng.gen::<f64>() < propensity {
                *s = if rng.gen::<f64>() < accuracy { y } else { -y };
            }
        }
        bases.push((sig, y));
    }
    // Zipf-ish popularity: cumulative weights 1/(k+1).
    let mut cum = Vec::with_capacity(base_patterns);
    let mut total = 0.0f64;
    for k in 0..base_patterns {
        total += 1.0 / (k as f64 + 1.0);
        cum.push(total);
    }
    let mut b = LabelMatrixBuilder::new(m, n);
    let mut gold = Vec::with_capacity(m);
    for i in 0..m {
        let u = rng.gen::<f64>() * total;
        let k = cum.partition_point(|&c| c < u).min(base_patterns - 1);
        let (sig, y) = &bases[k];
        gold.push(*y);
        let perturb = if rng.gen::<f64>() < noise {
            Some(rng.gen_range(0..n))
        } else {
            None
        };
        for (j, &v) in sig.iter().enumerate() {
            let v = if perturb == Some(j) {
                // Cycle abstain → +1 → −1 → abstain so the perturbed
                // row is guaranteed to be a different signature.
                match v {
                    0 => 1,
                    1 => -1,
                    _ => 0,
                }
            } else {
                v
            };
            b.set(i, j, v);
        }
    }
    (b.build(), gold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_matrix_statistics() {
        let (lambda, gold) = independent_matrix(2000, 10, 0.75, 0.1, 1);
        assert_eq!(lambda.num_points(), 2000);
        assert_eq!(lambda.num_lfs(), 10);
        // Density ≈ n · p_l = 1.0.
        assert!((lambda.label_density() - 1.0).abs() < 0.15);
        // Empirical accuracy ≈ 0.75.
        let accs = snorkel_matrix::stats::empirical_accuracies(&lambda, &gold);
        let mean: f64 = accs.iter().flatten().sum::<f64>() / accs.iter().flatten().count() as f64;
        assert!((mean - 0.75).abs() < 0.05, "mean acc {mean:.3}");
        // Class balance.
        let pos = gold.iter().filter(|&&g| g == 1).count() as f64 / 2000.0;
        assert!((pos - 0.5).abs() < 0.05);
    }

    #[test]
    fn heterogeneous_respects_per_lf_accuracy() {
        let (lambda, gold) = heterogeneous_matrix(3000, &[0.9, 0.6], 0.5, 2);
        let accs = snorkel_matrix::stats::empirical_accuracies(&lambda, &gold);
        assert!((accs[0].unwrap() - 0.9).abs() < 0.05);
        assert!((accs[1].unwrap() - 0.6).abs() < 0.05);
    }

    #[test]
    fn correlated_clusters_agree_internally() {
        let clusters = [Cluster {
            size: 4,
            accuracy: 0.7,
            deviation: 0.0,
        }];
        let (lambda, _, pairs) = correlated_matrix(1000, 3, 0.8, &clusters, 0.6, 3);
        assert_eq!(lambda.num_lfs(), 7);
        assert_eq!(pairs.len(), 6); // C(4,2)
                                    // Perfect copies: whenever both vote, they agree.
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            let cluster_votes: Vec<Vote> = cols
                .iter()
                .zip(votes)
                .filter(|(&c, _)| c >= 3)
                .map(|(_, &v)| v)
                .collect();
            assert!(
                cluster_votes.windows(2).all(|w| w[0] == w[1]),
                "row {i}: cluster disagreement"
            );
        }
    }

    #[test]
    fn deviation_breaks_perfect_copies() {
        let clusters = [Cluster {
            size: 3,
            accuracy: 0.7,
            deviation: 0.3,
        }];
        let (lambda, _, _) = correlated_matrix(1000, 0, 0.8, &clusters, 1.0, 4);
        let mut disagreements = 0;
        for i in 0..lambda.num_points() {
            let (_, votes) = lambda.row(i);
            if votes.windows(2).any(|w| w[0] != w[1]) {
                disagreements += 1;
            }
        }
        assert!(disagreements > 100, "deviation must create disagreements");
    }

    #[test]
    fn determinism() {
        let a = independent_matrix(500, 5, 0.75, 0.1, 42);
        let b = independent_matrix(500, 5, 0.75, 0.1, 42);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn pattern_sparse_collapses_onto_few_signatures() {
        let (lambda, gold) = pattern_sparse_matrix(20_000, 25, 50, 0.15, 0.75, 0.01, 7);
        assert_eq!(lambda.num_points(), 20_000);
        assert_eq!(gold.len(), 20_000);
        let idx = snorkel_matrix::PatternIndex::build(&lambda);
        assert!(
            idx.dedup_ratio() > 20.0,
            "dedup ratio {:.1} too low for a pattern-sparse corpus",
            idx.dedup_ratio()
        );
        // Noise produces a long tail: strictly more patterns than bases.
        assert!(idx.num_patterns() > 50);
        // Deterministic.
        let again = pattern_sparse_matrix(20_000, 25, 50, 0.15, 0.75, 0.01, 7);
        assert_eq!(again.0, lambda);
    }
}
