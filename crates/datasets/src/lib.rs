//! # snorkel-datasets
//!
//! Synthetic analogues of the paper's six evaluation applications, plus
//! the purely synthetic matrices behind Figures 4 and 5 and the §4.2
//! user-study simulation.
//!
//! The paper evaluates on corpora we cannot ship (PubMed abstracts, VA
//! clinical notes, news wire, chest X-rays, CrowdFlower tables). Each
//! generator here produces a *controlled* corpus with the same shape:
//! documents → sentences with tagged entity mentions → candidates with
//! known ground truth; signal phrases are emitted with tuned conditional
//! probabilities given the true label, so the accompanying LF suite has
//! realistic accuracy/coverage/overlap, the knowledge bases have noisy
//! subsets of differing quality, and discriminative features correlate
//! with — but go beyond — the LF signal (so the end model can
//! generalize past the LFs, Example 2.5).
//!
//! | Task | Type | Classes | LFs | Module |
//! |------|------|---------|-----|--------|
//! | Chem | relation extraction | 2 | 16 | [`chem`] |
//! | EHR | relation extraction | 2 | 24 | [`ehr`] |
//! | CDR | relation extraction | 2 | 33 | [`cdr`] |
//! | Spouses | relation extraction | 2 | 11 | [`spouses`] |
//! | Radiology | cross-modal image | 2 | 18 | [`radiology`] |
//! | Crowd | crowdsourced sentiment | 5 | 102 | [`crowd`] |
//!
//! Candidate counts default to laptop scale; [`task::TaskConfig`] scales
//! them up toward the paper's sizes (Table 2 / Table 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index loops over parallel arrays are the house style in the numeric
// kernels; iterator rewrites obscure the paired-index math.
#![allow(clippy::needless_range_loop)]

pub mod cdr;
pub mod chem;
pub mod crowd;
pub mod ehr;
pub mod names;
pub mod radiology;
pub mod spouses;
pub mod synthetic;
pub mod task;
pub mod user_study;

pub use task::{LfType, RelationTask, TaskConfig};
