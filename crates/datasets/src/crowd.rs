//! The Crowd task (paper §4.1.2: five-way weather sentiment from
//! CrowdFlower, with each crowdworker represented as a labeling
//! function).
//!
//! 102 simulated workers with Dirichlet-style confusion behaviour grade
//! ~20 tweets each; the generative model recovers per-worker reliability
//! (the Dawid-Skene setting, §3.1), and a text model trained on the
//! probabilistic labels predicts sentiment *independent of the workers*
//! — the cross-modal point of §4.1.2.
//!
//! Classes (votes 1..=5): 1 = very negative, 2 = negative, 3 = neutral,
//! 4 = positive, 5 = very positive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_context::{CandidateId, Corpus};
use snorkel_lf::{crowd_lfs, BoxedLf, LfExecutor, Vote};
use snorkel_matrix::LabelMatrix;
use snorkel_nlp::tokenize;

use crate::task::{split_rows, TaskConfig};

/// Tweet templates per sentiment class (index = class − 1). Adjacent
/// classes share vocabulary, which is what makes the task hard for
/// workers and model alike.
const TEMPLATES: [&[&str]; 5] = [
    &[
        "This storm ruined everything, absolutely miserable out here",
        "Flooded streets again, worst weather in years, just awful",
        "Freezing rain all day, hate this miserable forecast",
        "Power out from the storm, terrible terrible night",
    ],
    &[
        "Rain again, pretty gloomy out there today",
        "Cold and windy, not a fan of this weather",
        "Grey skies all week, feeling a bit down about it",
        "Drizzle ruined the picnic, kind of disappointing",
    ],
    &[
        "Clouds moving in this afternoon per the forecast",
        "About ten degrees with light wind today",
        "Weather update says mixed conditions through Friday",
        "Forecast calls for scattered showers later",
    ],
    &[
        "Nice sunny spell this afternoon, pretty pleasant",
        "Mild breeze and clear skies, decent day overall",
        "Warm enough for a walk, enjoying the sunshine",
        "Good beach weather this weekend apparently",
    ],
    &[
        "Absolutely gorgeous day, sunshine everywhere, love it",
        "Perfect blue skies, best weather of the year",
        "Stunning sunset after a beautiful warm day, amazing",
        "Incredible spring morning, couldn't be happier outside",
    ],
];

/// The materialized crowdsourcing task.
pub struct CrowdTask {
    /// Tweet corpus (one single-sentence document per tweet, one unary
    /// candidate each).
    pub corpus: Corpus,
    /// One candidate per tweet.
    pub candidates: Vec<CandidateId>,
    /// Gold sentiment class (1..=5) per tweet.
    pub gold: Vec<Vote>,
    /// Row indices: training split (the only rows workers graded).
    pub train: Vec<usize>,
    /// Row indices: development split.
    pub dev: Vec<usize>,
    /// Row indices: test split.
    pub test: Vec<usize>,
    /// One LF per crowdworker (Table 2: 102).
    pub lfs: Vec<BoxedLf>,
    /// True accuracy of each simulated worker (diagnostics only).
    pub worker_accuracies: Vec<f64>,
}

impl CrowdTask {
    /// Apply the worker LFs over a row subset (5-class matrix).
    pub fn label_matrix(&self, rows: &[usize]) -> LabelMatrix {
        let ids: Vec<CandidateId> = rows.iter().map(|&r| self.candidates[r]).collect();
        LfExecutor::new()
            .with_cardinality(5)
            .apply(&self.lfs, &self.corpus, &ids)
    }

    /// Gold labels of a row subset.
    pub fn gold_of(&self, rows: &[usize]) -> Vec<Vote> {
        rows.iter().map(|&r| self.gold[r]).collect()
    }
}

/// Build the Crowd task. `cfg.num_candidates` is the tweet count (the
/// paper's scale: 505 train + 63 dev + 64 test = 632).
pub fn build(cfg: TaskConfig) -> CrowdTask {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xC404));
    let n = cfg.num_candidates;
    let num_workers = 102;
    let grades_per_tweet = 20;

    // Generate tweets.
    let mut corpus = Corpus::new();
    let mut candidates = Vec::with_capacity(n);
    let mut gold: Vec<Vote> = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..5usize);
        // A third of tweets read like an adjacent sentiment class —
        // the irreducible ambiguity that kept the paper's Crowd task at
        // ~65–69% accuracy even with hand labels.
        let text_class = if rng.gen::<f64>() < 0.35 {
            let delta: i64 = if rng.gen::<bool>() { 1 } else { -1 };
            (class as i64 + delta).clamp(0, 4) as usize
        } else {
            class
        };
        let pool = TEMPLATES[text_class];
        let text = pool[rng.gen_range(0..pool.len())];
        let doc = corpus.add_document(format!("tweet-{i}"));
        let sent = corpus.add_sentence(doc, text, tokenize(text));
        let anchor = corpus.add_span(sent, 0, 1, Some("Tweet"));
        candidates.push(corpus.add_candidate(vec![anchor]));
        gold.push((class + 1) as Vote);
    }

    let (train, dev, test) = split_rows(n, 0.1, 0.1, cfg.seed.wrapping_add(3));

    // Simulate workers: accuracy ~ mixture of diligent (0.55–0.9) and
    // spammy (0.15–0.35); errors fall on adjacent classes 70% of the
    // time (sentiment confusion is ordinal).
    let mut worker_accuracies = Vec::with_capacity(num_workers);
    let mut table: Vec<(String, CandidateId, Vote)> = Vec::new();
    let train_set: Vec<usize> = train.clone();
    let mut workers_of_tweet: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Assign each train tweet its panel of graders (round-robin over a
    // shuffled worker list per tweet).
    for &row in &train_set {
        let mut panel: Vec<usize> = (0..num_workers).collect();
        for k in 0..grades_per_tweet {
            let swap = rng.gen_range(k..num_workers);
            panel.swap(k, swap);
        }
        workers_of_tweet[row] = panel[..grades_per_tweet].to_vec();
    }
    for _w in 0..num_workers {
        let acc = if rng.gen::<f64>() < 0.75 {
            0.55 + 0.35 * rng.gen::<f64>()
        } else {
            0.15 + 0.2 * rng.gen::<f64>()
        };
        worker_accuracies.push(acc);
    }
    for &row in &train_set {
        for &w in &workers_of_tweet[row] {
            let truth = gold[row];
            let vote: Vote = if rng.gen::<f64>() < worker_accuracies[w] {
                truth
            } else if rng.gen::<f64>() < 0.7 {
                // Adjacent-class confusion.
                let delta: i8 = if rng.gen::<bool>() { 1 } else { -1 };
                (truth + delta).clamp(1, 5)
            } else {
                rng.gen_range(1..=5)
            };
            // Adjacent-confusion may clamp back onto the truth; that is
            // fine (workers can be accidentally right).
            table.push((format!("{w:03}"), candidates[row], vote));
        }
    }

    let lfs = crowd_lfs(&table);
    assert_eq!(
        lfs.len(),
        num_workers,
        "every worker must have graded something"
    );

    CrowdTask {
        corpus,
        candidates,
        gold,
        train,
        dev,
        test,
        lfs,
        worker_accuracies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CrowdTask {
        build(TaskConfig {
            num_candidates: 632, // the paper's actual scale
            seed: 9,
        })
    }

    #[test]
    fn shape_matches_table2() {
        let t = small();
        assert_eq!(t.lfs.len(), 102);
        assert_eq!(t.candidates.len(), 632);
        assert!(t.gold.iter().all(|&g| (1..=5).contains(&g)));
    }

    #[test]
    fn workers_grade_only_training_rows() {
        let t = small();
        let train_matrix = t.label_matrix(&t.train);
        let test_matrix = t.label_matrix(&t.test);
        assert!(train_matrix.nnz() > 0);
        assert_eq!(test_matrix.nnz(), 0, "workers never saw dev/test");
    }

    #[test]
    fn twenty_grades_per_train_tweet() {
        let t = small();
        let lambda = t.label_matrix(&t.train);
        for i in 0..lambda.num_points() {
            let (cols, _) = lambda.row(i);
            assert_eq!(cols.len(), 20, "tweet {i} has {} grades", cols.len());
        }
    }

    #[test]
    fn worker_majority_beats_chance_but_not_perfect() {
        let t = small();
        let lambda = t.label_matrix(&t.train);
        let mv = snorkel_core::vote::majority_vote(&lambda);
        let gold = t.gold_of(&t.train);
        let acc = snorkel_core::vote::vote_accuracy(&mv, &gold);
        assert!(acc > 0.4, "MV accuracy {acc:.3}");
        assert!(acc < 0.999, "task must not be trivial");
    }
}
