//! The Chem task (paper §4.1.1: chemical reagent → reaction product
//! relations from scientific articles, the FDA collaboration).
//!
//! The distinguishing shape (Tables 1–2): very low positive rate
//! (≈4.1%), low label density (≈1.2), and — critically — an LF suite of
//! *high-precision, rarely-overlapping* patterns, which is why the
//! modeling optimizer correctly selects **majority vote** for Chem: with
//! almost no conflicting labels there is nothing for the generative
//! model to re-weight (`A~*` below γ, §3.1.2).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use snorkel_lf::{lf, ontology_lfs, BoxedLf, KeywordBetweenLf, KnowledgeBase, PatternLf};

use crate::names::NamePool;
use crate::task::{
    build_relation_corpus, noisy_kb_subset, split_rows, LfType, RelationCorpusSpec, RelationTask,
    TaskConfig,
};

const POS_TEMPLATES: &[&str] = &[
    "Reaction of {A} yielded {B} under reflux.",
    "{A} was converted to {B} by catalytic oxidation.",
    "Treatment of {A} afforded {B} in high yield.",
    "{A} reacts to form {B} at elevated temperature.",
    "Synthesis of {B} from {A} proceeded smoothly.",
    "Hydrolysis of {A} gave {B} quantitatively.",
];

const NEG_TEMPLATES: &[&str] = &[
    "{A} was dissolved in ethanol with {B} as the internal standard.",
    "Both {A} and {B} were purchased from the supplier.",
    "{A} was analyzed alongside {B} by chromatography.",
    "The mixture contained {A} while {B} served as solvent.",
    "Spectra of {A} and {B} were recorded separately.",
    "{A} was stored apart from {B} at low temperature.",
    "Purity of {A} was verified before adding {B}.",
    "Concentrations of {A} and {B} were held constant.",
];

const FILLER: &[&str] = &[
    "All reactions were run under nitrogen.",
    "Yields refer to isolated products.",
    "Melting points are uncorrected.",
    "Solvents were distilled prior to use.",
];

/// Build the Chem task.
pub fn build(cfg: TaskConfig) -> RelationTask {
    let mut pool = NamePool::new(cfg.seed.wrapping_add(0xC4E));
    let spec = RelationCorpusSpec {
        type_a: "Reagent",
        type_b: "Product",
        entities_a: pool.chemicals(70),
        entities_b: pool.chemicals(70),
        pos_rate: 0.036, // lands near Table 2's 4.1% after repeats
        pos_templates: POS_TEMPLATES.to_vec(),
        neg_templates: NEG_TEMPLATES.to_vec(),
        filler: FILLER.to_vec(),
        // Very low flip: reaction reports rarely misstate the reaction —
        // this is what keeps the LFs precise and conflict-free.
        template_flip: 0.02,
        sentences_per_doc: (6, 14),
        filler_rate: 0.3,
        relation_density: 0.015,
        symmetric: false,
        ambig_templates: vec![],
        ambig_rate: 0.0,
        style_cue: None,
        repeat_pair_rate: 0.1,
    };
    let gen = build_relation_corpus(&spec, cfg.num_candidates, cfg.seed.wrapping_add(1));

    // MetaCyc-like KB of known reactions.
    let mut kb_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let mut kb = KnowledgeBase::new("metacyc");
    let (ea, eb) = (&spec.entities_a, &spec.entities_b);
    noisy_kb_subset(
        &mut kb,
        "Reactions",
        &gen.relations,
        ea,
        eb,
        0.4,
        5,
        &mut kb_rng,
    );
    noisy_kb_subset(
        &mut kb,
        "Pathways",
        &gen.relations,
        ea,
        eb,
        0.2,
        8,
        &mut kb_rng,
    );
    let kb = Arc::new(kb);

    let (lfs, lf_types) = build_lfs(&kb);
    let (train, dev, test) = split_rows(
        gen.candidates.len(),
        0.019, // Table 7: 1292 / 67922
        0.018, // 1232 / 67922
        cfg.seed.wrapping_add(3),
    );

    RelationTask {
        name: "Chem".to_string(),
        corpus: gen.corpus,
        candidates: gen.candidates,
        gold: gen.gold,
        train,
        dev,
        test,
        lfs,
        lf_types,
        kb: Some(kb),
        relations: gen.relations,
    }
}

/// The 16-LF suite (11 pattern, 2 distant supervision, 2 structure,
/// 1 weak classifier) — precise, sparse, barely overlapping.
fn build_lfs(kb: &Arc<KnowledgeBase>) -> (Vec<BoxedLf>, Vec<LfType>) {
    let mut lfs: Vec<BoxedLf> = Vec::new();
    let mut types: Vec<LfType> = Vec::new();

    let patterns: Vec<BoxedLf> = vec![
        Box::new(KeywordBetweenLf::new("lf_yielded", &["yielded"], 1, 0)),
        Box::new(KeywordBetweenLf::new("lf_converted", &["converted"], 1, 0)),
        Box::new(KeywordBetweenLf::new("lf_afforded", &["afforded"], 1, 0)),
        Box::new(
            PatternLf::new("lf_reacts_to_form", r"{{0}} reacts to form {{1}}", 1).expect("pattern"),
        ),
        Box::new(
            PatternLf::new("lf_synthesis_from", r"synthesis of {{1}} from {{0}}", 1)
                .expect("pattern"),
        ),
        Box::new(
            PatternLf::new("lf_hydrolysis_gave", r"hydrolysis of {{0}} gave {{1}}", 1)
                .expect("pattern"),
        ),
        Box::new(KeywordBetweenLf::new("lf_standard", &["standard"], -1, -1)),
        Box::new(KeywordBetweenLf::new(
            "lf_purchased",
            &["purchased"],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new("lf_solvent", &["solvent"], -1, -1)),
        Box::new(KeywordBetweenLf::new(
            "lf_separately",
            &["separately", "apart"],
            -1,
            -1,
        )),
        Box::new(
            PatternLf::new("lf_alongside", r"{{0}} was analyzed alongside {{1}}", -1)
                .expect("pattern"),
        ),
    ];
    for p in patterns {
        lfs.push(p);
        types.push(LfType::Pattern);
    }

    for d in ontology_lfs(Arc::clone(kb), &[("Reactions", 1), ("Pathways", 1)]) {
        lfs.push(d);
        types.push(LfType::DistantSupervision);
    }

    lfs.push(lf("lf_repeated_reaction", |x| {
        let a = x.span(0).text().to_lowercase();
        let b = x.span(1).text().to_lowercase();
        let mut hits = 0;
        for sent in x.doc().sentences() {
            let t = sent.text().to_lowercase();
            if t.contains(&a) && t.contains(&b) {
                hits += 1;
            }
        }
        if hits >= 2 {
            1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_held_constant", |x| {
        // Method-section phrasing: co-mention without a reaction.
        let text = x.sentence().text().to_lowercase();
        if text.contains("held constant") || text.contains("were recorded") {
            -1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);

    lfs.push(lf("lf_reaction_verb_classifier", |x| {
        // Weak classifier: any reaction verb anywhere in the sentence,
        // but only when the spans are close.
        let verbs = ["yielded", "converted", "afforded", "form", "gave"];
        let has = x
            .sentence()
            .tokens()
            .iter()
            .any(|t| verbs.contains(&t.text.to_lowercase().as_str()));
        if has && x.token_distance(0, 1) <= 5 {
            1
        } else {
            0
        }
    }));
    types.push(LfType::WeakClassifier);

    assert_eq!(lfs.len(), 16, "Chem suite must have 16 LFs (Table 2)");
    (lfs, types)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RelationTask {
        build(TaskConfig {
            num_candidates: 1500,
            seed: 3,
        })
    }

    #[test]
    fn shape_matches_table2() {
        let t = small();
        assert_eq!(t.lfs.len(), 16);
        let pos = t.pct_positive();
        assert!((0.01..0.09).contains(&pos), "%pos = {pos:.3}");
    }

    #[test]
    fn low_density_low_conflict() {
        let t = small();
        let lambda = t.train_matrix();
        let stats = snorkel_matrix::stats::matrix_stats(&lambda);
        assert!(
            lambda.label_density() < 2.0,
            "density {}",
            lambda.label_density()
        );
        assert!(
            stats.conflict_rate < 0.12,
            "conflicts {}",
            stats.conflict_rate
        );
    }

    #[test]
    fn entity_pools_are_disjoint_types() {
        let t = small();
        let v = t.corpus.candidate(t.candidates[0]);
        assert_eq!(v.span(0).entity_type(), Some("Reagent"));
        assert_eq!(v.span(1).entity_type(), Some("Product"));
    }
}
