//! The EHR task (paper §4.1.1: pain levels at anatomical locations from
//! clinical notes — the Veterans Affairs / Stanford Hospital
//! collaboration).
//!
//! Candidates pair a tagged pain/symptom mention with a body-part
//! mention in the same note sentence; positives assert pain *at* that
//! location. Shape targets (Tables 1–2): high positive rate (≈36.8%),
//! label density ≈1.2 — the same density as Chem but, unlike Chem, a
//! suite whose accuracies vary widely, which is exactly the Table 1
//! contrast: equal `d_Λ`, very different modeling advantage, and the
//! optimizer must pick GM here while picking MV for Chem.
//!
//! Distant supervision does not apply (there is no KB of a patient's
//! pain); the prior art the paper compares against is a legacy
//! regular-expression labeler, included here as the high-coverage
//! medium-accuracy `lf_legacy_regex`.

use snorkel_lf::{lf, BoxedLf, KeywordBetweenLf, PatternLf};

use crate::task::{
    build_relation_corpus, split_rows, LfType, RelationCorpusSpec, RelationTask, TaskConfig,
};

const BODY_PARTS: &[&str] = &[
    "shoulder", "knee", "hip", "elbow", "wrist", "ankle", "neck", "forearm", "thigh", "calf",
    "abdomen", "chest", "jaw", "heel", "spine", "groin", "scalp", "palm",
];

const PAIN_TERMS: &[&str] = &[
    "sharp pain",
    "dull ache",
    "burning pain",
    "throbbing pain",
    "chronic pain",
    "acute pain",
    "stabbing pain",
    "radiating pain",
    "intermittent pain",
    "severe tenderness",
    "mild soreness",
    "shooting pain",
];

const POS_TEMPLATES: &[&str] = &[
    "Patient reports {A} localized to the {B}.",
    "{A} noted over the {B} on examination.",
    "Veteran describes {A} in the {B} since surgery.",
    "{A} radiating from the {B} worsens at night.",
    "Palpation of the {B} reproduced the {A}.",
    "{A} at the {B} rated seven out of ten.",
];

const NEG_TEMPLATES: &[&str] = &[
    "{A} resolved; {B} range of motion is intact.",
    "Patient denies {A}; {B} exam unremarkable.",
    "History of {A}, but the {B} appears normal today.",
    "{A} was discussed while the {B} incision healed well.",
    "No recurrence of {A}; {B} strength is full.",
    "{A} controlled with medication, {B} brace removed.",
];

/// Ambiguous charting sentences: the pair co-occurs with no LF-visible
/// cue in either direction — these lower label density toward the
/// paper's 1.2 and create Example 2.5 cases for the disc model.
const AMBIG_TEMPLATES: &[&str] = &[
    "{A} and {B} findings were charted during rounds.",
    "Assessment covered {A} as well as {B} status.",
    "Notes mention {A} alongside {B} observations.",
    "{A} documentation accompanied the {B} review.",
];

const FILLER: &[&str] = &[
    "Vitals stable on review.",
    "Medication list reconciled at intake.",
    "Follow-up scheduled in six weeks.",
    "Patient ambulating without assistance.",
];

/// Build the EHR task.
pub fn build(cfg: TaskConfig) -> RelationTask {
    let spec = RelationCorpusSpec {
        type_a: "Symptom",
        type_b: "BodyPart",
        entities_a: PAIN_TERMS.iter().map(|s| s.to_string()).collect(),
        entities_b: BODY_PARTS.iter().map(|s| s.to_string()).collect(),
        pos_rate: 0.32, // lands near Table 2's 36.8% after repeats
        pos_templates: POS_TEMPLATES.to_vec(),
        neg_templates: NEG_TEMPLATES.to_vec(),
        filler: FILLER.to_vec(),
        template_flip: 0.10,
        sentences_per_doc: (3, 8),
        filler_rate: 0.3,
        relation_density: 0.25, // many pain/location combinations are real
        symmetric: false,
        ambig_templates: AMBIG_TEMPLATES.to_vec(),
        ambig_rate: 0.35,
        style_cue: Some((
            "confirmed at bedside today",
            "carried forward unchanged",
            0.4,
        )),
        repeat_pair_rate: 0.12,
    };
    let gen = build_relation_corpus(&spec, cfg.num_candidates, cfg.seed.wrapping_add(1));

    let (lfs, lf_types) = build_lfs();
    let (train, dev, test) = split_rows(
        gen.candidates.len(),
        0.004, // Table 7: 913 / 227124
        0.003, // 604 / 227124
        cfg.seed.wrapping_add(3),
    );

    RelationTask {
        name: "EHR".to_string(),
        corpus: gen.corpus,
        candidates: gen.candidates,
        gold: gen.gold,
        train,
        dev,
        test,
        lfs,
        lf_types,
        kb: None,
        relations: gen.relations,
    }
}

/// The 24-LF suite (16 pattern, 6 structure, 2 weak classifiers) with
/// deliberately heterogeneous accuracies.
fn build_lfs() -> (Vec<BoxedLf>, Vec<LfType>) {
    let mut lfs: Vec<BoxedLf> = Vec::new();
    let mut types: Vec<LfType> = Vec::new();

    // Between-span keyword patterns (what actually separates the
    // positive templates: a locative preposition phrase links symptom to
    // location; negative templates put clause boundaries or discussion
    // verbs between them).
    let patterns: Vec<BoxedLf> = vec![
        Box::new(KeywordBetweenLf::new("lf_localized", &["localized"], 1, 1)),
        Box::new(KeywordBetweenLf::new("lf_noted_over", &["over"], 1, 1)),
        Box::new(KeywordBetweenLf::new("lf_in_the", &["in"], 1, 0)),
        Box::new(KeywordBetweenLf::new(
            "lf_radiating_from",
            &["radiating"],
            1,
            1,
        )),
        Box::new(KeywordBetweenLf::new("lf_at_the", &["at"], 1, 0)),
        Box::new(
            PatternLf::new(
                "lf_palpation",
                r"palpation of the {{1}} reproduced the {{0}}",
                1,
            )
            .expect("pattern"),
        ),
        Box::new(PatternLf::new("lf_rated", r"{{0}} at the {{1}} rated", 1).expect("pattern")),
        Box::new(
            PatternLf::new("lf_since_surgery", r"{{0}} in the {{1}} since", 1).expect("pattern"),
        ),
        Box::new(KeywordBetweenLf::new(
            "lf_resolved_between",
            &["resolved"],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_discussed_between",
            &["discussed"],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_controlled_between",
            &["controlled"],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_conjunction_break",
            &["but", "while"],
            -1,
            -1,
        )),
    ];
    for p in patterns {
        lfs.push(p);
        types.push(LfType::Pattern);
    }

    // Sentence-level negative cues (appear outside the span gap).
    for (name, words) in [
        ("lf_denies", vec!["denies"]),
        ("lf_unremarkable", vec!["unremarkable"]),
        ("lf_normal_today", vec!["normal"]),
        ("lf_recurrence", vec!["recurrence"]),
    ] {
        let words: Vec<String> = words.into_iter().map(String::from).collect();
        lfs.push(lf(name, move |x| {
            let hit = x
                .sentence()
                .tokens()
                .iter()
                .any(|t| words.contains(&t.text.to_lowercase()));
            if hit {
                -1
            } else {
                0
            }
        }));
        types.push(LfType::Pattern);
    }

    // Structure-based.
    lfs.push(lf("lf_repeated_complaint", |x| {
        let a = x.span(0).text().to_lowercase();
        let b = x.span(1).text().to_lowercase();
        let mut hits = 0;
        for sent in x.doc().sentences() {
            let t = sent.text().to_lowercase();
            if t.contains(&a) && t.contains(&b) {
                hits += 1;
            }
        }
        if hits >= 2 {
            1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_clause_boundary", |x| {
        // Punctuation between symptom and location: two separate
        // findings, not a localization.
        if x.tokens_between(0, 1)
            .iter()
            .any(|t| t.text == ";" || t.text == ",")
        {
            -1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_tight_preposition", |x| {
        // Symptom directly linked to location by a short preposition
        // phrase with no clause boundary.
        let between = x.words_between(0, 1);
        let preposition = between
            .iter()
            .any(|w| matches!(w.to_lowercase().as_str(), "in" | "at" | "over" | "to"));
        let punct = between.iter().any(|w| *w == ";" || *w == ",");
        if preposition && !punct && between.len() <= 4 {
            1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_worsens_tail", |x| {
        // "… worsens at night" trails positive localizations.
        let hit = x
            .sentence()
            .tokens()
            .iter()
            .any(|t| t.text.to_lowercase() == "worsens");
        if hit {
            1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_exam_reproduced", |x| {
        // Physical-exam confirmations ("on examination", "reproduced").
        let text = x.sentence().text().to_lowercase();
        if text.contains("examination") || text.contains("reproduced") {
            1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_intact_motion", |x| {
        let text = x.sentence().text().to_lowercase();
        if text.contains("range of motion") || text.contains("strength is full") {
            -1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);

    // Weak classifiers.
    lfs.push(lf("lf_legacy_regex", |x| {
        // The pre-Snorkel regex labeler: naive proximity rule — symptom
        // preceding the location within 8 tokens is called positive,
        // anything else negative. High coverage, mediocre accuracy
        // (it ignores clause boundaries and negation entirely), exactly
        // the conflict source the generative model must down-weight.
        if x.span_precedes(0, 1) && x.token_distance(0, 1) <= 8 {
            1
        } else {
            0
        }
    }));
    types.push(LfType::WeakClassifier);
    lfs.push(lf("lf_negation_scope", |x| {
        let neg = x
            .sentence()
            .tokens()
            .iter()
            .any(|t| matches!(t.text.to_lowercase().as_str(), "no" | "denies" | "without"));
        if neg {
            -1
        } else {
            0
        }
    }));
    types.push(LfType::WeakClassifier);

    assert_eq!(lfs.len(), 24, "EHR suite must have 24 LFs (Table 2)");
    (lfs, types)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RelationTask {
        build(TaskConfig {
            num_candidates: 1500,
            seed: 5,
        })
    }

    #[test]
    fn shape_matches_table2() {
        let t = small();
        assert_eq!(t.lfs.len(), 24);
        let pos = t.pct_positive();
        assert!((0.25..0.48).contains(&pos), "%pos = {pos:.3}");
        assert!(t.kb.is_none(), "EHR has no KB (regex prior art instead)");
    }

    #[test]
    fn heterogeneous_accuracies() {
        // The Table 1 story needs a wide accuracy spread for EHR.
        let t = small();
        let lambda = t.label_matrix(&t.test);
        let gold = t.gold_of(&t.test);
        let accs: Vec<f64> = snorkel_matrix::stats::empirical_accuracies(&lambda, &gold)
            .into_iter()
            .flatten()
            .collect();
        let max = accs.iter().cloned().fold(0.0, f64::max);
        let min = accs.iter().cloned().fold(1.0, f64::min);
        assert!(max - min > 0.2, "accuracy spread {min:.2}..{max:.2}");
    }

    #[test]
    fn legacy_regex_is_the_conflict_source() {
        // The naive proximity regex is deliberately high-coverage and
        // mediocre: it is the noise source the generative model must
        // down-weight (the Table 1 EHR advantage comes from exactly
        // these conflicts).
        let t = small();
        let lambda = t.train_matrix();
        let stats = snorkel_matrix::stats::matrix_stats(&lambda);
        let legacy_idx = t
            .lfs
            .iter()
            .position(|l| l.name() == "lf_legacy_regex")
            .unwrap();
        assert!(
            stats.lfs[legacy_idx].coverage > 0.8,
            "coverage {}",
            stats.lfs[legacy_idx].coverage
        );
        let gold = t.gold_of(&t.train);
        let acc = snorkel_matrix::stats::empirical_accuracies(&lambda, &gold)[legacy_idx].unwrap();
        assert!((0.2..0.65).contains(&acc), "legacy accuracy {acc:.2}");
        // And the suite must conflict often enough for GM to matter.
        assert!(
            stats.conflict_rate > 0.2,
            "conflicts {}",
            stats.conflict_rate
        );
    }
}
