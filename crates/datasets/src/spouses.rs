//! The Spouses task (paper §4.1.1: spouse relationships in news
//! articles, Signal Media) — also the user-study task (§4.2).
//!
//! Candidates are co-occurring person-mention pairs; the relation is
//! symmetric. Shape targets (Tables 1–2): 11 LFs, ≈8.3% positive, label
//! density ≈1.4. Distant supervision comes from a DBpedia-like KB of
//! known couples plus a celebrity co-appearance subset that is *negative*
//! evidence (famous pairs who co-occur for other reasons).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use snorkel_lf::{lf, ontology_lfs, BoxedLf, KeywordBetweenLf, KnowledgeBase, PatternLf};

use crate::names::NamePool;
use crate::task::{
    build_relation_corpus, noisy_kb_subset, split_rows, LfType, RelationCorpusSpec, RelationTask,
    TaskConfig,
};

const POS_TEMPLATES: &[&str] = &[
    "{A} married {B} in a private ceremony.",
    "{A} and spouse {B} attended the gala.",
    "{A} filed for divorce from {B} last month.",
    "{A} celebrated an anniversary with {B} on Sunday.",
    "{A} met {B} long before they wed.",
    "{A} thanked husband {B} during the speech.",
    "{A} thanked wife {B} during the speech.",
];

const NEG_TEMPLATES: &[&str] = &[
    "{A} debated {B} on live television.",
    "{A} succeeded {B} as committee chair.",
    "{A} interviewed {B} about the merger.",
    "{A} and {B} starred in the new film.",
    "{A} criticized {B} over the policy.",
    "{A} traded {B} to the rival team.",
    "{A} cited {B} in the report.",
    "{A} defeated {B} in the final round.",
];

const FILLER: &[&str] = &[
    "The event drew a large crowd downtown.",
    "Markets closed higher on the news.",
    "Officials declined to comment further.",
    "The report was released on Friday.",
];

/// Build the Spouses task.
pub fn build(cfg: TaskConfig) -> RelationTask {
    let mut pool = NamePool::new(cfg.seed.wrapping_add(0x59A));
    let persons = pool.persons(80);
    let spec = RelationCorpusSpec {
        type_a: "Person",
        type_b: "Person",
        entities_a: persons.clone(),
        entities_b: persons,
        pos_rate: 0.07, // lands near Table 2's 8.3% after repeats
        pos_templates: POS_TEMPLATES.to_vec(),
        neg_templates: NEG_TEMPLATES.to_vec(),
        filler: FILLER.to_vec(),
        template_flip: 0.09,
        sentences_per_doc: (3, 9),
        filler_rate: 0.3,
        relation_density: 0.008,
        symmetric: true,
        ambig_templates: vec![],
        ambig_rate: 0.0,
        style_cue: None,
        repeat_pair_rate: 0.1,
    };
    let gen = build_relation_corpus(&spec, cfg.num_candidates, cfg.seed.wrapping_add(1));

    // DBpedia-like KB.
    let mut kb_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let mut kb = KnowledgeBase::new("dbpedia");
    // Real DBpedia covers only a sliver of the couples mentioned in news
    // text (the paper's Spouses DS baseline scores 15.4 F1) — keep the
    // KB precise but shallow.
    noisy_kb_subset(
        &mut kb,
        "spouse",
        &gen.relations,
        &spec.entities_a,
        &spec.entities_b,
        0.12,
        25,
        &mut kb_rng,
    );
    // Celebrity co-appearances: non-spousal famous pairs.
    noisy_kb_subset(
        &mut kb,
        "coappearance",
        &gen.relations,
        &spec.entities_a,
        &spec.entities_b,
        0.04,
        120,
        &mut kb_rng,
    );
    let kb = Arc::new(kb);

    let (lfs, lf_types) = build_lfs(&kb);
    let (train, dev, test) = split_rows(
        gen.candidates.len(),
        0.101, // Table 7: 2796 / 27688
        0.097, // 2697 / 27688
        cfg.seed.wrapping_add(3),
    );

    RelationTask {
        name: "Spouses".to_string(),
        corpus: gen.corpus,
        candidates: gen.candidates,
        gold: gen.gold,
        train,
        dev,
        test,
        lfs,
        lf_types,
        kb: Some(kb),
        relations: gen.relations,
    }
}

/// The 11-LF suite (7 pattern, 2 distant supervision, 2 structure).
fn build_lfs(kb: &Arc<KnowledgeBase>) -> (Vec<BoxedLf>, Vec<LfType>) {
    let mut lfs: Vec<BoxedLf> = Vec::new();
    let mut types: Vec<LfType> = Vec::new();

    let patterns: Vec<BoxedLf> = vec![
        Box::new(KeywordBetweenLf::new(
            "lf_married",
            &["married", "wed"],
            1,
            1,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_spouse_words",
            &["spouse", "husband", "wife"],
            1,
            1,
        )),
        Box::new(KeywordBetweenLf::new("lf_divorce", &["divorce"], 1, 1)),
        Box::new(KeywordBetweenLf::new(
            "lf_anniversary",
            &["anniversary"],
            1,
            1,
        )),
        Box::new(
            PatternLf::new("lf_filed_divorce", r"{{0}} filed for divorce from {{1}}", 1)
                .expect("pattern"),
        ),
        Box::new(KeywordBetweenLf::new(
            "lf_professional",
            &[
                "debated",
                "succeeded",
                "interviewed",
                "cited",
                "defeated",
                "traded",
            ],
            -1,
            -1,
        )),
        Box::new(KeywordBetweenLf::new(
            "lf_costar",
            &["starred", "criticized"],
            -1,
            -1,
        )),
    ];
    for p in patterns {
        lfs.push(p);
        types.push(LfType::Pattern);
    }

    for d in ontology_lfs(Arc::clone(kb), &[("spouse", 1), ("coappearance", -1)]) {
        lfs.push(d);
        types.push(LfType::DistantSupervision);
    }

    lfs.push(lf("lf_same_last_name", |x| {
        // Shared surname is weak positive evidence for marriage.
        let last = |s: &str| s.split_whitespace().last().map(str::to_lowercase);
        match (last(x.span(0).text()), last(x.span(1).text())) {
            (Some(a), Some(b)) if a == b => 1,
            _ => 0,
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_far_apart", |x| {
        if x.token_distance(0, 1) >= 7 {
            -1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);

    assert_eq!(lfs.len(), 11, "Spouses suite must have 11 LFs (Table 2)");
    (lfs, types)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RelationTask {
        build(TaskConfig {
            num_candidates: 1500,
            seed: 11,
        })
    }

    #[test]
    fn shape_matches_table2() {
        let t = small();
        assert_eq!(t.lfs.len(), 11);
        let pos = t.pct_positive();
        assert!((0.03..0.16).contains(&pos), "%pos = {pos:.3}");
    }

    #[test]
    fn symmetric_gold() {
        // Every planted relation is stored in both directions.
        let t = small();
        for (a, b) in t.relations.iter().take(20) {
            assert!(t.relations.contains(&(b.clone(), a.clone())));
        }
    }

    #[test]
    fn person_pairs_only() {
        let t = small();
        let v = t.corpus.candidate(t.candidates[0]);
        assert_eq!(v.span(0).entity_type(), Some("Person"));
        assert_eq!(v.span(1).entity_type(), Some("Person"));
    }
}
