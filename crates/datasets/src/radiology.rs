//! The Radiology cross-modal task (paper §4.1.2: abnormality detection
//! in lung X-rays, OpenI).
//!
//! The cross-modal setting is Snorkel's flexibility claim: labeling
//! functions read the *text report* (and its MeSH-like metadata), while
//! the discriminative model classifies the *image* — a modality the LFs
//! never touch. Our substitute for ResNet embeddings is a dense feature
//! vector drawn from a label-dependent Gaussian mixture: class means are
//! fixed random directions on a subset of informative dimensions, so an
//! MLP can learn the boundary, and the image features carry information
//! on reports whose text is uninformative (which is how the disc model
//! generalizes beyond the LFs).
//!
//! Shape targets: 18 LFs over text, one unary candidate per report,
//! ≈36% positive (Table 2), and the highest label density of the binary
//! tasks (Table 1 reports d_Λ = 2.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_context::{CandidateId, Corpus};
use snorkel_lf::{lf, BoxedLf, LfExecutor, Vote};
use snorkel_matrix::LabelMatrix;
use snorkel_nlp::tokenize;

use crate::task::{split_rows, LfType, TaskConfig};

const FINDINGS: &[&str] = &[
    "opacity",
    "consolidation",
    "effusion",
    "nodule",
    "infiltrate",
    "cardiomegaly",
    "atelectasis",
    "pneumothorax",
];

const LOCATIONS: &[&str] = &[
    "right lower lobe",
    "left lower lobe",
    "right upper lobe",
    "left upper lobe",
    "lingula",
    "costophrenic angle",
];

const ABNORMAL_TEMPLATES: &[&str] = &[
    "There is a {F} in the {L}.",
    "Persistent {F} is seen at the {L}.",
    "Interval development of {F} involving the {L}.",
    "Findings are concerning for {F} near the {L}.",
    "Blunting of the {L} suggests {F}.",
];

const NORMAL_TEMPLATES: &[&str] = &[
    "The lungs are clear bilaterally.",
    "No acute cardiopulmonary abnormality is identified.",
    "Heart size is within normal limits.",
    "No evidence of {F} in the {L}.",
    "The {L} is unremarkable without {F}.",
    "Stable examination with no focal {F}.",
];

const NEUTRAL: &[&str] = &[
    "Comparison was made with the prior study.",
    "Technique: two views of the chest.",
    "The osseous structures are intact.",
];

/// The materialized cross-modal task.
pub struct RadiologyTask {
    /// Text-report corpus (one document per report, one unary candidate
    /// per report).
    pub corpus: Corpus,
    /// One candidate per report.
    pub candidates: Vec<CandidateId>,
    /// Gold abnormality label per report.
    pub gold: Vec<Vote>,
    /// Synthetic image feature vector per report (parallel to
    /// `candidates`) — the ResNet-embedding stand-in.
    pub image_features: Vec<Vec<f64>>,
    /// Dimensionality of the image features.
    pub image_dim: usize,
    /// Row indices: training split.
    pub train: Vec<usize>,
    /// Row indices: development split.
    pub dev: Vec<usize>,
    /// Row indices: test split.
    pub test: Vec<usize>,
    /// Text-side labeling functions.
    pub lfs: Vec<BoxedLf>,
    /// LF categories.
    pub lf_types: Vec<LfType>,
}

impl RadiologyTask {
    /// Apply the text LFs over a subset of rows.
    pub fn label_matrix(&self, rows: &[usize]) -> LabelMatrix {
        let ids: Vec<CandidateId> = rows.iter().map(|&r| self.candidates[r]).collect();
        LfExecutor::new().apply(&self.lfs, &self.corpus, &ids)
    }

    /// Gold labels of a row subset.
    pub fn gold_of(&self, rows: &[usize]) -> Vec<Vote> {
        rows.iter().map(|&r| self.gold[r]).collect()
    }

    /// Image features of a row subset (cloned, models consume owned
    /// batches).
    pub fn images_of(&self, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| self.image_features[r].clone())
            .collect()
    }
}

/// Build the Radiology task.
pub fn build(cfg: TaskConfig) -> RadiologyTask {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x4AD));
    let n = cfg.num_candidates;
    let image_dim = 32;
    let informative = 8;

    // Fixed class-mean directions for the informative dims.
    let mu_abnormal: Vec<f64> = (0..informative)
        .map(|_| if rng.gen::<bool>() { 0.9 } else { -0.9 })
        .collect();

    let mut corpus = Corpus::new();
    let mut candidates = Vec::with_capacity(n);
    let mut gold = Vec::with_capacity(n);
    let mut image_features = Vec::with_capacity(n);

    for i in 0..n {
        let abnormal = rng.gen::<f64>() < 0.36; // Table 2: 36% positive
        let mut report = String::new();
        let n_sents = rng.gen_range(2..=4);
        let mut emitted_abnormal = false;
        for s in 0..n_sents {
            let force_abnormal = abnormal && s + 1 == n_sents && !emitted_abnormal;
            let template = if force_abnormal {
                // A truly abnormal study always states its finding
                // somewhere — radiologists do not bury the lede forever.
                emitted_abnormal = true;
                ABNORMAL_TEMPLATES[rng.gen_range(0..ABNORMAL_TEMPLATES.len())]
            } else if s == 0 && rng.gen::<f64>() < 0.3 {
                NEUTRAL[rng.gen_range(0..NEUTRAL.len())]
            } else if abnormal {
                // Abnormal reports still contain some normal statements.
                if rng.gen::<f64>() < 0.2 {
                    NORMAL_TEMPLATES[rng.gen_range(0..NORMAL_TEMPLATES.len())]
                } else {
                    emitted_abnormal = true;
                    ABNORMAL_TEMPLATES[rng.gen_range(0..ABNORMAL_TEMPLATES.len())]
                }
            } else if rng.gen::<f64>() < 0.06 {
                // Occasionally a normal case reads ambiguously.
                ABNORMAL_TEMPLATES[rng.gen_range(0..ABNORMAL_TEMPLATES.len())]
            } else {
                NORMAL_TEMPLATES[rng.gen_range(0..NORMAL_TEMPLATES.len())]
            };
            let sentence = template
                .replace("{F}", FINDINGS[rng.gen_range(0..FINDINGS.len())])
                .replace("{L}", LOCATIONS[rng.gen_range(0..LOCATIONS.len())]);
            report.push_str(&sentence);
            report.push(' ');
        }

        let doc = corpus.add_document(format!("report-{i}"));
        // MeSH-like metadata: coded findings, imperfectly curated.
        // Imperfectly curated coding: 85% recall on abnormal studies,
        // 5% false "abnormal" codes on normal ones.
        let coded_abnormal = if abnormal {
            rng.gen::<f64>() < 0.85
        } else {
            rng.gen::<f64>() < 0.05
        };
        let mesh = if coded_abnormal { "abnormal" } else { "normal" };
        corpus.set_doc_meta(doc, "mesh", mesh);

        // One sentence per report line; tag the first token span as the
        // unary "Report" anchor.
        let mut first_sent = None;
        for (s, e) in snorkel_nlp::split_sentences(report.trim()) {
            let text = &report.trim()[s..e];
            let sent = corpus.add_sentence(doc, text, tokenize(text));
            if first_sent.is_none() {
                first_sent = Some(sent);
            }
        }
        let anchor = corpus.add_span(first_sent.expect("non-empty report"), 0, 1, Some("Report"));
        candidates.push(corpus.add_candidate(vec![anchor]));
        gold.push(if abnormal { 1 } else { -1 });

        // Image features: informative dims = ±mu + noise; rest pure noise.
        let mut v = Vec::with_capacity(image_dim);
        for d in 0..image_dim {
            let noise = gauss(&mut rng);
            if d < informative {
                let sign = if abnormal { 1.0 } else { -1.0 };
                v.push(sign * mu_abnormal[d] + 2.0 * noise);
            } else {
                v.push(noise);
            }
        }
        image_features.push(v);
    }

    let (train, dev, test) = split_rows(n, 0.1, 0.1, cfg.seed.wrapping_add(3));
    let (lfs, lf_types) = build_lfs();

    RadiologyTask {
        corpus,
        candidates,
        gold,
        image_features,
        image_dim,
        train,
        dev,
        test,
        lfs,
        lf_types,
    }
}

/// Box-Muller standard normal.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The 18-LF suite over report text and metadata.
fn build_lfs() -> (Vec<BoxedLf>, Vec<LfType>) {
    let mut lfs: Vec<BoxedLf> = Vec::new();
    let mut types: Vec<LfType> = Vec::new();

    // One keyword LF per finding term (8), negation-aware.
    for finding in FINDINGS {
        let word = finding.to_string();
        lfs.push(lf(format!("lf_finding_{finding}"), move |x| {
            for sent in x.doc().sentences() {
                let text = sent.text().to_lowercase();
                if text.contains(&word) {
                    let negated = text.contains("no ")
                        || text.contains("without")
                        || text.contains("unremarkable");
                    return if negated { -1 } else { 1 };
                }
            }
            0
        }));
        types.push(LfType::Pattern);
    }

    // Normal-statement patterns (4).
    for (name, phrase) in [
        ("lf_clear_lungs", "lungs are clear"),
        ("lf_no_acute", "no acute"),
        ("lf_normal_limits", "within normal limits"),
        ("lf_stable_exam", "stable examination"),
    ] {
        let phrase = phrase.to_string();
        lfs.push(lf(name, move |x| {
            for sent in x.doc().sentences() {
                if sent.text().to_lowercase().contains(&phrase) {
                    return -1;
                }
            }
            0
        }));
        types.push(LfType::Pattern);
    }

    // Abnormal-language patterns (3).
    for (name, phrase) in [
        ("lf_concerning", "concerning for"),
        ("lf_interval_dev", "interval development"),
        ("lf_blunting", "blunting"),
    ] {
        let phrase = phrase.to_string();
        lfs.push(lf(name, move |x| {
            for sent in x.doc().sentences() {
                if sent.text().to_lowercase().contains(&phrase) {
                    return 1;
                }
            }
            0
        }));
        types.push(LfType::Pattern);
    }

    // MeSH metadata (2) — the context-hierarchy signal.
    lfs.push(lf("lf_mesh_abnormal", |x| {
        if x.doc().meta("mesh") == Some("abnormal") {
            1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);
    lfs.push(lf("lf_mesh_normal", |x| {
        if x.doc().meta("mesh") == Some("normal") {
            -1
        } else {
            0
        }
    }));
    types.push(LfType::StructureBased);

    // Weak classifier (1): multiple distinct finding mentions.
    lfs.push(lf("lf_multiple_findings", |x| {
        let mut distinct = 0;
        for finding in FINDINGS {
            if x.doc()
                .sentences()
                .any(|s| s.text().to_lowercase().contains(finding))
            {
                distinct += 1;
            }
        }
        if distinct >= 2 {
            1
        } else {
            0
        }
    }));
    types.push(LfType::WeakClassifier);

    assert_eq!(lfs.len(), 18, "Radiology suite must have 18 LFs (Table 2)");
    (lfs, types)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RadiologyTask {
        build(TaskConfig {
            num_candidates: 800,
            seed: 2,
        })
    }

    #[test]
    fn shape_matches_table2() {
        let t = small();
        assert_eq!(t.lfs.len(), 18);
        assert_eq!(t.candidates.len(), 800);
        assert_eq!(t.image_features.len(), 800);
        assert_eq!(t.image_features[0].len(), t.image_dim);
        let pos = t.gold.iter().filter(|&&g| g == 1).count() as f64 / 800.0;
        assert!((pos - 0.36).abs() < 0.08, "%pos = {pos:.3}");
    }

    #[test]
    fn density_is_highest_band() {
        let t = small();
        let lambda = t.label_matrix(&t.train);
        let d = lambda.label_density();
        assert!(d > 1.5, "Radiology density should be high, got {d:.2}");
    }

    #[test]
    fn image_features_separate_classes() {
        // The class-mean vectors must be far apart in L2 (each
        // informative dim differs by 2·|μ_d| = 1.8 in expectation).
        let t = small();
        let dim = t.image_dim;
        let mut pos_mean = vec![0.0; dim];
        let mut neg_mean = vec![0.0; dim];
        let (mut np, mut nn) = (0usize, 0usize);
        for (v, &g) in t.image_features.iter().zip(&t.gold) {
            if g == 1 {
                for (m, x) in pos_mean.iter_mut().zip(v) {
                    *m += x;
                }
                np += 1;
            } else {
                for (m, x) in neg_mean.iter_mut().zip(v) {
                    *m += x;
                }
                nn += 1;
            }
        }
        let dist: f64 = (0..dim)
            .map(|d| {
                let diff = pos_mean[d] / np as f64 - neg_mean[d] / nn as f64;
                diff * diff
            })
            .sum::<f64>()
            .sqrt();
        assert!(dist > 3.0, "class-mean separation {dist:.2}");
    }

    #[test]
    fn lfs_read_text_not_images() {
        // The text LFs must be meaningfully accurate on gold.
        let t = small();
        let lambda = t.label_matrix(&t.test);
        let gold = t.gold_of(&t.test);
        let accs: Vec<f64> = snorkel_matrix::stats::empirical_accuracies(&lambda, &gold)
            .into_iter()
            .flatten()
            .collect();
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(mean > 0.6, "mean text-LF accuracy {mean:.3}");
    }
}
