//! Simulation of the §4.2 user study.
//!
//! Fifteen SMEs (14 scored) with backgrounds drawn from Table 8's
//! marginals wrote labeling functions for the Spouses task after a day
//! of instruction; the paper reports their end-model F1 distribution
//! (Figure 7), its relationship to experience (Figure 8), and the
//! pooled 125 LFs used in the Figure 5 (right) structure-learning sweep.
//!
//! Our substitute models each participant as a *skill score* in [0, 1]
//! derived from their profile. Skill controls (a) how many LFs they
//! write, (b) how often an LF keys on a genuinely predictive keyword
//! versus a junk word, (c) the chance the LF's polarity is wrong, and
//! (d) how much redundancy their suite has (novices duplicate ideas —
//! which is exactly why the pooled-LF sweep in Figure 5 right finds
//! many correlations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snorkel_lf::{BoxedLf, KeywordBetweenLf};

/// Self-reported skill levels (Table 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkillLevel {
    /// No prior exposure.
    New,
    /// Beginner.
    Beginner,
    /// Intermediate.
    Intermediate,
    /// Advanced.
    Advanced,
}

impl SkillLevel {
    fn score(self) -> f64 {
        match self {
            SkillLevel::New => 0.0,
            SkillLevel::Beginner => 0.33,
            SkillLevel::Intermediate => 0.67,
            SkillLevel::Advanced => 1.0,
        }
    }
}

/// Education level of a participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Education {
    /// Bachelor's degree.
    Bachelors,
    /// Master's degree.
    Masters,
    /// Doctorate.
    Phd,
}

/// One simulated workshop participant.
#[derive(Clone, Debug)]
pub struct Participant {
    /// Participant number (1-based).
    pub id: usize,
    /// Education level (paper: 6 BS, 4 MS, 5 PhD among 15 invitees).
    pub education: Education,
    /// Python skill (Table 8 row 1).
    pub python: SkillLevel,
    /// Machine-learning experience (Table 8 row 2).
    pub machine_learning: SkillLevel,
    /// Text-mining experience (Table 8 row 4).
    pub text_mining: SkillLevel,
    /// Derived skill score in [0, 1].
    pub skill: f64,
}

/// Sample the 14 scored participants with Table 8's marginal profile
/// counts (Python: 0/3/8/4 → minus the unscored participant; ML:
/// 5/1/4/5; text mining: 3/6/4/2 among 15).
pub fn sample_participants(seed: u64) -> Vec<Participant> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Pools mirroring Table 8 (15 entries; one participant is dropped to
    // match the 14 scored in Figure 7).
    let mut python = expand(&[
        (SkillLevel::Beginner, 3),
        (SkillLevel::Intermediate, 8),
        (SkillLevel::Advanced, 4),
    ]);
    let mut ml = expand(&[
        (SkillLevel::New, 5),
        (SkillLevel::Beginner, 1),
        (SkillLevel::Intermediate, 4),
        (SkillLevel::Advanced, 5),
    ]);
    let mut text = expand(&[
        (SkillLevel::New, 3),
        (SkillLevel::Beginner, 6),
        (SkillLevel::Intermediate, 4),
        (SkillLevel::Advanced, 2),
    ]);
    let mut edu = vec![Education::Bachelors; 6];
    edu.extend(vec![Education::Masters; 4]);
    edu.extend(vec![Education::Phd; 5]);
    shuffle(&mut python, &mut rng);
    shuffle(&mut ml, &mut rng);
    shuffle(&mut text, &mut rng);
    shuffle(&mut edu, &mut rng);

    (0..14)
        .map(|i| {
            let python = python[i];
            let machine_learning = ml[i];
            let text_mining = text[i];
            let education = edu[i];
            // Figure 8's finding: Python and ML experience predict
            // performance; text mining adds nothing; advanced degrees
            // help a little.
            let edu_score = match education {
                Education::Bachelors => 0.3,
                Education::Masters => 0.8,
                Education::Phd => 0.8,
            };
            let skill =
                (0.45 * python.score() + 0.35 * machine_learning.score() + 0.20 * edu_score)
                    .clamp(0.0, 1.0);
            Participant {
                id: i + 1,
                education,
                python,
                machine_learning,
                text_mining,
                skill,
            }
        })
        .collect()
}

fn expand(counts: &[(SkillLevel, usize)]) -> Vec<SkillLevel> {
    counts
        .iter()
        .flat_map(|&(level, k)| std::iter::repeat_n(level, k))
        .collect()
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

/// Keyword pools for participant-written Spouses LFs: predictive
/// keywords (and their correct polarity) versus junk words that appear
/// independently of the relation.
const GOOD_KEYWORDS: &[(&str, i8)] = &[
    ("married", 1),
    ("wed", 1),
    ("spouse", 1),
    ("husband", 1),
    ("wife", 1),
    ("divorce", 1),
    ("anniversary", 1),
    ("debated", -1),
    ("succeeded", -1),
    ("interviewed", -1),
    ("starred", -1),
    ("criticized", -1),
    ("defeated", -1),
    ("traded", -1),
    ("cited", -1),
];

const JUNK_KEYWORDS: &[&str] = &[
    "the", "and", "on", "with", "about", "during", "new", "last", "live", "private",
];

/// Generate one participant's LF suite for the Spouses task.
///
/// Skilled participants write more LFs, pick predictive keywords, get
/// polarities right, and rarely duplicate; novices do the opposite. The
/// returned names embed the participant id so pooled suites stay
/// distinguishable.
pub fn participant_lfs(p: &Participant, seed: u64) -> Vec<BoxedLf> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(p.id as u64 * 7919));
    let count = 5 + (rng.gen_range(0..=4) as f64 * (0.5 + p.skill)) as usize;
    let mut lfs: Vec<BoxedLf> = Vec::with_capacity(count);
    let mut used: Vec<usize> = Vec::new();
    for k in 0..count {
        let pick_good = rng.gen::<f64>() < 0.35 + 0.6 * p.skill;
        if pick_good {
            // Novices re-pick keywords they already used (redundancy).
            let idx = if !used.is_empty() && rng.gen::<f64>() > 0.4 + 0.6 * p.skill {
                used[rng.gen_range(0..used.len())]
            } else {
                rng.gen_range(0..GOOD_KEYWORDS.len())
            };
            used.push(idx);
            let (word, mut label) = GOOD_KEYWORDS[idx];
            // Polarity mistakes.
            if rng.gen::<f64>() > 0.65 + 0.35 * p.skill {
                label = -label;
            }
            lfs.push(Box::new(KeywordBetweenLf::new(
                format!("p{:02}_lf{k}_{word}", p.id),
                &[word],
                label,
                label,
            )));
        } else {
            let word = JUNK_KEYWORDS[rng.gen_range(0..JUNK_KEYWORDS.len())];
            let label: i8 = if rng.gen::<bool>() { 1 } else { -1 };
            lfs.push(Box::new(KeywordBetweenLf::new(
                format!("p{:02}_lf{k}_{word}", p.id),
                &[word],
                label,
                label,
            )));
        }
    }
    lfs
}

/// Pool every participant's LFs — the "all 125 user study labeling
/// functions" suite of Figure 5 (right). The exact count varies with the
/// seed; the paper's pooled suite had 125.
pub fn pooled_lfs(participants: &[Participant], seed: u64) -> Vec<BoxedLf> {
    participants
        .iter()
        .flat_map(|p| participant_lfs(p, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participant_profile_marginals() {
        let ps = sample_participants(1);
        assert_eq!(ps.len(), 14);
        let advanced_python = ps
            .iter()
            .filter(|p| p.python == SkillLevel::Advanced)
            .count();
        assert!(advanced_python >= 3, "Table 8 marginals roughly preserved");
        assert!(ps.iter().all(|p| (0.0..=1.0).contains(&p.skill)));
        // Skill must vary across participants.
        let min = ps.iter().map(|p| p.skill).fold(1.0, f64::min);
        let max = ps.iter().map(|p| p.skill).fold(0.0, f64::max);
        assert!(max - min > 0.2, "skill spread {min:.2}..{max:.2}");
    }

    #[test]
    fn skilled_participants_write_better_suites() {
        let mut low = Participant {
            id: 1,
            education: Education::Bachelors,
            python: SkillLevel::Beginner,
            machine_learning: SkillLevel::New,
            text_mining: SkillLevel::New,
            skill: 0.05,
        };
        let mut high = low.clone();
        high.id = 2;
        high.skill = 0.95;
        low.skill = 0.05;
        // Average over seeds: the skilled suite uses more good keywords.
        let good_frac = |p: &Participant| {
            let mut good = 0usize;
            let mut total = 0usize;
            for seed in 0..20 {
                for lf in participant_lfs(p, seed) {
                    total += 1;
                    if GOOD_KEYWORDS.iter().any(|(w, _)| lf.name().ends_with(w)) {
                        good += 1;
                    }
                }
            }
            good as f64 / total as f64
        };
        assert!(
            good_frac(&high) > good_frac(&low) + 0.2,
            "skill must improve keyword choice"
        );
    }

    #[test]
    fn pooled_suite_is_large_and_redundant() {
        let ps = sample_participants(2);
        let pool = pooled_lfs(&ps, 3);
        assert!(pool.len() > 60, "pooled {} LFs", pool.len());
        // Redundancy: some keyword appears in multiple participants' LFs.
        let mut by_word: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for lf in &pool {
            let word = lf.name().rsplit('_').next().unwrap();
            if let Some((w, _)) = GOOD_KEYWORDS.iter().find(|(w, _)| *w == word) {
                *by_word.entry(w).or_insert(0) += 1;
            }
        }
        assert!(
            by_word.values().any(|&c| c >= 3),
            "expected redundant keywords: {by_word:?}"
        );
    }

    #[test]
    fn deterministic_simulation() {
        let a = sample_participants(5);
        let b = sample_participants(5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.skill, y.skill);
            assert_eq!(x.python, y.python);
        }
    }
}
