//! Dependency-structure learning (paper §3.2, after Bach et al. ICML'17).
//!
//! Users write statistically dependent labeling functions — near-
//! duplicate patterns, LFs over correlated inputs, overlapping knowledge
//! bases — and ignoring those dependencies skews the estimated
//! accuracies (Example 3.1). Structure learning selects which pairwise
//! correlations `(j, k)` to include in the generative model, from the
//! label matrix alone.
//!
//! The estimator is a per-LF ℓ1-regularized *pseudolikelihood*: for each
//! target LF `j` we maximize `Σ_i log p(Λ_ij | Λ_{i,−j})`, marginalizing
//! the latent class. The conditional enumerates `(Λ_j, y)` jointly —
//! `(K+1) × K` states — so the gradient is exact and no sampling is
//! needed; this is what makes structure search orders of magnitude
//! faster than fitting a full generative model per candidate structure
//! (the paper reports 15 seconds vs 45 minutes). The other LFs enter the
//! conditional through a fixed prior accuracy weight `w̄`, the same
//! `(w_min, w̄, w_max) = (0.5, 1.0, 1.5)` prior the optimizer uses.
//!
//! The regularization strength `ε` doubles as the selection threshold: a
//! pair `(j, k)` is returned iff the fitted `|w_corr_{jk}| ≥ ε` in
//! either direction (paper footnote 9). As in the generative model, the
//! correlation feature fires on agreeing *votes* only — joint abstention
//! carries no information about vote correlation and would make every
//! sparse LF pair look dependent.

use snorkel_linalg::math::logsumexp;
use snorkel_matrix::{LabelMatrix, Vote};

use crate::model::LabelScheme;

/// Configuration for one structure-learning pass.
#[derive(Clone, Debug)]
pub struct StructureConfig {
    /// ℓ1 coefficient *and* selection threshold ε.
    pub epsilon: f64,
    /// SGD epochs per target LF.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// Prior accuracy weight w̄ for the non-target LFs.
    pub prior_acc_weight: f64,
}

impl Default for StructureConfig {
    fn default() -> Self {
        StructureConfig {
            epsilon: 0.1,
            epochs: 20,
            learning_rate: 0.2,
            prior_acc_weight: 1.0,
        }
    }
}

/// Result of a structure-learning pass.
#[derive(Clone, Debug)]
pub struct StructureReport {
    /// Selected pairs, `j < k`, sorted.
    pub pairs: Vec<(usize, usize)>,
    /// Max fitted |weight| per selected pair (diagnostics).
    pub weights: Vec<f64>,
    /// The ε used.
    pub epsilon: f64,
}

/// Learn which LF pairs to model as correlated.
pub fn learn_structure(lambda: &LabelMatrix, cfg: &StructureConfig) -> StructureReport {
    let fitted = fit_all_targets(lambda, cfg);
    select_pairs(&fitted, lambda.num_lfs(), cfg.epsilon)
}

/// Sweep many ε values efficiently: the expensive pseudolikelihood fits
/// are done once at the smallest ε (the least-truncating setting), then
/// each ε re-applies only the selection threshold. This mirrors the
/// paper's observation that searching over ε "needs to be performed only
/// once" and is cheap.
///
/// Returns `(ε, |C(ε)|, report)` triples in the order of `epsilons`.
pub fn structure_sweep(
    lambda: &LabelMatrix,
    epsilons: &[f64],
    base: &StructureConfig,
) -> Vec<(f64, usize, StructureReport)> {
    let min_eps = epsilons.iter().cloned().fold(f64::INFINITY, f64::min);
    let fit_cfg = StructureConfig {
        epsilon: min_eps.max(1e-6),
        ..base.clone()
    };
    let fitted = fit_all_targets(lambda, &fit_cfg);
    epsilons
        .iter()
        .map(|&eps| {
            let report = select_pairs(&fitted, lambda.num_lfs(), eps);
            (eps, report.pairs.len(), report)
        })
        .collect()
}

/// Fitted correlation weights: `fitted[j][k]` is the weight of `Λ_k` in
/// target `j`'s conditional (0 on the diagonal).
fn fit_all_targets(lambda: &LabelMatrix, cfg: &StructureConfig) -> Vec<Vec<f64>> {
    let n = lambda.num_lfs();
    (0..n).map(|j| fit_target(lambda, j, cfg)).collect()
}

fn select_pairs(fitted: &[Vec<f64>], n: usize, epsilon: f64) -> StructureReport {
    let mut pairs = Vec::new();
    let mut weights = Vec::new();
    for j in 0..n {
        for k in (j + 1)..n {
            let w = fitted[j][k].abs().max(fitted[k][j].abs());
            if w >= epsilon {
                pairs.push((j, k));
                weights.push(w);
            }
        }
    }
    StructureReport {
        pairs,
        weights,
        epsilon,
    }
}

/// Fit target LF `j`'s conditional `p(Λ_j | Λ_{−j})` and return its
/// per-other-LF correlation weights.
fn fit_target(lambda: &LabelMatrix, target: usize, cfg: &StructureConfig) -> Vec<f64> {
    let n = lambda.num_lfs();
    let scheme = LabelScheme::from_cardinality(lambda.cardinality());
    let k = scheme.num_classes();
    let m = lambda.num_points();
    if m == 0 {
        return vec![0.0; n];
    }

    // Parameters for this target: propensity, accuracy, correlations.
    let mut w_lab = 0.0f64;
    let mut w_acc = cfg.prior_acc_weight;
    let mut w_corr = vec![0.0f64; n];

    // Candidate vote values for Λ_j: abstain + one vote per class.
    let vote_values: Vec<Vote> = std::iter::once(0)
        .chain((0..k).map(|c| scheme.vote_of_class(c)))
        .collect();
    let nv = vote_values.len();

    // Dense row buffer.
    let mut row = vec![0 as Vote; n];
    // Joint scores over (vote value, class) states.
    let mut joint = vec![0.0f64; nv * k];
    let mut grad_corr = vec![0.0f64; n];
    let lr_per_epoch = cfg.learning_rate;

    for _epoch in 0..cfg.epochs {
        let mut g_lab = 0.0;
        let mut g_acc = 0.0;
        grad_corr.iter_mut().for_each(|g| *g = 0.0);

        for i in 0..m {
            let (cols, votes) = lambda.row(i);
            row.iter_mut().for_each(|v| *v = 0);
            for (&c, &v) in cols.iter().zip(votes) {
                row[c as usize] = v;
            }
            let observed = row[target];

            // Class scores from the *other* LFs under the prior weight.
            let mut class_prior = vec![0.0f64; k];
            for (&c, &v) in cols.iter().zip(votes) {
                let jj = c as usize;
                if jj == target {
                    continue;
                }
                if let Some(cl) = scheme.class_of_vote(v) {
                    class_prior[cl] += cfg.prior_acc_weight;
                }
            }

            // Joint unnormalized log-scores over (v, y).
            for (vi, &v) in vote_values.iter().enumerate() {
                let mut s_v = 0.0;
                if v != 0 {
                    s_v += w_lab;
                }
                for (jj, &other) in row.iter().enumerate() {
                    if jj == target || w_corr[jj] == 0.0 {
                        continue;
                    }
                    if v != 0 && v == other {
                        s_v += w_corr[jj];
                    }
                }
                for y in 0..k {
                    let mut s = s_v + class_prior[y];
                    if scheme.class_of_vote(v) == Some(y) {
                        s += w_acc;
                    }
                    joint[vi * k + y] = s;
                }
            }
            let log_z = logsumexp(&joint);

            // Positive phase: states consistent with the observed vote.
            let obs_vi = vote_values
                .iter()
                .position(|&v| v == observed)
                .expect("observed vote is a candidate value");
            let obs_states = &joint[obs_vi * k..(obs_vi + 1) * k];
            let log_p_obs = logsumexp(obs_states);

            // Gradient of log p(observed | rest) = E_pos[φ] − E_full[φ].
            for (vi, &v) in vote_values.iter().enumerate() {
                for y in 0..k {
                    let p_full = (joint[vi * k + y] - log_z).exp();
                    let p_pos = if vi == obs_vi {
                        (joint[vi * k + y] - log_p_obs).exp()
                    } else {
                        0.0
                    };
                    let diff = p_pos - p_full;
                    if diff == 0.0 {
                        continue;
                    }
                    if v != 0 {
                        g_lab += diff;
                        if scheme.class_of_vote(v) == Some(y) {
                            g_acc += diff;
                        }
                    }
                    for (jj, &other) in row.iter().enumerate() {
                        if jj == target {
                            continue;
                        }
                        if v != 0 && v == other {
                            grad_corr[jj] += diff;
                        }
                    }
                }
            }
        }

        let lr = lr_per_epoch;
        let mf = m as f64;
        w_lab += lr * g_lab / mf;
        w_acc += lr * g_acc / mf;
        for jj in 0..n {
            if jj == target {
                continue;
            }
            let updated = w_corr[jj] + lr * grad_corr[jj] / mf;
            // Truncated-gradient ℓ1 (soft threshold by ε·lr).
            let shrink = cfg.epsilon * lr;
            w_corr[jj] = if updated > shrink {
                updated - shrink
            } else if updated < -shrink {
                updated + shrink
            } else {
                0.0
            };
        }
    }
    w_corr[target] = 0.0;
    w_corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snorkel_matrix::LabelMatrixBuilder;

    /// n independent LFs plus `dup` exact duplicates of LF 0.
    fn planted_with_duplicates(m: usize, n_indep: usize, dup: usize, seed: u64) -> LabelMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n_indep + dup;
        let mut b = LabelMatrixBuilder::new(m, n);
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            let mut first_vote = 0;
            for j in 0..n_indep {
                if rng.gen::<f64>() < 0.7 {
                    let v = if rng.gen::<f64>() < 0.75 { y } else { -y };
                    b.set(i, j, v);
                    if j == 0 {
                        first_vote = v;
                    }
                }
            }
            for d in 0..dup {
                if first_vote != 0 {
                    b.set(i, n_indep + d, first_vote);
                }
            }
        }
        b.build()
    }

    #[test]
    fn finds_planted_duplicates() {
        let lambda = planted_with_duplicates(1200, 4, 2, 3);
        // LFs 4 and 5 are copies of LF 0.
        let report = learn_structure(&lambda, &StructureConfig::default());
        let has = |a: usize, b: usize| report.pairs.contains(&(a.min(b), a.max(b)));
        assert!(has(0, 4), "pair (0,4) missing: {:?}", report.pairs);
        assert!(has(0, 5), "pair (0,5) missing: {:?}", report.pairs);
        assert!(has(4, 5), "pair (4,5) missing: {:?}", report.pairs);
        // Independent pairs must NOT be selected.
        assert!(!has(1, 2), "false positive (1,2): {:?}", report.pairs);
        assert!(!has(2, 3), "false positive (2,3): {:?}", report.pairs);
    }

    #[test]
    fn epsilon_is_monotone_in_selection_count() {
        let lambda = planted_with_duplicates(800, 4, 2, 9);
        let sweep = structure_sweep(
            &lambda,
            &[0.02, 0.05, 0.1, 0.2, 0.4],
            &StructureConfig::default(),
        );
        for w in sweep.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "larger ε must select fewer or equal pairs: {:?}",
                sweep.iter().map(|(e, c, _)| (*e, *c)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn independent_lfs_select_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = LabelMatrixBuilder::new(1000, 5);
        for i in 0..1000 {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            for j in 0..5 {
                if rng.gen::<f64>() < 0.5 {
                    let v = if rng.gen::<f64>() < 0.8 { y } else { -y };
                    b.set(i, j, v);
                }
            }
        }
        let report = learn_structure(&b.build(), &StructureConfig::default());
        assert!(
            report.pairs.len() <= 1,
            "independent LFs selected {:?}",
            report.pairs
        );
    }

    #[test]
    fn empty_matrix_selects_nothing() {
        let lambda = LabelMatrixBuilder::new(0, 3).build();
        let report = learn_structure(&lambda, &StructureConfig::default());
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn weights_parallel_pairs() {
        let lambda = planted_with_duplicates(800, 3, 1, 5);
        let report = learn_structure(&lambda, &StructureConfig::default());
        assert_eq!(report.pairs.len(), report.weights.len());
        for &w in &report.weights {
            assert!(w >= report.epsilon);
        }
    }
}
