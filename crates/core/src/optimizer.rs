//! The model-selection optimizer (paper §3.1.2–§3.2.2, Algorithm 1),
//! extended to pick a *backend* out of a
//! [`ModelRegistry`].
//!
//! Three decisions are automated, all from the label matrix alone:
//!
//! 1. **Model accuracies at all, or just take the majority vote?** The
//!    advantage upper bound `A~*(Λ)` (Proposition 2) estimates the most
//!    a weighted model could gain over MV; below the user's advantage
//!    tolerance γ, training is skipped entirely — the paper measures a
//!    1.8× pipeline speedup on Chem from this branch.
//! 2. **Which correlations to model?** Structure learning is swept over
//!    a grid of thresholds ε; the *elbow point* of the `|C(ε)|` curve —
//!    the last ε before the selection count explodes — balances
//!    predictive gains against the (linear in `|C|`) Gibbs cost.
//! 3. **Which accuracy estimator?** When accuracies are worth modeling
//!    but no correlations were selected and Λ is deployment-scale
//!    (≥ [`OptimizerConfig::moment_min_rows`] rows), the closed-form
//!    moment backend replaces exact Newton training: at that scale its
//!    statistical gap from the MLE is negligible while its fit is a
//!    single statistics pass.

use snorkel_linalg::math::sigmoid;
use snorkel_matrix::LabelMatrix;

use crate::label_model::{
    ModelRegistry, BACKEND_GENERATIVE, BACKEND_MAJORITY_VOTE, BACKEND_MOMENT,
};
use crate::structure::{structure_sweep, StructureConfig};
use crate::vote::weighted_scores;

/// The optimizer's output: which backend labels this matrix, and with
/// what structure. Resolved to an actual model through
/// [`ModelRegistry::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum ModelingStrategy {
    /// The zero-cost majority-vote backend.
    MajorityVote,
    /// The closed-form method-of-moments backend
    /// ([`crate::label_model::MomentModel`]): accuracy weights worth
    /// modeling, no correlation structure, fit in a single pass.
    MomentMatching,
    /// The exact generative backend with the given correlation
    /// structure.
    GenerativeModel {
        /// Selected structure threshold ε (0 when no sweep ran).
        epsilon: f64,
        /// LF pairs to model as correlated.
        correlations: Vec<(usize, usize)>,
        /// Fitted correlation strengths (parallel to `correlations`).
        strengths: Vec<f64>,
    },
}

impl ModelingStrategy {
    /// The registry key of the backend this strategy selects.
    pub fn backend_name(&self) -> &'static str {
        match self {
            ModelingStrategy::MajorityVote => BACKEND_MAJORITY_VOTE,
            ModelingStrategy::MomentMatching => BACKEND_MOMENT,
            ModelingStrategy::GenerativeModel { .. } => BACKEND_GENERATIVE,
        }
    }
}

/// Optimizer hyperparameters; defaults follow the paper (footnote 8:
/// `(w_min, w̄, w_max) = (0.5, 1.0, 1.5)`, i.e. LF accuracies assumed in
/// 62%–82% with mean 73%).
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Advantage tolerance γ: predicted advantages below this select MV.
    pub gamma: f64,
    /// Structure-search resolution η: ε grid spacing.
    pub eta: f64,
    /// Assumed minimum LF accuracy weight.
    pub w_min: f64,
    /// Assumed mean LF accuracy weight.
    pub w_mean: f64,
    /// Assumed maximum LF accuracy weight.
    pub w_max: f64,
    /// Skip the ε sweep entirely (independent model) — used when the
    /// caller knows the suite is uncorrelated or wants the fast path.
    pub skip_structure_search: bool,
    /// Row count at which an uncorrelated model selection switches from
    /// the exact generative backend to the closed-form moment backend
    /// (`usize::MAX` disables the moment branch). Correlated structures
    /// always train the exact backend — the moment identity assumes
    /// conditional independence.
    pub moment_min_rows: usize,
    /// Structure-learning settings for the sweep.
    pub structure: StructureConfig,
}

/// Default for [`OptimizerConfig::moment_min_rows`]: below this the
/// exact fit is already interactive-fast and its MLE is strictly better
/// statistically; above it the Newton loop dominates refresh latency
/// while the moment estimator's gap (O(1/√m)) has shrunk past caring.
pub const MOMENT_MIN_ROWS: usize = 200_000;

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            gamma: 0.01,
            eta: 0.02,
            w_min: 0.5,
            w_mean: 1.0,
            w_max: 1.5,
            skip_structure_search: false,
            moment_min_rows: MOMENT_MIN_ROWS,
            structure: StructureConfig::default(),
        }
    }
}

/// The optimizer's decision plus its evidence.
#[derive(Clone, Debug)]
pub struct StrategyDecision {
    /// The chosen strategy.
    pub strategy: ModelingStrategy,
    /// The predicted advantage upper bound `A~*(Λ)`.
    pub predicted_advantage: f64,
    /// The swept `(ε, |C(ε)|)` curve (empty when the sweep was skipped).
    pub sweep: Vec<(f64, usize)>,
}

/// Proposition 2's upper bound `A~*(Λ)` on the conditional modeling
/// advantage:
///
/// ```text
/// A~*(Λ) = (1/m) Σ_i Σ_{y∈±1} 1{y·f_1(Λ_i) ≤ 0} · Φ(Λ_i, y) · σ(2 f_w̄(Λ_i) y)
/// Φ(Λ_i, y) = 1{c_y(Λ_i) w_max > c_{−y}(Λ_i) w_min}
/// ```
///
/// `c_y` counts votes for label `y`; `f_w̄` is the majority vote with all
/// weights at the prior mean. Binary scheme only (the optimizer's
/// tradeoff analysis is stated for binary tasks).
pub fn advantage_upper_bound(lambda: &LabelMatrix, cfg: &OptimizerConfig) -> f64 {
    assert!(lambda.is_binary(), "advantage bound: binary scheme only");
    let m = lambda.num_points();
    if m == 0 {
        return 0.0;
    }
    let f1 = weighted_scores(lambda, &vec![1.0; lambda.num_lfs()]);
    let mut total = 0.0;
    for i in 0..m {
        let (_, votes) = lambda.row(i);
        let c_pos = votes.iter().filter(|&&v| v == 1).count() as f64;
        let c_neg = votes.iter().filter(|&&v| v == -1).count() as f64;
        let f_mean = cfg.w_mean * (c_pos - c_neg);
        for y in [-1.0f64, 1.0] {
            if y * f1[i] > 0.0 {
                continue; // MV already right for this hypothesis
            }
            let (c_y, c_other) = if y > 0.0 {
                (c_pos, c_neg)
            } else {
                (c_neg, c_pos)
            };
            let phi = c_y * cfg.w_max > c_other * cfg.w_min;
            if !phi {
                continue;
            }
            total += sigmoid(2.0 * f_mean * y);
        }
    }
    total / m as f64
}

/// Find the elbow of the `(ε, |C|)` curve — per the paper, "the point
/// with greatest absolute difference from its neighbors": the interior
/// index maximizing `|c_i − c_{i−1}| + |c_i − c_{i+1}|`. Input must be
/// sorted by descending ε; returns an index into `sweep`.
pub fn elbow_point(sweep: &[(f64, usize)]) -> usize {
    if sweep.len() <= 2 {
        return 0;
    }
    let mut best_idx = 1usize;
    let mut best_diff = -1i64;
    for i in 1..sweep.len() - 1 {
        let c_prev = sweep[i - 1].1 as i64;
        let c_here = sweep[i].1 as i64;
        let c_next = sweep[i + 1].1 as i64;
        let diff = (c_here - c_prev).abs() + (c_here - c_next).abs();
        if diff > best_diff {
            best_diff = diff;
            best_idx = i;
        }
    }
    best_idx
}

/// When the accuracy model has no correlation structure, pick between
/// the exact generative backend and the single-pass moment backend by
/// scale (see [`OptimizerConfig::moment_min_rows`]).
fn uncorrelated_backend(lambda: &LabelMatrix, cfg: &OptimizerConfig) -> ModelingStrategy {
    if lambda.num_points() >= cfg.moment_min_rows {
        ModelingStrategy::MomentMatching
    } else {
        ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }
    }
}

/// Algorithm 1: choose a modeling strategy (backend + structure) for a
/// label matrix. Prefer [`select_model`] when a [`ModelRegistry`] is in
/// play — it degrades the decision to a registered backend.
pub fn choose_strategy(lambda: &LabelMatrix, cfg: &OptimizerConfig) -> StrategyDecision {
    let predicted = advantage_upper_bound(lambda, cfg);
    if predicted < cfg.gamma {
        return StrategyDecision {
            strategy: ModelingStrategy::MajorityVote,
            predicted_advantage: predicted,
            sweep: Vec::new(),
        };
    }
    if cfg.skip_structure_search {
        return StrategyDecision {
            strategy: uncorrelated_backend(lambda, cfg),
            predicted_advantage: predicted,
            sweep: Vec::new(),
        };
    }

    // ε grid: i·η for i = 1 .. 1/(2η), descending so the elbow scan sees
    // the count explode left to right.
    let steps = ((1.0 / (2.0 * cfg.eta)).floor() as usize).max(1);
    let mut epsilons: Vec<f64> = (1..=steps).map(|i| i as f64 * cfg.eta).collect();
    epsilons.reverse();

    let sweep_full = structure_sweep(lambda, &epsilons, &cfg.structure);
    let sweep: Vec<(f64, usize)> = sweep_full.iter().map(|(e, c, _)| (*e, *c)).collect();
    let elbow = elbow_point(&sweep);
    let (eps, _, report) = &sweep_full[elbow];

    let strategy = if report.pairs.is_empty() {
        uncorrelated_backend(lambda, cfg)
    } else {
        ModelingStrategy::GenerativeModel {
            epsilon: *eps,
            correlations: report.pairs.clone(),
            strengths: report.weights.clone(),
        }
    };
    StrategyDecision {
        strategy,
        predicted_advantage: predicted,
        sweep,
    }
}

/// Algorithm 1 over a [`ModelRegistry`]: run [`choose_strategy`], then
/// degrade the decision to a backend the registry actually holds —
/// moment falls back to generative, generative to moment (independent
/// model only; with its correlation structure dropped it would be a
/// different model, so correlated selections degrade to majority vote),
/// and anything else to majority vote. With the
/// [`standard`](ModelRegistry::standard) registry no degradation ever
/// happens.
pub fn select_model(
    lambda: &LabelMatrix,
    cfg: &OptimizerConfig,
    registry: &ModelRegistry,
) -> StrategyDecision {
    let mut decision = choose_strategy(lambda, cfg);
    if registry.contains(decision.strategy.backend_name()) {
        return decision;
    }
    decision.strategy = match decision.strategy {
        ModelingStrategy::MomentMatching if registry.contains(BACKEND_GENERATIVE) => {
            ModelingStrategy::GenerativeModel {
                epsilon: 0.0,
                correlations: Vec::new(),
                strengths: Vec::new(),
            }
        }
        ModelingStrategy::GenerativeModel { correlations, .. }
            if correlations.is_empty() && registry.contains(BACKEND_MOMENT) =>
        {
            ModelingStrategy::MomentMatching
        }
        _ => ModelingStrategy::MajorityVote,
    };
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snorkel_matrix::{LabelMatrixBuilder, Vote};

    fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> (LabelMatrix, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = LabelMatrixBuilder::new(m, accs.len());
        let mut gold = Vec::with_capacity(m);
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < pl {
                    b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
                }
            }
        }
        (b.build(), gold)
    }

    #[test]
    fn bound_dominates_true_advantage() {
        // Proposition 2: A~* must upper-bound the realized advantage of
        // the optimally-weighted vote (weights from true accuracies).
        for seed in 0..5 {
            let accs = [0.9, 0.8, 0.65, 0.6, 0.55];
            let (lambda, gold) = planted(2000, &accs, 0.4, seed);
            let w_star: Vec<f64> = accs.iter().map(|&a| 0.5 * (a / (1.0 - a)).ln()).collect();
            let adv = crate::vote::modeling_advantage(&lambda, &w_star, &gold);
            let bound = advantage_upper_bound(&lambda, &OptimizerConfig::default());
            assert!(
                bound + 1e-9 >= adv,
                "seed {seed}: bound {bound:.4} < advantage {adv:.4}"
            );
        }
    }

    #[test]
    fn low_density_chooses_mv() {
        // One vote per point on average, no conflicts to exploit.
        let (lambda, _) = planted(2000, &[0.75, 0.75, 0.75], 0.05, 1);
        let d = choose_strategy(&lambda, &OptimizerConfig::default());
        assert_eq!(d.strategy, ModelingStrategy::MajorityVote);
        assert!(d.predicted_advantage < 0.01);
    }

    #[test]
    fn mid_density_chooses_gm() {
        let accs = [0.9, 0.85, 0.7, 0.6, 0.55, 0.55];
        let (lambda, _) = planted(2000, &accs, 0.4, 2);
        let cfg = OptimizerConfig {
            skip_structure_search: true,
            ..OptimizerConfig::default()
        };
        let d = choose_strategy(&lambda, &cfg);
        assert!(matches!(
            d.strategy,
            ModelingStrategy::GenerativeModel { .. }
        ));
        assert!(d.predicted_advantage >= 0.01);
    }

    #[test]
    fn unanimous_high_density_bounds_small() {
        // 20 identical-accuracy high-density LFs: MV is near optimal, and
        // the bound should reflect a modest possible advantage.
        let accs = vec![0.8; 20];
        let (lambda, _) = planted(1000, &accs, 0.9, 3);
        let bound = advantage_upper_bound(&lambda, &OptimizerConfig::default());
        let sparse = planted(1000, &[0.8; 5], 0.4, 3).0;
        let sparse_bound = advantage_upper_bound(&sparse, &OptimizerConfig::default());
        assert!(
            bound < sparse_bound,
            "high density bound {bound:.4} should be below mid-density {sparse_bound:.4}"
        );
    }

    #[test]
    fn elbow_detects_explosion() {
        // Descending ε, counts exploding at the tail: the point whose
        // neighbor differences are largest is index 3 (|40−2| + |40−300|).
        let sweep = vec![(0.5, 0), (0.4, 1), (0.3, 2), (0.2, 40), (0.1, 300)];
        assert_eq!(elbow_point(&sweep), 3);
        // Degenerate cases.
        assert_eq!(elbow_point(&[(0.5, 0)]), 0);
        assert_eq!(elbow_point(&[]), 0);
    }

    #[test]
    fn full_algorithm_with_correlated_suite() {
        // Duplicated LFs at mid density: expect GM with the duplicate
        // pair selected at the chosen ε.
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = LabelMatrixBuilder::new(1500, 5);
        for i in 0..1500 {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            let mut v0 = 0;
            for j in 0..4 {
                if rng.gen::<f64>() < 0.5 {
                    let v = if rng.gen::<f64>() < 0.75 { y } else { -y };
                    b.set(i, j, v);
                    if j == 0 {
                        v0 = v;
                    }
                }
            }
            if v0 != 0 {
                b.set(i, 4, v0); // duplicate of LF 0
            }
        }
        let lambda = b.build();
        let d = choose_strategy(&lambda, &OptimizerConfig::default());
        match &d.strategy {
            ModelingStrategy::GenerativeModel { correlations, .. } => {
                assert!(
                    correlations.contains(&(0, 4)),
                    "duplicate pair not selected: {correlations:?}"
                );
            }
            other => panic!("expected GM, got {other:?}"),
        }
        assert!(!d.sweep.is_empty());
    }

    #[test]
    fn empty_matrix_is_mv() {
        let lambda = LabelMatrixBuilder::new(0, 3).build();
        let d = choose_strategy(&lambda, &OptimizerConfig::default());
        assert_eq!(d.strategy, ModelingStrategy::MajorityVote);
        assert_eq!(d.predicted_advantage, 0.0);
    }

    #[test]
    fn elbow_edge_cases() {
        // Empty sweep and single point: index 0 by convention (callers
        // never index an empty sweep — the ε grid has ≥ 1 step).
        assert_eq!(elbow_point(&[]), 0);
        assert_eq!(elbow_point(&[(0.3, 7)]), 0);
        // Two points have no interior: still 0.
        assert_eq!(elbow_point(&[(0.3, 1), (0.2, 100)]), 0);
        // Strictly monotone (geometric) growth: the largest combined
        // neighbor difference sits at the next-to-last point.
        let monotone = vec![(0.5, 1), (0.4, 2), (0.3, 4), (0.2, 8), (0.1, 16)];
        assert_eq!(elbow_point(&monotone), 3);
        // Strictly monotone *linear* growth: every interior point ties;
        // the scan keeps the first (a stable, deterministic pick).
        let linear = vec![(0.5, 1), (0.4, 2), (0.3, 3), (0.2, 4)];
        assert_eq!(elbow_point(&linear), 1);
        // A flat sweep never panics and picks an interior point.
        let flat = vec![(0.5, 3), (0.4, 3), (0.3, 3)];
        assert_eq!(elbow_point(&flat), 1);
    }

    #[test]
    fn all_abstain_matrix_is_mv() {
        // Rows exist but no LF ever votes: the advantage bound is
        // exactly 0 (no row can be corrected) and MV is chosen without
        // running the sweep.
        let lambda = LabelMatrixBuilder::new(500, 4).build();
        assert_eq!(lambda.num_points(), 500);
        let d = choose_strategy(&lambda, &OptimizerConfig::default());
        assert_eq!(d.strategy, ModelingStrategy::MajorityVote);
        assert_eq!(d.predicted_advantage, 0.0);
        assert!(d.sweep.is_empty());
    }

    #[test]
    fn big_uncorrelated_matrix_selects_moment_backend() {
        let accs = [0.9, 0.85, 0.7, 0.6, 0.55, 0.55];
        let (lambda, _) = planted(3000, &accs, 0.4, 2);
        let cfg = OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 1000, // scaled down for the test
            ..OptimizerConfig::default()
        };
        let d = choose_strategy(&lambda, &cfg);
        assert_eq!(d.strategy, ModelingStrategy::MomentMatching);
        // Below the scale threshold the exact backend still wins.
        let small = OptimizerConfig {
            moment_min_rows: 100_000,
            ..cfg
        };
        assert!(matches!(
            choose_strategy(&lambda, &small).strategy,
            ModelingStrategy::GenerativeModel { .. }
        ));
    }

    #[test]
    fn select_model_degrades_to_registered_backends() {
        use crate::label_model::{
            MajorityVoteModel, ModelRegistry, BACKEND_GENERATIVE, BACKEND_MAJORITY_VOTE,
        };
        use crate::model::GenerativeModel;
        let accs = [0.9, 0.85, 0.7, 0.6, 0.55, 0.55];
        let (lambda, _) = planted(3000, &accs, 0.4, 2);
        let cfg = OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 1000,
            ..OptimizerConfig::default()
        };
        // Standard registry: moment goes through untouched.
        let d = select_model(&lambda, &cfg, &ModelRegistry::standard());
        assert_eq!(d.strategy, ModelingStrategy::MomentMatching);
        // Registry without the moment backend: degrade to generative.
        let mut no_moment = ModelRegistry::empty();
        no_moment.register(BACKEND_MAJORITY_VOTE, |n, scheme, _| {
            Box::new(MajorityVoteModel::new(n, scheme))
        });
        no_moment.register(BACKEND_GENERATIVE, |n, scheme, _| {
            Box::new(GenerativeModel::new(n, scheme))
        });
        let d = select_model(&lambda, &cfg, &no_moment);
        assert!(matches!(
            d.strategy,
            ModelingStrategy::GenerativeModel { .. }
        ));
        // MV-only registry: everything degrades to majority vote.
        let mut mv_only = ModelRegistry::empty();
        mv_only.register(BACKEND_MAJORITY_VOTE, |n, scheme, _| {
            Box::new(MajorityVoteModel::new(n, scheme))
        });
        let d = select_model(&lambda, &cfg, &mv_only);
        assert_eq!(d.strategy, ModelingStrategy::MajorityVote);
    }
}
