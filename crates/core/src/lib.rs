//! # snorkel-core
//!
//! The data-programming core of `snorkel-rs`: everything between the
//! label matrix `Λ` and the probabilistic training labels `Ỹ`.
//!
//! * [`vote`] — unweighted / weighted majority vote, and the **modeling
//!   advantage** `A_w` of Definition 1 (how much a weighted combination
//!   improves on majority vote).
//! * [`label_model`] — the **pluggable backend API**: the
//!   [`label_model::LabelModel`] trait every label model implements
//!   (fit / warm refit / plan-aware marginals / tagged snapshots), the
//!   zero-cost majority-vote backend, the closed-form method-of-moments
//!   backend, and the [`label_model::ModelRegistry`] the optimizer
//!   selects over.
//! * [`model`] — the exact **generative label model** `p_w(Λ, Y)` of
//!   §2.2: labeling-propensity, accuracy, and pairwise-correlation
//!   factors, trained without ground truth by SGD on the negative log
//!   marginal likelihood (exact expectations for the independent model;
//!   Gibbs-sampled contrastive divergence when correlations are
//!   modeled).
//! * [`structure`] — **dependency-structure learning** (§3.2): an
//!   ℓ1-regularized pseudolikelihood estimator selecting which LF pairs
//!   to model as correlated, with exact gradients and no sampling.
//! * [`optimizer`] — the **model-selection optimizer** (Algorithm 1):
//!   the `A~*` advantage bound of Proposition 2 decides whether
//!   accuracies are worth modeling at all; an ε-sweep with elbow-point
//!   selection picks the correlation structure; scale picks between the
//!   exact and moment backends.
//! * [`bounds`] — the closed-form low-density (Proposition 1) and
//!   high-density (Theorem 1) advantage bounds, used by the Figure 4
//!   reproduction.
//! * [`pipeline`] — the end-to-end orchestration with wall-clock
//!   instrumentation (LF application → Λ → backend selection → training
//!   → `Ỹ`), which the §3 speedup experiments time — plus the optional
//!   [`pipeline::DiscTrainer`] distillation stage (§2.4): a noise-aware
//!   discriminative model trained on `Ỹ` that generalizes beyond the
//!   labeling functions' coverage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index loops over parallel arrays are the house style in the numeric
// kernels; iterator rewrites obscure the paired-index math.
#![allow(clippy::needless_range_loop)]

pub mod bounds;
pub mod label_model;
pub mod model;
pub mod optimizer;
pub mod pipeline;
pub mod structure;
pub mod vote;

pub use label_model::{
    LabelModel, MajorityVoteModel, ModelRegistry, ModelSnapshot, MomentModel, UnknownBackend,
};
pub use model::{
    ClassBalance, FitReport, GenerativeModel, LabelScheme, ModelParams, ParamsError, Scaleout,
    TrainConfig, SCALEOUT_MIN_ROWS,
};
pub use optimizer::{
    choose_strategy, select_model, ModelingStrategy, OptimizerConfig, StrategyDecision,
};
pub use pipeline::{
    run_pipeline, DiscTrainer, DiscTrainerConfig, Pipeline, PipelineConfig, PipelineReport,
};
pub use structure::{learn_structure, StructureConfig, StructureReport};
pub use vote::{majority_vote, modeling_advantage, weighted_vote};
