//! End-to-end label-generation pipeline with wall-clock instrumentation.
//!
//! `labeling functions → Λ → backend selection → fit → probabilistic
//! labels Ỹ`.
//!
//! This is the loop the paper's users run on every LF edit, and the unit
//! the §3 timing claims are about: skipping generative training when the
//! optimizer picks MV sped pipelines up 1.8×, and stopping the ε sweep
//! at the elbow saved up to 61% of training time. The [`PipelineReport`]
//! exposes per-stage timings so the bench harness can regenerate those
//! numbers.
//!
//! Labeling itself is delegated to whichever
//! [`LabelModel`] backend the optimizer
//! selects out of the configured
//! [`ModelRegistry`] — majority vote
//! is just the cheapest backend, not a special case.

use std::time::Duration;

use snorkel_context::{CandidateId, Corpus};
use snorkel_disc::{DistillConfig, DistillReport, DistilledModel, TextFeaturizer};
use snorkel_lf::{BoxedLf, LfExecutor};
use snorkel_linalg::SparseVec;
use snorkel_matrix::{LabelMatrix, ShardedMatrix};

use crate::label_model::{LabelModel, ModelRegistry};
use crate::model::{GenerativeModel, LabelScheme, TrainConfig};
use crate::optimizer::{select_model, ModelingStrategy, OptimizerConfig};

/// Start a span for one pipeline stage. The span's
/// [`finish`](snorkel_obs::Span::finish) both records into
/// `snorkel_core_pipeline_stage_seconds{stage="…"}` and hands the
/// duration back — the [`PipelineReport`] timings and the live metrics
/// are the same measurement, not two clocks that can disagree.
fn stage_span(stage: &'static str) -> snorkel_obs::Span {
    let hist =
        snorkel_obs::global().histogram("snorkel_core_pipeline_stage_seconds", &[("stage", stage)]);
    snorkel_obs::Span::start(stage, hist, snorkel_obs::TraceLevel::Debug)
}

/// Configuration of the optional distillation stage: how candidates are
/// featurized and how the discriminative model trains on the label
/// model's marginals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiscTrainerConfig {
    /// Hashed-text featurizer (its bucket count must equal
    /// [`DistillConfig::dim`]; [`DiscTrainerConfig::with_dim`] keeps
    /// them in sync).
    pub featurizer: TextFeaturizer,
    /// Noise-aware training settings for the distilled model.
    pub train: DistillConfig,
}

impl DiscTrainerConfig {
    /// A configuration with featurizer buckets and model dimensionality
    /// agreeing at `dim`.
    pub fn with_dim(dim: u32) -> Self {
        DiscTrainerConfig {
            featurizer: TextFeaturizer::with_buckets(dim),
            train: DistillConfig {
                dim,
                ..DistillConfig::default()
            },
        }
    }
}

/// The distillation stage (paper §2.3/§2.4): train a discriminative
/// model on the label model's probabilistic labels with the noise-aware
/// expected loss, so predictions generalize **beyond the labeling
/// functions' coverage**. Training is minibatched and data-parallel
/// over the scale-out plan's [`ShardedMatrix`] row ranges;
/// abstain-marginal (near-uniform) rows are down-weighted by their
/// confidence and dropped at the floor.
#[derive(Clone, Debug, Default)]
pub struct DiscTrainer {
    /// Stage configuration.
    pub config: DiscTrainerConfig,
}

impl DiscTrainer {
    /// A trainer with the given configuration.
    pub fn new(config: DiscTrainerConfig) -> Self {
        DiscTrainer { config }
    }

    /// The contiguous row ranges training parallelizes over: the plan's
    /// shard ranges when one is live, else one range covering all
    /// `rows`.
    pub fn ranges_for(plan: Option<&ShardedMatrix>, rows: usize) -> Vec<(usize, usize)> {
        match plan {
            Some(plan) if plan.num_rows() == rows => plan
                .shards()
                .iter()
                .map(|s| {
                    let r = s.row_range();
                    (r.start, r.end)
                })
                .collect(),
            _ => vec![(0, rows)],
        }
    }

    /// Hashed feature vectors for the given candidates.
    pub fn featurize(&self, corpus: &Corpus, candidates: &[CandidateId]) -> Vec<SparseVec> {
        self.config.featurizer.featurize_all(corpus, candidates)
    }

    /// Cold-train a fresh distilled model on the label model's
    /// marginals. `num_classes` must match the marginal rows' width
    /// (it exists so an empty training set still builds a model of the
    /// right shape); a mismatch panics instead of silently training a
    /// different class count.
    pub fn train(
        &self,
        xs: &[SparseVec],
        marginals: &[Vec<f64>],
        num_classes: usize,
        plan: Option<&ShardedMatrix>,
    ) -> (DistilledModel, DistillReport) {
        if let Some(row) = marginals.first() {
            assert_eq!(
                row.len(),
                num_classes,
                "train: marginals have {} classes, caller claimed {num_classes}",
                row.len()
            );
        }
        let mut model = DistilledModel::new(self.config.train.dim, num_classes);
        let report = self.train_warm(&mut model, xs, marginals, plan);
        (model, report)
    }

    /// Warm-retrain an existing model in place, continuing from its
    /// current weights — the serving layer's retrain-after-edit path.
    /// A model whose shape no longer matches the config is replaced by
    /// a cold one first.
    pub fn train_warm(
        &self,
        model: &mut DistilledModel,
        xs: &[SparseVec],
        marginals: &[Vec<f64>],
        plan: Option<&ShardedMatrix>,
    ) -> DistillReport {
        let num_classes = marginals.first().map_or(model.num_classes(), Vec::len);
        if model.dim() != self.config.train.dim || model.num_classes() != num_classes {
            *model = DistilledModel::new(self.config.train.dim, num_classes);
        }
        let ranges = DiscTrainer::ranges_for(plan, xs.len());
        model.fit(xs, marginals, &ranges, &self.config.train)
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// Optimizer settings (Algorithm 1).
    pub optimizer: OptimizerConfig,
    /// Label-model training settings.
    pub train: TrainConfig,
    /// LF executor (parallelism, cardinality).
    pub executor: LfExecutor,
    /// Force a backend instead of running the optimizer (ablations;
    /// resolved through the same [`Self::registry`]).
    pub force_strategy: Option<ModelingStrategy>,
    /// The label-model backends this pipeline may build.
    pub registry: ModelRegistry,
    /// Distillation stage: when set, [`Pipeline::run`] featurizes the
    /// candidates and trains a [`DistilledModel`] on the marginals
    /// (matrix-only entry points cannot featurize and skip it).
    pub distill: Option<DiscTrainerConfig>,
}

/// Per-stage wall-clock timings.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineTimings {
    /// Applying the LF suite.
    pub lf_application: Duration,
    /// Optimizer: advantage bound + structure sweep.
    pub strategy_selection: Duration,
    /// Backend fit + marginals (near zero for the majority-vote
    /// backend, whose fit is a no-op).
    pub training: Duration,
    /// Distillation: featurizing the candidates and training the
    /// discriminative model on the marginals (zero when disabled).
    pub distillation: Duration,
    /// Whole pipeline.
    pub total: Duration,
}

/// Everything the pipeline produced besides the labels themselves.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// The strategy that produced the labels.
    pub strategy: ModelingStrategy,
    /// Name of the backend that produced the labels.
    pub backend: &'static str,
    /// Predicted advantage bound A~* (0 when forced).
    pub predicted_advantage: f64,
    /// Label density of Λ.
    pub label_density: f64,
    /// Stage timings.
    pub timings: PipelineTimings,
    /// The fitted label model. Downcast to read backend-specific state,
    /// e.g. `report.model.downcast_ref::<GenerativeModel>()` for the
    /// exact backend's accuracy weights.
    pub model: Box<dyn LabelModel>,
    /// The distilled discriminative model, when the
    /// [`PipelineConfig::distill`] stage ran — it answers for
    /// candidates *outside* Λ's coverage.
    pub disc: Option<DistilledModel>,
    /// What the distillation stage did (rows trained / dropped, loss).
    pub disc_report: Option<DistillReport>,
}

/// The staged pipeline: build once, then run against label matrices as
/// LFs evolve.
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    /// Configuration used for every run.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Run from raw candidates: apply LFs, model, and — when
    /// [`PipelineConfig::distill`] is set — featurize the candidates and
    /// distill a discriminative model from the marginals (parallel over
    /// the scale-out plan's shard ranges). Returns per-class
    /// probabilistic labels (`labels[i][class]`) and the report.
    pub fn run(
        &self,
        lfs: &[BoxedLf],
        corpus: &Corpus,
        candidates: &[CandidateId],
    ) -> (Vec<Vec<f64>>, PipelineReport) {
        let lf_span = stage_span("lf_application");
        let lambda = self.config.executor.apply(lfs, corpus, candidates);
        let lf_time = lf_span.finish();
        let (labels, mut report, plan) = self.run_from_matrix_inner(&lambda);
        report.timings.lf_application = lf_time;
        report.timings.total += lf_time;
        if let Some(disc_cfg) = &self.config.distill {
            let disc_span = stage_span("distillation");
            let trainer = DiscTrainer::new(disc_cfg.clone());
            let xs = trainer.featurize(corpus, candidates);
            let num_classes = LabelScheme::from_cardinality(lambda.cardinality()).num_classes();
            let (disc, disc_report) = trainer.train(&xs, &labels, num_classes, plan.as_ref());
            report.disc = Some(disc);
            report.disc_report = Some(disc_report);
            report.timings.distillation = disc_span.finish();
            report.timings.total += report.timings.distillation;
        }
        (labels, report)
    }

    /// Run from an existing label matrix (LF outputs are cached across
    /// development iterations in practice). Matrix-only entry points
    /// have no corpus to featurize, so the distillation stage is
    /// skipped; use [`Self::run`] or drive a [`DiscTrainer`] directly.
    pub fn run_from_matrix(&self, lambda: &LabelMatrix) -> (Vec<Vec<f64>>, PipelineReport) {
        let (labels, report, _) = self.run_from_matrix_inner(lambda);
        (labels, report)
    }

    fn run_from_matrix_inner(
        &self,
        lambda: &LabelMatrix,
    ) -> (Vec<Vec<f64>>, PipelineReport, Option<ShardedMatrix>) {
        let strategy_span = stage_span("strategy_selection");

        let (strategy, predicted) = match &self.config.force_strategy {
            Some(s) => (s.clone(), 0.0),
            None => {
                if lambda.is_binary() {
                    let d = select_model(lambda, &self.config.optimizer, &self.config.registry);
                    (d.strategy, d.predicted_advantage)
                } else {
                    // The advantage analysis is binary; multi-class tasks
                    // (e.g. Crowd) always train the generative model.
                    (
                        ModelingStrategy::GenerativeModel {
                            epsilon: 0.0,
                            correlations: Vec::new(),
                            strengths: Vec::new(),
                        },
                        f64::NAN,
                    )
                }
            }
        };
        let strategy_time = strategy_span.finish();

        let training_span = stage_span("training");
        let mut model = self
            .config
            .registry
            .build(&strategy, lambda.num_lfs(), lambda.cardinality())
            .unwrap_or_else(|e| panic!("pipeline misconfigured: {e}"));
        // Resolve the scale-out plan once and reuse it for both training
        // and the final marginals pass — unless the backend would not
        // profit (majority vote: the Algorithm-1 skip-work branch must
        // not pay an index build it cannot amortize).
        let plan = if model.benefits_from_plan() {
            GenerativeModel::plan_for(lambda, &self.config.train)
        } else {
            None
        };
        model.fit(lambda, plan.as_ref(), &self.config.train);
        let labels = model.marginals(lambda, plan.as_ref());
        let training_time = training_span.finish();

        let report = PipelineReport {
            backend: model.backend_name(),
            strategy,
            predicted_advantage: predicted,
            label_density: lambda.label_density(),
            timings: PipelineTimings {
                lf_application: Duration::ZERO,
                strategy_selection: strategy_time,
                training: training_time,
                distillation: Duration::ZERO,
                total: strategy_time + training_time,
            },
            model,
            disc: None,
            disc_report: None,
        };
        (labels, report, plan)
    }
}

/// One-call convenience: run the default pipeline over a matrix.
pub fn run_pipeline(lambda: &LabelMatrix) -> (Vec<Vec<f64>>, PipelineReport) {
    Pipeline::default().run_from_matrix(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snorkel_matrix::{LabelMatrixBuilder, Vote};

    fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> (LabelMatrix, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = LabelMatrixBuilder::new(m, accs.len());
        let mut gold = Vec::with_capacity(m);
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < pl {
                    b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
                }
            }
        }
        (b.build(), gold)
    }

    #[test]
    fn gm_path_produces_calibratedish_labels() {
        let (lambda, gold) = planted(2000, &[0.9, 0.8, 0.7, 0.6], 0.5, 1);
        let cfg = PipelineConfig {
            optimizer: OptimizerConfig {
                skip_structure_search: true,
                ..OptimizerConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (labels, report) = Pipeline::new(cfg).run_from_matrix(&lambda);
        assert!(matches!(
            report.strategy,
            ModelingStrategy::GenerativeModel { .. }
        ));
        assert_eq!(report.backend, "generative");
        assert!(report
            .model
            .downcast_ref::<crate::model::GenerativeModel>()
            .is_some());
        assert_eq!(labels.len(), 2000);
        // Probabilistic labels should beat coin-flipping on gold. The
        // Bayes-optimal accuracy for this suite (accs 0.9..0.6 at 50%
        // propensity) sits right around 0.80, so assert with a margin
        // that tolerates per-realization wobble.
        let acc: f64 = labels
            .iter()
            .zip(&gold)
            .map(|(l, &g)| {
                let pred: Vote = if l[0] > 0.5 { 1 } else { -1 };
                (pred == g) as u8 as f64
            })
            .sum::<f64>()
            / 2000.0;
        assert!(acc > 0.77, "pipeline label accuracy {acc:.3}");
    }

    #[test]
    fn mv_path_skips_training() {
        let (lambda, _) = planted(1000, &[0.75, 0.75], 0.05, 2);
        let (labels, report) = run_pipeline(&lambda);
        assert_eq!(report.strategy, ModelingStrategy::MajorityVote);
        assert_eq!(report.backend, "majority-vote");
        assert!(report
            .model
            .downcast_ref::<crate::label_model::MajorityVoteModel>()
            .is_some());
        assert!(report.timings.training < report.timings.total);
        // Uniform rows where nothing voted.
        assert!(labels.iter().any(|l| (l[0] - 0.5).abs() < 1e-12));
    }

    #[test]
    fn forced_strategy_bypasses_optimizer() {
        let (lambda, _) = planted(500, &[0.8, 0.8, 0.8], 0.5, 3);
        let cfg = PipelineConfig {
            force_strategy: Some(ModelingStrategy::MajorityVote),
            ..PipelineConfig::default()
        };
        let (_, report) = Pipeline::new(cfg).run_from_matrix(&lambda);
        assert_eq!(report.strategy, ModelingStrategy::MajorityVote);
    }

    #[test]
    fn mv_is_faster_than_gm_on_same_matrix() {
        // The §3.1.2 speedup claim in miniature: forcing MV must beat
        // forcing GM on wall clock.
        let (lambda, _) = planted(3000, &[0.8; 10], 0.3, 4);
        let mv_cfg = PipelineConfig {
            force_strategy: Some(ModelingStrategy::MajorityVote),
            ..PipelineConfig::default()
        };
        let gm_cfg = PipelineConfig {
            force_strategy: Some(ModelingStrategy::GenerativeModel {
                epsilon: 0.0,
                correlations: Vec::new(),
                strengths: Vec::new(),
            }),
            ..PipelineConfig::default()
        };
        let (_, mv_report) = Pipeline::new(mv_cfg).run_from_matrix(&lambda);
        let (_, gm_report) = Pipeline::new(gm_cfg).run_from_matrix(&lambda);
        assert!(mv_report.timings.total < gm_report.timings.total);
    }

    #[test]
    fn forced_moment_backend_labels_through_trait() {
        let (lambda, gold) = planted(2000, &[0.9, 0.8, 0.7, 0.6], 0.5, 1);
        let cfg = PipelineConfig {
            force_strategy: Some(ModelingStrategy::MomentMatching),
            ..PipelineConfig::default()
        };
        let (labels, report) = Pipeline::new(cfg).run_from_matrix(&lambda);
        assert_eq!(report.backend, "moment");
        let acc: f64 = labels
            .iter()
            .zip(&gold)
            .map(|(l, &g)| {
                let pred: Vote = if l[0] > 0.5 { 1 } else { -1 };
                (pred == g) as u8 as f64
            })
            .sum::<f64>()
            / 2000.0;
        assert!(acc > 0.77, "moment-backend label accuracy {acc:.3}");
    }

    #[test]
    fn distill_stage_trains_on_marginals_and_covers_unseen_candidates() {
        use snorkel_lf::KeywordBetweenLf;
        use snorkel_nlp::tokenize;

        // Corpus where "causes"/"induces" ⇒ +1 and "treats"/"cures" ⇒ −1,
        // but the LF suite only knows "causes"/"treats".
        let mut corpus = Corpus::new();
        let doc = corpus.add_document("d");
        let mut add = |verb: &str, i: usize| {
            let text = format!("chem{i} {verb} disease{i}");
            let tokens = tokenize(&text);
            let last = tokens.len();
            let s = corpus.add_sentence(doc, &text, tokens);
            let a = corpus.add_span(s, 0, 1, Some("Chemical"));
            let b = corpus.add_span(s, last - 1, last, Some("Disease"));
            corpus.add_candidate(vec![a, b])
        };
        let mut train_ids = Vec::new();
        for i in 0..120 {
            // Covered verbs co-occur with the uncovered cue words via
            // shared sentences ("causes" rows also mention "induces").
            let verb = if i % 2 == 0 {
                "causes and induces"
            } else {
                "treats and cures"
            };
            train_ids.push(add(verb, i));
        }
        // Held-out candidates with ZERO LF coverage: only the cue words.
        let pos_unseen = add("induces", 500);
        let neg_unseen = add("cures", 501);

        let lfs: Vec<BoxedLf> = vec![
            Box::new(KeywordBetweenLf::new("lf_causes", &["causes"], 1, 1)),
            Box::new(KeywordBetweenLf::new("lf_treats", &["treats"], -1, -1)),
        ];
        let cfg = PipelineConfig {
            distill: Some(DiscTrainerConfig::with_dim(1 << 12)),
            ..PipelineConfig::default()
        };
        let pipeline = Pipeline::new(cfg);
        let (_, report) = pipeline.run(&lfs, &corpus, &train_ids);
        let disc = report.disc.as_ref().expect("distill stage ran");
        let disc_report = report.disc_report.expect("distill report present");
        assert!(disc_report.rows_trained > 0);
        assert!(report.timings.distillation > Duration::ZERO);

        // The LFs abstain on the held-out candidates…
        for &id in &[pos_unseen, neg_unseen] {
            let view = corpus.candidate(id);
            assert!(
                lfs.iter().all(|lf| lf.label(&view) == 0),
                "not zero-coverage"
            );
        }
        // …but the distilled model classifies them from features alone.
        let trainer = DiscTrainer::new(pipeline.config.distill.clone().unwrap());
        let xs = trainer.featurize(&corpus, &[pos_unseen, neg_unseen]);
        assert_eq!(disc.predict_vote(&xs[0]), 1, "unseen 'induces' row");
        assert_eq!(disc.predict_vote(&xs[1]), -1, "unseen 'cures' row");
    }

    #[test]
    fn stage_spans_feed_live_metrics() {
        let hist = snorkel_obs::global().histogram(
            "snorkel_core_pipeline_stage_seconds",
            &[("stage", "training")],
        );
        let before = hist.snapshot().count();
        let (lambda, _) = planted(200, &[0.8, 0.8], 0.5, 7);
        let (_, report) = run_pipeline(&lambda);
        // The report timing and the histogram recording are the same
        // measurement (monotone assertions: the registry is global).
        assert!(report.timings.training <= report.timings.total);
        // Other tests in this binary run pipelines concurrently, so
        // assert growth, not an exact delta.
        assert!(hist.snapshot().count() > before);
    }

    #[test]
    fn matrix_only_entry_skips_distillation() {
        let (lambda, _) = planted(500, &[0.8, 0.8], 0.5, 9);
        let cfg = PipelineConfig {
            distill: Some(DiscTrainerConfig::with_dim(1 << 10)),
            ..PipelineConfig::default()
        };
        let (_, report) = Pipeline::new(cfg).run_from_matrix(&lambda);
        assert!(report.disc.is_none(), "no corpus to featurize");
    }

    #[test]
    fn multiclass_always_trains_gm() {
        let mut b = LabelMatrixBuilder::with_cardinality(50, 3, 5);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..50 {
            for j in 0..3 {
                if rng.gen::<f64>() < 0.8 {
                    b.set(i, j, rng.gen_range(1..=5));
                }
            }
        }
        let (labels, report) = run_pipeline(&b.build());
        assert!(matches!(
            report.strategy,
            ModelingStrategy::GenerativeModel { .. }
        ));
        assert_eq!(labels[0].len(), 5);
        for row in &labels {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
