//! The pluggable label-model backend API.
//!
//! The paper's central separation is between *label sources* (the LF
//! suite producing Λ) and the *model that denoises them* (producing the
//! probabilistic labels Ỹ). This module makes that second half a
//! swappable component: every backend implements [`LabelModel`] — fit,
//! warm refit, plan-aware marginals, and a stable snapshot encoding —
//! and the pipeline, the incremental session, and the serving layer all
//! program against `Box<dyn LabelModel>` instead of a concrete model.
//!
//! Three backends ship:
//!
//! * [`MajorityVoteModel`] (`"majority-vote"`) — the zero-cost baseline:
//!   `fit` is a no-op and the posterior is the (plurality) majority
//!   vote, one-hot on a unique winner and uniform on ties/abstains.
//!   What used to be a special case inside the pipeline is now just the
//!   cheapest backend.
//! * [`crate::model::GenerativeModel`] (`"generative"`) — the exact
//!   paper model (§2.2): EM + damped-Newton training of the
//!   accuracy/propensity factors, Gibbs contrastive divergence when
//!   correlations are modeled. Its marginals through this trait are
//!   bit-identical to calling the concrete type directly (the trait
//!   impl delegates; property-tested in `tests/proptest_model.rs`).
//! * [`MomentModel`] (`"moment"`) — a closed-form method-of-moments
//!   accuracy estimator in the spirit of the original Data Programming
//!   analysis: under the independent model, the *observed* pairwise
//!   agreement rates factor through per-LF accuracies
//!   (`E[agree_{jk}] = 1/K + (K−1)/K · u_j u_k` on balanced classes,
//!   with `u = (K·acc − 1)/(K − 1)`), so each accuracy is recovered
//!   from agreement-rate triplets `u_j² = e_ja e_jb / e_ab` without any
//!   iteration. One statistics pass over Λ (or one pass over the
//!   deduplicated [`snorkel_matrix::PatternIndex`] when a plan is
//!   supplied) replaces the Newton loop — orders of magnitude cheaper
//!   at million-row scale, at the price of a small statistical gap from
//!   the exact MLE that vanishes as `m` grows.
//!
//! [`ModelRegistry`] maps backend names to constructors; the
//! Algorithm-1 optimizer ([`crate::optimizer::select_model`]) picks a
//! *backend* out of the registry rather than hard-coding the
//! MV-vs-generative branch.
//!
//! # Example
//!
//! ```
//! use snorkel_core::label_model::{LabelModel, ModelRegistry};
//! use snorkel_core::model::TrainConfig;
//! use snorkel_core::optimizer::{select_model, OptimizerConfig};
//! use snorkel_matrix::LabelMatrixBuilder;
//!
//! // A tiny binary Λ: two LFs voting +1/−1 on four points.
//! let mut b = LabelMatrixBuilder::new(4, 2);
//! b.set(0, 0, 1);
//! b.set(1, 0, 1);
//! b.set(1, 1, -1);
//! b.set(2, 1, -1);
//! let lambda = b.build();
//!
//! // Let the optimizer pick a backend over the standard registry,
//! // build it, fit it, and read probabilistic labels — the same four
//! // calls work for every backend.
//! let registry = ModelRegistry::standard();
//! let decision = select_model(&lambda, &OptimizerConfig::default(), &registry);
//! let mut model: Box<dyn LabelModel> = registry
//!     .build(&decision.strategy, lambda.num_lfs(), lambda.cardinality())
//!     .unwrap();
//! model.fit(&lambda, None, &TrainConfig::default());
//! let labels = model.marginals(&lambda, None);
//! assert_eq!(labels.len(), 4);
//! assert!(labels.iter().all(|p| (p.iter().sum::<f64>() - 1.0).abs() < 1e-9));
//!
//! // The backend round-trips through its tagged snapshot encoding.
//! let restored = model.to_snapshot().restore().unwrap();
//! assert_eq!(restored.backend_name(), model.backend_name());
//! assert_eq!(restored.marginals(&lambda, None), labels);
//! ```

use std::any::Any;

use snorkel_matrix::{LabelMatrix, ShardedMatrix, Vote};

use crate::model::{
    prior_pseudocounts, ClassBalance, FitReport, GenerativeModel, LabelScheme, ModelParams,
    ParamsError, TrainConfig, W_CLAMP,
};
use crate::optimizer::ModelingStrategy;

/// Backend name of [`MajorityVoteModel`].
pub const BACKEND_MAJORITY_VOTE: &str = "majority-vote";
/// Backend name of the exact [`GenerativeModel`].
pub const BACKEND_GENERATIVE: &str = "generative";
/// Backend name of [`MomentModel`].
pub const BACKEND_MOMENT: &str = "moment";

/// A label-model backend: anything that can turn a label matrix Λ into
/// per-row class posteriors, be refit warm after an edit, and round-trip
/// its fitted state through a [`ModelSnapshot`].
///
/// The `plan` argument of [`fit`](Self::fit) /
/// [`fit_warm`](Self::fit_warm) / [`marginals`](Self::marginals) is the
/// caller's resolved scale-out decision: `Some` hands the backend a
/// prebuilt pattern-deduplicated [`ShardedMatrix`] covering exactly
/// `lambda` (backends exploit it or ignore it); `None` means "walk rows"
/// — backends must not build plans of their own, so the caller stays in
/// charge of when the index is (re)built.
///
/// See the [module docs](self) for the shipped backends and a usage
/// example.
pub trait LabelModel: std::fmt::Debug + Send + Sync {
    /// Stable backend name — the [`ModelRegistry`] key, the tag reported
    /// by the serving layer's `STATS`, and the discriminant of the
    /// snapshot encoding.
    fn backend_name(&self) -> &'static str;

    /// The label scheme this model scores votes under.
    fn scheme(&self) -> LabelScheme;

    /// Number of LF columns the model covers.
    fn num_lfs(&self) -> usize;

    /// Fit to a label matrix from scratch.
    fn fit(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) -> FitReport;

    /// Refit after an edit, warm-starting from `prev` (a model of the
    /// same backend fitted to the pre-edit matrix) where the backend
    /// supports it. `changed_cols` lists the columns whose LF was
    /// edited. Backends that cannot reuse `prev` — including every
    /// backend handed a `prev` of a *different* backend — fall back to a
    /// cold [`fit`](Self::fit); the returned
    /// [`FitReport::warm_started`] says which path ran.
    fn fit_warm(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
        prev: &dyn LabelModel,
        changed_cols: &[usize],
    ) -> FitReport;

    /// Refit from externally maintained running sufficient statistics,
    /// with **no pass over Λ** — the streaming-ingest hook. A caller
    /// folding each ingested batch into a [`MomentStats`] refits in
    /// `O(num_lfs³)` regardless of how many rows have streamed in.
    /// Backends whose fit cannot be expressed over these statistics
    /// (the exact generative model needs Λ for its EM pass; majority
    /// vote has nothing to fit) return `None`, and the caller falls
    /// back to a full [`fit`](Self::fit).
    fn fit_online(&mut self, _stats: &MomentStats, _cfg: &TrainConfig) -> Option<FitReport> {
        None
    }

    /// Whether this backend profits from a pattern-deduplicated plan at
    /// all. One-shot callers (the batch pipeline) skip the plan build
    /// entirely when it returns `false` — the majority-vote backend's
    /// whole labeling pass is one `O(nnz)` walk, so an index build would
    /// cost more than it saves. Callers that maintain a plan anyway
    /// (the incremental session keeps it alive across refreshes) may
    /// still pass one; backends must accept it either way.
    fn benefits_from_plan(&self) -> bool {
        true
    }

    /// Posterior class distribution for one row of votes.
    fn posterior(&self, cols: &[u32], votes: &[Vote]) -> Vec<f64>;

    /// Write the posterior for one row of votes into a caller-owned
    /// slice of exactly `scheme().num_classes()` elements — the
    /// allocation-free form of [`posterior`](Self::posterior) used by
    /// the serving read path, which owns one flat probability arena per
    /// worker instead of a `Vec` per request.
    ///
    /// The contract is bitwise: for any input, the values written here
    /// are bit-identical to what `posterior` returns. Backends on this
    /// crate override it with a zero-allocation body performing the
    /// same float-op sequence; the default goes through `posterior`
    /// (correct, but allocating — fine for backends off the hot path).
    ///
    /// Panics if `out.len() != scheme().num_classes()`.
    fn posterior_into(&self, cols: &[u32], votes: &[Vote], out: &mut [f64]) {
        let p = self.posterior(cols, votes);
        assert_eq!(
            out.len(),
            p.len(),
            "posterior_into needs a slice of num_classes elements"
        );
        out.copy_from_slice(&p);
    }

    /// Posterior class distributions for every row of `lambda`
    /// (`labels[row][class]`), through the plan when one is supplied.
    fn marginals(&self, lambda: &LabelMatrix, plan: Option<&ShardedMatrix>) -> Vec<Vec<f64>>;

    /// Hard predictions: the MAP class as a vote value; 0 when the
    /// posterior is tied over its top classes (no evidence).
    fn predicted_labels(&self, lambda: &LabelMatrix) -> Vec<Vote> {
        let scheme = self.scheme();
        self.marginals(lambda, None)
            .into_iter()
            .map(|post| map_vote(scheme, &post))
            .collect()
    }

    /// An *unfitted* model over `col_map.len()` columns carrying over
    /// whatever per-column state survives a structural suite edit:
    /// `col_map[j] = Some(old_j)` maps new column `j` to the previous
    /// model's column `old_j`. The result is the `prev` for a
    /// [`fit_warm`](Self::fit_warm) after adding/removing LFs. Backends
    /// with no per-column state return a fresh model.
    fn remapped(&self, col_map: &[Option<usize>]) -> Box<dyn LabelModel>;

    /// Export the fitted state as a tagged, backend-identified snapshot
    /// (the stable encoding surface for `snorkel-serve`).
    /// [`ModelSnapshot::restore`] is the inverse.
    fn to_snapshot(&self) -> ModelSnapshot;

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn LabelModel>;

    /// The concrete value, for downcasts (see `dyn LabelModel`'s
    /// `downcast_ref`).
    fn as_any(&self) -> &dyn Any;
}

impl Clone for Box<dyn LabelModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl dyn LabelModel {
    /// Downcast to a concrete backend type (e.g. to read
    /// [`GenerativeModel::implied_accuracies`] off a fitted pipeline
    /// model).
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref::<T>()
    }
}

/// MAP vote of one posterior row: the unique argmax class's vote value,
/// 0 on a tie over the top classes.
fn map_vote(scheme: LabelScheme, post: &[f64]) -> Vote {
    let best = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let winners: Vec<usize> = (0..post.len())
        .filter(|&c| (post[c] - best).abs() < 1e-12)
        .collect();
    if winners.len() == 1 {
        scheme.vote_of_class(winners[0])
    } else {
        0
    }
}

/// Compute per-row posteriors, once per unique pattern when a plan is
/// supplied (scattering each pattern's posterior back to its rows in
/// shard order), row by row otherwise. The posterior of a row is a pure
/// function of its vote signature for every backend, so both paths are
/// bit-identical.
fn marginals_via<F>(
    lambda: &LabelMatrix,
    plan: Option<&ShardedMatrix>,
    posterior: F,
) -> Vec<Vec<f64>>
where
    F: Fn(&[u32], &[Vote]) -> Vec<f64> + Sync,
{
    match plan {
        None => (0..lambda.num_points())
            .map(|i| {
                let (cols, votes) = lambda.row(i);
                posterior(cols, votes)
            })
            .collect(),
        Some(plan) => {
            let per_shard: Vec<Vec<Vec<f64>>> = plan.map_shards(|idx| {
                let mut posts = vec![Vec::new(); idx.num_slots()];
                for (p, cols, votes, _) in idx.live_patterns() {
                    posts[p] = posterior(cols, votes);
                }
                posts
            });
            let mut out = vec![Vec::new(); lambda.num_points()];
            for (idx, posts) in plan.shards().iter().zip(&per_shard) {
                for row in idx.row_range() {
                    out[row] = posts[idx.pattern_of_row(row)].clone();
                }
            }
            out
        }
    }
}

// ----------------------------------------------------------------------
// Majority-vote backend
// ----------------------------------------------------------------------

/// The unweighted majority vote as a first-class backend: `fit` is free,
/// the posterior is one-hot on the plurality class and uniform on ties
/// and all-abstain rows — exactly the labels the pipeline's old MV
/// special case produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MajorityVoteModel {
    scheme: LabelScheme,
    n: usize,
}

impl MajorityVoteModel {
    /// A majority-vote backend over `n` LFs.
    pub fn new(n: usize, scheme: LabelScheme) -> Self {
        MajorityVoteModel { scheme, n }
    }
}

impl LabelModel for MajorityVoteModel {
    fn backend_name(&self) -> &'static str {
        BACKEND_MAJORITY_VOTE
    }

    fn benefits_from_plan(&self) -> bool {
        // Labeling is a single O(nnz) pass; building an index to dedup
        // it costs more than the pass itself.
        false
    }

    fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    fn num_lfs(&self) -> usize {
        self.n
    }

    fn fit(
        &mut self,
        lambda: &LabelMatrix,
        _plan: Option<&ShardedMatrix>,
        _cfg: &TrainConfig,
    ) -> FitReport {
        assert_eq!(
            lambda.num_lfs(),
            self.n,
            "matrix has {} LFs but model has {}",
            lambda.num_lfs(),
            self.n
        );
        FitReport {
            epochs: 0,
            final_nll: f64::NAN,
            used_gibbs: false,
            warm_started: false,
        }
    }

    fn fit_warm(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
        _prev: &dyn LabelModel,
        _changed_cols: &[usize],
    ) -> FitReport {
        // Nothing to warm-start: the fit is already free.
        self.fit(lambda, plan, cfg)
    }

    fn posterior(&self, _cols: &[u32], votes: &[Vote]) -> Vec<f64> {
        let k = self.scheme.num_classes();
        let mut tally = vec![0usize; k];
        for &v in votes {
            if let Some(c) = self.scheme.class_of_vote(v) {
                tally[c] += 1;
            }
        }
        let best = tally.iter().copied().max().unwrap_or(0);
        let winner_count = tally.iter().filter(|&&t| t == best).count();
        let mut p = vec![0.0; k];
        if best == 0 || winner_count > 1 {
            p.iter_mut().for_each(|x| *x = 1.0 / k as f64);
        } else {
            let winner = tally.iter().position(|&t| t == best).expect("best exists");
            p[winner] = 1.0;
        }
        p
    }

    fn posterior_into(&self, _cols: &[u32], votes: &[Vote], out: &mut [f64]) {
        let k = self.scheme.num_classes();
        assert_eq!(out.len(), k, "posterior_into needs {k} elements");
        // Tally into the output slice itself (counts are exact in f64),
        // so no scratch vector is needed. The written probabilities are
        // the same literals `posterior` produces: 0.0 / 1.0 / 1.0 ÷ k.
        out.fill(0.0);
        for &v in votes {
            if let Some(c) = self.scheme.class_of_vote(v) {
                out[c] += 1.0;
            }
        }
        let best = out.iter().copied().fold(0.0f64, f64::max);
        let winner_count = out.iter().filter(|&&t| t == best).count();
        if best == 0.0 || winner_count > 1 {
            out.fill(1.0 / k as f64);
        } else {
            let winner = out.iter().position(|&t| t == best).expect("best exists");
            out.fill(0.0);
            out[winner] = 1.0;
        }
    }

    fn marginals(&self, lambda: &LabelMatrix, plan: Option<&ShardedMatrix>) -> Vec<Vec<f64>> {
        marginals_via(lambda, plan, |cols, votes| self.posterior(cols, votes))
    }

    fn remapped(&self, col_map: &[Option<usize>]) -> Box<dyn LabelModel> {
        Box::new(MajorityVoteModel::new(col_map.len(), self.scheme))
    }

    fn to_snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::MajorityVote {
            cardinality: self.scheme.cardinality(),
            num_lfs: self.n,
        }
    }

    fn clone_box(&self) -> Box<dyn LabelModel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ----------------------------------------------------------------------
// Generative backend (trait impl over the concrete model)
// ----------------------------------------------------------------------

impl LabelModel for GenerativeModel {
    fn backend_name(&self) -> &'static str {
        BACKEND_GENERATIVE
    }

    fn scheme(&self) -> LabelScheme {
        GenerativeModel::scheme(self)
    }

    fn num_lfs(&self) -> usize {
        GenerativeModel::num_lfs(self)
    }

    fn fit(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) -> FitReport {
        match plan {
            Some(p) => self.fit_with(lambda, p, cfg),
            // No plan from the caller: honor cfg.scaleout as before (the
            // concrete fit resolves it; callers that pinned RowWise get
            // the row-wise pass).
            None => GenerativeModel::fit(self, lambda, cfg),
        }
    }

    fn fit_warm(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
        prev: &dyn LabelModel,
        changed_cols: &[usize],
    ) -> FitReport {
        match prev.as_any().downcast_ref::<GenerativeModel>() {
            Some(p)
                if GenerativeModel::num_lfs(p) == GenerativeModel::num_lfs(self)
                    && GenerativeModel::scheme(p) == GenerativeModel::scheme(self) =>
            {
                match plan {
                    Some(pl) => self.fit_warm_with(lambda, pl, cfg, p, changed_cols),
                    None => GenerativeModel::fit_warm(self, lambda, cfg, p, changed_cols),
                }
            }
            // Different backend or incompatible shape: cold fit.
            _ => LabelModel::fit(self, lambda, plan, cfg),
        }
    }

    fn posterior(&self, cols: &[u32], votes: &[Vote]) -> Vec<f64> {
        GenerativeModel::posterior(self, cols, votes)
    }

    fn posterior_into(&self, cols: &[u32], votes: &[Vote], out: &mut [f64]) {
        GenerativeModel::posterior_into(self, cols, votes, out)
    }

    fn marginals(&self, lambda: &LabelMatrix, plan: Option<&ShardedMatrix>) -> Vec<Vec<f64>> {
        match plan {
            Some(p) => self.marginals_with(lambda, p),
            None => self.marginals_rowwise(lambda),
        }
    }

    fn predicted_labels(&self, lambda: &LabelMatrix) -> Vec<Vote> {
        GenerativeModel::predicted_labels(self, lambda)
    }

    fn remapped(&self, col_map: &[Option<usize>]) -> Box<dyn LabelModel> {
        Box::new(GenerativeModel::remapped_from(self, col_map))
    }

    fn to_snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::Generative(self.to_params())
    }

    fn clone_box(&self) -> Box<dyn LabelModel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ----------------------------------------------------------------------
// Method-of-moments backend
// ----------------------------------------------------------------------

/// Closed-form method-of-moments accuracy estimator (module docs have
/// the identity). The fitted state is held as a [`GenerativeModel`] with
/// moment-estimated weights and no correlation factors, so inference —
/// posteriors, pattern-deduplicated marginals — reuses the exact
/// backend's battle-tested paths; only *fitting* differs: one
/// statistics pass and an `O(n³)` triplet solve replace the EM/Newton
/// loop.
#[derive(Clone, Debug)]
pub struct MomentModel {
    inner: GenerativeModel,
}

/// Minimum weighted co-vote count for a pair's agreement rate to enter
/// the triplet solve — below this the rate is sampling noise.
const MIN_PAIR_OBS: f64 = 8.0;

/// Minimum |e_ab| for a pair to serve as a triplet denominator.
const MIN_DENOM: f64 = 1e-4;

impl MomentModel {
    /// An unfitted moment backend over `n` LFs.
    pub fn new(n: usize, scheme: LabelScheme) -> Self {
        MomentModel {
            inner: GenerativeModel::new(n, scheme),
        }
    }

    /// Rebuild from exported parameters (the [`ModelSnapshot`] path).
    pub fn from_params(params: ModelParams) -> Result<MomentModel, ParamsError> {
        Ok(MomentModel {
            inner: GenerativeModel::from_params(params)?,
        })
    }

    /// Export the fitted parameters (correlation arrays always empty).
    pub fn to_params(&self) -> ModelParams {
        self.inner.to_params()
    }

    /// Implied LF accuracies (same transform as the exact backend).
    pub fn implied_accuracies(&self) -> Vec<f64> {
        self.inner.implied_accuracies()
    }

    /// The moment-estimated accuracy weights (log-odds scale).
    pub fn accuracy_weights(&self) -> &[f64] {
        self.inner.accuracy_weights()
    }

    /// One statistics pass + closed-form solve. See the module docs for
    /// the estimator; this is the whole training loop.
    fn fit_closed_form(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) {
        let scheme = GenerativeModel::scheme(&self.inner);
        let n = GenerativeModel::num_lfs(&self.inner);
        let m = lambda.num_points();

        // ---- The single pass: per-LF and pairwise sufficient stats.
        let stats = match plan {
            Some(plan) => {
                let partials = plan.map_shards(|idx| {
                    let mut s = MomentStats::new(n, scheme);
                    for (_, cols, votes, cnt) in idx.live_patterns() {
                        s.accumulate(cols, votes, cnt as f64);
                    }
                    s
                });
                let mut total = MomentStats::new(n, scheme);
                for p in &partials {
                    total.merge(p);
                }
                total
            }
            None => {
                let mut s = MomentStats::new(n, scheme);
                for i in 0..m {
                    let (cols, votes) = lambda.row(i);
                    s.accumulate(cols, votes, 1.0);
                }
                s
            }
        };

        self.solve_from_stats(&stats, cfg);
    }

    /// The closed-form solve over already-accumulated sufficient
    /// statistics: `O(n³)` triplet medians, no pass over Λ. This is the
    /// online fast path — a caller maintaining a running [`MomentStats`]
    /// across ingested batches refits in time independent of the row
    /// count. Identical arithmetic to the batch path:
    /// [`fit`](LabelModel::fit) is exactly "accumulate, then this".
    fn solve_from_stats(&mut self, stats: &MomentStats, cfg: &TrainConfig) {
        let scheme = stats.scheme();
        let n = stats.num_lfs();
        assert_eq!(
            n,
            GenerativeModel::num_lfs(&self.inner),
            "stats cover {n} LFs but model has {}",
            GenerativeModel::num_lfs(&self.inner)
        );
        assert_eq!(
            scheme,
            GenerativeModel::scheme(&self.inner),
            "stats scheme disagrees with the model's"
        );
        let k = scheme.num_classes();
        let kf = k as f64;
        let k1 = kf - 1.0;
        // Weighted row count: exact (integer-valued) for both the batch
        // pass and the running online totals, so `m` here equals
        // `lambda.num_points()` on the batch path bit-for-bit.
        let m = stats.rows();

        // ---- Pairwise agreement signal e_jl = (K·p_jl − 1)/(K−1).
        let e = |j: usize, l: usize| -> Option<f64> {
            let (a, b) = (j.min(l), j.max(l));
            let both = stats.both[a * n + b];
            if both < MIN_PAIR_OBS {
                return None;
            }
            Some((kf * (stats.agree[a * n + b] / both) - 1.0) / k1)
        };

        // ---- Per-LF accuracy from triplets (median over all valid
        // (a, b) partners), with MV-agreement fallback and sign.
        let (alpha_agree, alpha_dis, _) = prior_pseudocounts(cfg.init_acc_weight, k1);
        let prior_strength = alpha_agree + alpha_dis;
        let prior_acc = alpha_agree / prior_strength;
        let mut w_acc = vec![0.0f64; n];
        let mut w_lab = vec![0.0f64; n];
        let mut estimates: Vec<f64> = Vec::new();
        for j in 0..n {
            estimates.clear();
            for a in 0..n {
                if a == j {
                    continue;
                }
                let Some(e_ja) = e(j, a) else { continue };
                for b in (a + 1)..n {
                    if b == j {
                        continue;
                    }
                    let (Some(e_jb), Some(e_ab)) = (e(j, b), e(a, b)) else {
                        continue;
                    };
                    if e_ab.abs() < MIN_DENOM {
                        continue;
                    }
                    estimates.push((e_ja * e_jb / e_ab).clamp(0.0, 1.0));
                }
            }
            let u = if estimates.is_empty() {
                // Too few informative partners (n < 3, sparse overlap):
                // fall back to the agreement rate with the plurality
                // vote, shrunk toward the prior.
                let a_mv = (stats.agree_mv[j] + prior_strength * prior_acc)
                    / (stats.total_mv[j] + prior_strength);
                ((kf * a_mv - 1.0) / k1).clamp(0.0, 1.0)
            } else {
                estimates.sort_by(f64::total_cmp);
                estimates[estimates.len() / 2].sqrt()
            };
            // Triplets only pin |u|; the sign comes from which side of
            // chance the LF's agreement with the plurality vote falls.
            // Applied unconditionally — with `clamp_nonadversarial` set,
            // the `w < 0` floor below turns the negative weight into 0,
            // matching the exact backend's clamp semantics (skipping the
            // sign would instead *trust* the adversarial LF at +|u|).
            let adversarial = stats.total_mv[j] >= MIN_PAIR_OBS
                && stats.agree_mv[j] / stats.total_mv[j] < 1.0 / kf;
            let u_signed = if adversarial { -u } else { u };
            // Map back to an accuracy, shrink toward the prior with the
            // same pseudocount mass the exact path uses, and convert to
            // the log-odds weight scale.
            let acc_raw = (1.0 + k1 * u_signed) / kf;
            let acc = ((stats.votes[j] * acc_raw + prior_strength * prior_acc)
                / (stats.votes[j] + prior_strength))
                .clamp(0.02, 0.98);
            let mut w = (acc * k1 / (1.0 - acc)).ln().clamp(-W_CLAMP, W_CLAMP);
            if cfg.clamp_nonadversarial && w < 0.0 {
                w = 0.0;
            }
            w_acc[j] = w;
            // Propensity from observed coverage (same closed form the
            // exact path initializes with).
            let c = ((stats.votes[j] + 0.5) / (m + 1.0)).clamp(1e-4, 1.0 - 1e-4);
            let s = c / (1.0 - c);
            w_lab[j] = (s.ln() - (w_acc[j].exp() + k1).ln()).clamp(-W_CLAMP, W_CLAMP);
        }

        // ---- Class balance per the configured policy (mirrors the
        // exact backend so posteriors are comparable).
        let b_class = match &cfg.class_balance {
            ClassBalance::Uniform => vec![0.0; k],
            ClassBalance::Fixed(p) => {
                assert_eq!(p.len(), k, "class balance needs one entry per class");
                p.iter().map(|&pc| pc.max(1e-3).ln()).collect()
            }
            ClassBalance::FromMajorityVote => {
                let counts: Vec<f64> = stats.mv_class.iter().map(|&c| c + 1.0).collect();
                let total: f64 = counts.iter().sum();
                counts.iter().map(|&c| (c / total).ln()).collect()
            }
        };

        self.inner = GenerativeModel::from_params(ModelParams {
            cardinality: scheme.cardinality(),
            num_lfs: n,
            w_lab,
            w_acc,
            corr_pairs: Vec::new(),
            w_corr: Vec::new(),
            corr_strength: Vec::new(),
            b_class,
        })
        .expect("moment weights are clamped finite by construction");
    }

    /// Refit from running sufficient statistics without touching Λ —
    /// the streaming fast path. Produces bit-identical weights to a
    /// cold [`fit`](LabelModel::fit) over the matrix whose rows were
    /// accumulated into `stats` (same arithmetic, same order for
    /// integer-weighted counts), in time independent of the row count.
    ///
    /// Panics if the statistics' shape or scheme disagree with the
    /// model's. Statistics over zero rows leave the model unfitted
    /// (mirroring the empty-matrix `fit` no-op).
    pub fn fit_from_stats(&mut self, stats: &MomentStats, cfg: &TrainConfig) -> FitReport {
        if stats.rows() == 0.0 {
            return FitReport {
                epochs: 0,
                final_nll: 0.0,
                used_gibbs: false,
                warm_started: false,
            };
        }
        self.solve_from_stats(stats, cfg);
        FitReport {
            epochs: 1,
            final_nll: f64::NAN,
            used_gibbs: false,
            warm_started: true,
        }
    }
}

/// Sufficient statistics of the moment backend: per-LF vote counts,
/// plurality-agreement counts, and the pairwise co-vote/agreement upper
/// triangle. One `accumulate` call folds one row in; `merge` adds two
/// accumulator sets; the counts are plain weighted sums, so the order
/// of integer-weighted accumulation never changes the totals
/// (bit-exactly — f64 addition of integers below 2⁵³ is exact).
///
/// This is the streaming primitive behind the online moment model: a
/// caller keeps one `MomentStats` alive, folds each ingested batch's
/// rows in as they arrive, and refits via
/// [`MomentModel::fit_from_stats`] without ever re-reading Λ. The
/// invariant that running totals equal a single batch recompute over
/// the same rows is property-tested in `crates/stream`.
#[derive(Clone, Debug)]
pub struct MomentStats {
    n: usize,
    scheme: LabelScheme,
    /// Weighted row count (the `m` of the closed-form solve).
    rows: f64,
    /// Per-LF weighted vote counts.
    votes: Vec<f64>,
    /// Per-class plurality-vote counts (class-balance estimate).
    mv_class: Vec<f64>,
    /// Per-LF agreements with the row's plurality class.
    agree_mv: Vec<f64>,
    /// Per-LF votes on rows that have a plurality class.
    total_mv: Vec<f64>,
    /// Upper-triangle co-vote counts, flattened `a * n + b` with `a < b`.
    both: Vec<f64>,
    /// Upper-triangle same-class co-vote counts.
    agree: Vec<f64>,
    /// Per-row scratch (class tally), reused across `accumulate` calls —
    /// the statistics pass runs once per row at deployment scale, so it
    /// must not allocate per row.
    tally: Vec<usize>,
    /// Per-row scratch: the row's `(lf, class)` voters.
    classes: Vec<(usize, usize)>,
}

/// The plain-data image of a [`MomentStats`] — what `snorkel-serve`
/// persists in the snapshot's `STRM` section. Scratch buffers are not
/// carried; [`MomentStats::from_parts`] rebuilds them.
#[derive(Clone, Debug, PartialEq)]
pub struct MomentStatsParts {
    /// Number of LF columns the statistics cover.
    pub num_lfs: usize,
    /// Task cardinality.
    pub cardinality: u8,
    /// Weighted row count.
    pub rows: f64,
    /// Per-LF weighted vote counts (`num_lfs` entries).
    pub votes: Vec<f64>,
    /// Per-class plurality-vote counts (`cardinality` entries).
    pub mv_class: Vec<f64>,
    /// Per-LF plurality-agreement counts (`num_lfs` entries).
    pub agree_mv: Vec<f64>,
    /// Per-LF plurality-covered vote counts (`num_lfs` entries).
    pub total_mv: Vec<f64>,
    /// Upper-triangle co-vote counts (`num_lfs²` entries).
    pub both: Vec<f64>,
    /// Upper-triangle same-class co-vote counts (`num_lfs²` entries).
    pub agree: Vec<f64>,
}

impl MomentStats {
    /// Empty accumulators over `n` LFs under `scheme`.
    pub fn new(n: usize, scheme: LabelScheme) -> Self {
        let k = scheme.num_classes();
        MomentStats {
            n,
            scheme,
            rows: 0.0,
            votes: vec![0.0; n],
            mv_class: vec![0.0; k],
            agree_mv: vec![0.0; n],
            total_mv: vec![0.0; n],
            both: vec![0.0; n * n],
            agree: vec![0.0; n * n],
            tally: vec![0; k],
            classes: Vec::new(),
        }
    }

    /// Number of LF columns the statistics cover.
    pub fn num_lfs(&self) -> usize {
        self.n
    }

    /// The label scheme the statistics were accumulated under.
    pub fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    /// Weighted row count folded in so far.
    pub fn rows(&self) -> f64 {
        self.rows
    }

    /// Per-LF weighted vote counts (coverage numerators).
    pub fn vote_counts(&self) -> &[f64] {
        &self.votes
    }

    /// Accumulate every row of `lambda` (the batch recompute the online
    /// path is property-tested against).
    pub fn accumulate_matrix(&mut self, lambda: &LabelMatrix) {
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            self.accumulate(cols, votes, 1.0);
        }
    }

    /// Fold one row (or one pattern with multiplicity `w`) in.
    pub fn accumulate(&mut self, cols: &[u32], votes: &[Vote], w: f64) {
        let scheme = self.scheme;
        self.rows += w;
        let mut tally = std::mem::take(&mut self.tally);
        let mut classes = std::mem::take(&mut self.classes);
        tally.iter_mut().for_each(|t| *t = 0);
        classes.clear();
        for (&c, &v) in cols.iter().zip(votes) {
            let j = c as usize;
            self.votes[j] += w;
            if let Some(class) = scheme.class_of_vote(v) {
                tally[class] += 1;
                classes.push((j, class));
            }
        }
        // Plurality class of the row (None on ties / all-abstain).
        let best = tally.iter().copied().max().unwrap_or(0);
        let mv = if best == 0 {
            None
        } else {
            let mut winner = None;
            for (c, &t) in tally.iter().enumerate() {
                if t == best {
                    if winner.is_some() {
                        winner = None;
                        break;
                    }
                    winner = Some(c);
                }
            }
            winner
        };
        if let Some(mv) = mv {
            self.mv_class[mv] += w;
            for &(j, class) in &classes {
                self.total_mv[j] += w;
                if class == mv {
                    self.agree_mv[j] += w;
                }
            }
        }
        // Pairwise agreement among the row's voters. Row columns are
        // sorted ascending, so `j < l` holds and the upper triangle
        // suffices.
        for (x, &(j, cj)) in classes.iter().enumerate() {
            for &(l, cl) in classes.iter().skip(x + 1) {
                self.both[j * self.n + l] += w;
                if cj == cl {
                    self.agree[j * self.n + l] += w;
                }
            }
        }
        self.tally = tally;
        self.classes = classes;
    }

    /// Add another pass's accumulators (shard merge, in shard order).
    pub fn merge(&mut self, other: &MomentStats) {
        assert_eq!(self.n, other.n, "merging stats over different LF counts");
        assert_eq!(
            self.scheme, other.scheme,
            "merging stats under different schemes"
        );
        self.rows += other.rows;
        for (dst, src) in [
            (&mut self.votes, &other.votes),
            (&mut self.mv_class, &other.mv_class),
            (&mut self.agree_mv, &other.agree_mv),
            (&mut self.total_mv, &other.total_mv),
            (&mut self.both, &other.both),
            (&mut self.agree, &other.agree),
        ] {
            for (a, b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        }
    }

    /// Export the accumulated counts as plain data (the snapshot
    /// encoding surface).
    pub fn to_parts(&self) -> MomentStatsParts {
        MomentStatsParts {
            num_lfs: self.n,
            cardinality: self.scheme.cardinality(),
            rows: self.rows,
            votes: self.votes.clone(),
            mv_class: self.mv_class.clone(),
            agree_mv: self.agree_mv.clone(),
            total_mv: self.total_mv.clone(),
            both: self.both.clone(),
            agree: self.agree.clone(),
        }
    }

    /// Rebuild from exported parts, validating every length and value
    /// (snapshot decoders hand this untrusted data). The error string
    /// names the violated invariant.
    pub fn from_parts(parts: MomentStatsParts) -> Result<MomentStats, String> {
        if parts.cardinality < 2 {
            return Err(format!("bad cardinality {}", parts.cardinality));
        }
        let scheme = LabelScheme::from_cardinality(parts.cardinality);
        let n = parts.num_lfs;
        let k = scheme.num_classes();
        for (name, vec, want) in [
            ("votes", &parts.votes, n),
            ("mv_class", &parts.mv_class, k),
            ("agree_mv", &parts.agree_mv, n),
            ("total_mv", &parts.total_mv, n),
            ("both", &parts.both, n * n),
            ("agree", &parts.agree, n * n),
        ] {
            if vec.len() != want {
                return Err(format!("{name} has {} entries, want {want}", vec.len()));
            }
            if let Some(bad) = vec.iter().find(|v| !(v.is_finite() && **v >= 0.0)) {
                return Err(format!("{name} holds a non-count value {bad}"));
            }
        }
        if !(parts.rows.is_finite() && parts.rows >= 0.0) {
            return Err(format!("bad row count {}", parts.rows));
        }
        Ok(MomentStats {
            n,
            scheme,
            rows: parts.rows,
            votes: parts.votes,
            mv_class: parts.mv_class,
            agree_mv: parts.agree_mv,
            total_mv: parts.total_mv,
            both: parts.both,
            agree: parts.agree,
            tally: vec![0; k],
            classes: Vec::new(),
        })
    }
}

impl PartialEq for MomentStats {
    /// Bit-exact equality of the accumulated counts (scratch buffers
    /// excluded) — what the online-equals-batch property asserts.
    fn eq(&self, other: &Self) -> bool {
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        self.n == other.n
            && self.scheme == other.scheme
            && self.rows.to_bits() == other.rows.to_bits()
            && bits(&self.votes) == bits(&other.votes)
            && bits(&self.mv_class) == bits(&other.mv_class)
            && bits(&self.agree_mv) == bits(&other.agree_mv)
            && bits(&self.total_mv) == bits(&other.total_mv)
            && bits(&self.both) == bits(&other.both)
            && bits(&self.agree) == bits(&other.agree)
    }
}

impl LabelModel for MomentModel {
    fn backend_name(&self) -> &'static str {
        BACKEND_MOMENT
    }

    fn scheme(&self) -> LabelScheme {
        GenerativeModel::scheme(&self.inner)
    }

    fn num_lfs(&self) -> usize {
        GenerativeModel::num_lfs(&self.inner)
    }

    fn fit(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) -> FitReport {
        assert_eq!(
            lambda.num_lfs(),
            LabelModel::num_lfs(self),
            "matrix has {} LFs but model has {}",
            lambda.num_lfs(),
            LabelModel::num_lfs(self)
        );
        if lambda.num_points() == 0 {
            return FitReport {
                epochs: 0,
                final_nll: 0.0,
                used_gibbs: false,
                warm_started: false,
            };
        }
        self.fit_closed_form(lambda, plan, cfg);
        FitReport {
            epochs: 1,
            final_nll: f64::NAN,
            used_gibbs: false,
            warm_started: false,
        }
    }

    fn fit_warm(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
        _prev: &dyn LabelModel,
        _changed_cols: &[usize],
    ) -> FitReport {
        // The closed form has no iteration to warm-start; a refit is
        // already a single pass.
        LabelModel::fit(self, lambda, plan, cfg)
    }

    fn fit_online(&mut self, stats: &MomentStats, cfg: &TrainConfig) -> Option<FitReport> {
        Some(self.fit_from_stats(stats, cfg))
    }

    fn posterior(&self, cols: &[u32], votes: &[Vote]) -> Vec<f64> {
        self.inner.posterior(cols, votes)
    }

    fn posterior_into(&self, cols: &[u32], votes: &[Vote], out: &mut [f64]) {
        self.inner.posterior_into(cols, votes, out)
    }

    fn marginals(&self, lambda: &LabelMatrix, plan: Option<&ShardedMatrix>) -> Vec<Vec<f64>> {
        LabelModel::marginals(&self.inner, lambda, plan)
    }

    fn remapped(&self, col_map: &[Option<usize>]) -> Box<dyn LabelModel> {
        Box::new(MomentModel::new(
            col_map.len(),
            GenerativeModel::scheme(&self.inner),
        ))
    }

    fn to_snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::MomentMatching(self.to_params())
    }

    fn clone_box(&self) -> Box<dyn LabelModel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ----------------------------------------------------------------------
// Snapshot encoding
// ----------------------------------------------------------------------

/// A backend-tagged, plain-data image of a fitted label model — what
/// [`LabelModel::to_snapshot`] produces and `snorkel-serve` persists.
/// The tag survives serialization, so a restored service rebuilds the
/// *same backend* it was running, and an unknown tag is a decode error,
/// never a misread.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelSnapshot {
    /// [`MajorityVoteModel`] — no learned state beyond the shape.
    MajorityVote {
        /// Task cardinality.
        cardinality: u8,
        /// Number of LF columns.
        num_lfs: usize,
    },
    /// [`GenerativeModel`] weights + correlation structure.
    Generative(ModelParams),
    /// [`MomentModel`] weights (correlation arrays always empty).
    MomentMatching(ModelParams),
}

impl ModelSnapshot {
    /// The backend this snapshot restores into.
    pub fn backend_name(&self) -> &'static str {
        match self {
            ModelSnapshot::MajorityVote { .. } => BACKEND_MAJORITY_VOTE,
            ModelSnapshot::Generative(_) => BACKEND_GENERATIVE,
            ModelSnapshot::MomentMatching(_) => BACKEND_MOMENT,
        }
    }

    /// Task cardinality of the encoded model.
    pub fn cardinality(&self) -> u8 {
        match self {
            ModelSnapshot::MajorityVote { cardinality, .. } => *cardinality,
            ModelSnapshot::Generative(p) | ModelSnapshot::MomentMatching(p) => p.cardinality,
        }
    }

    /// Number of LF columns the encoded model covers.
    pub fn num_lfs(&self) -> usize {
        match self {
            ModelSnapshot::MajorityVote { num_lfs, .. } => *num_lfs,
            ModelSnapshot::Generative(p) | ModelSnapshot::MomentMatching(p) => p.num_lfs,
        }
    }

    /// Check the encoded state's structural invariants without
    /// restoring (what snapshot decoders run on untrusted bytes).
    pub fn validate(&self) -> Result<(), ParamsError> {
        match self {
            ModelSnapshot::MajorityVote { cardinality, .. } => {
                if *cardinality < 2 {
                    return Err(ParamsError::BadCardinality {
                        found: *cardinality,
                    });
                }
                Ok(())
            }
            ModelSnapshot::Generative(p) | ModelSnapshot::MomentMatching(p) => p.validate(),
        }
    }

    /// Rebuild the backend this snapshot encodes (the inverse of
    /// [`LabelModel::to_snapshot`]). Corrupt parameters yield a typed
    /// [`ParamsError`], never a panic.
    pub fn restore(self) -> Result<Box<dyn LabelModel>, ParamsError> {
        match self {
            ModelSnapshot::MajorityVote {
                cardinality,
                num_lfs,
            } => {
                if cardinality < 2 {
                    return Err(ParamsError::BadCardinality { found: cardinality });
                }
                Ok(Box::new(MajorityVoteModel::new(
                    num_lfs,
                    LabelScheme::from_cardinality(cardinality),
                )))
            }
            ModelSnapshot::Generative(p) => Ok(Box::new(GenerativeModel::from_params(p)?)),
            ModelSnapshot::MomentMatching(p) => Ok(Box::new(MomentModel::from_params(p)?)),
        }
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// Constructor signature of a registered backend: shape plus the
/// optimizer's strategy (which carries the correlation structure for the
/// generative backend).
pub type BackendBuilder = fn(usize, LabelScheme, &ModelingStrategy) -> Box<dyn LabelModel>;

/// The set of label-model backends a pipeline or session may build,
/// keyed by backend name. [`crate::optimizer::select_model`] restricts
/// the Algorithm-1 decision to registered backends; forced strategies
/// resolve through the same table, so "force majority vote" and "force
/// the moment backend" are the same mechanism.
#[derive(Clone)]
pub struct ModelRegistry {
    entries: Vec<(&'static str, BackendBuilder)>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("backends", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::standard()
    }
}

/// A strategy named a backend the registry does not hold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The backend name that failed to resolve.
    pub backend: &'static str,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backend {:?} is not registered", self.backend)
    }
}

impl std::error::Error for UnknownBackend {}

impl ModelRegistry {
    /// A registry with no backends (build one up with
    /// [`Self::register`]).
    pub fn empty() -> Self {
        ModelRegistry {
            entries: Vec::new(),
        }
    }

    /// The standard three backends: majority vote, the exact generative
    /// model, and the moment estimator.
    pub fn standard() -> Self {
        let mut r = ModelRegistry::empty();
        r.register(BACKEND_MAJORITY_VOTE, |n, scheme, _| {
            Box::new(MajorityVoteModel::new(n, scheme))
        });
        r.register(BACKEND_GENERATIVE, |n, scheme, strategy| {
            let gm = GenerativeModel::new(n, scheme);
            match strategy {
                ModelingStrategy::GenerativeModel {
                    correlations,
                    strengths,
                    ..
                } => Box::new(gm.with_weighted_correlations(correlations, strengths)),
                _ => Box::new(gm),
            }
        });
        r.register(BACKEND_MOMENT, |n, scheme, _| {
            Box::new(MomentModel::new(n, scheme))
        });
        r
    }

    /// Register (or replace) a backend under `name`.
    pub fn register(&mut self, name: &'static str, build: BackendBuilder) {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = build;
        } else {
            self.entries.push((name, build));
        }
    }

    /// Whether a backend is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| *n == name)
    }

    /// Registered backend names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(n, _)| *n)
    }

    /// Build the (unfitted) backend a strategy selects, over `num_lfs`
    /// LFs at the given cardinality.
    pub fn build(
        &self,
        strategy: &ModelingStrategy,
        num_lfs: usize,
        cardinality: u8,
    ) -> Result<Box<dyn LabelModel>, UnknownBackend> {
        let name = strategy.backend_name();
        let scheme = LabelScheme::from_cardinality(cardinality);
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, build)| build(num_lfs, scheme, strategy))
            .ok_or(UnknownBackend { backend: name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snorkel_matrix::LabelMatrixBuilder;

    fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> (LabelMatrix, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = LabelMatrixBuilder::new(m, accs.len());
        let mut gold = Vec::with_capacity(m);
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < pl {
                    b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
                }
            }
        }
        (b.build(), gold)
    }

    #[test]
    fn majority_vote_backend_matches_vote_module() {
        let (lambda, _) = planted(400, &[0.8, 0.7, 0.6], 0.5, 3);
        let mut mv = MajorityVoteModel::new(3, LabelScheme::Binary);
        mv.fit(&lambda, None, &TrainConfig::default());
        let marg = LabelModel::marginals(&mv, &lambda, None);
        let votes = crate::vote::majority_vote(&lambda);
        for (p, &v) in marg.iter().zip(&votes) {
            match v {
                1 => assert_eq!(p, &vec![1.0, 0.0]),
                -1 => assert_eq!(p, &vec![0.0, 1.0]),
                _ => assert_eq!(p, &vec![0.5, 0.5]),
            }
        }
        // Plan-deduplicated path is bit-identical.
        let plan = ShardedMatrix::build(&lambda, 3);
        assert_eq!(LabelModel::marginals(&mv, &lambda, Some(&plan)), marg);
    }

    #[test]
    fn posterior_into_is_bit_identical_across_backends() {
        let (lambda, _) = planted(600, &[0.85, 0.7, 0.6], 0.5, 19);
        let cfg = TrainConfig::default();
        let mut backends: Vec<Box<dyn LabelModel>> = vec![
            Box::new(MajorityVoteModel::new(3, LabelScheme::Binary)),
            Box::new(GenerativeModel::new(3, LabelScheme::Binary)),
            Box::new(MomentModel::new(3, LabelScheme::Binary)),
        ];
        for model in &mut backends {
            model.fit(&lambda, None, &cfg);
            let k = model.scheme().num_classes();
            let mut out = vec![f64::NAN; k];
            for i in 0..lambda.num_points() {
                let (cols, votes) = lambda.row(i);
                model.posterior_into(cols, votes, &mut out);
                let reference = model.posterior(cols, votes);
                let out_bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
                let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    out_bits,
                    ref_bits,
                    "row {i} on backend {}",
                    model.backend_name()
                );
            }
        }
    }

    #[test]
    fn moment_recovers_planted_accuracies() {
        let accs = [0.9, 0.8, 0.7, 0.6, 0.55];
        let (lambda, _) = planted(8000, &accs, 0.6, 7);
        let mut mm = MomentModel::new(5, LabelScheme::Binary);
        mm.fit(&lambda, None, &TrainConfig::default());
        let implied = mm.implied_accuracies();
        for (j, &a) in accs.iter().enumerate() {
            assert!(
                (implied[j] - a).abs() < 0.08,
                "LF{j}: implied {:.3} vs true {a}",
                implied[j]
            );
        }
        // The closed form is a consistent but noisier estimator than the
        // MLE: demand the ordering only across well-separated LFs
        // (≥ 0.1 true-accuracy gap).
        assert!(implied[0] > implied[2] && implied[2] > implied[4]);
    }

    #[test]
    fn moment_plan_pass_matches_rowwise_pass() {
        let (lambda, _) = planted(3000, &[0.85, 0.75, 0.65, 0.6], 0.5, 11);
        let plan = ShardedMatrix::build(&lambda, 4);
        let cfg = TrainConfig::default();
        let mut rowwise = MomentModel::new(4, LabelScheme::Binary);
        rowwise.fit(&lambda, None, &cfg);
        let mut sharded = MomentModel::new(4, LabelScheme::Binary);
        sharded.fit(&lambda, Some(&plan), &cfg);
        // Integer-weighted statistics merged in shard order: the counts
        // are exactly equal, so the closed-form weights are too.
        for (a, b) in rowwise
            .accuracy_weights()
            .iter()
            .zip(sharded.accuracy_weights())
        {
            assert!((a - b).abs() < 1e-12, "weights diverged: {a} vs {b}");
        }
    }

    #[test]
    fn moment_detects_adversarial_lf() {
        let (lambda, _) = planted(6000, &[0.9, 0.85, 0.2], 0.8, 17);
        let mut mm = MomentModel::new(3, LabelScheme::Binary);
        mm.fit(&lambda, None, &TrainConfig::default());
        assert!(
            mm.accuracy_weights()[2] < 0.0,
            "adversarial LF not detected: {:?}",
            mm.accuracy_weights()
        );
        // With the non-adversarial clamp it floors at exactly zero —
        // the same semantics as the exact backend's clamp (a positive
        // weight here would mean the sign flip was skipped and the
        // adversarial LF is being *trusted*).
        let mut clamped = MomentModel::new(3, LabelScheme::Binary);
        clamped.fit(
            &lambda,
            None,
            &TrainConfig {
                clamp_nonadversarial: true,
                ..TrainConfig::default()
            },
        );
        assert_eq!(clamped.accuracy_weights()[2], 0.0);
        assert!(clamped.accuracy_weights()[0] > 0.0);
    }

    #[test]
    fn moment_multiclass_recovery() {
        let k = 3u8;
        let scheme = LabelScheme::MultiClass(k);
        let mut rng = StdRng::seed_from_u64(21);
        let m = 9000;
        let accs = [0.85, 0.7, 0.55, 0.8, 0.65];
        let mut b = LabelMatrixBuilder::with_cardinality(m, accs.len(), k);
        for i in 0..m {
            let y = rng.gen_range(0..k as usize);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < 0.7 {
                    let class = if rng.gen::<f64>() < acc {
                        y
                    } else {
                        let mut c = rng.gen_range(0..(k as usize - 1));
                        if c >= y {
                            c += 1;
                        }
                        c
                    };
                    b.set(i, j, scheme.vote_of_class(class));
                }
            }
        }
        let lambda = b.build();
        let mut mm = MomentModel::new(accs.len(), scheme);
        mm.fit(&lambda, None, &TrainConfig::default());
        let implied = mm.implied_accuracies();
        for (j, &a) in accs.iter().enumerate() {
            assert!(
                (implied[j] - a).abs() < 0.1,
                "LF{j}: implied {:.3} vs true {a}",
                implied[j]
            );
        }
    }

    #[test]
    fn online_stats_solve_matches_cold_fit_bitwise() {
        let (lambda, _) = planted(4000, &[0.85, 0.75, 0.65, 0.6], 0.5, 23);
        let cfg = TrainConfig::default();
        let mut cold = MomentModel::new(4, LabelScheme::Binary);
        cold.fit(&lambda, None, &cfg);
        // The same rows folded into a running accumulator, then the
        // stats-only solve: weights must match the cold fit bit for bit.
        let mut stats = MomentStats::new(4, LabelScheme::Binary);
        stats.accumulate_matrix(&lambda);
        assert_eq!(stats.rows(), lambda.num_points() as f64);
        let mut online = MomentModel::new(4, LabelScheme::Binary);
        let report = online.fit_from_stats(&stats, &cfg);
        assert_eq!(report.epochs, 1);
        assert!(report.warm_started);
        for (a, b) in cold
            .accuracy_weights()
            .iter()
            .zip(online.accuracy_weights())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "weights diverged: {a} vs {b}");
        }
        // Through the trait hook, and through merged partial stats.
        let mid = lambda.num_points() / 2;
        let mut first = MomentStats::new(4, LabelScheme::Binary);
        let mut second = MomentStats::new(4, LabelScheme::Binary);
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            if i < mid { &mut first } else { &mut second }.accumulate(cols, votes, 1.0);
        }
        first.merge(&second);
        assert_eq!(first, stats);
        let mut hooked: Box<dyn LabelModel> = Box::new(MomentModel::new(4, LabelScheme::Binary));
        assert!(hooked.fit_online(&first, &cfg).is_some());
        // Backends without an online form decline through the hook.
        let mut mv: Box<dyn LabelModel> = Box::new(MajorityVoteModel::new(4, LabelScheme::Binary));
        assert!(mv.fit_online(&first, &cfg).is_none());
        let mut gm: Box<dyn LabelModel> = Box::new(GenerativeModel::new(4, LabelScheme::Binary));
        assert!(gm.fit_online(&first, &cfg).is_none());
    }

    #[test]
    fn moment_stats_parts_round_trip_and_reject_corruption() {
        let (lambda, _) = planted(500, &[0.8, 0.7, 0.6], 0.5, 29);
        let mut stats = MomentStats::new(3, LabelScheme::Binary);
        stats.accumulate_matrix(&lambda);
        let parts = stats.to_parts();
        let restored = MomentStats::from_parts(parts.clone()).unwrap();
        assert_eq!(restored, stats);

        let mut bad = parts.clone();
        bad.votes.pop();
        assert!(MomentStats::from_parts(bad).is_err());
        let mut bad = parts.clone();
        bad.agree[0] = f64::NAN;
        assert!(MomentStats::from_parts(bad).is_err());
        let mut bad = parts.clone();
        bad.both[0] = -1.0;
        assert!(MomentStats::from_parts(bad).is_err());
        let mut bad = parts;
        bad.cardinality = 1;
        assert!(MomentStats::from_parts(bad).is_err());
    }

    #[test]
    fn moment_few_lfs_falls_back_gracefully() {
        // Two LFs: no triplets exist; the MV-agreement fallback must
        // still produce a usable (finite, ordered) model.
        let (lambda, _) = planted(2000, &[0.9, 0.6], 0.7, 5);
        let mut mm = MomentModel::new(2, LabelScheme::Binary);
        mm.fit(&lambda, None, &TrainConfig::default());
        assert!(mm.accuracy_weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn empty_matrix_fit_is_noop() {
        let lambda = LabelMatrixBuilder::new(0, 3).build();
        let mut mm = MomentModel::new(3, LabelScheme::Binary);
        let report = mm.fit(&lambda, None, &TrainConfig::default());
        assert_eq!(report.epochs, 0);
        let mut mv = MajorityVoteModel::new(3, LabelScheme::Binary);
        assert_eq!(mv.fit(&lambda, None, &TrainConfig::default()).epochs, 0);
    }

    #[test]
    fn snapshots_round_trip_every_backend() {
        let (lambda, _) = planted(1000, &[0.85, 0.7, 0.6], 0.5, 9);
        let cfg = TrainConfig::default();
        let backends: Vec<Box<dyn LabelModel>> = vec![
            Box::new(MajorityVoteModel::new(3, LabelScheme::Binary)),
            Box::new(GenerativeModel::new(3, LabelScheme::Binary)),
            Box::new(MomentModel::new(3, LabelScheme::Binary)),
        ];
        for mut model in backends {
            model.fit(&lambda, None, &cfg);
            let snap = model.to_snapshot();
            assert_eq!(snap.backend_name(), model.backend_name());
            assert!(snap.validate().is_ok());
            let restored = snap.restore().unwrap();
            assert_eq!(restored.backend_name(), model.backend_name());
            assert_eq!(
                restored.marginals(&lambda, None),
                model.marginals(&lambda, None),
                "{} marginals changed across the snapshot round trip",
                model.backend_name()
            );
        }
    }

    #[test]
    fn snapshot_restore_rejects_corruption() {
        assert_eq!(
            ModelSnapshot::MajorityVote {
                cardinality: 1,
                num_lfs: 3
            }
            .restore()
            .unwrap_err(),
            ParamsError::BadCardinality { found: 1 }
        );
        let mut params = GenerativeModel::new(3, LabelScheme::Binary).to_params();
        params.w_acc.pop();
        assert!(matches!(
            ModelSnapshot::Generative(params.clone()).restore(),
            Err(ParamsError::LengthMismatch { field: "w_acc", .. })
        ));
        assert!(ModelSnapshot::MomentMatching(params).restore().is_err());
    }

    #[test]
    fn warm_start_across_backends_falls_back_to_cold() {
        let (lambda, _) = planted(1500, &[0.85, 0.75, 0.65], 0.5, 13);
        let cfg = TrainConfig::default();
        let mut mv = MajorityVoteModel::new(3, LabelScheme::Binary);
        mv.fit(&lambda, None, &cfg);

        // Generative warm-started "from" the MV backend = cold fit.
        let mut warm = GenerativeModel::new(3, LabelScheme::Binary);
        let report = LabelModel::fit_warm(&mut warm, &lambda, None, &cfg, &mv, &[]);
        assert!(!report.warm_started);
        let mut cold = GenerativeModel::new(3, LabelScheme::Binary);
        cold.fit(&lambda, &cfg);
        assert_eq!(cold.accuracy_weights(), warm.accuracy_weights());

        // Same backend: genuinely warm.
        let mut warm2 = GenerativeModel::new(3, LabelScheme::Binary);
        let report2 = LabelModel::fit_warm(&mut warm2, &lambda, None, &cfg, &cold, &[]);
        assert!(report2.warm_started);
    }

    #[test]
    fn registry_builds_and_reports_unknowns() {
        let registry = ModelRegistry::standard();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            vec![BACKEND_MAJORITY_VOTE, BACKEND_GENERATIVE, BACKEND_MOMENT]
        );
        for strategy in [
            ModelingStrategy::MajorityVote,
            ModelingStrategy::MomentMatching,
            ModelingStrategy::GenerativeModel {
                epsilon: 0.0,
                correlations: vec![(0, 2)],
                strengths: vec![1.0],
            },
        ] {
            let model = registry.build(&strategy, 4, 2).unwrap();
            assert_eq!(model.backend_name(), strategy.backend_name());
            assert_eq!(model.num_lfs(), 4);
        }
        // The generative build carries the strategy's correlations.
        let gm = registry
            .build(
                &ModelingStrategy::GenerativeModel {
                    epsilon: 0.0,
                    correlations: vec![(0, 2)],
                    strengths: vec![1.0],
                },
                4,
                2,
            )
            .unwrap();
        let gm = gm.downcast_ref::<GenerativeModel>().unwrap();
        assert_eq!(gm.correlations(), &[(0, 2)]);

        let mut partial = ModelRegistry::empty();
        partial.register(BACKEND_MAJORITY_VOTE, |n, scheme, _| {
            Box::new(MajorityVoteModel::new(n, scheme))
        });
        assert_eq!(
            partial
                .build(&ModelingStrategy::MomentMatching, 4, 2)
                .map(|_| ())
                .unwrap_err(),
            UnknownBackend {
                backend: BACKEND_MOMENT
            }
        );
    }
}
