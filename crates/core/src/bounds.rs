//! Closed-form advantage bounds (paper §3.1.1).
//!
//! Both bounds live on the synthetic-setting assumptions: every LF votes
//! with probability `p_l` and the mean LF accuracy is `ᾱ`. The label
//! density is then `d̄ = n · p_l`.
//!
//! * **Low-density** (Proposition 1): `E[A*] ≤ d̄² ᾱ(1−ᾱ)` — with few
//!   votes per point, even optimal weighting rarely gets a chance to
//!   disagree with majority vote, and the opportunity decays
//!   quadratically with density.
//! * **High-density** (Theorem 1, via the symmetric Dawid-Skene result
//!   of Li, Yu & Zhou): `E[A*] ≤ exp(−2 p_l (ᾱ−½)² d̄)` — with many
//!   votes, majority vote converges exponentially to optimal.
//!
//! The mid-density regime between the two curves is where the generative
//! model pays off; Figure 4 plots exactly these functions against the
//! empirical advantage.

/// Proposition 1: low-density upper bound `d̄² ᾱ(1−ᾱ)`.
///
/// `n` labeling functions, propensity `p_l = P(Λ_ij ≠ 0)`, mean accuracy
/// `mean_acc = ᾱ` (must be in `[0, 1]`).
pub fn low_density_bound(n: usize, p_l: f64, mean_acc: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_l), "p_l must be a probability");
    assert!(
        (0.0..=1.0).contains(&mean_acc),
        "mean_acc must be a probability"
    );
    let d = n as f64 * p_l;
    d * d * mean_acc * (1.0 - mean_acc)
}

/// Theorem 1: high-density upper bound `exp(−2 p_l (ᾱ−½)² d̄)`.
///
/// Valid for `ᾱ > ½` (non-adversarial-on-average LFs); panics otherwise
/// since the bound is meaningless there.
pub fn high_density_bound(n: usize, p_l: f64, mean_acc: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_l), "p_l must be a probability");
    assert!(
        mean_acc > 0.5,
        "high-density bound requires mean accuracy > 1/2"
    );
    let d = n as f64 * p_l;
    (-2.0 * p_l * (mean_acc - 0.5).powi(2) * d).exp()
}

/// The tighter of the two bounds at a given density — the envelope
/// plotted in Figure 4.
pub fn advantage_envelope(n: usize, p_l: f64, mean_acc: f64) -> f64 {
    low_density_bound(n, p_l, mean_acc).min(high_density_bound(n, p_l, mean_acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_density_is_quadratic_in_density() {
        let a1 = low_density_bound(10, 0.1, 0.75);
        let a2 = low_density_bound(20, 0.1, 0.75);
        assert!(
            (a2 / a1 - 4.0).abs() < 1e-9,
            "doubling n quadruples the bound"
        );
    }

    #[test]
    fn high_density_decays_with_n() {
        let b_small = high_density_bound(10, 0.1, 0.75);
        let b_large = high_density_bound(5000, 0.1, 0.75);
        assert!(b_large < b_small);
        // exp(−2 · 0.1 · 0.25² · 500) ≈ 1.9e−3
        assert!(b_large < 1e-2);
    }

    #[test]
    fn envelope_crosses_over() {
        // At tiny n the low-density bound is smaller; at huge n the
        // high-density bound is smaller.
        let (p, a) = (0.1, 0.75);
        assert!(low_density_bound(2, p, a) < high_density_bound(2, p, a));
        assert!(high_density_bound(2000, p, a) < low_density_bound(2000, p, a));
        // Envelope is always the min.
        for &n in &[1usize, 5, 50, 500, 5000] {
            let e = advantage_envelope(n, p, a);
            assert!(e <= low_density_bound(n, p, a) + 1e-15);
            assert!(e <= high_density_bound(n, p, a) + 1e-15);
        }
    }

    #[test]
    fn perfect_lfs_have_zero_low_density_bound() {
        assert_eq!(low_density_bound(100, 0.1, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "mean accuracy")]
    fn high_density_rejects_adversarial_mean() {
        let _ = high_density_bound(10, 0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn propensity_validated() {
        let _ = low_density_bound(10, 1.5, 0.7);
    }
}
