//! The generative label model `p_w(Λ, Y)` (paper §2.2).
//!
//! The true class label of each data point is a latent variable; each
//! labeling function is a noisy voter. The model couples them through
//! three factor types with weights `w ∈ R^{2n + |C|}`:
//!
//! ```text
//! φ_Lab(Λ, y)  = 1{Λ_ij ≠ ∅}              (labeling propensity)
//! φ_Acc(Λ, y)  = 1{Λ_ij = y_i}            (accuracy)
//! φ_Corr(Λ, y) = 1{Λ_ij = Λ_ik ≠ ∅}       ((j,k) ∈ C, pairwise correlation)
//! ```
//!
//! One deliberate deviation from the paper's notation: the correlation
//! factor fires only on agreeing *votes*, not on joint abstention. With
//! sparse suites (coverage of a few percent) both-abstain agreement is
//! ~90% of rows and swamps the actual vote correlation, making every LF
//! pair look dependent and the redundancy discount destructive.
//!
//! Training minimizes the negative log *marginal* likelihood of the
//! observed matrix, `−log Σ_Y p_w(Λ, Y)` — no ground truth enters. The
//! gradient is the difference of two expectations: the posterior phase
//! `E_{Y|Λ}[φ]` (always exact here: only `y` is latent per point) and
//! the model phase `E_{(Λ',Y')∼p_w}[φ]`:
//!
//! * **Independent model** (`C = ∅`): the model phase factorizes per LF
//!   and is computed in closed form — full-batch, deterministic,
//!   sampling-free SGD.
//! * **Correlated model** (`C ≠ ∅`): the model phase is estimated by
//!   Gibbs chains seeded at observed rows — the contrastive-divergence
//!   style training the paper describes ("interleaving stochastic
//!   gradient descent steps with Gibbs sampling ones").
//!
//! After fitting, the per-LF accuracy weight recovers the LF's accuracy
//! via `α_j = e^{w_j} / (e^{w_j} + K − 1)` (appendix A.1 in the binary
//! case), and posteriors `p(y | Λ_i)` become the probabilistic training
//! labels `Ỹ`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use snorkel_linalg::math::{logsumexp, softmax_in_place};
use snorkel_matrix::{LabelMatrix, Vote};

/// Vote-scheme abstraction shared by the binary (`{−1,+1}`) and
/// multi-class (`{1..=k}`) settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelScheme {
    /// Votes in `{−1, +1}`; class 0 is `+1`, class 1 is `−1`.
    Binary,
    /// Votes in `{1..=k}`; class `c` is vote `c + 1`.
    MultiClass(u8),
}

impl LabelScheme {
    /// Scheme matching a matrix's cardinality.
    pub fn from_cardinality(k: u8) -> Self {
        if k == 2 {
            LabelScheme::Binary
        } else {
            LabelScheme::MultiClass(k)
        }
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        match self {
            LabelScheme::Binary => 2,
            LabelScheme::MultiClass(k) => *k as usize,
        }
    }

    /// Dense class index of a non-abstain vote.
    pub fn class_of_vote(&self, v: Vote) -> Option<usize> {
        if v == 0 {
            return None;
        }
        Some(match self {
            LabelScheme::Binary => {
                if v == 1 {
                    0
                } else {
                    1
                }
            }
            LabelScheme::MultiClass(_) => (v as usize) - 1,
        })
    }

    /// Vote value of a dense class index.
    pub fn vote_of_class(&self, c: usize) -> Vote {
        match self {
            LabelScheme::Binary => {
                if c == 0 {
                    1
                } else {
                    -1
                }
            }
            LabelScheme::MultiClass(_) => (c + 1) as Vote,
        }
    }
}

/// Training hyperparameters.
///
/// The exact (independent-model) path and the Gibbs/contrastive-
/// divergence (correlated-model) path have separate epoch counts and
/// step sizes: exact full-batch gradients tolerate long aggressive
/// schedules, while CD gradients are noisy and per-epoch cost is much
/// higher.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the data for the exact independent-model path.
    pub epochs: usize,
    /// Initial step size for the exact path.
    pub learning_rate: f64,
    /// Per-epoch multiplicative step decay (exact path).
    pub lr_decay: f64,
    /// Passes over the data for the correlated (CD) path.
    pub cd_epochs: usize,
    /// Step size for the correlated path.
    pub cd_learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed (minibatch order, Gibbs chains).
    pub seed: u64,
    /// Gibbs sweeps per contrastive-divergence step (correlated model).
    pub gibbs_steps: usize,
    /// Minibatch size (correlated model; the independent model is
    /// full-batch).
    pub batch_size: usize,
    /// Initial accuracy weight (log-odds prior; 1.0 ≈ 73% accuracy,
    /// matching the paper's default mean prior w̄ = 1.0).
    pub init_acc_weight: f64,
    /// Initialize accuracy weights from each LF's agreement rate with
    /// the unweighted majority vote. This anchors optimization in the
    /// correct basin: the marginal likelihood has an exact label-flip
    /// symmetry (`w → −w` with classes relabeled), and on imbalanced
    /// matrices a neutral init can fall into the flipped optimum.
    pub init_from_majority_vote: bool,
    /// How to set the fixed class-balance weights `b_c`. The balance is
    /// *not* learned: jointly optimizing a free class prior with the
    /// accuracy weights admits a degenerate optimum where the latent
    /// class collapses to a constant and every vote is explained by
    /// per-LF marginals alone.
    pub class_balance: ClassBalance,
    /// Clamp accuracy weights at ≥ 0 (assume non-adversarial LFs).
    pub clamp_nonadversarial: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 1000,
            learning_rate: 0.5,
            lr_decay: 0.998,
            cd_epochs: 60,
            cd_learning_rate: 0.05,
            l2: 1e-4,
            seed: 0,
            gibbs_steps: 2,
            batch_size: 64,
            init_acc_weight: 1.0,
            init_from_majority_vote: true,
            class_balance: ClassBalance::FromMajorityVote,
            clamp_nonadversarial: false,
        }
    }
}

/// Policy for the fixed class-balance weights.
#[derive(Clone, Debug, PartialEq)]
pub enum ClassBalance {
    /// Uniform prior (`b = 0`), matching the paper's factor set exactly.
    Uniform,
    /// Estimate the balance from the unweighted majority vote's class
    /// distribution (smoothed); the practical default for the imbalanced
    /// relation-extraction tasks.
    FromMajorityVote,
    /// User-specified class probabilities (must sum to ~1).
    Fixed(Vec<f64>),
}

/// Outcome of a fit.
#[derive(Clone, Debug)]
pub struct FitReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Final mean negative log marginal likelihood (exact for the
    /// independent model; `NaN` for correlated models, whose partition
    /// function we never compute).
    pub final_nll: f64,
    /// Whether Gibbs-based contrastive divergence was used.
    pub used_gibbs: bool,
}

/// The generative label model.
#[derive(Clone, Debug)]
pub struct GenerativeModel {
    scheme: LabelScheme,
    n: usize,
    w_lab: Vec<f64>,
    w_acc: Vec<f64>,
    corr_pairs: Vec<(usize, usize)>,
    w_corr: Vec<f64>,
    /// Prior correlation strengths from structure learning (used to
    /// seed `w_corr` and to discount redundant LFs' initial accuracy
    /// weights); 1.0 when unknown.
    corr_strength: Vec<f64>,
    /// Adjacency: for each LF, `(pair_index, other_lf)` of its
    /// correlation factors.
    corr_adj: Vec<Vec<(usize, usize)>>,
    /// Class-balance weights `b_c` (log-prior per class). The paper's
    /// factor set omits a class prior; on the imbalanced relation tasks
    /// that omission miscalibrates posteriors badly, so we add the one
    /// factor `φ_Bal(y) = 1{y = c}` and learn its weights jointly.
    b_class: Vec<f64>,
}

/// Weight clamp keeping `exp` comfortably finite.
const W_CLAMP: f64 = 10.0;

impl GenerativeModel {
    /// Independent model over `n` labeling functions.
    pub fn new(n: usize, scheme: LabelScheme) -> Self {
        GenerativeModel {
            scheme,
            n,
            w_lab: vec![0.0; n],
            w_acc: vec![1.0; n],
            corr_pairs: Vec::new(),
            w_corr: Vec::new(),
            corr_strength: Vec::new(),
            corr_adj: vec![Vec::new(); n],
            b_class: vec![0.0; scheme.num_classes()],
        }
    }

    /// Add pairwise-correlation factors for the given LF pairs
    /// (deduplicated, self-pairs rejected) with unit prior strength.
    pub fn with_correlations(self, pairs: &[(usize, usize)]) -> Self {
        let strengths = vec![1.0; pairs.len()];
        self.with_weighted_correlations(pairs, &strengths)
    }

    /// Add pairwise-correlation factors with prior strengths (typically
    /// the fitted weights from
    /// [`crate::structure::learn_structure`]). Strengths seed the
    /// correlation weights and drive the redundancy discount of the
    /// correlated-training initialization.
    pub fn with_weighted_correlations(
        mut self,
        pairs: &[(usize, usize)],
        strengths: &[f64],
    ) -> Self {
        assert_eq!(pairs.len(), strengths.len(), "one strength per pair");
        let mut seen = std::collections::BTreeSet::new();
        for (&(a, b), &s) in pairs.iter().zip(strengths) {
            assert!(a < self.n && b < self.n, "correlation pair out of range");
            assert_ne!(a, b, "self-correlation is meaningless");
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                let idx = self.corr_pairs.len();
                self.corr_pairs.push(key);
                self.w_corr.push(0.0);
                self.corr_strength.push(s.abs());
                self.corr_adj[key.0].push((idx, key.1));
                self.corr_adj[key.1].push((idx, key.0));
            }
        }
        self
    }

    /// Number of labeling functions.
    pub fn num_lfs(&self) -> usize {
        self.n
    }

    /// The label scheme.
    pub fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    /// The modeled correlation pairs.
    pub fn correlations(&self) -> &[(usize, usize)] {
        &self.corr_pairs
    }

    /// Learned correlation weights (parallel to
    /// [`Self::correlations`]).
    pub fn correlation_weights(&self) -> &[f64] {
        &self.w_corr
    }

    /// Learned accuracy weights (log-odds scale).
    pub fn accuracy_weights(&self) -> &[f64] {
        &self.w_acc
    }

    /// Learned propensity weights.
    pub fn propensity_weights(&self) -> &[f64] {
        &self.w_lab
    }

    /// Learned class-balance weights (log-prior scale); softmax of these
    /// is the model's implied class distribution.
    pub fn class_balance_weights(&self) -> &[f64] {
        &self.b_class
    }

    /// The model's implied class prior `softmax(b)`.
    pub fn implied_class_prior(&self) -> Vec<f64> {
        let mut p = self.b_class.clone();
        softmax_in_place(&mut p);
        p
    }

    /// Implied LF accuracies `α_j = e^{w_j} / (e^{w_j} + K − 1)`
    /// (appendix A.1 generalized to K classes).
    pub fn implied_accuracies(&self) -> Vec<f64> {
        let k1 = (self.scheme.num_classes() - 1) as f64;
        self.w_acc
            .iter()
            .map(|&w| {
                let e = w.exp();
                e / (e + k1)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    /// Posterior `p(y = class | Λ_i)` for one row of votes.
    ///
    /// Correlation and propensity factors cancel (they do not involve
    /// `y`), so the posterior depends only on the accuracy weights and
    /// the class-balance weights — but those weights are *fit*
    /// differently when correlations are modeled, which is where the
    /// correction of Example 3.1 comes from.
    pub fn posterior(&self, cols: &[u32], votes: &[Vote]) -> Vec<f64> {
        let k = self.scheme.num_classes();
        let mut scores = self.b_class.clone();
        debug_assert_eq!(scores.len(), k);
        for (&c, &v) in cols.iter().zip(votes) {
            if let Some(class) = self.scheme.class_of_vote(v) {
                scores[class] += self.w_acc[c as usize];
            }
        }
        softmax_in_place(&mut scores);
        scores
    }

    /// Posterior class distributions for every row.
    pub fn marginals(&self, lambda: &LabelMatrix) -> Vec<Vec<f64>> {
        (0..lambda.num_points())
            .map(|i| {
                let (cols, votes) = lambda.row(i);
                self.posterior(cols, votes)
            })
            .collect()
    }

    /// Binary convenience: `p(y = +1 | Λ_i)` per row.
    pub fn prob_positive(&self, lambda: &LabelMatrix) -> Vec<f64> {
        assert_eq!(self.scheme, LabelScheme::Binary, "binary scheme only");
        (0..lambda.num_points())
            .map(|i| {
                let (cols, votes) = lambda.row(i);
                self.posterior(cols, votes)[0]
            })
            .collect()
    }

    /// Hard predictions: the MAP class as a vote value; 0 when the
    /// posterior is exactly uniform over its top classes (no evidence).
    pub fn predicted_labels(&self, lambda: &LabelMatrix) -> Vec<Vote> {
        self.marginals(lambda)
            .into_iter()
            .map(|post| {
                let best = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let winners: Vec<usize> = (0..post.len())
                    .filter(|&c| (post[c] - best).abs() < 1e-12)
                    .collect();
                if winners.len() == 1 {
                    self.scheme.vote_of_class(winners[0])
                } else {
                    0
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Training
    // ------------------------------------------------------------------

    /// Fit to a label matrix by SGD on the negative log marginal
    /// likelihood.
    pub fn fit(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) -> FitReport {
        assert_eq!(
            lambda.num_lfs(),
            self.n,
            "matrix has {} LFs but model has {}",
            lambda.num_lfs(),
            self.n
        );
        for w in self.w_acc.iter_mut() {
            *w = cfg.init_acc_weight;
        }
        self.set_class_balance(lambda, cfg);
        if cfg.init_from_majority_vote && lambda.num_points() > 0 {
            self.init_acc_from_majority_vote(lambda, cfg);
        }
        self.init_lab_from_coverage(lambda);
        if lambda.num_points() == 0 {
            return FitReport {
                epochs: 0,
                final_nll: 0.0,
                used_gibbs: false,
            };
        }
        if self.corr_pairs.is_empty() {
            self.fit_independent_exact(lambda, cfg)
        } else {
            self.fit_correlated_cd(lambda, cfg)
        }
    }

    /// Fix the class-balance weights per the configured policy.
    fn set_class_balance(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) {
        let k = self.scheme.num_classes();
        match &cfg.class_balance {
            ClassBalance::Uniform => self.b_class.iter_mut().for_each(|b| *b = 0.0),
            ClassBalance::Fixed(p) => {
                assert_eq!(p.len(), k, "class balance needs one entry per class");
                for (b, &pc) in self.b_class.iter_mut().zip(p) {
                    *b = pc.max(1e-3).ln();
                }
            }
            ClassBalance::FromMajorityVote => {
                let mv = self.majority_classes(lambda);
                let mut counts = vec![1.0f64; k]; // add-one smoothing
                for c in mv.into_iter().flatten() {
                    counts[c] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                for (b, c) in self.b_class.iter_mut().zip(counts) {
                    *b = (c / total).ln();
                }
            }
        }
    }

    /// Plurality class per row (`None` on ties and empty rows).
    fn majority_classes(&self, lambda: &LabelMatrix) -> Vec<Option<usize>> {
        let k = self.scheme.num_classes();
        let mut out = Vec::with_capacity(lambda.num_points());
        let mut tally = vec![0usize; k];
        for i in 0..lambda.num_points() {
            let (_, votes) = lambda.row(i);
            tally.iter_mut().for_each(|t| *t = 0);
            for &v in votes {
                if let Some(c) = self.scheme.class_of_vote(v) {
                    tally[c] += 1;
                }
            }
            let best = tally.iter().copied().max().unwrap_or(0);
            let winners: Vec<usize> = (0..k).filter(|&c| tally[c] == best && best > 0).collect();
            out.push(if winners.len() == 1 { Some(winners[0]) } else { None });
        }
        out
    }

    /// Initialize the propensity weights so the model's implied coverage
    /// matches each LF's observed coverage. Starting from `w_lab = 0`
    /// (implied coverage ≈ 77% for binary) while real suites cover a few
    /// percent makes the early accuracy gradients strongly negative for
    /// *every* LF while the propensities calibrate; minority-class LFs
    /// never recover from that transient and the fit lands in a
    /// collapsed optimum. Solving
    /// `coverage = e^lab (e^acc + K−1) / (1 + e^lab (e^acc + K−1))`
    /// for `lab` removes the transient entirely.
    fn init_lab_from_coverage(&mut self, lambda: &LabelMatrix) {
        let m = lambda.num_points();
        if m == 0 {
            return;
        }
        let k1 = (self.scheme.num_classes() - 1) as f64;
        let mut votes = vec![0usize; self.n];
        for (_, j, _) in lambda.iter() {
            votes[j] += 1;
        }
        for j in 0..self.n {
            let c = ((votes[j] as f64 + 0.5) / (m as f64 + 1.0)).clamp(1e-4, 1.0 - 1e-4);
            let s = c / (1.0 - c);
            self.w_lab[j] = (s.ln() - (self.w_acc[j].exp() + k1).ln()).clamp(-W_CLAMP, W_CLAMP);
        }
    }

    /// Seed accuracy weights from agreement with the unweighted majority
    /// vote: `w_j = ½ log(a_j / (1 − a_j))` where `a_j` is LF j's
    /// agreement rate with MV on rows where both commit, shrunk toward
    /// the prior and clamped to a moderate band so the data still
    /// dominates.
    fn init_acc_from_majority_vote(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) {
        let mv = self.majority_classes(lambda);
        let mut agree = vec![0usize; self.n];
        let mut total = vec![0usize; self.n];
        for i in 0..lambda.num_points() {
            let Some(mv_class) = mv[i] else { continue };
            let (cols, votes) = lambda.row(i);
            for (&c, &v) in cols.iter().zip(votes) {
                if let Some(class) = self.scheme.class_of_vote(v) {
                    total[c as usize] += 1;
                    if class == mv_class {
                        agree[c as usize] += 1;
                    }
                }
            }
        }
        for j in 0..self.n {
            if total[j] < 5 {
                continue; // keep the prior for LFs with no evidence
            }
            // Shrink toward the prior (5 pseudo-votes at the prior's
            // implied accuracy) so tiny-coverage LFs stay near w̄.
            let prior_acc = {
                let e = cfg.init_acc_weight.exp();
                e / (e + (self.scheme.num_classes() - 1) as f64)
            };
            let a = (agree[j] as f64 + 5.0 * prior_acc) / (total[j] as f64 + 5.0);
            let a = a.clamp(0.05, 0.95);
            self.w_acc[j] = (0.5 * (a / (1.0 - a)).ln()).clamp(-2.0, 3.0);
        }
    }

    /// Full-batch exact-gradient training for the independent model.
    fn fit_independent_exact(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) -> FitReport {
        let m = lambda.num_points() as f64;
        let k = self.scheme.num_classes();
        let k1 = (k - 1) as f64;
        let mut lr = cfg.learning_rate;
        let mut nll = f64::INFINITY;

        for _epoch in 0..cfg.epochs {
            // Model-phase expectations (closed form, per LF).
            let mut neg_lab = vec![0.0; self.n];
            let mut neg_acc = vec![0.0; self.n];
            let mut log_z_sum = 0.0;
            for j in 0..self.n {
                let e_lab = self.w_lab[j].exp();
                let e_la = (self.w_lab[j] + self.w_acc[j]).exp();
                let z = 1.0 + e_la + k1 * e_lab;
                neg_lab[j] = (e_la + k1 * e_lab) / z;
                neg_acc[j] = e_la / z;
                log_z_sum += z.ln();
            }

            // Posterior-phase expectations (exact, per row).
            let mut pos_lab = vec![0.0; self.n];
            let mut pos_acc = vec![0.0; self.n];
            let mut loglik = 0.0;
            let mut scores = vec![0.0f64; k];
            for i in 0..lambda.num_points() {
                let (cols, votes) = lambda.row(i);
                scores.copy_from_slice(&self.b_class);
                let mut lab_term = 0.0;
                for (&c, &v) in cols.iter().zip(votes) {
                    let j = c as usize;
                    lab_term += self.w_lab[j];
                    if let Some(class) = self.scheme.class_of_vote(v) {
                        scores[class] += self.w_acc[j];
                    }
                }
                let lse = logsumexp(&scores);
                loglik += lab_term + lse;
                for (&c, &v) in cols.iter().zip(votes) {
                    let j = c as usize;
                    pos_lab[j] += 1.0;
                    if let Some(class) = self.scheme.class_of_vote(v) {
                        pos_acc[j] += (scores[class] - lse).exp();
                    }
                }
            }
            // log Z = logsumexp(b) + Σ_j ln z_j (the per-LF terms
            // factorize and are identical for every class).
            nll = -(loglik / m) + log_z_sum + logsumexp(&self.b_class);

            // Ascent on log-likelihood.
            for j in 0..self.n {
                let g_lab = pos_lab[j] / m - neg_lab[j];
                let g_acc = pos_acc[j] / m - neg_acc[j];
                self.w_lab[j] =
                    (self.w_lab[j] + lr * (g_lab - cfg.l2 * self.w_lab[j])).clamp(-W_CLAMP, W_CLAMP);
                self.w_acc[j] =
                    (self.w_acc[j] + lr * (g_acc - cfg.l2 * self.w_acc[j])).clamp(-W_CLAMP, W_CLAMP);
                if cfg.clamp_nonadversarial && self.w_acc[j] < 0.0 {
                    self.w_acc[j] = 0.0;
                }
            }
            lr *= cfg.lr_decay;
        }

        FitReport {
            epochs: cfg.epochs,
            final_nll: nll,
            used_gibbs: false,
        }
    }

    /// Minibatch contrastive-divergence training for correlated models.
    ///
    /// Initialization discounts each LF's prior accuracy weight by its
    /// strength-weighted redundancy `1 + Σ_k ρ_jk` over its correlated
    /// partners: a cluster of near-copies carries roughly one voter's
    /// worth of evidence, so the discount keeps it from dominating the
    /// latent posterior before the correlation weights can explain its
    /// coherence. Without this, Example 3.1's pathology (a large
    /// low-accuracy correlated block out-voting a few accurate LFs) is a
    /// local optimum the SGD cannot leave, because the block pins the
    /// label posterior from the first epoch. Correlation weights start
    /// at their structure-learning strengths rather than zero so the
    /// model phase accounts for the redundancy from the first step.
    fn fit_correlated_cd(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) -> FitReport {
        let mut redundancy = vec![0.0f64; self.n];
        for (p, &(a, b)) in self.corr_pairs.iter().enumerate() {
            let s = self.corr_strength[p].min(1.5);
            redundancy[a] += s;
            redundancy[b] += s;
        }
        for j in 0..self.n {
            self.w_acc[j] = cfg.init_acc_weight / (1.0 + redundancy[j]);
        }
        for p in 0..self.corr_pairs.len() {
            self.w_corr[p] = self.corr_strength[p].min(2.0);
        }

        let m = lambda.num_points();
        let k = self.scheme.num_classes();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..m).collect();
        let mut lr = cfg.cd_learning_rate;

        // Dense vote buffer reused by the Gibbs chain.
        let mut chain = vec![0 as Vote; self.n];
        let mut scores = vec![0.0f64; k];

        for _epoch in 0..cfg.cd_epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(cfg.batch_size) {
                let bs = batch.len() as f64;
                let mut g_lab = vec![0.0; self.n];
                let mut g_acc = vec![0.0; self.n];
                let mut g_corr = vec![0.0; self.corr_pairs.len()];

                for &i in batch {
                    let (cols, votes) = lambda.row(i);

                    // Posterior phase (exact).
                    let post = self.posterior(cols, votes);
                    for (&c, &v) in cols.iter().zip(votes) {
                        let j = c as usize;
                        g_lab[j] += 1.0;
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            g_acc[j] += post[class];
                        }
                    }

                    // Observed correlation agreements (vote agreement
                    // only — see the module docs on the factor).
                    chain.iter_mut().for_each(|v| *v = 0);
                    for (&c, &v) in cols.iter().zip(votes) {
                        chain[c as usize] = v;
                    }
                    for (p, &(a, b)) in self.corr_pairs.iter().enumerate() {
                        if chain[a] == chain[b] && chain[a] != 0 {
                            g_corr[p] += 1.0;
                        }
                    }

                    // Model phase: CD-k Gibbs chain from the observed row.
                    for _sweep in 0..cfg.gibbs_steps {
                        // Sample y' | Λ'.
                        scores.copy_from_slice(&self.b_class);
                        for (j, &v) in chain.iter().enumerate() {
                            if let Some(class) = self.scheme.class_of_vote(v) {
                                scores[class] += self.w_acc[j];
                            }
                        }
                        softmax_in_place(&mut scores);
                        let y_class = sample_categorical(&mut rng, &scores);
                        // Sample each Λ'_j | y', Λ'_{-j}.
                        for j in 0..self.n {
                            chain[j] = self.sample_vote(&mut rng, j, y_class, &chain);
                        }
                    }

                    // Subtract model-phase statistics.
                    for (j, &v) in chain.iter().enumerate() {
                        if v != 0 {
                            g_lab[j] -= 1.0;
                        }
                        // Accuracy factor: need y'; resample once more for
                        // an unbiased-ish pairing of (Λ', y').
                    }
                    scores.copy_from_slice(&self.b_class);
                    for (j, &v) in chain.iter().enumerate() {
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            scores[class] += self.w_acc[j];
                        }
                    }
                    softmax_in_place(&mut scores);
                    let y_final = sample_categorical(&mut rng, &scores);
                    for (j, &v) in chain.iter().enumerate() {
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            if class == y_final {
                                g_acc[j] -= 1.0;
                            }
                        }
                    }
                    for (p, &(a, b)) in self.corr_pairs.iter().enumerate() {
                        if chain[a] == chain[b] && chain[a] != 0 {
                            g_corr[p] -= 1.0;
                        }
                    }
                }

                // Apply the averaged ascent step.
                for j in 0..self.n {
                    self.w_lab[j] = (self.w_lab[j]
                        + lr * (g_lab[j] / bs - cfg.l2 * self.w_lab[j]))
                        .clamp(-W_CLAMP, W_CLAMP);
                    self.w_acc[j] = (self.w_acc[j]
                        + lr * (g_acc[j] / bs - cfg.l2 * self.w_acc[j]))
                        .clamp(-W_CLAMP, W_CLAMP);
                    if cfg.clamp_nonadversarial && self.w_acc[j] < 0.0 {
                        self.w_acc[j] = 0.0;
                    }
                }
                for p in 0..self.corr_pairs.len() {
                    self.w_corr[p] = (self.w_corr[p]
                        + lr * (g_corr[p] / bs - cfg.l2 * self.w_corr[p]))
                        .clamp(-W_CLAMP, W_CLAMP);
                }
            }
            lr *= cfg.lr_decay;
        }

        FitReport {
            epochs: cfg.cd_epochs,
            final_nll: f64::NAN,
            used_gibbs: true,
        }
    }

    /// Sample `Λ'_j` from its conditional given the class and the other
    /// chain entries.
    fn sample_vote(&self, rng: &mut StdRng, j: usize, y_class: usize, chain: &[Vote]) -> Vote {
        let k = self.scheme.num_classes();
        // Candidate values: abstain + each class vote.
        let mut weights = Vec::with_capacity(k + 1);
        let mut values = Vec::with_capacity(k + 1);
        for cand_class in std::iter::once(None).chain((0..k).map(Some)) {
            let v = cand_class.map_or(0, |c| self.scheme.vote_of_class(c));
            let mut s = 0.0;
            if v != 0 {
                s += self.w_lab[j];
                if cand_class == Some(y_class) {
                    s += self.w_acc[j];
                }
            }
            for &(pair_idx, other) in &self.corr_adj[j] {
                if v != 0 && v == chain[other] {
                    s += self.w_corr[pair_idx];
                }
            }
            values.push(v);
            weights.push(s);
        }
        softmax_in_place(&mut weights);
        values[sample_categorical(rng, &weights)]
    }
}

/// Draw an index from a normalized categorical distribution.
fn sample_categorical(rng: &mut StdRng, probs: &[f64]) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_matrix::LabelMatrixBuilder;

    /// Plant a binary dataset: LF `j` votes with propensity `pl` and
    /// accuracy `accs[j]`.
    fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> (LabelMatrix, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = LabelMatrixBuilder::new(m, accs.len());
        let mut gold = Vec::with_capacity(m);
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < pl {
                    let v = if rng.gen::<f64>() < acc { y } else { -y };
                    b.set(i, j, v);
                }
            }
        }
        (b.build(), gold)
    }

    #[test]
    fn scheme_round_trips() {
        let b = LabelScheme::Binary;
        assert_eq!(b.class_of_vote(1), Some(0));
        assert_eq!(b.class_of_vote(-1), Some(1));
        assert_eq!(b.class_of_vote(0), None);
        assert_eq!(b.vote_of_class(0), 1);
        assert_eq!(b.vote_of_class(1), -1);
        let m = LabelScheme::MultiClass(5);
        for c in 0..5 {
            assert_eq!(m.class_of_vote(m.vote_of_class(c)), Some(c));
        }
    }

    #[test]
    fn recovers_planted_accuracies() {
        let accs = [0.9, 0.8, 0.7, 0.6, 0.55];
        let (lambda, _) = planted(4000, &accs, 0.6, 7);
        let mut gm = GenerativeModel::new(5, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let implied = gm.implied_accuracies();
        for (j, &a) in accs.iter().enumerate() {
            assert!(
                (implied[j] - a).abs() < 0.08,
                "LF{j}: implied {:.3} vs true {a}",
                implied[j]
            );
        }
        // Ordering must be recovered exactly.
        for j in 1..accs.len() {
            assert!(
                implied[j - 1] > implied[j],
                "accuracy order violated at {j}"
            );
        }
    }

    #[test]
    fn recovers_propensity() {
        let (lambda, _) = planted(4000, &[0.8, 0.8], 0.3, 3);
        let mut gm = GenerativeModel::new(2, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        // P(vote) under the model = (e^{lab+acc} + e^{lab}) / z.
        for j in 0..2 {
            let e_lab = gm.propensity_weights()[j].exp();
            let e_la = (gm.propensity_weights()[j] + gm.accuracy_weights()[j]).exp();
            let z = 1.0 + e_la + e_lab;
            let p_vote = (e_la + e_lab) / z;
            assert!((p_vote - 0.3).abs() < 0.05, "propensity {p_vote:.3}");
        }
    }

    #[test]
    fn example_1_1_conflict_resolution() {
        // High-accuracy source vs low-accuracy source (paper Example
        // 1.1): after fitting, a conflict resolves toward the stronger
        // source. A third source is needed for identifiability — with
        // only two conditionally independent voters, the marginal
        // likelihood depends only on their agreement rate (the classical
        // Dawid-Skene two-view ambiguity), so individual accuracies
        // cannot be recovered.
        let (lambda, _) = planted(3000, &[0.9, 0.6, 0.75], 0.8, 11);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let post = gm.posterior(&[0, 1], &[1, -1]); // sources 0 and 1 disagree
        assert!(
            post[0] > 0.6,
            "posterior must side with the accurate source, got {:.3}",
            post[0]
        );
    }

    #[test]
    fn posterior_uniform_without_votes() {
        let gm = GenerativeModel::new(3, LabelScheme::Binary);
        let post = gm.posterior(&[], &[]);
        assert!((post[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_and_hard_labels() {
        let (lambda, gold) = planted(1500, &[0.85, 0.85, 0.85], 0.9, 5);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let probs = gm.prob_positive(&lambda);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let preds = gm.predicted_labels(&lambda);
        let acc = crate::vote::vote_accuracy(&preds, &gold);
        assert!(acc > 0.9, "posterior MAP accuracy {acc:.3}");
    }

    #[test]
    fn fit_is_deterministic() {
        let (lambda, _) = planted(500, &[0.8, 0.7], 0.5, 2);
        let mut a = GenerativeModel::new(2, LabelScheme::Binary);
        let mut b = GenerativeModel::new(2, LabelScheme::Binary);
        a.fit(&lambda, &TrainConfig::default());
        b.fit(&lambda, &TrainConfig::default());
        assert_eq!(a.accuracy_weights(), b.accuracy_weights());
    }

    #[test]
    fn example_3_1_correlation_correction() {
        // 5 perfectly correlated LFs at 50% accuracy + 2 independent LFs
        // at 95%: the independent model over-trusts the correlated block;
        // modeling the correlations restores the good LFs' dominance.
        let m = 2000;
        let mut rng = StdRng::seed_from_u64(13);
        let n = 7;
        let mut b = LabelMatrixBuilder::new(m, n);
        let mut gold = Vec::new();
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            // Correlated block: one coin flip copied to LFs 0..5.
            let block_vote: Vote = if rng.gen::<f64>() < 0.5 { y } else { -y };
            for j in 0..5 {
                b.set(i, j, block_vote);
            }
            for j in 5..7 {
                if rng.gen::<f64>() < 0.95 {
                    b.set(i, j, y);
                } else {
                    b.set(i, j, -y);
                }
            }
        }
        let lambda = b.build();

        let mut indep = GenerativeModel::new(n, LabelScheme::Binary);
        indep.fit(&lambda, &TrainConfig::default());

        let pairs: Vec<(usize, usize)> = (0..5)
            .flat_map(|a| ((a + 1)..5).map(move |b| (a, b)))
            .collect();
        let mut corr = GenerativeModel::new(n, LabelScheme::Binary).with_correlations(&pairs);
        corr.fit(&lambda, &TrainConfig::default());

        // Under the correlated model, a conflict of (block says +1,
        // good LFs say −1) must resolve toward the good LFs.
        let cols: Vec<u32> = (0..7).collect();
        let votes: Vec<Vote> = vec![1, 1, 1, 1, 1, -1, -1];
        let post_corr = corr.posterior(&cols, &votes);
        assert!(
            post_corr[1] > 0.5,
            "correlated model must trust the independent accurate LFs, p(-1) = {:.3}",
            post_corr[1]
        );
        // And it must do better than the independent model does.
        let post_indep = indep.posterior(&cols, &votes);
        assert!(
            post_corr[1] > post_indep[1] - 0.05,
            "corr {:.3} vs indep {:.3}",
            post_corr[1],
            post_indep[1]
        );
        // Learned correlation weights on the block must be positive.
        let mean_corr: f64 =
            corr.correlation_weights().iter().sum::<f64>() / corr.correlation_weights().len() as f64;
        assert!(mean_corr > 0.1, "mean correlation weight {mean_corr:.3}");
    }

    #[test]
    fn multiclass_posterior_and_recovery() {
        let k = 3u8;
        let scheme = LabelScheme::MultiClass(k);
        let mut rng = StdRng::seed_from_u64(21);
        let m = 3000;
        let accs = [0.85, 0.7, 0.55];
        let mut b = LabelMatrixBuilder::with_cardinality(m, 3, k);
        for i in 0..m {
            let y = rng.gen_range(0..k as usize);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < 0.7 {
                    let class = if rng.gen::<f64>() < acc {
                        y
                    } else {
                        // Uniform error over the other classes.
                        let mut c = rng.gen_range(0..(k as usize - 1));
                        if c >= y {
                            c += 1;
                        }
                        c
                    };
                    b.set(i, j, scheme.vote_of_class(class));
                }
            }
        }
        let lambda = b.build();
        let mut gm = GenerativeModel::new(3, scheme);
        gm.fit(&lambda, &TrainConfig::default());
        let implied = gm.implied_accuracies();
        assert!(implied[0] > implied[1] && implied[1] > implied[2]);
        assert!((implied[0] - 0.85).abs() < 0.1, "implied {:.3}", implied[0]);
        let post = gm.posterior(&[0], &[scheme.vote_of_class(2)]);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post[2] > post[0]);
    }

    #[test]
    fn clamp_nonadversarial_floors_weights() {
        // An adversarial LF (accuracy 20%) gets a negative weight when
        // two accurate LFs pin down the labels; the clamp keeps it at
        // zero instead.
        let (lambda, _) = planted(2000, &[0.9, 0.85, 0.2], 0.8, 17);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        let cfg = TrainConfig {
            clamp_nonadversarial: true,
            ..TrainConfig::default()
        };
        gm.fit(&lambda, &cfg);
        assert!(gm.accuracy_weights()[2] >= 0.0);

        let mut free = GenerativeModel::new(3, LabelScheme::Binary);
        free.fit(&lambda, &TrainConfig::default());
        assert!(
            free.accuracy_weights()[2] < 0.0,
            "unclamped fit must detect the adversarial LF, got {:?}",
            free.accuracy_weights()
        );
    }

    #[test]
    fn empty_matrix_fit_is_noop() {
        let lambda = LabelMatrixBuilder::new(0, 2).build();
        let mut gm = GenerativeModel::new(2, LabelScheme::Binary);
        let report = gm.fit(&lambda, &TrainConfig::default());
        assert_eq!(report.epochs, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_correlation_pair_panics() {
        let _ = GenerativeModel::new(2, LabelScheme::Binary).with_correlations(&[(0, 5)]);
    }

    #[test]
    fn duplicate_pairs_deduplicated() {
        let gm = GenerativeModel::new(3, LabelScheme::Binary)
            .with_correlations(&[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(gm.correlations(), &[(0, 1), (1, 2)]);
    }
}
