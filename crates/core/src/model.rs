//! The generative label model `p_w(Λ, Y)` (paper §2.2).
//!
//! The true class label of each data point is a latent variable; each
//! labeling function is a noisy voter. The model couples them through
//! three factor types with weights `w ∈ R^{2n + |C|}`:
//!
//! ```text
//! φ_Lab(Λ, y)  = 1{Λ_ij ≠ ∅}              (labeling propensity)
//! φ_Acc(Λ, y)  = 1{Λ_ij = y_i}            (accuracy)
//! φ_Corr(Λ, y) = 1{Λ_ij = Λ_ik ≠ ∅}       ((j,k) ∈ C, pairwise correlation)
//! ```
//!
//! One deliberate deviation from the paper's notation: the correlation
//! factor fires only on agreeing *votes*, not on joint abstention. With
//! sparse suites (coverage of a few percent) both-abstain agreement is
//! ~90% of rows and swamps the actual vote correlation, making every LF
//! pair look dependent and the redundancy discount destructive.
//!
//! Training minimizes the negative log *marginal* likelihood of the
//! observed matrix, `−log Σ_Y p_w(Λ, Y)` — no ground truth enters:
//!
//! * **Independent model** (`C = ∅`): expectation–maximization with
//!   exact posteriors (E) and a closed-form per-LF maximizer (M) — the
//!   model is a tied-error-rate Dawid–Skene mixture, so the M-step is
//!   analytic. Deterministic, sampling-free, and convergent in tens of
//!   iterations where first-order ascent needed thousands; iteration
//!   stops at an optimizer-independent fixed point, which is what makes
//!   warm restarts ([`GenerativeModel::fit_warm`]) agree with cold fits
//!   to ≤1e-9.
//! * **Correlated model** (`C ≠ ∅`): SGD whose model phase is estimated
//!   by Gibbs chains seeded at observed rows — the
//!   contrastive-divergence style training the paper describes
//!   ("interleaving stochastic gradient descent steps with Gibbs
//!   sampling ones").
//!
//! After fitting, the per-LF accuracy weight recovers the LF's accuracy
//! via `α_j = e^{w_j} / (e^{w_j} + K − 1)` (appendix A.1 in the binary
//! case), and posteriors `p(y | Λ_i)` become the probabilistic training
//! labels `Ỹ`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use snorkel_linalg::math::{logsumexp, softmax_in_place};
use snorkel_matrix::{LabelMatrix, ShardedMatrix, Vote};

/// Vote-scheme abstraction shared by the binary (`{−1,+1}`) and
/// multi-class (`{1..=k}`) settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelScheme {
    /// Votes in `{−1, +1}`; class 0 is `+1`, class 1 is `−1`.
    Binary,
    /// Votes in `{1..=k}`; class `c` is vote `c + 1`.
    MultiClass(u8),
}

impl LabelScheme {
    /// Scheme matching a matrix's cardinality.
    pub fn from_cardinality(k: u8) -> Self {
        if k == 2 {
            LabelScheme::Binary
        } else {
            LabelScheme::MultiClass(k)
        }
    }

    /// The cardinality this scheme encodes (inverse of
    /// [`Self::from_cardinality`]).
    pub fn cardinality(&self) -> u8 {
        match self {
            LabelScheme::Binary => 2,
            LabelScheme::MultiClass(k) => *k,
        }
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        match self {
            LabelScheme::Binary => 2,
            LabelScheme::MultiClass(k) => *k as usize,
        }
    }

    /// Dense class index of a non-abstain vote.
    pub fn class_of_vote(&self, v: Vote) -> Option<usize> {
        if v == 0 {
            return None;
        }
        Some(match self {
            LabelScheme::Binary => {
                if v == 1 {
                    0
                } else {
                    1
                }
            }
            LabelScheme::MultiClass(_) => (v as usize) - 1,
        })
    }

    /// Vote value of a dense class index.
    pub fn vote_of_class(&self, c: usize) -> Vote {
        match self {
            LabelScheme::Binary => {
                if c == 0 {
                    1
                } else {
                    -1
                }
            }
            LabelScheme::MultiClass(_) => (c + 1) as Vote,
        }
    }
}

/// Execution strategy for exact inference and the exact-training
/// sufficient-statistics passes.
///
/// The posterior of a data point depends only on its vote signature
/// `(cols, votes)`, so at deployment scale (millions of rows, a handful
/// of distinct patterns — the Snorkel DryBell regime) the row-wise walk
/// recomputes the same posterior millions of times. The sharded path
/// groups rows by unique pattern ([`snorkel_matrix::PatternIndex`]) per
/// row-range shard and runs every pass per-pattern, weighted by
/// multiplicity.
///
/// Equivalence contract (pinned by the `proptest_scaleout` harness):
/// marginals are **bit-identical** to the row-wise path for any shard
/// count (a pattern's posterior is computed by literally the same
/// float-op sequence as its rows'), and fits converge to the same
/// optimum within the [`TrainConfig::tol`] fixed-point guarantee (the
/// per-pattern statistics differ from the row-wise sums only in
/// floating-point summation order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scaleout {
    /// Always walk rows one by one — the reference path.
    RowWise,
    /// Deduplicate per row-range shard; `shards == 0` means one shard
    /// per available core. Merge order is fixed by shard index, so the
    /// result is deterministic regardless of worker-thread count.
    Sharded {
        /// Number of row-range shards (0 = one per core).
        shards: usize,
    },
    /// Shard (one shard per core) when the matrix has at least
    /// [`SCALEOUT_MIN_ROWS`] rows; row-wise below that, where the
    /// index build cost is not worth amortizing.
    Auto,
}

/// Row count at which [`Scaleout::Auto`] switches from row-wise to the
/// pattern-deduplicated sharded path.
pub const SCALEOUT_MIN_ROWS: usize = 8192;

/// Training hyperparameters.
///
/// The exact (independent-model) path and the Gibbs/contrastive-
/// divergence (correlated-model) path are configured separately: the
/// exact path is deterministic EM with a closed-form M-step (no step
/// size; `epochs` is just a cap above the `tol` convergence test), while
/// the CD path is noisy minibatch SGD with its own epoch count and step
/// size.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// EM iteration cap for the exact independent-model path (the
    /// [`Self::tol`] convergence test usually stops it after tens of
    /// iterations).
    pub epochs: usize,
    /// Step size for first-order paths. Unused by the exact path (its EM
    /// M-step is closed-form); retained for configs that tune the CD
    /// path alongside.
    pub learning_rate: f64,
    /// Per-epoch multiplicative step decay (CD path).
    pub lr_decay: f64,
    /// Passes over the data for the correlated (CD) path.
    pub cd_epochs: usize,
    /// Step size for the correlated path.
    pub cd_learning_rate: f64,
    /// L2 regularization strength (CD path; the exact path regularizes
    /// with prior pseudocounts in its M-step instead — see
    /// [`Self::init_acc_weight`]).
    pub l2: f64,
    /// RNG seed (minibatch order, Gibbs chains).
    pub seed: u64,
    /// Gibbs sweeps per contrastive-divergence step (correlated model).
    pub gibbs_steps: usize,
    /// Minibatch size (correlated model; the independent model is
    /// full-batch).
    pub batch_size: usize,
    /// Convergence tolerance for the exact (independent-model) path:
    /// stop once the Aitken-estimated distance to the EM fixed point
    /// drops below this. The fixed point is a stationary point of the
    /// likelihood and does not depend on where iteration started, so any
    /// two runs that both converge — e.g. a cold fit and a
    /// [`GenerativeModel::fit_warm`] restart after one LF edit — land on
    /// the *same* parameters up to this tolerance. `0.0` disables early
    /// stopping. This is the §3 early-stopping lever (the paper reports
    /// up to 61% of training time saved by stopping when converged).
    pub tol: f64,
    /// Mean prior accuracy weight w̄ (log-odds scale; 1.0 ≈ 73% accuracy,
    /// the paper's default). Seeds the optimizer *and* sets the exact
    /// path's Dirichlet pseudocounts, so with little data fitted
    /// accuracies shrink toward this prior rather than toward chance.
    pub init_acc_weight: f64,
    /// Initialize accuracy weights from each LF's agreement rate with
    /// the unweighted majority vote. This anchors optimization in the
    /// correct basin: the marginal likelihood has an exact label-flip
    /// symmetry (`w → −w` with classes relabeled), and on imbalanced
    /// matrices a neutral init can fall into the flipped optimum.
    pub init_from_majority_vote: bool,
    /// How to set the fixed class-balance weights `b_c`. The balance is
    /// *not* learned: jointly optimizing a free class prior with the
    /// accuracy weights admits a degenerate optimum where the latent
    /// class collapses to a constant and every vote is explained by
    /// per-LF marginals alone.
    pub class_balance: ClassBalance,
    /// Clamp accuracy weights at ≥ 0 (assume non-adversarial LFs).
    pub clamp_nonadversarial: bool,
    /// Execution strategy for the exact passes (see [`Scaleout`]). The
    /// correlated CD path ignores it: Gibbs chains are per-row samples
    /// and do not deduplicate.
    pub scaleout: Scaleout,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 1000,
            learning_rate: 0.5,
            lr_decay: 0.998,
            cd_epochs: 60,
            cd_learning_rate: 0.05,
            l2: 1e-4,
            seed: 0,
            gibbs_steps: 2,
            batch_size: 64,
            tol: 1e-12,
            init_acc_weight: 1.0,
            init_from_majority_vote: true,
            class_balance: ClassBalance::FromMajorityVote,
            clamp_nonadversarial: false,
            scaleout: Scaleout::Auto,
        }
    }
}

/// Policy for the fixed class-balance weights.
#[derive(Clone, Debug, PartialEq)]
pub enum ClassBalance {
    /// Uniform prior (`b = 0`), matching the paper's factor set exactly.
    Uniform,
    /// Estimate the balance from the unweighted majority vote's class
    /// distribution (smoothed); the practical default for the imbalanced
    /// relation-extraction tasks.
    FromMajorityVote,
    /// User-specified class probabilities (must sum to ~1).
    Fixed(Vec<f64>),
}

/// Outcome of a fit.
#[derive(Clone, Debug)]
pub struct FitReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Final mean negative log marginal likelihood (exact for the
    /// independent model; `NaN` for correlated models, whose partition
    /// function we never compute).
    pub final_nll: f64,
    /// Whether Gibbs-based contrastive divergence was used.
    pub used_gibbs: bool,
    /// Whether this fit warm-started from a previous model's parameters
    /// ([`GenerativeModel::fit_warm`]).
    pub warm_started: bool,
}

/// Why a [`ModelParams`] value cannot be a fitted model — the typed
/// decode-validation surface for untrusted parameter blobs (snapshot
/// files, wire payloads). Every variant names exactly the invariant that
/// was violated, so callers ([`crate::label_model::ModelSnapshot`],
/// `snorkel-incr`'s thaw path, `snorkel-serve`'s snapshot reader) can
/// propagate it without flattening to strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamsError {
    /// Cardinality below 2 cannot describe a labeling task.
    BadCardinality {
        /// The cardinality found in the parameters.
        found: u8,
    },
    /// A per-LF or per-class vector has the wrong length.
    LengthMismatch {
        /// Which vector was mis-sized.
        field: &'static str,
        /// Length found.
        found: usize,
        /// Length required.
        expected: usize,
    },
    /// A correlation pair is not normalized `a < b` within the LF range.
    PairOutOfRange {
        /// First LF of the pair as stored.
        a: usize,
        /// Second LF of the pair as stored.
        b: usize,
        /// Number of LFs the model covers.
        num_lfs: usize,
    },
    /// The same correlation pair appears twice.
    DuplicatePair {
        /// First LF of the duplicated pair.
        a: usize,
        /// Second LF of the duplicated pair.
        b: usize,
    },
    /// A weight is NaN or infinite.
    NonFiniteWeight {
        /// Which weight vector holds the offending value.
        field: &'static str,
    },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::BadCardinality { found } => write!(f, "cardinality {found} < 2"),
            ParamsError::LengthMismatch {
                field,
                found,
                expected,
            } => write!(f, "{field} has {found} entries, expected {expected}"),
            ParamsError::PairOutOfRange { a, b, num_lfs } => write!(
                f,
                "correlation pair ({a}, {b}) not normalized in-range for {num_lfs} LFs"
            ),
            ParamsError::DuplicatePair { a, b } => {
                write!(f, "duplicate correlation pair ({a}, {b})")
            }
            ParamsError::NonFiniteWeight { field } => write!(f, "non-finite weight in {field}"),
        }
    }
}

impl std::error::Error for ParamsError {}

/// Owned copy of a [`GenerativeModel`]'s learned parameters — the
/// stable encoding surface for on-disk snapshots (`snorkel-serve`). The
/// correlation adjacency lists are *not* part of the encoding;
/// [`GenerativeModel::from_params`] re-derives them from the pairs, so a
/// round trip reproduces a model whose inference is bit-identical to the
/// original's.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelParams {
    /// Task cardinality (2 = the binary `{−1,+1}` scheme).
    pub cardinality: u8,
    /// Number of labeling functions `n`.
    pub num_lfs: usize,
    /// Labeling-propensity weights (`n` entries).
    pub w_lab: Vec<f64>,
    /// Accuracy weights (`n` entries).
    pub w_acc: Vec<f64>,
    /// Modeled correlation pairs, each normalized `a < b`, deduplicated.
    pub corr_pairs: Vec<(usize, usize)>,
    /// Learned correlation weights (parallel to `corr_pairs`).
    pub w_corr: Vec<f64>,
    /// Prior correlation strengths (parallel to `corr_pairs`).
    pub corr_strength: Vec<f64>,
    /// Class-balance weights (one per class).
    pub b_class: Vec<f64>,
}

impl ModelParams {
    /// Check every structural invariant a fitted model relies on:
    /// weight-vector lengths, pair normalization/range/uniqueness, and
    /// finite weights. [`GenerativeModel::from_params`] calls this before
    /// rebuilding; snapshot decoders call it directly so corrupt model
    /// sections surface as typed [`ParamsError`]s at read time.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if self.cardinality < 2 {
            return Err(ParamsError::BadCardinality {
                found: self.cardinality,
            });
        }
        let n = self.num_lfs;
        let scheme = LabelScheme::from_cardinality(self.cardinality);
        for (field, len, expected) in [
            ("w_lab", self.w_lab.len(), n),
            ("w_acc", self.w_acc.len(), n),
            ("w_corr", self.w_corr.len(), self.corr_pairs.len()),
            (
                "corr_strength",
                self.corr_strength.len(),
                self.corr_pairs.len(),
            ),
            ("b_class", self.b_class.len(), scheme.num_classes()),
        ] {
            if len != expected {
                return Err(ParamsError::LengthMismatch {
                    field,
                    found: len,
                    expected,
                });
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in &self.corr_pairs {
            if a >= b || b >= n {
                return Err(ParamsError::PairOutOfRange { a, b, num_lfs: n });
            }
            if !seen.insert((a, b)) {
                return Err(ParamsError::DuplicatePair { a, b });
            }
        }
        for (field, xs) in [
            ("w_lab", &self.w_lab),
            ("w_acc", &self.w_acc),
            ("w_corr", &self.w_corr),
            ("corr_strength", &self.corr_strength),
            ("b_class", &self.b_class),
        ] {
            if xs.iter().any(|w| !w.is_finite()) {
                return Err(ParamsError::NonFiniteWeight { field });
            }
        }
        Ok(())
    }
}

/// The generative label model.
#[derive(Clone, Debug)]
pub struct GenerativeModel {
    scheme: LabelScheme,
    n: usize,
    w_lab: Vec<f64>,
    w_acc: Vec<f64>,
    corr_pairs: Vec<(usize, usize)>,
    w_corr: Vec<f64>,
    /// Prior correlation strengths from structure learning (used to
    /// seed `w_corr` and to discount redundant LFs' initial accuracy
    /// weights); 1.0 when unknown.
    corr_strength: Vec<f64>,
    /// Adjacency: for each LF, `(pair_index, other_lf)` of its
    /// correlation factors.
    corr_adj: Vec<Vec<(usize, usize)>>,
    /// Class-balance weights `b_c` (log-prior per class). The paper's
    /// factor set omits a class prior; on the imbalanced relation tasks
    /// that omission miscalibrates posteriors badly, so we add the one
    /// factor `φ_Bal(y) = 1{y = c}` and learn its weights jointly.
    b_class: Vec<f64>,
}

/// Weight clamp keeping `exp` comfortably finite (shared with the
/// closed-form moment backend in [`crate::label_model`]).
pub(crate) const W_CLAMP: f64 = 10.0;

impl GenerativeModel {
    /// Independent model over `n` labeling functions.
    pub fn new(n: usize, scheme: LabelScheme) -> Self {
        GenerativeModel {
            scheme,
            n,
            w_lab: vec![0.0; n],
            w_acc: vec![1.0; n],
            corr_pairs: Vec::new(),
            w_corr: Vec::new(),
            corr_strength: Vec::new(),
            corr_adj: vec![Vec::new(); n],
            b_class: vec![0.0; scheme.num_classes()],
        }
    }

    /// Add pairwise-correlation factors for the given LF pairs
    /// (deduplicated, self-pairs rejected) with unit prior strength.
    pub fn with_correlations(self, pairs: &[(usize, usize)]) -> Self {
        let strengths = vec![1.0; pairs.len()];
        self.with_weighted_correlations(pairs, &strengths)
    }

    /// Add pairwise-correlation factors with prior strengths (typically
    /// the fitted weights from
    /// [`crate::structure::learn_structure`]). Strengths seed the
    /// correlation weights and drive the redundancy discount of the
    /// correlated-training initialization.
    pub fn with_weighted_correlations(
        mut self,
        pairs: &[(usize, usize)],
        strengths: &[f64],
    ) -> Self {
        assert_eq!(pairs.len(), strengths.len(), "one strength per pair");
        let mut seen = std::collections::BTreeSet::new();
        for (&(a, b), &s) in pairs.iter().zip(strengths) {
            assert!(a < self.n && b < self.n, "correlation pair out of range");
            assert_ne!(a, b, "self-correlation is meaningless");
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                let idx = self.corr_pairs.len();
                self.corr_pairs.push(key);
                self.w_corr.push(0.0);
                self.corr_strength.push(s.abs());
                self.corr_adj[key.0].push((idx, key.1));
                self.corr_adj[key.1].push((idx, key.0));
            }
        }
        self
    }

    /// Number of labeling functions.
    pub fn num_lfs(&self) -> usize {
        self.n
    }

    /// The label scheme.
    pub fn scheme(&self) -> LabelScheme {
        self.scheme
    }

    /// The modeled correlation pairs.
    pub fn correlations(&self) -> &[(usize, usize)] {
        &self.corr_pairs
    }

    /// Learned correlation weights (parallel to
    /// [`Self::correlations`]).
    pub fn correlation_weights(&self) -> &[f64] {
        &self.w_corr
    }

    /// Learned accuracy weights (log-odds scale).
    pub fn accuracy_weights(&self) -> &[f64] {
        &self.w_acc
    }

    /// Learned propensity weights.
    pub fn propensity_weights(&self) -> &[f64] {
        &self.w_lab
    }

    /// Learned class-balance weights (log-prior scale); softmax of these
    /// is the model's implied class distribution.
    pub fn class_balance_weights(&self) -> &[f64] {
        &self.b_class
    }

    /// The model's implied class prior `softmax(b)`.
    pub fn implied_class_prior(&self) -> Vec<f64> {
        let mut p = self.b_class.clone();
        softmax_in_place(&mut p);
        p
    }

    /// Implied LF accuracies `α_j = e^{w_j} / (e^{w_j} + K − 1)`
    /// (appendix A.1 generalized to K classes).
    pub fn implied_accuracies(&self) -> Vec<f64> {
        let k1 = (self.scheme.num_classes() - 1) as f64;
        self.w_acc
            .iter()
            .map(|&w| {
                let e = w.exp();
                e / (e + k1)
            })
            .collect()
    }

    /// Export the learned parameters (see [`ModelParams`]).
    pub fn to_params(&self) -> ModelParams {
        ModelParams {
            cardinality: match self.scheme {
                LabelScheme::Binary => 2,
                LabelScheme::MultiClass(k) => k,
            },
            num_lfs: self.n,
            w_lab: self.w_lab.clone(),
            w_acc: self.w_acc.clone(),
            corr_pairs: self.corr_pairs.clone(),
            w_corr: self.w_corr.clone(),
            corr_strength: self.corr_strength.clone(),
            b_class: self.b_class.clone(),
        }
    }

    /// Rebuild a fitted model from exported parameters (the inverse of
    /// [`Self::to_params`]). Untrusted input (a snapshot file) comes
    /// through here, so every structural invariant the constructors
    /// assert is checked ([`ModelParams::validate`]) and violations
    /// return a typed [`ParamsError`]: weight-vector lengths, pair
    /// ranges and normalization, and finite weights.
    pub fn from_params(params: ModelParams) -> Result<GenerativeModel, ParamsError> {
        params.validate()?;
        let ModelParams {
            cardinality,
            num_lfs: n,
            w_lab,
            w_acc,
            corr_pairs,
            w_corr,
            corr_strength,
            b_class,
        } = params;
        let scheme = LabelScheme::from_cardinality(cardinality);
        let mut corr_adj = vec![Vec::new(); n];
        for (idx, &(a, b)) in corr_pairs.iter().enumerate() {
            corr_adj[a].push((idx, b));
            corr_adj[b].push((idx, a));
        }
        Ok(GenerativeModel {
            scheme,
            n,
            w_lab,
            w_acc,
            corr_pairs,
            w_corr,
            corr_strength,
            corr_adj,
            b_class,
        })
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    /// Posterior `p(y = class | Λ_i)` for one row of votes.
    ///
    /// Correlation and propensity factors cancel (they do not involve
    /// `y`), so the posterior depends only on the accuracy weights and
    /// the class-balance weights — but those weights are *fit*
    /// differently when correlations are modeled, which is where the
    /// correction of Example 3.1 comes from.
    pub fn posterior(&self, cols: &[u32], votes: &[Vote]) -> Vec<f64> {
        let k = self.scheme.num_classes();
        let mut scores = self.b_class.clone();
        debug_assert_eq!(scores.len(), k);
        for (&c, &v) in cols.iter().zip(votes) {
            if let Some(class) = self.scheme.class_of_vote(v) {
                scores[class] += self.w_acc[c as usize];
            }
        }
        softmax_in_place(&mut scores);
        scores
    }

    /// [`Self::posterior`] into a caller-owned slice of
    /// `scheme().num_classes()` elements, allocating nothing.
    ///
    /// Performs the identical float-op sequence — copy the class-balance
    /// weights, accumulate accuracy weights, softmax in place — so the
    /// written values are bit-identical to `posterior`'s. This is the
    /// kernel under the serving layer's flat posterior arena.
    ///
    /// Panics if `out.len() != scheme().num_classes()`.
    pub fn posterior_into(&self, cols: &[u32], votes: &[Vote], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.b_class.len(),
            "posterior_into needs a slice of num_classes elements"
        );
        out.copy_from_slice(&self.b_class);
        for (&c, &v) in cols.iter().zip(votes) {
            if let Some(class) = self.scheme.class_of_vote(v) {
                out[class] += self.w_acc[c as usize];
            }
        }
        softmax_in_place(out);
    }

    /// Posterior class distributions for every row.
    ///
    /// Large matrices (≥ [`SCALEOUT_MIN_ROWS`] rows) are automatically
    /// routed through the pattern-deduplicated path — the output is
    /// bit-identical to [`Self::marginals_rowwise`] either way, because
    /// a pattern's posterior is computed by the exact float-op sequence
    /// its rows' posteriors would have used. Callers that already hold a
    /// [`ShardedMatrix`] plan should use [`Self::marginals_with`] to
    /// skip the per-call index build; callers that want the row-wise
    /// walk unconditionally (mostly-unique rows, where dedup loses to
    /// its own bookkeeping) call [`Self::marginals_rowwise`] directly.
    pub fn marginals(&self, lambda: &LabelMatrix) -> Vec<Vec<f64>> {
        if lambda.num_points() >= SCALEOUT_MIN_ROWS {
            let plan = ShardedMatrix::build(lambda, 0);
            self.marginals_with(lambda, &plan)
        } else {
            self.marginals_rowwise(lambda)
        }
    }

    /// Posterior class distributions for every row, one posterior
    /// computation per row — the reference path the scale-out paths are
    /// property-tested against (and the benchmark baseline).
    pub fn marginals_rowwise(&self, lambda: &LabelMatrix) -> Vec<Vec<f64>> {
        (0..lambda.num_points())
            .map(|i| {
                let (cols, votes) = lambda.row(i);
                self.posterior(cols, votes)
            })
            .collect()
    }

    /// Posterior class distributions for every row, computed once per
    /// unique vote pattern of the prebuilt plan and scattered back to
    /// rows. Bit-identical to [`Self::marginals_rowwise`] for any shard
    /// count.
    pub fn marginals_with(&self, lambda: &LabelMatrix, plan: &ShardedMatrix) -> Vec<Vec<f64>> {
        self.assert_plan_matches(lambda, plan);
        let per_shard: Vec<Vec<Vec<f64>>> = plan.map_shards(|idx| {
            let mut posts = vec![Vec::new(); idx.num_slots()];
            for (p, cols, votes, _) in idx.live_patterns() {
                posts[p] = self.posterior(cols, votes);
            }
            posts
        });
        let mut out = vec![Vec::new(); lambda.num_points()];
        for (idx, posts) in plan.shards().iter().zip(&per_shard) {
            for row in idx.row_range() {
                out[row] = posts[idx.pattern_of_row(row)].clone();
            }
        }
        out
    }

    /// Binary convenience: `p(y = +1 | Λ_i)` per row (auto scale-out,
    /// like [`Self::marginals`]).
    pub fn prob_positive(&self, lambda: &LabelMatrix) -> Vec<f64> {
        assert_eq!(self.scheme, LabelScheme::Binary, "binary scheme only");
        self.marginals(lambda).into_iter().map(|p| p[0]).collect()
    }

    fn assert_plan_matches(&self, lambda: &LabelMatrix, plan: &ShardedMatrix) {
        assert_eq!(
            plan.num_rows(),
            lambda.num_points(),
            "sharded plan covers {} rows but Λ has {}",
            plan.num_rows(),
            lambda.num_points()
        );
        assert_eq!(
            plan.num_lfs(),
            lambda.num_lfs(),
            "sharded plan built for {} LFs but Λ has {}",
            plan.num_lfs(),
            lambda.num_lfs()
        );
    }

    /// Hard predictions: the MAP class as a vote value; 0 when the
    /// posterior is exactly uniform over its top classes (no evidence).
    pub fn predicted_labels(&self, lambda: &LabelMatrix) -> Vec<Vote> {
        self.marginals(lambda)
            .into_iter()
            .map(|post| {
                let best = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let winners: Vec<usize> = (0..post.len())
                    .filter(|&c| (post[c] - best).abs() < 1e-12)
                    .collect();
                if winners.len() == 1 {
                    self.scheme.vote_of_class(winners[0])
                } else {
                    0
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Training
    // ------------------------------------------------------------------

    /// The sharded execution plan [`Self::fit`] would build for this
    /// config, or `None` when the row-wise path applies. Callers that
    /// run several passes over the same matrix (pipeline, incremental
    /// session) build the plan once and hand it to [`Self::fit_with`] /
    /// [`Self::marginals_with`].
    pub fn plan_for(lambda: &LabelMatrix, cfg: &TrainConfig) -> Option<ShardedMatrix> {
        match cfg.scaleout {
            Scaleout::RowWise => None,
            Scaleout::Sharded { shards } => Some(ShardedMatrix::build(lambda, shards)),
            Scaleout::Auto => {
                (lambda.num_points() >= SCALEOUT_MIN_ROWS).then(|| ShardedMatrix::build(lambda, 0))
            }
        }
    }

    /// Fit to a label matrix by maximizing the (smoothed) marginal
    /// likelihood, resolving [`TrainConfig::scaleout`] internally.
    pub fn fit(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) -> FitReport {
        let plan = Self::plan_for(lambda, cfg);
        self.fit_exec(lambda, plan.as_ref(), cfg)
    }

    /// [`Self::fit`] against a prebuilt sharded plan (must cover exactly
    /// this matrix), skipping the per-call plan build.
    pub fn fit_with(
        &mut self,
        lambda: &LabelMatrix,
        plan: &ShardedMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        self.fit_exec(lambda, Some(plan), cfg)
    }

    fn fit_exec(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) -> FitReport {
        assert_eq!(
            lambda.num_lfs(),
            self.n,
            "matrix has {} LFs but model has {}",
            lambda.num_lfs(),
            self.n
        );
        if let Some(p) = plan {
            self.assert_plan_matches(lambda, p);
        }
        for w in self.w_acc.iter_mut() {
            *w = cfg.init_acc_weight;
        }
        self.set_class_balance(lambda, plan, cfg);
        if cfg.init_from_majority_vote && lambda.num_points() > 0 {
            self.init_acc_from_majority_vote(lambda, plan, cfg);
        }
        self.init_lab_from_coverage(lambda, plan);
        if lambda.num_points() == 0 {
            return FitReport {
                epochs: 0,
                final_nll: 0.0,
                used_gibbs: false,
                warm_started: false,
            };
        }
        if self.corr_pairs.is_empty() {
            self.fit_independent_exact(lambda, plan, cfg)
        } else {
            self.fit_correlated_cd(lambda, cfg)
        }
    }

    /// Fix the class-balance weights per the configured policy.
    fn set_class_balance(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) {
        let k = self.scheme.num_classes();
        match &cfg.class_balance {
            ClassBalance::Uniform => self.b_class.iter_mut().for_each(|b| *b = 0.0),
            ClassBalance::Fixed(p) => {
                assert_eq!(p.len(), k, "class balance needs one entry per class");
                for (b, &pc) in self.b_class.iter_mut().zip(p) {
                    *b = pc.max(1e-3).ln();
                }
            }
            ClassBalance::FromMajorityVote => {
                let mut counts = vec![1usize; k]; // add-one smoothing
                match plan {
                    // The MV class is a pure function of the vote
                    // signature, and these are integer counts — the
                    // per-pattern tally is *exactly* the row-wise one.
                    Some(plan) => {
                        let per_shard = plan.map_shards(|idx| {
                            let mut c = vec![0usize; k];
                            let mut tally = vec![0usize; k];
                            for (_, _, votes, cnt) in idx.live_patterns() {
                                if let Some(mv) = self.plurality_class(votes, &mut tally) {
                                    c[mv] += cnt;
                                }
                            }
                            c
                        });
                        for c in per_shard {
                            for (tot, add) in counts.iter_mut().zip(c) {
                                *tot += add;
                            }
                        }
                    }
                    None => {
                        for c in self.majority_classes(lambda).into_iter().flatten() {
                            counts[c] += 1;
                        }
                    }
                }
                let total: f64 = counts.iter().map(|&c| c as f64).sum();
                for (b, c) in self.b_class.iter_mut().zip(counts) {
                    *b = (c as f64 / total).ln();
                }
            }
        }
    }

    /// Plurality class of one vote set (`None` on ties and no votes);
    /// `tally` is a reusable `num_classes`-sized scratch buffer.
    fn plurality_class(&self, votes: &[Vote], tally: &mut [usize]) -> Option<usize> {
        tally.iter_mut().for_each(|t| *t = 0);
        for &v in votes {
            if let Some(c) = self.scheme.class_of_vote(v) {
                tally[c] += 1;
            }
        }
        let best = tally.iter().copied().max().unwrap_or(0);
        if best == 0 {
            return None;
        }
        let mut winner = None;
        for (c, &t) in tally.iter().enumerate() {
            if t == best {
                if winner.is_some() {
                    return None; // tie
                }
                winner = Some(c);
            }
        }
        winner
    }

    /// Plurality class per row (`None` on ties and empty rows).
    fn majority_classes(&self, lambda: &LabelMatrix) -> Vec<Option<usize>> {
        let k = self.scheme.num_classes();
        let mut out = Vec::with_capacity(lambda.num_points());
        let mut tally = vec![0usize; k];
        for i in 0..lambda.num_points() {
            let (_, votes) = lambda.row(i);
            out.push(self.plurality_class(votes, &mut tally));
        }
        out
    }

    /// Initialize the propensity weights so the model's implied coverage
    /// matches each LF's observed coverage. Starting from `w_lab = 0`
    /// (implied coverage ≈ 77% for binary) while real suites cover a few
    /// percent makes the early accuracy gradients strongly negative for
    /// *every* LF while the propensities calibrate; minority-class LFs
    /// never recover from that transient and the fit lands in a
    /// collapsed optimum. Solving
    /// `coverage = e^lab (e^acc + K−1) / (1 + e^lab (e^acc + K−1))`
    /// for `lab` removes the transient entirely.
    fn init_lab_from_coverage(&mut self, lambda: &LabelMatrix, plan: Option<&ShardedMatrix>) {
        let m = lambda.num_points();
        if m == 0 {
            return;
        }
        let k1 = (self.scheme.num_classes() - 1) as f64;
        let mut votes = vec![0usize; self.n];
        match plan {
            Some(plan) => {
                // Per-pattern coverage counts are integer-exact.
                for c in plan.map_shards(|idx| {
                    let mut c = vec![0usize; self.n];
                    for (_, cols, _, cnt) in idx.live_patterns() {
                        for &j in cols {
                            c[j as usize] += cnt;
                        }
                    }
                    c
                }) {
                    for (tot, add) in votes.iter_mut().zip(c) {
                        *tot += add;
                    }
                }
            }
            None => {
                for (_, j, _) in lambda.iter() {
                    votes[j] += 1;
                }
            }
        }
        for j in 0..self.n {
            let c = ((votes[j] as f64 + 0.5) / (m as f64 + 1.0)).clamp(1e-4, 1.0 - 1e-4);
            let s = c / (1.0 - c);
            self.w_lab[j] = (s.ln() - (self.w_acc[j].exp() + k1).ln()).clamp(-W_CLAMP, W_CLAMP);
        }
    }

    /// Seed accuracy weights from agreement with the unweighted majority
    /// vote: `w_j = ½ log(a_j / (1 − a_j))` where `a_j` is LF j's
    /// agreement rate with MV on rows where both commit, shrunk toward
    /// the prior and clamped to a moderate band so the data still
    /// dominates.
    fn init_acc_from_majority_vote(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) {
        let mut agree = vec![0usize; self.n];
        let mut total = vec![0usize; self.n];
        match plan {
            Some(plan) => {
                // Agreement with the row's own majority vote is a pure
                // function of the signature; integer counts are exact.
                let k = self.scheme.num_classes();
                for (a, t) in plan.map_shards(|idx| {
                    let mut a = vec![0usize; self.n];
                    let mut t = vec![0usize; self.n];
                    let mut tally = vec![0usize; k];
                    for (_, cols, votes, cnt) in idx.live_patterns() {
                        let Some(mv_class) = self.plurality_class(votes, &mut tally) else {
                            continue;
                        };
                        for (&c, &v) in cols.iter().zip(votes) {
                            if let Some(class) = self.scheme.class_of_vote(v) {
                                t[c as usize] += cnt;
                                if class == mv_class {
                                    a[c as usize] += cnt;
                                }
                            }
                        }
                    }
                    (a, t)
                }) {
                    for j in 0..self.n {
                        agree[j] += a[j];
                        total[j] += t[j];
                    }
                }
            }
            None => {
                let mv = self.majority_classes(lambda);
                for i in 0..lambda.num_points() {
                    let Some(mv_class) = mv[i] else { continue };
                    let (cols, votes) = lambda.row(i);
                    for (&c, &v) in cols.iter().zip(votes) {
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            total[c as usize] += 1;
                            if class == mv_class {
                                agree[c as usize] += 1;
                            }
                        }
                    }
                }
            }
        }
        for j in 0..self.n {
            if total[j] < 5 {
                continue; // keep the prior for LFs with no evidence
            }
            // Shrink toward the prior (5 pseudo-votes at the prior's
            // implied accuracy) so tiny-coverage LFs stay near w̄.
            let prior_acc = {
                let e = cfg.init_acc_weight.exp();
                e / (e + (self.scheme.num_classes() - 1) as f64)
            };
            let a = (agree[j] as f64 + 5.0 * prior_acc) / (total[j] as f64 + 5.0);
            let a = a.clamp(0.05, 0.95);
            self.w_acc[j] = (0.5 * (a / (1.0 - a)).ln()).clamp(-2.0, 3.0);
        }
    }

    /// Full-batch exact-gradient training for the independent model.
    fn fit_independent_exact(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) -> FitReport {
        let (epochs, nll) = self.run_exact_epochs(lambda, plan, cfg);
        FitReport {
            epochs,
            final_nll: nll,
            used_gibbs: false,
            warm_started: false,
        }
    }

    /// The shared exact-inference training loop (cold fits and warm
    /// restarts alike), maximizing the pseudocount-smoothed marginal
    /// likelihood of the independent model in two phases:
    ///
    /// 1. **EM warm-up** — the model is a tied-error-rate Dawid–Skene
    ///    mixture, so the M-step is closed-form per LF: with posteriors
    ///    `q_i(y)` (E-step, exact) and expected statistics
    ///    `A_j = Σ_{i:Λ_ij≠∅} q_i(Λ_ij)`, `D_j = V_j − A_j`,
    ///    `Z_j = m − V_j`, the Dirichlet-smoothed update is
    ///    `w_acc_j = ln((A_j+α_a)(K−1)/(D_j+α_d))`,
    ///    `w_lab_j = ln((D_j+α_d)/((K−1)(Z_j+α_z)))`, with the
    ///    pseudocounts encoding the paper's LF-accuracy prior (see
    ///    [`prior_pseudocounts`]). A handful of sweeps reaches the right
    ///    basin from any reasonable initialization.
    /// 2. **Damped Newton** — EM's linear tail is governed by the
    ///    missing-information ratio and crawls on real suites, for warm
    ///    restarts just as for cold fits. The exact gradient and Hessian
    ///    of the smoothed likelihood are cheap here (`O(Σ_i |V_i|²)` per
    ///    iteration), so a Levenberg-damped Newton phase converges
    ///    quadratically: the last ten decades of error cost ~3
    ///    iterations instead of ~150 sweeps — which is precisely what
    ///    makes a warm restart (already near the optimum) almost free.
    ///
    /// Both phases move toward the same stationary point of the same
    /// smoothed likelihood, independent of where iteration started — the
    /// property the warm-start path's ≤1e-9 marginal-equivalence
    /// guarantee rests on. Iteration stops one polish step after the
    /// gradient sup-norm falls below `(m+1)·cfg.tol` (or at the
    /// `cfg.epochs` cap).
    ///
    /// Returns `(iterations run, final NLL)`.
    fn run_exact_epochs(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
    ) -> (usize, f64) {
        const EM_WARMUP_MAX: usize = 15;
        // Warm-up only needs to reach the right basin — the damped Newton
        // phase is robust from a rough start (it falls back to EM sweeps
        // when a step is rejected), so entering it early is pure win.
        const EM_BASIN_TOL: f64 = 3e-2;
        let m = lambda.num_points() as f64;
        let n = self.n;
        if n == 0 {
            return (0, 0.0);
        }
        let k1 = (self.scheme.num_classes() - 1) as f64;
        let (a_agree, a_dis, a_abs) = prior_pseudocounts(cfg.init_acc_weight, k1);
        let m_eff = m + a_agree + a_dis + a_abs;
        let dim = 2 * n; // parameter order: [w_lab | w_acc]
        let mut iters = 0usize;

        // ---------------- Phase 1: plain EM sweeps ----------------
        let mut stats = ExactPassStats::new(n);
        // Per-shard accumulator pool, allocated on the first sharded
        // pass and reused by every later iteration of both phases.
        let mut pool: Vec<ShardPass> = Vec::new();
        loop {
            self.exact_pass(lambda, plan, &mut stats, false, &mut pool);
            iters += 1;
            let mut f_inf = 0.0f64;
            for j in 0..n {
                let a_j = stats.agree[j];
                let d_j = (stats.votes_cast[j] - a_j).max(0.0);
                let z_j = (m - stats.votes_cast[j]).max(0.0);
                let new_lab =
                    (((d_j + a_dis) / (k1 * (z_j + a_abs))).ln()).clamp(-W_CLAMP, W_CLAMP);
                let mut new_acc =
                    (((a_j + a_agree) * k1 / (d_j + a_dis)).ln()).clamp(-W_CLAMP, W_CLAMP);
                if cfg.clamp_nonadversarial && new_acc < 0.0 {
                    new_acc = 0.0;
                }
                f_inf = f_inf
                    .max((new_lab - self.w_lab[j]).abs())
                    .max((new_acc - self.w_acc[j]).abs());
                self.w_lab[j] = new_lab;
                self.w_acc[j] = new_acc;
            }
            if f_inf < EM_BASIN_TOL || iters >= EM_WARMUP_MAX || iters >= cfg.epochs {
                break;
            }
        }

        // ---------------- Phase 2: Levenberg-damped Newton ----------------
        let g_stop = (m + 1.0) * if cfg.tol > 0.0 { cfg.tol } else { 0.0 };
        let mut lm = 1e-3f64; // Levenberg damping, adapted per step
        let mut polished = false;
        let mut best_g = f64::INFINITY;
        let mut stalled = 0usize;
        let mut grad = vec![0.0f64; dim];
        let mut hess = vec![vec![0.0f64; dim]; dim];
        while iters < cfg.epochs {
            self.exact_pass(lambda, plan, &mut stats, true, &mut pool);
            iters += 1;
            let obj_cur = self.penalized_objective(&stats, m, (a_agree, a_dis, a_abs));

            // Assemble gradient and Hessian of the smoothed likelihood.
            for g in grad.iter_mut() {
                *g = 0.0;
            }
            for row in hess.iter_mut() {
                for h in row.iter_mut() {
                    *h = 0.0;
                }
            }
            for j in 0..n {
                let e_lab = self.w_lab[j].exp();
                let e_la = (self.w_lab[j] + self.w_acc[j]).exp();
                let z = 1.0 + e_la + k1 * e_lab;
                let p1 = e_la / z; // P(agree)
                let v = (e_la + k1 * e_lab) / z; // P(vote at all)
                grad[j] = stats.votes_cast[j] + a_agree + a_dis - m_eff * v;
                grad[n + j] = stats.agree[j] + a_agree - m_eff * p1;
                hess[j][j] -= m_eff * v * (1.0 - v);
                hess[j][n + j] -= m_eff * p1 * (1.0 - v);
                hess[n + j][j] -= m_eff * p1 * (1.0 - v);
                hess[n + j][n + j] -= m_eff * p1 * (1.0 - p1);
            }
            for a in 0..n {
                for b in 0..n {
                    hess[n + a][n + b] += stats.acc_moment[a][b];
                }
            }

            // Box-constraint mask: coordinates pinned at a bound with an
            // outward gradient are frozen for this step (and excluded
            // from the stop test).
            let mut active = vec![true; dim];
            for j in 0..n {
                for (d, w) in [(j, self.w_lab[j]), (n + j, self.w_acc[j])] {
                    let at_lo =
                        w <= -W_CLAMP + 1e-12 || (d >= n && cfg.clamp_nonadversarial && w <= 1e-15);
                    let at_hi = w >= W_CLAMP - 1e-12;
                    if (at_lo && grad[d] < 0.0) || (at_hi && grad[d] > 0.0) {
                        active[d] = false;
                    }
                }
            }
            let g_inf = (0..dim)
                .filter(|&d| active[d])
                .fold(0.0f64, |acc, d| acc.max(grad[d].abs()));
            // Backstop: once the gradient stops halving, iteration has
            // hit the arithmetic noise floor — every later iterate is
            // equivalent, so stop rather than spin to the epoch cap.
            if g_inf < best_g * 0.5 {
                best_g = g_inf;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= 8 {
                    break;
                }
            }
            if cfg.tol > 0.0 && g_inf <= g_stop {
                if polished {
                    break;
                }
                // One more quadratic step from here typically lands at
                // the arithmetic noise floor — take it, then stop.
                polished = true;
            }

            // Try damped steps: solve (−H + λ·diag) δ = g, ascend, accept
            // on objective improvement; otherwise increase damping.
            let mut accepted = false;
            for _attempt in 0..10 {
                let mut a_mat = vec![vec![0.0f64; dim]; dim];
                let mut rhs = vec![0.0f64; dim];
                for d in 0..dim {
                    if !active[d] {
                        a_mat[d][d] = 1.0;
                        rhs[d] = 0.0;
                        continue;
                    }
                    for e in 0..dim {
                        if active[e] {
                            a_mat[d][e] = -hess[d][e];
                        }
                    }
                    a_mat[d][d] += lm * (hess[d][d].abs() + 1e-8);
                    rhs[d] = grad[d];
                }
                let Some(delta) = solve_small(&mut a_mat, &mut rhs) else {
                    lm *= 10.0;
                    continue;
                };
                let saved_lab = self.w_lab.clone();
                let saved_acc = self.w_acc.clone();
                for j in 0..n {
                    self.w_lab[j] = (self.w_lab[j] + delta[j]).clamp(-W_CLAMP, W_CLAMP);
                    let mut acc = self.w_acc[j] + delta[n + j];
                    if cfg.clamp_nonadversarial && acc < 0.0 {
                        acc = 0.0;
                    }
                    self.w_acc[j] = acc.clamp(-W_CLAMP, W_CLAMP);
                }
                self.exact_pass(lambda, plan, &mut stats, false, &mut pool);
                iters += 1;
                let obj_new = self.penalized_objective(&stats, m, (a_agree, a_dis, a_abs));
                // Acceptance slack at the objective's arithmetic noise
                // floor (the objective is a sum of ~m terms of O(1);
                // demanding more than ~1e-14·|obj| rejects good steps at
                // random near convergence).
                let slack = 1e-12f64.max(obj_cur.abs() * 1e-14);
                if obj_new >= obj_cur - slack {
                    lm = (lm / 3.0).max(1e-12);
                    accepted = true;
                    break;
                }
                self.w_lab = saved_lab;
                self.w_acc = saved_acc;
                lm *= 10.0;
            }
            if !accepted {
                // Heavily damped Newton keeps failing (numerically odd
                // region): fall back to one plain EM sweep, which always
                // makes progress, and reset the damping.
                self.exact_pass(lambda, plan, &mut stats, false, &mut pool);
                iters += 1;
                for j in 0..n {
                    let a_j = stats.agree[j];
                    let d_j = (stats.votes_cast[j] - a_j).max(0.0);
                    let z_j = (m - stats.votes_cast[j]).max(0.0);
                    self.w_lab[j] =
                        (((d_j + a_dis) / (k1 * (z_j + a_abs))).ln()).clamp(-W_CLAMP, W_CLAMP);
                    let mut acc =
                        (((a_j + a_agree) * k1 / (d_j + a_dis)).ln()).clamp(-W_CLAMP, W_CLAMP);
                    if cfg.clamp_nonadversarial && acc < 0.0 {
                        acc = 0.0;
                    }
                    self.w_acc[j] = acc;
                }
                lm = 1e-3;
            }
        }

        // Final bookkeeping pass for the reported NLL.
        self.exact_pass(lambda, plan, &mut stats, false, &mut pool);
        let nll = stats.nll(m, &self.b_class, &self.w_lab, &self.w_acc, k1);
        (iters, nll)
    }

    /// One exact E-pass over Λ: posteriors accumulated into the expected
    /// per-LF statistics (and, when `with_moments`, the posterior
    /// second-moment matrix the Newton phase needs). With a plan, the
    /// pass runs once per unique pattern weighted by multiplicity, per
    /// shard, and merges the per-shard partials in shard order — the
    /// scale-out core of the whole crate.
    fn exact_pass(
        &self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        stats: &mut ExactPassStats,
        with_moments: bool,
        pool: &mut Vec<ShardPass>,
    ) {
        match plan {
            Some(plan) => self.exact_pass_sharded(plan, stats, with_moments, pool),
            None => self.exact_pass_rowwise(lambda, stats, with_moments),
        }
    }

    /// Row-wise reference implementation of the exact E-pass.
    fn exact_pass_rowwise(
        &self,
        lambda: &LabelMatrix,
        stats: &mut ExactPassStats,
        with_moments: bool,
    ) {
        let k = self.scheme.num_classes();
        stats.reset(with_moments);
        let mut scores = vec![0.0f64; k];
        let mut row_classes: Vec<(usize, usize, f64)> = Vec::new(); // (lf, class, q)
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            scores.copy_from_slice(&self.b_class);
            let mut lab_term = 0.0;
            for (&c, &v) in cols.iter().zip(votes) {
                let j = c as usize;
                lab_term += self.w_lab[j];
                if let Some(class) = self.scheme.class_of_vote(v) {
                    scores[class] += self.w_acc[j];
                }
            }
            let lse = logsumexp(&scores);
            stats.loglik += lab_term + lse;
            row_classes.clear();
            for (&c, &v) in cols.iter().zip(votes) {
                let j = c as usize;
                stats.votes_cast[j] += 1.0;
                if let Some(class) = self.scheme.class_of_vote(v) {
                    let q = (scores[class] - lse).exp();
                    stats.agree[j] += q;
                    if with_moments {
                        row_classes.push((j, class, q));
                    }
                }
            }
            if with_moments {
                // cov_i(φ_j, φ_k) over the row's voting LFs, where
                // φ_j = 1{y = class(Λ_ij)}.
                for (x, &(j, cj, qj)) in row_classes.iter().enumerate() {
                    stats.acc_moment[j][j] += qj * (1.0 - qj);
                    for &(l, cl, ql) in row_classes.iter().skip(x + 1) {
                        let joint = if cj == cl { qj } else { 0.0 };
                        let cov = joint - qj * ql;
                        stats.acc_moment[j][l] += cov;
                        stats.acc_moment[l][j] += cov;
                    }
                }
            }
        }
    }

    /// Pattern-deduplicated, sharded exact E-pass: each shard walks its
    /// *unique* vote patterns once, scaling every statistic by the
    /// pattern's multiplicity, and the per-shard partials merge in shard
    /// index order (deterministic for a fixed shard count regardless of
    /// how many worker threads ran). On a DryBell-shaped corpus this
    /// turns the O(m) posterior computations of one pass into
    /// O(#patterns).
    fn exact_pass_sharded(
        &self,
        plan: &ShardedMatrix,
        stats: &mut ExactPassStats,
        with_moments: bool,
        pool: &mut Vec<ShardPass>,
    ) {
        let k = self.scheme.num_classes();
        let n = self.n;
        if pool.len() != plan.shards().len() {
            pool.clear();
            pool.resize_with(plan.shards().len(), || ShardPass::new(n, k));
        }
        plan.for_each_shard_with(pool, |idx, slot| {
            let s = &mut slot.stats;
            s.reset(with_moments);
            let scores = &mut slot.scores;
            let row_classes = &mut slot.row_classes;
            for (_, cols, votes, cnt) in idx.live_patterns() {
                let c = cnt as f64;
                scores.copy_from_slice(&self.b_class);
                let mut lab_term = 0.0;
                for (&col, &v) in cols.iter().zip(votes) {
                    let j = col as usize;
                    lab_term += self.w_lab[j];
                    if let Some(class) = self.scheme.class_of_vote(v) {
                        scores[class] += self.w_acc[j];
                    }
                }
                let lse = logsumexp(scores);
                s.loglik += c * (lab_term + lse);
                row_classes.clear();
                for (&col, &v) in cols.iter().zip(votes) {
                    let j = col as usize;
                    s.votes_cast[j] += c;
                    if let Some(class) = self.scheme.class_of_vote(v) {
                        let q = (scores[class] - lse).exp();
                        s.agree[j] += c * q;
                        if with_moments {
                            row_classes.push((j, class, q));
                        }
                    }
                }
                if with_moments {
                    for (x, &(j, cj, qj)) in row_classes.iter().enumerate() {
                        s.acc_moment[j][j] += c * qj * (1.0 - qj);
                        for &(l, cl, ql) in row_classes.iter().skip(x + 1) {
                            let joint = if cj == cl { qj } else { 0.0 };
                            let cov = c * (joint - qj * ql);
                            s.acc_moment[j][l] += cov;
                            s.acc_moment[l][j] += cov;
                        }
                    }
                }
            }
        });
        stats.reset(with_moments);
        for slot in pool.iter() {
            stats.merge(&slot.stats, with_moments);
        }
    }

    /// The pseudocount-smoothed log-likelihood (up to constants shared
    /// by every iterate) — the Newton phase's acceptance objective.
    fn penalized_objective(&self, stats: &ExactPassStats, m: f64, alphas: (f64, f64, f64)) -> f64 {
        let (a_agree, a_dis, a_abs) = alphas;
        let k1 = (self.scheme.num_classes() - 1) as f64;
        let mut obj = stats.loglik;
        for j in 0..self.n {
            let e_lab = self.w_lab[j].exp();
            let e_la = (self.w_lab[j] + self.w_acc[j]).exp();
            let z = 1.0 + e_la + k1 * e_lab;
            obj += a_agree * (self.w_lab[j] + self.w_acc[j]) + a_dis * self.w_lab[j]
                - (m + a_agree + a_dis + a_abs) * z.ln();
        }
        obj
    }

    /// Build an unfitted model over `col_map.len()` LFs whose per-LF
    /// weights are copied from `prev` where `col_map[j] = Some(old_j)`;
    /// `None` columns keep the fresh-model defaults. Correlation factors
    /// are not carried (add them with
    /// [`Self::with_weighted_correlations`] afterwards). This is the
    /// warm-start bridge for *structural* suite edits: after adding or
    /// removing an LF, map every surviving column to its previous weights
    /// and [`Self::fit_warm`] from the remapped model.
    pub fn remapped_from(prev: &GenerativeModel, col_map: &[Option<usize>]) -> GenerativeModel {
        let mut gm = GenerativeModel::new(col_map.len(), prev.scheme);
        for (j, slot) in col_map.iter().enumerate() {
            if let Some(old) = slot {
                assert!(
                    *old < prev.n,
                    "col_map entry {old} out of range ({} LFs)",
                    prev.n
                );
                gm.w_lab[j] = prev.w_lab[*old];
                gm.w_acc[j] = prev.w_acc[*old];
            }
        }
        gm.b_class = prev.b_class.clone();
        gm
    }

    /// Warm-restart fit: start from a previously fitted model's
    /// parameters, re-initialize only the columns in `changed_cols`, and
    /// run the optimizer until convergence.
    ///
    /// For the exact independent path this converges to the same fixed
    /// point a cold [`Self::fit`] finds (the update's stationary point is
    /// step-size-independent), so with a convergence tolerance set
    /// ([`TrainConfig::tol`]) warm and cold marginals agree to ≤1e-9 —
    /// while the warm restart, starting next to the optimum, typically
    /// needs an order of magnitude fewer epochs after a one-LF edit.
    ///
    /// For correlated models the CD path is stochastic; warm-starting
    /// still reuses the previous weights (and the correlation weights of
    /// every pair both models share) as the initialization, but no
    /// bit-level equivalence with a cold fit is implied.
    ///
    /// `prev` must have the same LF count and scheme; `changed_cols`
    /// lists the columns whose LF was edited (an empty slice means only
    /// the data changed, e.g. a new candidate batch was ingested).
    pub fn fit_warm(
        &mut self,
        lambda: &LabelMatrix,
        cfg: &TrainConfig,
        prev: &GenerativeModel,
        changed_cols: &[usize],
    ) -> FitReport {
        let plan = Self::plan_for(lambda, cfg);
        self.fit_warm_exec(lambda, plan.as_ref(), cfg, prev, changed_cols)
    }

    /// [`Self::fit_warm`] against a prebuilt sharded plan (must cover
    /// exactly this matrix) — the incremental session's training path.
    pub fn fit_warm_with(
        &mut self,
        lambda: &LabelMatrix,
        plan: &ShardedMatrix,
        cfg: &TrainConfig,
        prev: &GenerativeModel,
        changed_cols: &[usize],
    ) -> FitReport {
        self.fit_warm_exec(lambda, Some(plan), cfg, prev, changed_cols)
    }

    fn fit_warm_exec(
        &mut self,
        lambda: &LabelMatrix,
        plan: Option<&ShardedMatrix>,
        cfg: &TrainConfig,
        prev: &GenerativeModel,
        changed_cols: &[usize],
    ) -> FitReport {
        if let Some(p) = plan {
            self.assert_plan_matches(lambda, p);
        }
        assert_eq!(
            lambda.num_lfs(),
            self.n,
            "matrix has {} LFs but model has {}",
            lambda.num_lfs(),
            self.n
        );
        assert_eq!(prev.n, self.n, "warm start requires matching LF count");
        assert_eq!(
            prev.scheme, self.scheme,
            "warm start requires matching scheme"
        );
        for &j in changed_cols {
            assert!(j < self.n, "changed col {j} out of range ({} LFs)", self.n);
        }

        // Adopt the previous optimum.
        self.w_lab.copy_from_slice(&prev.w_lab);
        self.w_acc.copy_from_slice(&prev.w_acc);
        // Correlation weights carry over where the pair survives; new
        // pairs keep the strength-seeded init set by the constructor.
        for (p, pair) in self.corr_pairs.iter().enumerate() {
            if let Some(prev_p) = prev.corr_pairs.iter().position(|q| q == pair) {
                self.w_corr[p] = prev.w_corr[prev_p];
            }
        }
        // The class balance is a deterministic function of Λ and the
        // policy — recompute so it matches what a cold fit would use.
        self.set_class_balance(lambda, plan, cfg);
        // Edited columns start from the cold-path initialization.
        for &j in changed_cols {
            self.reinit_column(lambda, cfg, j);
        }
        if lambda.num_points() == 0 {
            return FitReport {
                epochs: 0,
                final_nll: 0.0,
                used_gibbs: false,
                warm_started: true,
            };
        }
        if self.corr_pairs.is_empty() {
            let (epochs, nll) = self.run_exact_epochs(lambda, plan, cfg);
            FitReport {
                epochs,
                final_nll: nll,
                used_gibbs: false,
                warm_started: true,
            }
        } else {
            let mut report = self.fit_correlated_cd_from_current(lambda, cfg);
            report.warm_started = true;
            report
        }
    }

    /// Warm-start initialization for an edited column: one coordinate EM
    /// step. The column's parameters are set to their closed-form
    /// conditional MLE given posteriors computed from the *other*
    /// columns' (previously fitted) weights — i.e. the edited LF starts
    /// at its exact optimum conditioned on everything the model already
    /// believed, so the subsequent global EM polish starts next to the
    /// new joint optimum instead of perturbing every posterior with a
    /// generic prior init.
    fn reinit_column(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig, j: usize) {
        let m = lambda.num_points();
        if m == 0 {
            self.w_acc[j] = cfg.init_acc_weight;
            return;
        }
        let k = self.scheme.num_classes();
        let k1 = (k - 1) as f64;
        let jc = j as u32;
        let mut agree = 0.0f64;
        let mut votes_cast = 0.0f64;
        let mut scores = vec![0.0f64; k];
        for i in 0..m {
            let (cols, votes) = lambda.row(i);
            let Ok(pos) = cols.binary_search(&jc) else {
                continue;
            };
            // Posterior with column j masked out.
            scores.copy_from_slice(&self.b_class);
            for (&c, &v) in cols.iter().zip(votes) {
                if c != jc {
                    if let Some(class) = self.scheme.class_of_vote(v) {
                        scores[class] += self.w_acc[c as usize];
                    }
                }
            }
            softmax_in_place(&mut scores);
            votes_cast += 1.0;
            if let Some(class) = self.scheme.class_of_vote(votes[pos]) {
                agree += scores[class];
            }
        }
        let (a_agree, a_dis, a_abs) = prior_pseudocounts(cfg.init_acc_weight, k1);
        let d_j = (votes_cast - agree).max(0.0);
        let z_j = (m as f64 - votes_cast).max(0.0);
        self.w_lab[j] = (((d_j + a_dis) / (k1 * (z_j + a_abs))).ln()).clamp(-W_CLAMP, W_CLAMP);
        let mut acc = (((agree + a_agree) * k1 / (d_j + a_dis)).ln()).clamp(-W_CLAMP, W_CLAMP);
        if cfg.clamp_nonadversarial && acc < 0.0 {
            acc = 0.0;
        }
        self.w_acc[j] = acc;
    }

    /// Minibatch contrastive-divergence training for correlated models.
    ///
    /// Initialization discounts each LF's prior accuracy weight by its
    /// strength-weighted redundancy `1 + Σ_k ρ_jk` over its correlated
    /// partners: a cluster of near-copies carries roughly one voter's
    /// worth of evidence, so the discount keeps it from dominating the
    /// latent posterior before the correlation weights can explain its
    /// coherence. Without this, Example 3.1's pathology (a large
    /// low-accuracy correlated block out-voting a few accurate LFs) is a
    /// local optimum the SGD cannot leave, because the block pins the
    /// label posterior from the first epoch. Correlation weights start
    /// at their structure-learning strengths rather than zero so the
    /// model phase accounts for the redundancy from the first step.
    fn fit_correlated_cd(&mut self, lambda: &LabelMatrix, cfg: &TrainConfig) -> FitReport {
        let mut redundancy = vec![0.0f64; self.n];
        for (p, &(a, b)) in self.corr_pairs.iter().enumerate() {
            let s = self.corr_strength[p].min(1.5);
            redundancy[a] += s;
            redundancy[b] += s;
        }
        for j in 0..self.n {
            self.w_acc[j] = cfg.init_acc_weight / (1.0 + redundancy[j]);
        }
        for p in 0..self.corr_pairs.len() {
            self.w_corr[p] = self.corr_strength[p].min(2.0);
        }
        self.fit_correlated_cd_from_current(lambda, cfg)
    }

    /// The CD epoch loop, starting from whatever weights are currently
    /// set (the warm-start path enters here directly).
    fn fit_correlated_cd_from_current(
        &mut self,
        lambda: &LabelMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        let m = lambda.num_points();
        let k = self.scheme.num_classes();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..m).collect();
        let mut lr = cfg.cd_learning_rate;

        // Dense vote buffer reused by the Gibbs chain.
        let mut chain = vec![0 as Vote; self.n];
        let mut scores = vec![0.0f64; k];

        for _epoch in 0..cfg.cd_epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(cfg.batch_size) {
                let bs = batch.len() as f64;
                let mut g_lab = vec![0.0; self.n];
                let mut g_acc = vec![0.0; self.n];
                let mut g_corr = vec![0.0; self.corr_pairs.len()];

                for &i in batch {
                    let (cols, votes) = lambda.row(i);

                    // Posterior phase (exact).
                    let post = self.posterior(cols, votes);
                    for (&c, &v) in cols.iter().zip(votes) {
                        let j = c as usize;
                        g_lab[j] += 1.0;
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            g_acc[j] += post[class];
                        }
                    }

                    // Observed correlation agreements (vote agreement
                    // only — see the module docs on the factor).
                    chain.iter_mut().for_each(|v| *v = 0);
                    for (&c, &v) in cols.iter().zip(votes) {
                        chain[c as usize] = v;
                    }
                    for (p, &(a, b)) in self.corr_pairs.iter().enumerate() {
                        if chain[a] == chain[b] && chain[a] != 0 {
                            g_corr[p] += 1.0;
                        }
                    }

                    // Model phase: CD-k Gibbs chain from the observed row.
                    for _sweep in 0..cfg.gibbs_steps {
                        // Sample y' | Λ'.
                        scores.copy_from_slice(&self.b_class);
                        for (j, &v) in chain.iter().enumerate() {
                            if let Some(class) = self.scheme.class_of_vote(v) {
                                scores[class] += self.w_acc[j];
                            }
                        }
                        softmax_in_place(&mut scores);
                        let y_class = sample_categorical(&mut rng, &scores);
                        // Sample each Λ'_j | y', Λ'_{-j}.
                        for j in 0..self.n {
                            chain[j] = self.sample_vote(&mut rng, j, y_class, &chain);
                        }
                    }

                    // Subtract model-phase statistics.
                    for (j, &v) in chain.iter().enumerate() {
                        if v != 0 {
                            g_lab[j] -= 1.0;
                        }
                        // Accuracy factor: need y'; resample once more for
                        // an unbiased-ish pairing of (Λ', y').
                    }
                    scores.copy_from_slice(&self.b_class);
                    for (j, &v) in chain.iter().enumerate() {
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            scores[class] += self.w_acc[j];
                        }
                    }
                    softmax_in_place(&mut scores);
                    let y_final = sample_categorical(&mut rng, &scores);
                    for (j, &v) in chain.iter().enumerate() {
                        if let Some(class) = self.scheme.class_of_vote(v) {
                            if class == y_final {
                                g_acc[j] -= 1.0;
                            }
                        }
                    }
                    for (p, &(a, b)) in self.corr_pairs.iter().enumerate() {
                        if chain[a] == chain[b] && chain[a] != 0 {
                            g_corr[p] -= 1.0;
                        }
                    }
                }

                // Apply the averaged ascent step.
                for j in 0..self.n {
                    self.w_lab[j] = (self.w_lab[j] + lr * (g_lab[j] / bs - cfg.l2 * self.w_lab[j]))
                        .clamp(-W_CLAMP, W_CLAMP);
                    self.w_acc[j] = (self.w_acc[j] + lr * (g_acc[j] / bs - cfg.l2 * self.w_acc[j]))
                        .clamp(-W_CLAMP, W_CLAMP);
                    if cfg.clamp_nonadversarial && self.w_acc[j] < 0.0 {
                        self.w_acc[j] = 0.0;
                    }
                }
                for p in 0..self.corr_pairs.len() {
                    self.w_corr[p] = (self.w_corr[p]
                        + lr * (g_corr[p] / bs - cfg.l2 * self.w_corr[p]))
                        .clamp(-W_CLAMP, W_CLAMP);
                }
            }
            lr *= cfg.lr_decay;
        }

        FitReport {
            epochs: cfg.cd_epochs,
            final_nll: f64::NAN,
            used_gibbs: true,
            warm_started: false,
        }
    }

    /// Sample `Λ'_j` from its conditional given the class and the other
    /// chain entries.
    fn sample_vote(&self, rng: &mut StdRng, j: usize, y_class: usize, chain: &[Vote]) -> Vote {
        let k = self.scheme.num_classes();
        // Candidate values: abstain + each class vote.
        let mut weights = Vec::with_capacity(k + 1);
        let mut values = Vec::with_capacity(k + 1);
        for cand_class in std::iter::once(None).chain((0..k).map(Some)) {
            let v = cand_class.map_or(0, |c| self.scheme.vote_of_class(c));
            let mut s = 0.0;
            if v != 0 {
                s += self.w_lab[j];
                if cand_class == Some(y_class) {
                    s += self.w_acc[j];
                }
            }
            for &(pair_idx, other) in &self.corr_adj[j] {
                if v != 0 && v == chain[other] {
                    s += self.w_corr[pair_idx];
                }
            }
            values.push(v);
            weights.push(s);
        }
        softmax_in_place(&mut weights);
        values[sample_categorical(rng, &weights)]
    }
}

/// Pseudocounts encoding the paper's LF-accuracy prior (footnote 8:
/// mean prior weight w̄, i.e. accuracy `e^w̄/(e^w̄+K−1)` ≈ 73% binary)
/// as a Dirichlet over the per-LF outcome buckets: `strength` prior
/// votes split between agree/disagree at the prior accuracy, plus a
/// weak abstain bucket. With a handful of real votes the data washes
/// the prior out; with none (a brand-new tiny suite) the prior carries,
/// matching the original trainer's Bayesian-init semantics.
pub(crate) fn prior_pseudocounts(init_acc_weight: f64, k1: f64) -> (f64, f64, f64) {
    const PRIOR_STRENGTH: f64 = 4.0;
    let e = init_acc_weight.exp();
    let prior_acc = e / (e + k1);
    let alpha_agree = PRIOR_STRENGTH * prior_acc;
    let alpha_dis = PRIOR_STRENGTH * (1.0 - prior_acc);
    let alpha_abs = 0.5;
    (alpha_agree, alpha_dis, alpha_abs)
}

/// Accumulators for one exact E-pass (see `GenerativeModel::exact_pass`).
struct ExactPassStats {
    /// `V_j`: rows where LF j voted.
    votes_cast: Vec<f64>,
    /// `A_j = Σ_i q_i(Λ_ij)`: expected agreements.
    agree: Vec<f64>,
    /// Row log-likelihood terms `Σ_i (Σ_{j∈V_i} w_lab_j + lse_i)`.
    loglik: f64,
    /// Posterior second moments `Σ_i cov_i(φ_j, φ_k)` (Newton only).
    acc_moment: Vec<Vec<f64>>,
}

/// One shard's slot in the exact-pass scratch pool: the partial
/// accumulators plus the per-pattern posterior buffers. The fit loop
/// owns one pool for its whole run, so every EM/Newton iteration after
/// the first reuses these buffers instead of reallocating them per
/// pass (`ShardedMatrix::for_each_shard_with` pairs slot `i` with
/// shard `i` deterministically).
struct ShardPass {
    stats: ExactPassStats,
    scores: Vec<f64>,
    row_classes: Vec<(usize, usize, f64)>,
}

impl ShardPass {
    fn new(n: usize, k: usize) -> Self {
        ShardPass {
            stats: ExactPassStats::new(n),
            scores: vec![0.0; k],
            row_classes: Vec::new(),
        }
    }
}

impl ExactPassStats {
    fn new(n: usize) -> Self {
        ExactPassStats {
            votes_cast: vec![0.0; n],
            agree: vec![0.0; n],
            loglik: 0.0,
            acc_moment: vec![vec![0.0; n]; n],
        }
    }

    fn reset(&mut self, with_moments: bool) {
        self.votes_cast.iter_mut().for_each(|v| *v = 0.0);
        self.agree.iter_mut().for_each(|v| *v = 0.0);
        self.loglik = 0.0;
        if with_moments {
            for row in self.acc_moment.iter_mut() {
                row.iter_mut().for_each(|v| *v = 0.0);
            }
        }
    }

    /// Add another pass's accumulators (the sharded reduction; callers
    /// merge in shard index order for determinism).
    fn merge(&mut self, other: &ExactPassStats, with_moments: bool) {
        for (a, b) in self.votes_cast.iter_mut().zip(&other.votes_cast) {
            *a += b;
        }
        for (a, b) in self.agree.iter_mut().zip(&other.agree) {
            *a += b;
        }
        self.loglik += other.loglik;
        if with_moments {
            for (ra, rb) in self.acc_moment.iter_mut().zip(&other.acc_moment) {
                for (a, b) in ra.iter_mut().zip(rb) {
                    *a += b;
                }
            }
        }
    }

    /// The reported mean NLL (same formula the old trainer printed):
    /// `−loglik/m + Σ_j ln z_j + logsumexp(b)`.
    fn nll(&self, m: f64, b_class: &[f64], w_lab: &[f64], w_acc: &[f64], k1: f64) -> f64 {
        if m == 0.0 {
            return 0.0;
        }
        let mut log_z_sum = 0.0;
        for (l, a) in w_lab.iter().zip(w_acc) {
            log_z_sum += (1.0 + (l + a).exp() + k1 * l.exp()).ln();
        }
        -(self.loglik / m) + log_z_sum + logsumexp(b_class)
    }
}

/// Solve a small dense linear system (the `2n × 2n` damped-Newton step;
/// n = LF count, so typically tens of unknowns) in place by Gaussian
/// elimination with partial pivoting. No symmetry or definiteness is
/// assumed. Returns `None` on (numerical) singularity — the caller then
/// raises the Levenberg damping and retries.
fn solve_small(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let k = b.len();
    for col in 0..k {
        let pivot = (col..k).max_by(|&x, &y| {
            a[x][col]
                .abs()
                .partial_cmp(&a[y][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..k {
            let factor = a[row][col] / a[col][col];
            for c in col..k {
                a[row][c] -= factor * a[col][c];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut acc = b[row];
        for c in (row + 1)..k {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
        if !x[row].is_finite() {
            return None;
        }
    }
    Some(x)
}

/// Draw an index from a normalized categorical distribution.
fn sample_categorical(rng: &mut StdRng, probs: &[f64]) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_matrix::LabelMatrixBuilder;

    /// Plant a binary dataset: LF `j` votes with propensity `pl` and
    /// accuracy `accs[j]`.
    fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> (LabelMatrix, Vec<Vote>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = LabelMatrixBuilder::new(m, accs.len());
        let mut gold = Vec::with_capacity(m);
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < pl {
                    let v = if rng.gen::<f64>() < acc { y } else { -y };
                    b.set(i, j, v);
                }
            }
        }
        (b.build(), gold)
    }

    #[test]
    fn scheme_round_trips() {
        let b = LabelScheme::Binary;
        assert_eq!(b.class_of_vote(1), Some(0));
        assert_eq!(b.class_of_vote(-1), Some(1));
        assert_eq!(b.class_of_vote(0), None);
        assert_eq!(b.vote_of_class(0), 1);
        assert_eq!(b.vote_of_class(1), -1);
        let m = LabelScheme::MultiClass(5);
        for c in 0..5 {
            assert_eq!(m.class_of_vote(m.vote_of_class(c)), Some(c));
        }
    }

    #[test]
    fn recovers_planted_accuracies() {
        let accs = [0.9, 0.8, 0.7, 0.6, 0.55];
        let (lambda, _) = planted(4000, &accs, 0.6, 7);
        let mut gm = GenerativeModel::new(5, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let implied = gm.implied_accuracies();
        for (j, &a) in accs.iter().enumerate() {
            assert!(
                (implied[j] - a).abs() < 0.08,
                "LF{j}: implied {:.3} vs true {a}",
                implied[j]
            );
        }
        // Ordering must be recovered exactly.
        for j in 1..accs.len() {
            assert!(
                implied[j - 1] > implied[j],
                "accuracy order violated at {j}"
            );
        }
    }

    #[test]
    fn recovers_propensity() {
        let (lambda, _) = planted(4000, &[0.8, 0.8], 0.3, 3);
        let mut gm = GenerativeModel::new(2, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        // P(vote) under the model = (e^{lab+acc} + e^{lab}) / z.
        for j in 0..2 {
            let e_lab = gm.propensity_weights()[j].exp();
            let e_la = (gm.propensity_weights()[j] + gm.accuracy_weights()[j]).exp();
            let z = 1.0 + e_la + e_lab;
            let p_vote = (e_la + e_lab) / z;
            assert!((p_vote - 0.3).abs() < 0.05, "propensity {p_vote:.3}");
        }
    }

    #[test]
    fn example_1_1_conflict_resolution() {
        // High-accuracy source vs low-accuracy source (paper Example
        // 1.1): after fitting, a conflict resolves toward the stronger
        // source. A third source is needed for identifiability — with
        // only two conditionally independent voters, the marginal
        // likelihood depends only on their agreement rate (the classical
        // Dawid-Skene two-view ambiguity), so individual accuracies
        // cannot be recovered.
        let (lambda, _) = planted(3000, &[0.9, 0.6, 0.75], 0.8, 11);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let post = gm.posterior(&[0, 1], &[1, -1]); // sources 0 and 1 disagree
        assert!(
            post[0] > 0.6,
            "posterior must side with the accurate source, got {:.3}",
            post[0]
        );
    }

    #[test]
    fn params_round_trip_is_bit_identical() {
        let (lambda, _) = planted(500, &[0.9, 0.7, 0.6], 0.5, 21);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary)
            .with_weighted_correlations(&[(0, 2)], &[0.8]);
        gm.fit(&lambda, &TrainConfig::default());
        let back = GenerativeModel::from_params(gm.to_params()).unwrap();
        assert_eq!(
            back.marginals_rowwise(&lambda),
            gm.marginals_rowwise(&lambda)
        );
        assert_eq!(back.correlations(), gm.correlations());
        assert_eq!(back.correlation_weights(), gm.correlation_weights());
        assert_eq!(back.to_params(), gm.to_params());
    }

    #[test]
    fn from_params_rejects_corruption() {
        let gm = GenerativeModel::new(3, LabelScheme::Binary);
        // Length mismatch.
        let mut p = gm.to_params();
        p.w_acc.pop();
        assert!(GenerativeModel::from_params(p).is_err());
        // Unnormalized pair.
        let mut p = gm.to_params();
        p.corr_pairs = vec![(2, 1)];
        p.w_corr = vec![0.0];
        p.corr_strength = vec![1.0];
        assert!(GenerativeModel::from_params(p).is_err());
        // Out-of-range pair.
        let mut p = gm.to_params();
        p.corr_pairs = vec![(0, 3)];
        p.w_corr = vec![0.0];
        p.corr_strength = vec![1.0];
        assert!(GenerativeModel::from_params(p).is_err());
        // Non-finite weight.
        let mut p = gm.to_params();
        p.w_lab[0] = f64::NAN;
        assert!(GenerativeModel::from_params(p).is_err());
        // Wrong balance length.
        let mut p = gm.to_params();
        p.b_class.push(0.0);
        assert!(GenerativeModel::from_params(p).is_err());
    }

    #[test]
    fn posterior_uniform_without_votes() {
        let gm = GenerativeModel::new(3, LabelScheme::Binary);
        let post = gm.posterior(&[], &[]);
        assert!((post[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_and_hard_labels() {
        let (lambda, gold) = planted(1500, &[0.85, 0.85, 0.85], 0.9, 5);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let probs = gm.prob_positive(&lambda);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let preds = gm.predicted_labels(&lambda);
        let acc = crate::vote::vote_accuracy(&preds, &gold);
        assert!(acc > 0.9, "posterior MAP accuracy {acc:.3}");
    }

    #[test]
    fn fit_is_deterministic() {
        let (lambda, _) = planted(500, &[0.8, 0.7], 0.5, 2);
        let mut a = GenerativeModel::new(2, LabelScheme::Binary);
        let mut b = GenerativeModel::new(2, LabelScheme::Binary);
        a.fit(&lambda, &TrainConfig::default());
        b.fit(&lambda, &TrainConfig::default());
        assert_eq!(a.accuracy_weights(), b.accuracy_weights());
    }

    #[test]
    fn example_3_1_correlation_correction() {
        // 5 perfectly correlated LFs at 50% accuracy + 2 independent LFs
        // at 95%: the independent model over-trusts the correlated block;
        // modeling the correlations restores the good LFs' dominance.
        let m = 2000;
        let mut rng = StdRng::seed_from_u64(13);
        let n = 7;
        let mut b = LabelMatrixBuilder::new(m, n);
        let mut gold = Vec::new();
        for i in 0..m {
            let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
            gold.push(y);
            // Correlated block: one coin flip copied to LFs 0..5.
            let block_vote: Vote = if rng.gen::<f64>() < 0.5 { y } else { -y };
            for j in 0..5 {
                b.set(i, j, block_vote);
            }
            for j in 5..7 {
                if rng.gen::<f64>() < 0.95 {
                    b.set(i, j, y);
                } else {
                    b.set(i, j, -y);
                }
            }
        }
        let lambda = b.build();

        let mut indep = GenerativeModel::new(n, LabelScheme::Binary);
        indep.fit(&lambda, &TrainConfig::default());

        let pairs: Vec<(usize, usize)> = (0..5)
            .flat_map(|a| ((a + 1)..5).map(move |b| (a, b)))
            .collect();
        let mut corr = GenerativeModel::new(n, LabelScheme::Binary).with_correlations(&pairs);
        corr.fit(&lambda, &TrainConfig::default());

        // Under the correlated model, a conflict of (block says +1,
        // good LFs say −1) must resolve toward the good LFs.
        let cols: Vec<u32> = (0..7).collect();
        let votes: Vec<Vote> = vec![1, 1, 1, 1, 1, -1, -1];
        let post_corr = corr.posterior(&cols, &votes);
        assert!(
            post_corr[1] > 0.5,
            "correlated model must trust the independent accurate LFs, p(-1) = {:.3}",
            post_corr[1]
        );
        // And it must do better than the independent model does.
        let post_indep = indep.posterior(&cols, &votes);
        assert!(
            post_corr[1] > post_indep[1] - 0.05,
            "corr {:.3} vs indep {:.3}",
            post_corr[1],
            post_indep[1]
        );
        // Learned correlation weights on the block must be positive.
        let mean_corr: f64 = corr.correlation_weights().iter().sum::<f64>()
            / corr.correlation_weights().len() as f64;
        assert!(mean_corr > 0.1, "mean correlation weight {mean_corr:.3}");
    }

    #[test]
    fn multiclass_posterior_and_recovery() {
        let k = 3u8;
        let scheme = LabelScheme::MultiClass(k);
        let mut rng = StdRng::seed_from_u64(21);
        let m = 3000;
        let accs = [0.85, 0.7, 0.55];
        let mut b = LabelMatrixBuilder::with_cardinality(m, 3, k);
        for i in 0..m {
            let y = rng.gen_range(0..k as usize);
            for (j, &acc) in accs.iter().enumerate() {
                if rng.gen::<f64>() < 0.7 {
                    let class = if rng.gen::<f64>() < acc {
                        y
                    } else {
                        // Uniform error over the other classes.
                        let mut c = rng.gen_range(0..(k as usize - 1));
                        if c >= y {
                            c += 1;
                        }
                        c
                    };
                    b.set(i, j, scheme.vote_of_class(class));
                }
            }
        }
        let lambda = b.build();
        let mut gm = GenerativeModel::new(3, scheme);
        gm.fit(&lambda, &TrainConfig::default());
        let implied = gm.implied_accuracies();
        assert!(implied[0] > implied[1] && implied[1] > implied[2]);
        assert!((implied[0] - 0.85).abs() < 0.1, "implied {:.3}", implied[0]);
        let post = gm.posterior(&[0], &[scheme.vote_of_class(2)]);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post[2] > post[0]);
    }

    #[test]
    fn clamp_nonadversarial_floors_weights() {
        // An adversarial LF (accuracy 20%) gets a negative weight when
        // two accurate LFs pin down the labels; the clamp keeps it at
        // zero instead.
        let (lambda, _) = planted(2000, &[0.9, 0.85, 0.2], 0.8, 17);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        let cfg = TrainConfig {
            clamp_nonadversarial: true,
            ..TrainConfig::default()
        };
        gm.fit(&lambda, &cfg);
        assert!(gm.accuracy_weights()[2] >= 0.0);

        let mut free = GenerativeModel::new(3, LabelScheme::Binary);
        free.fit(&lambda, &TrainConfig::default());
        assert!(
            free.accuracy_weights()[2] < 0.0,
            "unclamped fit must detect the adversarial LF, got {:?}",
            free.accuracy_weights()
        );
    }

    /// Replace column `j` of a binary matrix with fresh planted votes.
    fn edit_column(lambda: &LabelMatrix, j: usize, acc: f64, pl: f64, seed: u64) -> LabelMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lambda = lambda.clone();
        let mut entries = Vec::new();
        for i in 0..lambda.num_points() {
            if rng.gen::<f64>() < pl {
                let v: Vote = if rng.gen::<f64>() < acc { 1 } else { -1 };
                entries.push((i as u32, v));
            }
        }
        lambda.replace_column(j, &entries);
        lambda
    }

    #[test]
    fn tol_stops_early_at_the_same_optimum() {
        let (lambda, _) = planted(1500, &[0.85, 0.75, 0.65], 0.5, 4);
        let full = TrainConfig {
            tol: 0.0,
            ..TrainConfig::default()
        };
        let tol = TrainConfig::default(); // tol = 1e-14
        let mut a = GenerativeModel::new(3, LabelScheme::Binary);
        let ra = a.fit(&lambda, &full);
        let mut b = GenerativeModel::new(3, LabelScheme::Binary);
        let rb = b.fit(&lambda, &tol);
        assert!(rb.epochs <= ra.epochs);
        for (wa, wb) in a.accuracy_weights().iter().zip(b.accuracy_weights()) {
            assert!(
                (wa - wb).abs() < 1e-9,
                "tol changed the optimum: {wa} vs {wb}"
            );
        }
    }

    /// A realistic dev-loop suite: 10 LFs spanning the paper's assumed
    /// accuracy band. (Tiny 3-LF matrices sit on the classic Dawid–Skene
    /// near-degenerate ridge where *every* optimizer's notion of
    /// "converged" is ill-determined; they are not the warm-start
    /// contract's domain.)
    const SUITE: [f64; 10] = [0.9, 0.85, 0.82, 0.78, 0.75, 0.72, 0.7, 0.67, 0.63, 0.6];

    #[test]
    fn warm_start_matches_cold_fit_after_column_edit() {
        let (lambda, _) = planted(2000, &SUITE, 0.4, 8);
        let cfg = TrainConfig::default();
        let mut base = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
        base.fit(&lambda, &cfg);

        let edited = edit_column(&lambda, 4, 0.85, 0.5, 99);

        let mut cold = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
        let cold_report = cold.fit(&edited, &cfg);

        let mut warm = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
        let warm_report = warm.fit_warm(&edited, &cfg, &base, &[4]);
        assert!(warm_report.warm_started);

        // Same optimum: marginals within 1e-9 of the cold path.
        let cold_marg = cold.marginals(&edited);
        let warm_marg = warm.marginals(&edited);
        let mut max_diff = 0.0f64;
        for (c, w) in cold_marg.iter().zip(&warm_marg) {
            for (pc, pw) in c.iter().zip(w) {
                max_diff = max_diff.max((pc - pw).abs());
            }
        }
        assert!(max_diff < 1e-9, "warm/cold marginal gap {max_diff:e}");

        // And cheaper: the warm restart starts next to the optimum.
        assert!(
            warm_report.epochs <= cold_report.epochs,
            "warm {} vs cold {} epochs",
            warm_report.epochs,
            cold_report.epochs
        );
    }

    #[test]
    fn warm_start_handles_new_rows() {
        let (lambda, _) = planted(1200, &SUITE, 0.4, 21);
        let cfg = TrainConfig::default();
        let mut base = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
        base.fit(&lambda, &cfg);

        // Ingest 300 more rows.
        let (extra, _) = planted(300, &SUITE, 0.4, 22);
        let mut grown = lambda.clone();
        let rows: Vec<Vec<(u32, Vote)>> = (0..extra.num_points())
            .map(|i| {
                let (cols, votes) = extra.row(i);
                cols.iter().copied().zip(votes.iter().copied()).collect()
            })
            .collect();
        grown.append_rows(&rows);

        let mut cold = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
        cold.fit(&grown, &cfg);
        let mut warm = GenerativeModel::new(SUITE.len(), LabelScheme::Binary);
        warm.fit_warm(&grown, &cfg, &base, &[]);
        for (c, w) in cold.accuracy_weights().iter().zip(warm.accuracy_weights()) {
            assert!((c - w).abs() < 1e-8, "acc weight gap {c} vs {w}");
        }
    }

    #[test]
    #[should_panic(expected = "matching LF count")]
    fn warm_start_rejects_shape_mismatch() {
        let (lambda, _) = planted(100, &[0.8, 0.8], 0.5, 1);
        let prev = GenerativeModel::new(3, LabelScheme::Binary);
        let mut gm = GenerativeModel::new(2, LabelScheme::Binary);
        gm.fit_warm(&lambda, &TrainConfig::default(), &prev, &[]);
    }

    #[test]
    fn empty_matrix_fit_is_noop() {
        let lambda = LabelMatrixBuilder::new(0, 2).build();
        let mut gm = GenerativeModel::new(2, LabelScheme::Binary);
        let report = gm.fit(&lambda, &TrainConfig::default());
        assert_eq!(report.epochs, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_correlation_pair_panics() {
        let _ = GenerativeModel::new(2, LabelScheme::Binary).with_correlations(&[(0, 5)]);
    }

    #[test]
    fn duplicate_pairs_deduplicated() {
        let gm = GenerativeModel::new(3, LabelScheme::Binary).with_correlations(&[
            (0, 1),
            (1, 0),
            (0, 1),
            (1, 2),
        ]);
        assert_eq!(gm.correlations(), &[(0, 1), (1, 2)]);
    }
}
