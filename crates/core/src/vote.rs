//! Majority votes and the modeling advantage (paper Definition 1).
//!
//! The unweighted majority vote `f_1(Λ_i) = Σ_j Λ_ij` is the baseline the
//! generative model must beat; the weighted vote `f_w(Λ_i) = Σ_j w_j
//! Λ_ij` with the model's accuracy weights is what it produces. The
//! *modeling advantage* `A_w` counts how often the weighted vote
//! correctly overrules the unweighted one, minus how often it wrongly
//! does — the exact quantity the §3.1 tradeoff analysis and the
//! Figure 4/6 reproductions are about.

use snorkel_matrix::{LabelMatrix, Vote};

/// Unweighted majority vote per data point.
///
/// Binary scheme: the sign of the vote sum (`0` on ties and empty rows).
/// Multi-class scheme: the plurality class (`0` on ties and empty rows).
pub fn majority_vote(lambda: &LabelMatrix) -> Vec<Vote> {
    weighted_vote(lambda, &vec![1.0; lambda.num_lfs()])
}

/// Weighted majority vote per data point with per-LF weights.
///
/// Panics if `weights.len() != lambda.num_lfs()`.
pub fn weighted_vote(lambda: &LabelMatrix, weights: &[f64]) -> Vec<Vote> {
    assert_eq!(
        weights.len(),
        lambda.num_lfs(),
        "weighted_vote: one weight per LF required"
    );
    let k = lambda.cardinality() as usize;
    let mut out = Vec::with_capacity(lambda.num_points());
    if lambda.is_binary() {
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            let mut score = 0.0;
            for (&c, &v) in cols.iter().zip(votes) {
                score += weights[c as usize] * v as f64;
            }
            out.push(if score > 0.0 {
                1
            } else if score < 0.0 {
                -1
            } else {
                0
            });
        }
    } else {
        let mut tally = vec![0.0f64; k + 1];
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            tally.iter_mut().for_each(|t| *t = 0.0);
            for (&c, &v) in cols.iter().zip(votes) {
                tally[v as usize] += weights[c as usize];
            }
            let best = tally[1..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if best <= 0.0 {
                out.push(0);
                continue;
            }
            let winners: Vec<usize> = (1..=k).filter(|&cl| tally[cl] == best).collect();
            out.push(if winners.len() == 1 {
                winners[0] as Vote
            } else {
                0
            });
        }
    }
    out
}

/// Raw weighted vote scores `f_w(Λ_i) = Σ_j w_j Λ_ij` (binary only) —
/// used by the optimizer's advantage bound, which needs magnitudes, not
/// just signs.
pub fn weighted_scores(lambda: &LabelMatrix, weights: &[f64]) -> Vec<f64> {
    assert!(lambda.is_binary(), "weighted_scores: binary scheme only");
    assert_eq!(weights.len(), lambda.num_lfs());
    (0..lambda.num_points())
        .map(|i| {
            let (cols, votes) = lambda.row(i);
            cols.iter()
                .zip(votes)
                .map(|(&c, &v)| weights[c as usize] * v as f64)
                .sum()
        })
        .collect()
}

/// The modeling advantage `A_w(Λ, y)` of Definition 1 (binary scheme):
///
/// ```text
/// A_w = (1/m) Σ_i [ 1{y_i f_w > 0 ∧ y_i f_1 ≤ 0} − 1{y_i f_w ≤ 0 ∧ y_i f_1 > 0} ]
/// ```
///
/// i.e. the rate of correct disagreements of the weighted vote with the
/// majority vote, minus the rate of incorrect ones. `gold` entries of 0
/// (unlabeled) are skipped; the average divides by the number of labeled
/// points.
pub fn modeling_advantage(lambda: &LabelMatrix, weights: &[f64], gold: &[Vote]) -> f64 {
    assert!(lambda.is_binary(), "modeling_advantage: binary scheme only");
    assert_eq!(
        gold.len(),
        lambda.num_points(),
        "modeling_advantage: gold per row"
    );
    let fw = weighted_scores(lambda, weights);
    let f1 = weighted_scores(lambda, &vec![1.0; lambda.num_lfs()]);
    let mut advantage = 0i64;
    let mut labeled = 0usize;
    for i in 0..lambda.num_points() {
        let y = gold[i] as f64;
        if y == 0.0 {
            continue;
        }
        labeled += 1;
        let w_correct = y * fw[i] > 0.0;
        let mv_correct = y * f1[i] > 0.0;
        if w_correct && !mv_correct {
            advantage += 1;
        } else if !w_correct && mv_correct {
            advantage -= 1;
        }
    }
    if labeled == 0 {
        0.0
    } else {
        advantage as f64 / labeled as f64
    }
}

/// Accuracy of a vote vector against gold labels, counting predicted 0
/// (tie/abstain) as **incorrect** — the label-accuracy convention used
/// for the advantage analysis. Unlabeled gold rows (0) are skipped.
pub fn vote_accuracy(pred: &[Vote], gold: &[Vote]) -> f64 {
    assert_eq!(pred.len(), gold.len());
    let mut hits = 0usize;
    let mut labeled = 0usize;
    for (&p, &g) in pred.iter().zip(gold) {
        if g == 0 {
            continue;
        }
        labeled += 1;
        if p == g {
            hits += 1;
        }
    }
    if labeled == 0 {
        0.0
    } else {
        hits as f64 / labeled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snorkel_matrix::LabelMatrixBuilder;

    /// 3 LFs; LF0 is highly accurate, LF1/LF2 are noisy copies.
    fn conflict_matrix() -> LabelMatrix {
        let mut b = LabelMatrixBuilder::new(4, 3);
        // Row 0: LF0=+1, LF1=−1, LF2=−1 → MV says −1, strong LF0 says +1.
        b.set(0, 0, 1);
        b.set(0, 1, -1);
        b.set(0, 2, -1);
        // Row 1: all agree +1.
        b.set(1, 0, 1);
        b.set(1, 1, 1);
        b.set(1, 2, 1);
        // Row 2: LF1=+1 only.
        b.set(2, 1, 1);
        // Row 3: tie LF0=+1, LF1=−1.
        b.set(3, 0, 1);
        b.set(3, 1, -1);
        b.build()
    }

    #[test]
    fn majority_vote_signs_and_ties() {
        let mv = majority_vote(&conflict_matrix());
        assert_eq!(mv, vec![-1, 1, 1, 0]);
    }

    #[test]
    fn weighted_vote_overrules_majority() {
        let w = vec![5.0, 1.0, 1.0];
        let wv = weighted_vote(&conflict_matrix(), &w);
        assert_eq!(wv, vec![1, 1, 1, 1]);
    }

    #[test]
    fn advantage_counts_correct_flips() {
        let lambda = conflict_matrix();
        let gold = vec![1, 1, 1, 1];
        let w = vec![5.0, 1.0, 1.0];
        // Weighted fixes row 0 (MV wrong) and row 3 (MV tie → counted
        // as "≤ 0"), changes nothing else: advantage = 2/4.
        let a = modeling_advantage(&lambda, &w, &gold);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn advantage_penalizes_bad_weights() {
        let lambda = conflict_matrix();
        let gold = vec![-1, 1, 1, -1];
        // Here MV is right on row 0; upweighting LF0 flips it wrongly.
        let w = vec![5.0, 1.0, 1.0];
        let a = modeling_advantage(&lambda, &w, &gold);
        assert!(a < 0.0);
    }

    #[test]
    fn advantage_of_uniform_weights_is_zero() {
        let lambda = conflict_matrix();
        let gold = vec![1, -1, 1, -1];
        assert_eq!(modeling_advantage(&lambda, &[1.0, 1.0, 1.0], &gold), 0.0);
    }

    #[test]
    fn advantage_skips_unlabeled() {
        let lambda = conflict_matrix();
        let gold = vec![1, 0, 0, 0];
        let w = vec![5.0, 1.0, 1.0];
        assert!((modeling_advantage(&lambda, &w, &gold) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiclass_plurality() {
        let mut b = LabelMatrixBuilder::with_cardinality(3, 4, 5);
        // Row 0: 2,2,3 → class 2.
        b.set(0, 0, 2);
        b.set(0, 1, 2);
        b.set(0, 2, 3);
        // Row 1: 4 vs 5 tie → 0.
        b.set(1, 0, 4);
        b.set(1, 1, 5);
        // Row 2: empty → 0.
        let m = b.build();
        assert_eq!(majority_vote(&m), vec![2, 0, 0]);
        // Weighting breaks the tie.
        assert_eq!(weighted_vote(&m, &[2.0, 1.0, 1.0, 1.0])[1], 4);
    }

    #[test]
    fn vote_accuracy_conventions() {
        let pred = vec![1, -1, 0, 1];
        let gold = vec![1, 1, 1, 0];
        // Labeled rows: 0,1,2 → hits: row 0 only; tie row 2 is wrong.
        assert!((vote_accuracy(&pred, &gold) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_gold_gives_zero() {
        let lambda = conflict_matrix();
        assert_eq!(modeling_advantage(&lambda, &[1.0; 3], &[0; 4]), 0.0);
        assert_eq!(vote_accuracy(&[1], &[0]), 0.0);
    }
}
