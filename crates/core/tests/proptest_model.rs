//! Property tests on the generative model and vote machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snorkel_core::label_model::LabelModel;
use snorkel_core::model::{ClassBalance, GenerativeModel, LabelScheme, TrainConfig};
use snorkel_core::optimizer::{advantage_upper_bound, OptimizerConfig};
use snorkel_core::vote::{majority_vote, modeling_advantage, weighted_vote};
use snorkel_matrix::{LabelMatrix, LabelMatrixBuilder, ShardedMatrix, Vote};

/// Random binary matrix with per-LF accuracies and planted gold.
fn planted(m: usize, accs: &[f64], pl: f64, seed: u64) -> (LabelMatrix, Vec<Vote>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LabelMatrixBuilder::new(m, accs.len());
    let mut gold = Vec::with_capacity(m);
    for i in 0..m {
        let y: Vote = if rng.gen::<bool>() { 1 } else { -1 };
        gold.push(y);
        for (j, &acc) in accs.iter().enumerate() {
            if rng.gen::<f64>() < pl {
                b.set(i, j, if rng.gen::<f64>() < acc { y } else { -y });
            }
        }
    }
    (b.build(), gold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Posteriors are probability distributions for any weights/votes.
    #[test]
    fn posteriors_are_distributions(
        accs in prop::collection::vec(0.5f64..0.95, 2..6),
        pl in 0.2f64..0.8,
        seed in 0u64..1000,
    ) {
        let (lambda, _) = planted(200, &accs, pl, seed);
        let mut gm = GenerativeModel::new(accs.len(), LabelScheme::Binary);
        let cfg = TrainConfig { epochs: 50, ..TrainConfig::default() };
        gm.fit(&lambda, &cfg);
        for post in gm.marginals(&lambda) {
            let sum: f64 = post.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(post.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        prop_assert!(gm.accuracy_weights().iter().all(|w| w.is_finite()));
    }

    /// The unweighted majority vote is invariant under LF permutation,
    /// and flips sign under global label flip.
    #[test]
    fn majority_vote_symmetries(
        accs in prop::collection::vec(0.5f64..0.95, 2..6),
        seed in 0u64..1000,
    ) {
        let (lambda, _) = planted(120, &accs, 0.5, seed);
        let mv = majority_vote(&lambda);

        // Permutation invariance.
        let perm: Vec<usize> = (0..lambda.num_lfs()).rev().collect();
        let permuted = lambda.select_columns(&perm).unwrap();
        prop_assert_eq!(majority_vote(&permuted), mv.clone());

        // Label-flip equivariance: negating every vote negates the MV.
        let mut b = LabelMatrixBuilder::new(lambda.num_points(), lambda.num_lfs());
        for (i, j, v) in lambda.iter() {
            b.set(i, j, -v);
        }
        let flipped = majority_vote(&b.build());
        for (a, b) in mv.iter().zip(&flipped) {
            prop_assert_eq!(*a, -*b);
        }
    }

    /// Uniform weights reproduce the unweighted majority vote, and the
    /// advantage of uniform weights is exactly zero.
    #[test]
    fn uniform_weights_are_majority_vote(
        accs in prop::collection::vec(0.5f64..0.95, 2..5),
        w in 0.1f64..5.0,
        seed in 0u64..1000,
    ) {
        let (lambda, gold) = planted(150, &accs, 0.5, seed);
        let uniform = vec![w; lambda.num_lfs()];
        prop_assert_eq!(weighted_vote(&lambda, &uniform), majority_vote(&lambda));
        prop_assert_eq!(modeling_advantage(&lambda, &uniform, &gold), 0.0);
    }

    /// The optimizer's bound is non-negative and bounded by 2 (each row
    /// contributes at most one unit per hypothesis label).
    #[test]
    fn advantage_bound_is_sane(
        accs in prop::collection::vec(0.5f64..0.95, 1..6),
        pl in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let (lambda, _) = planted(150, &accs, pl, seed);
        let bound = advantage_upper_bound(&lambda, &OptimizerConfig::default());
        prop_assert!(bound >= 0.0);
        prop_assert!(bound <= 2.0);
    }

    /// The generative backend viewed through the `LabelModel` trait is
    /// the same model: trait-call fit and marginals are bit-identical to
    /// the concrete-type calls, with and without a sharded plan, and
    /// the snapshot round trip preserves them exactly — the API
    /// redesign's "no numeric drift" contract.
    #[test]
    fn generative_trait_calls_are_bit_identical(
        accs in prop::collection::vec(0.45f64..0.95, 2..6),
        pl in 0.2f64..0.8,
        shards in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (lambda, _) = planted(300, &accs, pl, seed);
        let cfg = TrainConfig { epochs: 60, ..TrainConfig::default() };

        // Concrete (pre-redesign) path.
        let mut concrete = GenerativeModel::new(accs.len(), LabelScheme::Binary);
        concrete.fit(&lambda, &cfg);
        let reference = concrete.marginals_rowwise(&lambda);

        // Trait path, row-wise.
        let mut traited: Box<dyn LabelModel> =
            Box::new(GenerativeModel::new(accs.len(), LabelScheme::Binary));
        traited.fit(&lambda, None, &cfg);
        prop_assert_eq!(&traited.marginals(&lambda, None), &reference);

        // Trait path, through a sharded plan.
        let plan = ShardedMatrix::build(&lambda, shards);
        prop_assert_eq!(&traited.marginals(&lambda, Some(&plan)), &reference);

        // Snapshot round trip.
        let restored = traited.to_snapshot().restore().unwrap();
        prop_assert_eq!(&restored.marginals(&lambda, None), &reference);

        // Hard labels agree too.
        prop_assert_eq!(traited.predicted_labels(&lambda), concrete.predicted_labels(&lambda));
    }

    /// Fits are deterministic and class-balance-policy changes never
    /// produce non-finite parameters.
    #[test]
    fn fit_is_total_and_deterministic(
        accs in prop::collection::vec(0.4f64..0.95, 2..5),
        seed in 0u64..500,
    ) {
        let (lambda, _) = planted(100, &accs, 0.5, seed);
        let cfg = TrainConfig {
            epochs: 30,
            class_balance: ClassBalance::Uniform,
            ..TrainConfig::default()
        };
        let mut a = GenerativeModel::new(accs.len(), LabelScheme::Binary);
        let mut b = GenerativeModel::new(accs.len(), LabelScheme::Binary);
        a.fit(&lambda, &cfg);
        b.fit(&lambda, &cfg);
        prop_assert_eq!(a.accuracy_weights(), b.accuracy_weights());
        prop_assert!(a.propensity_weights().iter().all(|w| w.is_finite()));
    }
}

/// Statistical (non-proptest) check: learned accuracy ordering matches
/// the planted ordering across several seeds.
#[test]
fn accuracy_ordering_recovered_across_seeds() {
    let accs = [0.9, 0.75, 0.6];
    let mut ordered = 0;
    let trials = 5;
    for seed in 0..trials {
        let (lambda, _) = planted(3000, &accs, 0.6, seed);
        let mut gm = GenerativeModel::new(3, LabelScheme::Binary);
        gm.fit(&lambda, &TrainConfig::default());
        let w = gm.accuracy_weights();
        if w[0] > w[1] && w[1] > w[2] {
            ordered += 1;
        }
    }
    assert!(
        ordered >= trials - 1,
        "accuracy ordering recovered in only {ordered}/{trials} trials"
    );
}
