//! Property-test harness locking down the scale-out contract: for
//! arbitrary matrices, cardinalities, and shard counts (including 1 and
//! 0 = all cores),
//!
//! * pattern-deduplicated **marginals** are *bit-identical* to the
//!   row-wise path — a pattern's posterior is computed by the exact
//!   float-op sequence its rows' posteriors would have used;
//! * pattern-deduplicated **fits** land on the same optimum as the
//!   row-wise fit (≤ 1e-12 on every posterior), for every shard count —
//!   the per-pattern sufficient statistics differ from the row-wise
//!   sums only in floating-point summation order, and the tol-driven
//!   fixed-point iteration erases that;
//! * the plan structures themselves satisfy their invariants
//!   ([`ShardedMatrix::validate`]).

use proptest::prelude::*;
use snorkel_core::model::{GenerativeModel, LabelScheme, Scaleout, TrainConfig};
use snorkel_matrix::{LabelMatrix, LabelMatrixBuilder, PatternIndex, ShardedMatrix, Vote};

/// Arbitrary (matrix, cardinality) with duplicate-heavy rows: each row
/// is drawn from a small pool of row templates plus free noise, so real
/// dedup structure appears at every size.
fn matrix_strategy() -> impl Strategy<Value = LabelMatrix> {
    (1usize..40, 1usize..8, 2u8..5, 1usize..6).prop_flat_map(|(m, n, k, pool)| {
        let template = prop::collection::vec(0i8..=(k as i8), n);
        (
            prop::collection::vec(template, pool),
            prop::collection::vec(0usize..pool, m),
            prop::collection::vec((0usize..m.max(1), 0usize..n.max(1), 0i8..=(k as i8)), 0..8),
        )
            .prop_map(move |(templates, assignment, noise)| {
                let mut grid: Vec<Vec<Vote>> =
                    assignment.iter().map(|&t| templates[t].clone()).collect();
                for (i, j, v) in noise {
                    grid[i][j] = v;
                }
                let mut b = LabelMatrixBuilder::with_cardinality(m, n, k);
                for (i, row) in grid.iter().enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        // Map template values onto the scheme: 0 =
                        // abstain; binary uses ±1, multi-class 1..=k.
                        let vote = if k == 2 {
                            match v {
                                0 => 0,
                                1 => 1,
                                _ => -1,
                            }
                        } else {
                            v.min(k as i8)
                        };
                        b.set(i, j, vote);
                    }
                }
                b.build()
            })
    })
}

fn max_marginal_gap(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let mut gap = 0.0f64;
    for (ra, rb) in a.iter().zip(b) {
        for (pa, pb) in ra.iter().zip(rb) {
            gap = gap.max((pa - pb).abs());
        }
    }
    gap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plans of every shard count are structurally valid and count
    /// patterns consistently with an unsharded index.
    #[test]
    fn plans_are_valid_for_any_shard_count(
        lambda in matrix_strategy(),
        shards in 0usize..6,
    ) {
        let plan = ShardedMatrix::build(&lambda, shards);
        plan.validate(&lambda).unwrap();
        prop_assert_eq!(plan.num_rows(), lambda.num_points());
        // Sharding can only split patterns at shard boundaries, never
        // lose or invent signatures.
        let whole = PatternIndex::build(&lambda);
        prop_assert!(plan.num_patterns() >= whole.num_patterns());
        prop_assert!(plan.num_patterns() <= whole.num_patterns() * plan.num_shards());
    }

    /// Deduplicated marginals are bit-identical to row-wise marginals,
    /// for shard counts 0 (= all cores), 1, and arbitrary.
    #[test]
    fn marginals_bit_identical_across_paths(
        lambda in matrix_strategy(),
        shards in 0usize..6,
    ) {
        let scheme = LabelScheme::from_cardinality(lambda.cardinality());
        let mut gm = GenerativeModel::new(lambda.num_lfs(), scheme);
        // Fit row-wise so every path sees identical weights.
        gm.fit(&lambda, &TrainConfig {
            epochs: 40,
            scaleout: Scaleout::RowWise,
            ..TrainConfig::default()
        });
        let reference = gm.marginals_rowwise(&lambda);
        for s in [shards, 0, 1] {
            let plan = ShardedMatrix::build(&lambda, s);
            let dedup = gm.marginals_with(&lambda, &plan);
            prop_assert_eq!(
                &dedup, &reference,
                "marginals must be bit-identical at shard count {}", s
            );
        }
        // The auto path agrees too (small inputs: row-wise branch).
        prop_assert_eq!(&gm.marginals(&lambda), &reference);
    }

    /// Row-wise and sharded fits land on the same optimum: every
    /// posterior agrees to ≤ 1e-12, for any shard count including 1 and
    /// 0 (= all cores).
    #[test]
    fn fit_matches_rowwise_for_any_shard_count(
        lambda in matrix_strategy(),
        shards in 0usize..6,
    ) {
        let scheme = LabelScheme::from_cardinality(lambda.cardinality());
        let cfg = TrainConfig { scaleout: Scaleout::RowWise, ..TrainConfig::default() };
        let mut rowwise = GenerativeModel::new(lambda.num_lfs(), scheme);
        rowwise.fit(&lambda, &cfg);
        let reference = rowwise.marginals_rowwise(&lambda);
        for s in [shards, 1, 0] {
            let cfg = TrainConfig { scaleout: Scaleout::Sharded { shards: s }, ..cfg.clone() };
            let mut sharded = GenerativeModel::new(lambda.num_lfs(), scheme);
            sharded.fit(&lambda, &cfg);
            let gap = max_marginal_gap(&sharded.marginals_rowwise(&lambda), &reference);
            prop_assert!(
                gap <= 1e-12,
                "shard count {}: fit diverged from row-wise by {:e}", s, gap
            );
        }
    }

    /// Warm restarts through the sharded path match row-wise warm
    /// restarts after a column edit.
    #[test]
    fn warm_fit_matches_across_paths(
        lambda in matrix_strategy(),
        shards in 1usize..5,
        col_seed in 0usize..64,
    ) {
        let scheme = LabelScheme::from_cardinality(lambda.cardinality());
        let rw = TrainConfig { scaleout: Scaleout::RowWise, ..TrainConfig::default() };
        let mut base = GenerativeModel::new(lambda.num_lfs(), scheme);
        base.fit(&lambda, &rw);

        // Edit one column: drop every second of its entries.
        let mut edited = lambda.clone();
        let j = col_seed % lambda.num_lfs();
        let entries: Vec<(u32, Vote)> = edited
            .column(j)
            .into_iter()
            .enumerate()
            .filter(|(e, _)| e % 2 == 0)
            .map(|(_, ent)| ent)
            .collect();
        edited.replace_column(j, &entries);

        let mut warm_rw = GenerativeModel::new(lambda.num_lfs(), scheme);
        warm_rw.fit_warm(&edited, &rw, &base, &[j]);
        let reference = warm_rw.marginals_rowwise(&edited);

        let plan = ShardedMatrix::build(&edited, shards);
        let mut warm_sh = GenerativeModel::new(lambda.num_lfs(), scheme);
        warm_sh.fit_warm_with(&edited, &plan, &rw, &base, &[j]);
        // Warm restarts inherit the crate-wide warm/cold guarantee
        // (≤1e-9): starting next to the optimum, the stall backstop can
        // stop each path a few ulps apart along near-degenerate ridges,
        // so the cold-fit 1e-12 bound does not transfer verbatim.
        let gap = max_marginal_gap(&warm_sh.marginals_rowwise(&edited), &reference);
        prop_assert!(gap <= 1e-9, "warm sharded fit diverged by {:e}", gap);
    }
}
