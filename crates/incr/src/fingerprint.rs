//! Labeling-function fingerprints — the cache's content address.
//!
//! A fingerprint identifies *one behavioral version* of one labeling
//! function. The cache key is `(fingerprint, candidate)`: two lookups
//! collide exactly when the same LF version is applied to the same
//! candidate, which is precisely when the cached vote is reusable.
//!
//! Rust closures cannot be hashed structurally, so the fingerprint is
//! derived from the LF's *name* plus a caller-supplied **content tag**:
//!
//! * **Tagged** (`add_lf_tagged` / `edit_lf_tagged`): the tag is a hash
//!   of whatever the caller considers the LF's content — source text,
//!   pattern string, KB snapshot id. Re-submitting a previously seen
//!   `(name, tag)` pair reproduces the same fingerprint, so reverting an
//!   edit is a 100% cache hit.
//! * **Untagged** (`add_lf` / `edit_lf`): the session assigns a
//!   monotonically increasing per-name version counter as the tag. Every
//!   untagged edit is assumed to change behavior (the conservative
//!   choice), so untagged reverts recompute.

use std::hash::{Hash, Hasher};

/// A labeling function's behavioral fingerprint.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprint of `(name, content tag)` — the caller-tagged domain.
    pub fn of(name: &str, content_tag: u64) -> Fingerprint {
        Fingerprint::with_domain(b'T', name, content_tag)
    }

    /// Fingerprint of `(name, session version counter)` — the
    /// auto-versioned domain. Domain-separated from [`Self::of`] so a
    /// session-assigned counter value can never collide with a
    /// caller-supplied content tag of the same numeric value (which
    /// would silently serve a stale cached column).
    pub fn of_auto(name: &str, version: u64) -> Fingerprint {
        Fingerprint::with_domain(b'A', name, version)
    }

    fn with_domain(domain: u8, name: &str, tag: u64) -> Fingerprint {
        let mut h = Fnv1a::new();
        h.write(&[domain]);
        name.hash(&mut h);
        tag.hash(&mut h);
        Fingerprint(h.finish())
    }

    /// Convenience: a content tag from a byte representation of the LF's
    /// definition (e.g. its source text or pattern string).
    pub fn content_tag(bytes: impl AsRef<[u8]>) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes.as_ref());
        h.finish()
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and collision-adequate for a
/// per-session LF namespace (tens to hundreds of entries).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Fingerprint;

    #[test]
    fn deterministic_and_content_sensitive() {
        assert_eq!(Fingerprint::of("lf_a", 0), Fingerprint::of("lf_a", 0));
        assert_ne!(Fingerprint::of("lf_a", 0), Fingerprint::of("lf_a", 1));
        assert_ne!(Fingerprint::of("lf_a", 0), Fingerprint::of("lf_b", 0));
        // Name/tag boundaries matter: ("ab", tag(c)) ≠ ("a", tag(bc)).
        assert_ne!(
            Fingerprint::of("ab", Fingerprint::content_tag("c")),
            Fingerprint::of("a", Fingerprint::content_tag("bc")),
        );
    }

    #[test]
    fn auto_and_tagged_domains_never_collide() {
        // A session version counter reaching the same numeric value as a
        // caller content tag must still be a distinct LF version.
        for v in 0..50u64 {
            assert_ne!(Fingerprint::of("lf", v), Fingerprint::of_auto("lf", v));
        }
        assert_eq!(Fingerprint::of_auto("lf", 3), Fingerprint::of_auto("lf", 3));
    }

    #[test]
    fn content_tag_round_trips_revert() {
        let v1 = Fingerprint::of("lf", Fingerprint::content_tag("x.words() > 3"));
        let v2 = Fingerprint::of("lf", Fingerprint::content_tag("x.words() > 5"));
        let reverted = Fingerprint::of("lf", Fingerprint::content_tag("x.words() > 3"));
        assert_ne!(v1, v2);
        assert_eq!(v1, reverted, "reverting content restores the fingerprint");
    }
}
