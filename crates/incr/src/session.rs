//! The interactive dev-loop session: add/edit/remove labeling functions,
//! ingest candidate batches, and [`IncrementalSession::refresh`] — which
//! recomputes *only* what the edits touched.

use std::sync::OnceLock;
use std::time::Duration;

use snorkel_context::{CandidateId, CandidateView, Corpus};
use snorkel_core::label_model::{LabelModel, ModelRegistry, ModelSnapshot};
use snorkel_core::model::{LabelScheme, ParamsError, Scaleout, TrainConfig, SCALEOUT_MIN_ROWS};
use snorkel_core::optimizer::{
    advantage_upper_bound, select_model, ModelingStrategy, OptimizerConfig,
};
use snorkel_core::pipeline::{DiscTrainer, DiscTrainerConfig};
use snorkel_disc::{DiscModelParts, DistillReport, DistilledModel, TextFeaturizer};
use snorkel_lf::{BoxedLf, LfExecutor};
use snorkel_linalg::SparseVec;
use snorkel_matrix::{
    LabelMatrix, MatrixDelta, ResignScratch, ShardedMatrix, ShardedMatrixParts, Vote,
};
use snorkel_stream::{DriftConfig, FrozenStream, StreamState};

use crate::cache::{CacheStats, FrozenCache, LfResultCache};
use crate::fingerprint::Fingerprint;

/// Pre-resolved global-registry handles for the incremental layer,
/// resolved once per process so refresh bookkeeping is a handful of
/// relaxed atomic stores.
struct IncrMetrics {
    cache_hits: std::sync::Arc<snorkel_obs::Counter>,
    cache_misses: std::sync::Arc<snorkel_obs::Counter>,
    cache_extensions: std::sync::Arc<snorkel_obs::Counter>,
    cache_evictions: std::sync::Arc<snorkel_obs::Counter>,
    refreshes: std::sync::Arc<snorkel_obs::Counter>,
    refresh_generation: std::sync::Arc<snorkel_obs::Gauge>,
    unique_patterns: std::sync::Arc<snorkel_obs::Gauge>,
    cache_columns: std::sync::Arc<snorkel_obs::Gauge>,
    cache_capacity: std::sync::Arc<snorkel_obs::Gauge>,
    rows: std::sync::Arc<snorkel_obs::Gauge>,
    lfs: std::sync::Arc<snorkel_obs::Gauge>,
    scratch_bytes: std::sync::Arc<snorkel_obs::Gauge>,
}

fn incr_metrics() -> &'static IncrMetrics {
    static METRICS: OnceLock<IncrMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = snorkel_obs::global();
        IncrMetrics {
            cache_hits: r.counter("snorkel_incr_cache_hits_total", &[]),
            cache_misses: r.counter("snorkel_incr_cache_misses_total", &[]),
            cache_extensions: r.counter("snorkel_incr_cache_extensions_total", &[]),
            cache_evictions: r.counter("snorkel_incr_cache_evictions_total", &[]),
            refreshes: r.counter("snorkel_incr_refreshes_total", &[]),
            refresh_generation: r.gauge("snorkel_incr_refresh_generation", &[]),
            unique_patterns: r.gauge("snorkel_incr_unique_patterns", &[]),
            cache_columns: r.gauge("snorkel_incr_cache_columns", &[]),
            cache_capacity: r.gauge("snorkel_incr_cache_capacity", &[]),
            rows: r.gauge("snorkel_incr_rows", &[]),
            lfs: r.gauge("snorkel_incr_lfs", &[]),
            scratch_bytes: r.gauge("snorkel_incr_scratch_bytes", &[]),
        }
    })
}

/// Start a span for one refresh stage, recording into
/// `snorkel_incr_refresh_stage_seconds{stage="…"}`. As in the batch
/// pipeline, [`finish`](snorkel_obs::Span::finish) hands back the
/// duration the [`RefreshTimings`] report, so the live metric and the
/// report are the same measurement.
fn stage_span(stage: &'static str) -> snorkel_obs::Span {
    let hist =
        snorkel_obs::global().histogram("snorkel_incr_refresh_stage_seconds", &[("stage", stage)]);
    snorkel_obs::Span::start(stage, hist, snorkel_obs::TraceLevel::Debug)
}

/// Start a span for one [`IncrementalSession::ingest_batch`] call,
/// recording into `snorkel_stream_ingest_seconds` — the steady-state
/// ingest latency the streaming bench gates on.
fn ingest_span() -> snorkel_obs::Span {
    static HIST: OnceLock<std::sync::Arc<snorkel_obs::Histogram>> = OnceLock::new();
    let hist =
        HIST.get_or_init(|| snorkel_obs::global().histogram("snorkel_stream_ingest_seconds", &[]));
    snorkel_obs::Span::start(
        "ingest",
        std::sync::Arc::clone(hist),
        snorkel_obs::TraceLevel::Debug,
    )
}

/// Publish the per-LF drift gauges
/// (`snorkel_stream_drift_score_lf_ppm{lf="…"}`, scores × 10⁶ — the
/// registry's gauges are integers). Registered here rather than in
/// `snorkel-stream` because only the session knows the LF names.
fn publish_drift_gauges<'a>(names: impl Iterator<Item = &'a str>, scores: &[f64]) {
    let registry = snorkel_obs::global();
    for (name, score) in names.zip(scores) {
        registry
            .gauge("snorkel_stream_drift_score_lf_ppm", &[("lf", name)])
            .set((score * 1_000_000.0).round() as i64);
    }
}

/// Session configuration. The defaults mirror
/// [`snorkel_core::pipeline::PipelineConfig`], plus the incremental
/// knobs.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// LF executor (parallelism, vote-scheme cardinality).
    pub executor: LfExecutor,
    /// Generative-model training settings. Keep
    /// [`TrainConfig::tol`] non-zero: the warm-start equivalence
    /// guarantee is "both runs converged", and the tolerance is what
    /// "converged" means.
    pub train: TrainConfig,
    /// Optimizer settings (Algorithm 1).
    pub optimizer: OptimizerConfig,
    /// Force a backend instead of running the optimizer (resolved
    /// through [`Self::registry`]).
    pub force_strategy: Option<ModelingStrategy>,
    /// The label-model backends this session may build.
    pub registry: ModelRegistry,
    /// Reuse the previous refresh's structure-sweep outcome when at most
    /// one column changed and no rows were ingested (the Algorithm-1
    /// sweep is by far the most expensive part of strategy selection,
    /// and a one-column edit rarely changes which LF pairs correlate).
    /// Structural suite changes always re-run the sweep.
    pub reuse_structure_on_column_edit: bool,
    /// Warm-start generative training from the previous refresh's model.
    pub warm_start: bool,
    /// Maximum cached columns (live suite columns are never evicted).
    pub cache_capacity: usize,
    /// Scale-out execution for exact inference/training (see
    /// [`Scaleout`]). When active, the session keeps the sharded pattern
    /// index alive across refreshes and delta edits update only the
    /// touched patterns — an appended candidate batch interns just the
    /// new rows, a one-column edit re-signs just the rows that voted in
    /// the old or new column.
    pub scaleout: Scaleout,
    /// Distillation: when set, [`IncrementalSession::distill`] trains a
    /// serving-side [`DistilledModel`] on the label model's marginals
    /// (warm across refreshes). The model carries a *staleness
    /// generation*: refreshes never block on disc retraining, they just
    /// advance [`IncrementalSession::refresh_generation`] past the
    /// disc model's.
    pub distill: Option<DiscTrainerConfig>,
    /// Drift-detector settings used when [`IncrementalSession::ingest_batch`]
    /// auto-enables streaming (window size, ring depth, refit threshold).
    pub drift: DriftConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            executor: LfExecutor::default(),
            train: TrainConfig::default(),
            optimizer: OptimizerConfig::default(),
            force_strategy: None,
            registry: ModelRegistry::standard(),
            reuse_structure_on_column_edit: true,
            warm_start: true,
            cache_capacity: 256,
            scaleout: Scaleout::Auto,
            distill: None,
            drift: DriftConfig::default(),
        }
    }
}

/// Wall-clock breakdown of one refresh.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefreshTimings {
    /// Executing LF columns that missed the cache (or row extensions).
    pub lf_application: Duration,
    /// Patching / assembling Λ.
    pub matrix_assembly: Duration,
    /// Strategy selection (bound check, or the full sweep).
    pub strategy_selection: Duration,
    /// Generative training (zero when MV was chosen).
    pub training: Duration,
    /// Whole refresh.
    pub total: Duration,
}

/// How Λ was brought up to date.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LambdaUpdate {
    /// First refresh, or a structural suite change: assembled from cached
    /// columns in one pass.
    Assembled,
    /// Patched in place with column/row deltas.
    Patched {
        /// Columns spliced by [`MatrixDelta::ReplaceColumn`].
        columns_replaced: usize,
        /// Rows appended by [`MatrixDelta::AppendRows`].
        rows_appended: usize,
    },
    /// Nothing changed; the previous Λ was reused untouched.
    Unchanged,
}

/// Everything one [`IncrementalSession::refresh`] did and produced,
/// besides the labels themselves.
#[derive(Clone, Debug)]
pub struct RefreshReport {
    /// The strategy that produced the labels.
    pub strategy: ModelingStrategy,
    /// Predicted advantage bound A~* (`NaN` when forced or multi-class).
    pub predicted_advantage: f64,
    /// Label density of Λ.
    pub label_density: f64,
    /// How Λ was updated.
    pub lambda_update: LambdaUpdate,
    /// Columns served straight from cache.
    pub columns_reused: usize,
    /// Columns executed from scratch this refresh.
    pub columns_recomputed: usize,
    /// Columns extended onto newly ingested rows.
    pub columns_extended: usize,
    /// Individual LF invocations this refresh (`columns × rows`
    /// actually executed — *the* number the cache exists to minimize).
    pub lf_invocations: usize,
    /// Whether the structure sweep was skipped in favor of the previous
    /// refresh's correlation structure.
    pub structure_reused: bool,
    /// Name of the label-model backend that produced the labels.
    pub backend: &'static str,
    /// Whether training warm-started from the previous model.
    pub warm_started: bool,
    /// Training iterations run (0 for fit-free backends like MV).
    pub fit_epochs: usize,
    /// Distinct vote patterns in the sharded scale-out plan (`None` when
    /// the refresh ran row-wise).
    pub unique_patterns: Option<usize>,
    /// Cumulative cache statistics.
    pub cache: CacheStats,
    /// Stage timings.
    pub timings: RefreshTimings,
}

/// What one [`IncrementalSession::ingest_batch`] call did: how the
/// batch was absorbed, whether the model was refreshed online (no pass
/// over Λ) and where the drift detector stands.
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// Rows appended by this batch.
    pub rows: usize,
    /// Individual LF invocations (always `rows × live columns` on the
    /// steady path — only the new rows are executed).
    pub lf_invocations: usize,
    /// `true` when the batch rode the steady streaming path: columns
    /// extended, Λ spliced, model re-solved from running statistics via
    /// `fit_online` — **no cold `fit`, no pass over Λ**. `false` when
    /// the backend has no online path or the session needed a full
    /// refresh first (un-refreshed suite edits pending).
    pub online_fit: bool,
    /// Overall drift score after this batch.
    pub drift_score: f64,
    /// Whether the drift threshold was crossed by this batch.
    pub drifted: bool,
    /// Whether a drift-triggered automatic warm refit ran (bumping
    /// [`IncrementalSession::refresh_generation`] a second time).
    pub auto_refit: bool,
    /// The session's refresh generation after the ingest.
    pub generation: u64,
}

struct SessionLf {
    lf: BoxedLf,
    fingerprint: Fingerprint,
}

/// The session's distilled serving model, stamped with the refresh
/// generation whose marginals trained it. Self-contained: it carries
/// its own [`DiscTrainerConfig`] so a thawed session keeps predicting
/// (and retraining) without the operator re-supplying the
/// configuration.
#[derive(Clone, Debug)]
pub struct DiscState {
    /// Featurizer + training settings the model was distilled with.
    pub config: DiscTrainerConfig,
    /// The distilled model.
    pub model: DistilledModel,
    /// [`IncrementalSession::refresh_generation`] value whose marginals
    /// this model was trained on. Lower than the live counter ⇒ stale
    /// (still serving, just lagging the latest edit).
    pub generation: u64,
}

/// Everything one distillation run needs, cloned out of the session so
/// training can happen **without holding the session lock** — the
/// serving layer's non-blocking retrain path. Produced by
/// [`IncrementalSession::disc_training_set`], consumed by
/// [`DiscTrainingSet::train`], installed with
/// [`IncrementalSession::install_disc`].
#[derive(Clone, Debug)]
pub struct DiscTrainingSet {
    /// Featurizer + training settings to distill with.
    pub config: DiscTrainerConfig,
    /// Hashed feature vectors, row-aligned with the marginals (the
    /// cache may run longer when candidates were ingested since the
    /// last refresh; training uses the first `marginals.len()` rows).
    /// Shared with the session's cache: taking a training set is O(1)
    /// in the feature count, not a deep copy under the caller's lock.
    pub features: std::sync::Arc<Vec<SparseVec>>,
    /// The label model's per-row marginals at `generation`. Shared with
    /// the session's refresh cache — O(1) to take.
    pub marginals: std::sync::Arc<Vec<Vec<f64>>>,
    /// Row ranges to parallelize over (the live plan's shard ranges).
    pub ranges: Vec<(usize, usize)>,
    /// Classes per marginal row.
    pub num_classes: usize,
    /// Previous model to warm-start from, if any.
    pub warm: Option<DistilledModel>,
    /// The refresh generation the marginals belong to.
    pub generation: u64,
}

impl DiscTrainingSet {
    /// Distill (warm when [`Self::warm`] is set). Pure function of the
    /// set — safe to run outside any session lock.
    pub fn train(self) -> (DiscState, DistillReport) {
        let mut model = self
            .warm
            .filter(|m| m.dim() == self.config.train.dim && m.num_classes() == self.num_classes)
            .unwrap_or_else(|| DistilledModel::new(self.config.train.dim, self.num_classes));
        // Candidates ingested after the last refresh have features but
        // no marginal row yet; they join training after the next
        // refresh labels them.
        let rows = self.marginals.len();
        let retrain_span = stage_span("disc_retrain");
        let report = model.fit(
            &self.features[..rows],
            &self.marginals,
            &self.ranges,
            &self.config.train,
        );
        drop(retrain_span);
        (
            DiscState {
                config: self.config,
                model,
                generation: self.generation,
            },
            report,
        )
    }
}

/// Everything an [`IncrementalSession`] needs to restart warm, as plain
/// owned data — the stable encoding surface for `snorkel-serve`
/// snapshots. Produced by [`IncrementalSession::freeze`], consumed by
/// [`IncrementalSession::thaw`].
///
/// The LF *code* is deliberately absent: Rust closures cannot be
/// serialized, and a corpus is derived state the operator reloads from
/// its own source of truth. Thawing therefore takes the corpus and a
/// freshly constructed LF suite; the frozen fingerprints re-attach to
/// the supplied LFs by name, so nothing is re-executed.
#[derive(Clone, Debug)]
pub struct FrozenSession {
    /// Registered candidate rows, in row order.
    pub candidates: Vec<CandidateId>,
    /// Per-name auto-version counters, sorted by name.
    pub versions: Vec<(String, u64)>,
    /// Live suite layout at freeze time: `(name, fingerprint)` per
    /// column.
    pub suite: Vec<(String, Fingerprint)>,
    /// The LF-result cache.
    pub cache: FrozenCache,
    /// The label matrix of the last refresh.
    pub lambda: Option<LabelMatrix>,
    /// The sharded pattern plan of the last refresh.
    pub plan: Option<ShardedMatrixParts>,
    /// The label model of the last refresh, tagged with its backend.
    pub model: Option<ModelSnapshot>,
    /// Column-aligned fingerprint layout at the last refresh.
    pub last_fingerprints: Vec<Fingerprint>,
    /// Row count at the last refresh.
    pub last_rows: usize,
    /// Last structure-sweep outcome and the LF-name layout it indexes.
    pub last_gm_strategy: Option<(ModelingStrategy, Vec<String>)>,
    /// Refresh generation at freeze time (the disc staleness reference).
    pub refresh_generation: u64,
    /// The distilled serving model, if one was trained. The row-aligned
    /// feature cache is deliberately absent — features are derived state,
    /// re-extracted from the reloaded corpus on the next distill.
    pub disc: Option<FrozenDisc>,
    /// The streaming plane's state (running moment statistics, drift
    /// reference window, lifetime counters), if streaming was active.
    pub stream: Option<FrozenStream>,
}

/// Plain-data image of a [`DiscState`] (see [`FrozenSession::disc`]).
#[derive(Clone, Debug)]
pub struct FrozenDisc {
    /// Featurizer + training settings the model was distilled with.
    pub config: DiscTrainerConfig,
    /// The distilled model's stable encoding.
    pub model: DiscModelParts,
    /// Refresh generation whose marginals trained the model.
    pub generation: u64,
}

/// Why [`IncrementalSession::thaw`] refused to restore a session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThawError {
    /// The supplied LF suite does not match the frozen layout.
    SuiteMismatch(String),
    /// The frozen state is internally inconsistent (corrupt or
    /// hand-edited snapshot, or a corpus that does not cover the
    /// registered candidates).
    Inconsistent(String),
    /// The frozen label model's parameters violate a structural
    /// invariant (see [`ParamsError`]).
    Model(ParamsError),
}

impl std::fmt::Display for ThawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThawError::SuiteMismatch(msg) => write!(f, "LF suite mismatch: {msg}"),
            ThawError::Inconsistent(msg) => write!(f, "inconsistent frozen state: {msg}"),
            ThawError::Model(e) => write!(f, "invalid frozen model: {e}"),
        }
    }
}

impl std::error::Error for ThawError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThawError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for ThawError {
    fn from(e: ParamsError) -> Self {
        ThawError::Model(e)
    }
}

/// The incremental labeling engine's façade: an interactive-session
/// counterpart to the batch [`snorkel_core::pipeline::Pipeline`].
///
/// ## Contract
///
/// * **Append-only corpus.** Candidates registered with the session are
///   assumed immutable: the cache key is `(lf_fingerprint, candidate)`,
///   so in-place edits to already-registered candidates would serve
///   stale votes. Grow the corpus through [`Self::corpus_mut`] +
///   [`Self::ingest_candidates`]; call [`Self::invalidate_cache`] if you
///   must mutate in place.
/// * **Names identify LFs.** [`Self::edit_lf`] / [`Self::remove_lf`]
///   address the suite by `LabelingFunction::name()`; names must be
///   unique within the session.
/// * **Equivalence.** After any edit sequence, [`Self::refresh`]
///   produces a Λ bit-identical to applying the current suite from
///   scratch, and (on the exact training path, with a convergence
///   tolerance set) marginals within 1e-9 of a cold
///   [`snorkel_core::pipeline::Pipeline::run`] — asserted by this
///   crate's property tests.
pub struct IncrementalSession {
    corpus: Corpus,
    config: SessionConfig,
    candidates: Vec<CandidateId>,
    lfs: Vec<SessionLf>,
    versions: std::collections::HashMap<String, u64>,
    cache: LfResultCache,
    lambda: Option<LabelMatrix>,
    /// Sharded pattern index over `lambda`, maintained incrementally
    /// across refreshes (None when scale-out is off or Λ is too small).
    plan: Option<ShardedMatrix>,
    /// The label-model backend of the last refresh (whatever the
    /// optimizer selected — majority vote included).
    model: Option<Box<dyn LabelModel>>,
    /// Fingerprint layout at the last refresh (column-aligned).
    last_fingerprints: Vec<Fingerprint>,
    /// Row count at the last refresh.
    last_rows: usize,
    /// Last GM strategy (correlation structure) the optimizer produced,
    /// together with the LF-name layout it was derived from — pair
    /// indices are only meaningful against that exact layout.
    last_gm_strategy: Option<(ModelingStrategy, Vec<String>)>,
    /// Bumped by every [`Self::refresh`]; the reference the disc
    /// model's staleness is measured against.
    refresh_generation: u64,
    /// Row-aligned hashed-feature cache for distillation (grown lazily;
    /// cleared when the featurizer changes). Behind an `Arc` so a
    /// [`DiscTrainingSet`] shares it instead of deep-copying under the
    /// caller's lock.
    features: std::sync::Arc<Vec<SparseVec>>,
    /// The featurizer [`Self::features`] was extracted with.
    features_featurizer: Option<TextFeaturizer>,
    /// The last refresh's marginals, kept only while distillation is
    /// configured so [`Self::disc_training_set`] does not recompute a
    /// full inference pass the refresh just produced. `Arc`d so taking
    /// a training set under the serving write lock is O(1).
    last_marginals: Option<std::sync::Arc<Vec<Vec<f64>>>>,
    /// The distilled serving model, if any.
    disc: Option<DiscState>,
    /// The streaming plane: running moment statistics + drift detector,
    /// fed by [`Self::ingest_batch`]. `None` until streaming is enabled
    /// (explicitly, from a thawed snapshot, or by the first ingest).
    stream: Option<StreamState>,
    /// Reusable re-sign scratch for the sharded plan's delta column
    /// splices: grown to the workload's high-water mark on the first
    /// edit, reset (not freed) on every subsequent refresh. Its
    /// footprint is the `snorkel_incr_scratch_bytes` gauge.
    resign_scratch: ResignScratch,
}

impl IncrementalSession {
    /// A session over `corpus` with no candidates or LFs registered yet.
    pub fn new(corpus: Corpus, config: SessionConfig) -> Self {
        let cache = LfResultCache::new(config.cache_capacity);
        IncrementalSession {
            corpus,
            config,
            candidates: Vec::new(),
            lfs: Vec::new(),
            versions: std::collections::HashMap::new(),
            cache,
            lambda: None,
            plan: None,
            model: None,
            last_fingerprints: Vec::new(),
            last_rows: 0,
            last_gm_strategy: None,
            refresh_generation: 0,
            features: std::sync::Arc::new(Vec::new()),
            features_featurizer: None,
            last_marginals: None,
            disc: None,
            stream: None,
            resign_scratch: ResignScratch::new(),
        }
    }

    /// Convenience: a session pre-registered with every candidate of the
    /// corpus, in id order (matching
    /// [`snorkel_lf::LfExecutor::apply_all`]).
    pub fn over_all_candidates(corpus: Corpus, config: SessionConfig) -> Self {
        let ids: Vec<CandidateId> = corpus.candidate_ids().collect();
        let mut s = IncrementalSession::new(corpus, config);
        s.ingest_candidates(&ids);
        s
    }

    /// Read access to the corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Read access to the session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the corpus — for *growing* it (new documents,
    /// sentences, spans, candidates). Mutating content of candidates
    /// already registered breaks the cache contract; see the type docs.
    pub fn corpus_mut(&mut self) -> &mut Corpus {
        &mut self.corpus
    }

    /// The registered candidates, in row order.
    pub fn candidates(&self) -> &[CandidateId] {
        &self.candidates
    }

    /// Number of registered candidate rows.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of LFs in the live suite.
    pub fn num_lfs(&self) -> usize {
        self.lfs.len()
    }

    /// Names of the live suite, in column order.
    pub fn lf_names(&self) -> Vec<&str> {
        self.lfs.iter().map(|s| s.lf.name()).collect()
    }

    /// Fingerprints of the live suite, in column order.
    pub fn live_fingerprints(&self) -> Vec<Fingerprint> {
        self.lfs.iter().map(|s| s.fingerprint).collect()
    }

    /// Whether the live suite is exactly the layout the last refresh's
    /// Λ/model were built for (same fingerprints, same column order) —
    /// i.e. whether [`Self::model`]'s columns can score votes indexed
    /// by the live suite. False after any un-refreshed add/edit/remove.
    pub fn suite_matches_last_refresh(&self) -> bool {
        self.lfs.len() == self.last_fingerprints.len()
            && self
                .lfs
                .iter()
                .zip(&self.last_fingerprints)
                .all(|(s, fp)| s.fingerprint == *fp)
    }

    /// The current label matrix (after the first refresh).
    pub fn label_matrix(&self) -> Option<&LabelMatrix> {
        self.lambda.as_ref()
    }

    /// The label model of the last refresh (any backend; downcast for
    /// backend-specific state, e.g.
    /// `session.model()?.downcast_ref::<GenerativeModel>()`).
    pub fn model(&self) -> Option<&dyn LabelModel> {
        self.model.as_deref()
    }

    /// Name of the active label-model backend (after the first refresh).
    pub fn backend_name(&self) -> Option<&'static str> {
        self.model.as_deref().map(LabelModel::backend_name)
    }

    /// The live sharded pattern plan (after a scale-out refresh).
    pub fn pattern_plan(&self) -> Option<&ShardedMatrix> {
        self.plan.as_ref()
    }

    /// How many refreshes this session has run — the reference point
    /// for disc-model staleness.
    pub fn refresh_generation(&self) -> u64 {
        self.refresh_generation
    }

    /// The distilled serving model (and the generation it was trained
    /// at), if one exists.
    pub fn disc(&self) -> Option<&DiscState> {
        self.disc.as_ref()
    }

    /// Whether the disc model lags the label model: `true` after a
    /// refresh until the next [`Self::distill`] /
    /// [`Self::install_disc`] lands. A session with no disc model is
    /// not "stale" — there is nothing lagging.
    pub fn disc_is_stale(&self) -> bool {
        self.disc
            .as_ref()
            .is_some_and(|d| d.generation < self.refresh_generation)
    }

    /// The streaming plane's state (running moment statistics, drift
    /// detector, lifetime counters), if streaming is active.
    pub fn stream(&self) -> Option<&StreamState> {
        self.stream.as_ref()
    }

    /// Activate the streaming plane with the session config's
    /// [`DriftConfig`]. Idempotent. The running statistics are seeded
    /// from the current Λ (one batch pass, once) so subsequent
    /// [`Self::ingest_batch`] refits solve over *all* rows, not just
    /// the streamed tail. Called implicitly by the first ingest.
    pub fn enable_streaming(&mut self) {
        if self.stream.is_some() {
            return;
        }
        let scheme = LabelScheme::from_cardinality(self.config.executor.cardinality);
        let mut state = StreamState::new(self.lfs.len(), scheme, self.config.drift.clone());
        if let Some(lambda) = &self.lambda {
            state.rebuild_from_matrix(lambda);
        }
        self.stream = Some(state);
    }

    /// The active distillation configuration: the session config's, or
    /// the one the live disc model carries (a thawed session keeps
    /// retraining with the frozen settings).
    fn distill_config(&self) -> Option<DiscTrainerConfig> {
        self.config
            .distill
            .clone()
            .or_else(|| self.disc.as_ref().map(|d| d.config.clone()))
    }

    /// Bring the row-aligned feature cache up to date for `featurizer`.
    /// Extends in place when the cache is uniquely owned; only when a
    /// previous [`DiscTrainingSet`] still shares it does this pay one
    /// copy-on-write.
    fn ensure_features(&mut self, featurizer: &TextFeaturizer) {
        if self.features_featurizer.as_ref() != Some(featurizer) {
            self.features = std::sync::Arc::new(Vec::new());
            self.features_featurizer = Some(featurizer.clone());
        }
        let from = self.features.len();
        if from < self.candidates.len() {
            let new = featurizer.featurize_all(&self.corpus, &self.candidates[from..]);
            match std::sync::Arc::get_mut(&mut self.features) {
                Some(cache) => cache.extend(new),
                None => {
                    let mut cache = self.features.to_vec();
                    cache.extend(new);
                    self.features = std::sync::Arc::new(cache);
                }
            }
        }
    }

    /// Everything one distillation run needs, cloned out so training can
    /// happen without borrowing the session (the serving layer trains
    /// outside its session lock; see [`DiscTrainingSet`]). `None` until
    /// the first refresh, or when no distillation config is available.
    pub fn disc_training_set(&mut self) -> Option<DiscTrainingSet> {
        let config = self.distill_config()?;
        let lambda = self.lambda.as_ref()?;
        let model = self.model.as_deref()?;
        // Serve the marginals the refresh just computed; recompute only
        // when none are cached (e.g. a freshly thawed session).
        let marginals = match &self.last_marginals {
            Some(m) if m.len() == lambda.num_points() => std::sync::Arc::clone(m),
            _ => std::sync::Arc::new(model.marginals(lambda, self.plan.as_ref())),
        };
        let num_classes = LabelScheme::from_cardinality(lambda.cardinality()).num_classes();
        let ranges = DiscTrainer::ranges_for(self.plan.as_ref(), marginals.len());
        self.ensure_features(&config.featurizer);
        Some(DiscTrainingSet {
            features: std::sync::Arc::clone(&self.features),
            marginals,
            ranges,
            num_classes,
            warm: self.disc.as_ref().map(|d| d.model.clone()),
            generation: self.refresh_generation,
            config,
        })
    }

    /// Install a freshly distilled model. Returns `true` when the model
    /// is current (trained on this generation's marginals), `false` when
    /// another refresh landed while it trained — it still installs if it
    /// is newer than what it replaces, so serving improves monotonically.
    pub fn install_disc(&mut self, state: DiscState) -> bool {
        let current = state.generation == self.refresh_generation;
        if self
            .disc
            .as_ref()
            .is_none_or(|live| state.generation >= live.generation)
        {
            self.disc = Some(state);
        }
        current
    }

    /// Distill (or warm-retrain) the serving model from the current
    /// marginals, in place. The inline counterpart of the
    /// [`Self::disc_training_set`] → train → [`Self::install_disc`]
    /// flow; returns `None` under the same conditions.
    pub fn distill(&mut self) -> Option<DistillReport> {
        let set = self.disc_training_set()?;
        let (state, report) = set.train();
        self.install_disc(state);
        Some(report)
    }

    /// Cumulative cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of cached LF-result columns (live + superseded).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Maximum cached LF-result columns.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Set the session-shape gauges of the global registry from current
    /// state. Called after every refresh; [`Self::thaw`] calls it too,
    /// so a restarted process reports its reconstructed generation and
    /// cache shape before the first refresh (counters, by contrast,
    /// reset with the process — they count what *this* process did).
    fn publish_gauges(&self) {
        let metrics = incr_metrics();
        metrics
            .refresh_generation
            .set(self.refresh_generation.min(i64::MAX as u64) as i64);
        metrics
            .unique_patterns
            .set(self.plan.as_ref().map_or(0, ShardedMatrix::num_patterns) as i64);
        metrics.cache_columns.set(self.cache.len() as i64);
        metrics.cache_capacity.set(self.cache.capacity() as i64);
        metrics.rows.set(self.candidates.len() as i64);
        metrics.lfs.set(self.lfs.len() as i64);
        metrics
            .scratch_bytes
            .set(self.resign_scratch.bytes().min(i64::MAX as usize) as i64);
    }

    /// Drop all cached LF results (required after mutating registered
    /// candidates in place — see the type-level contract).
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }

    /// Register new candidate rows (appended after the existing ones).
    /// Panics on candidates already registered — rows are append-only.
    pub fn ingest_candidates(&mut self, ids: &[CandidateId]) {
        let mut seen: std::collections::HashSet<CandidateId> =
            self.candidates.iter().copied().collect();
        for id in ids {
            assert!(
                seen.insert(*id),
                "candidate {id} is already registered (rows are append-only and unique)"
            );
        }
        self.candidates.extend_from_slice(ids);
    }

    fn column_of(&self, name: &str) -> Option<usize> {
        self.lfs.iter().position(|s| s.lf.name() == name)
    }

    fn next_version(&mut self, name: &str) -> u64 {
        let v = self.versions.entry(name.to_string()).or_insert(0);
        let out = *v;
        *v += 1;
        out
    }

    /// Add an LF (auto-versioned fingerprint). Returns its column index.
    pub fn add_lf(&mut self, lf: BoxedLf) -> usize {
        let version = self.next_version(lf.name());
        let fingerprint = Fingerprint::of_auto(lf.name(), version);
        self.add_lf_with_fingerprint(lf, fingerprint)
    }

    /// Add an LF with a caller-supplied content tag (see
    /// [`Fingerprint`]): same `(name, tag)` ⇒ same fingerprint ⇒ cache
    /// hits across re-adds and reverts. Returns its column index.
    pub fn add_lf_tagged(&mut self, lf: BoxedLf, content_tag: u64) -> usize {
        let fingerprint = Fingerprint::of(lf.name(), content_tag);
        self.add_lf_with_fingerprint(lf, fingerprint)
    }

    fn add_lf_with_fingerprint(&mut self, lf: BoxedLf, fingerprint: Fingerprint) -> usize {
        assert!(
            self.column_of(lf.name()).is_none(),
            "LF {:?} is already in the suite (names are unique; use edit_lf)",
            lf.name()
        );
        self.lfs.push(SessionLf { lf, fingerprint });
        self.lfs.len() - 1
    }

    /// Replace the same-named LF with a new version (auto-versioned
    /// fingerprint). Returns its column index.
    pub fn edit_lf(&mut self, lf: BoxedLf) -> usize {
        let version = self.next_version(lf.name());
        let fingerprint = Fingerprint::of_auto(lf.name(), version);
        self.edit_lf_with_fingerprint(lf, fingerprint)
    }

    /// Replace the same-named LF, identifying the new version by a
    /// caller-supplied content tag: editing back to a previously seen tag
    /// reuses that version's cached column. Returns its column index.
    pub fn edit_lf_tagged(&mut self, lf: BoxedLf, content_tag: u64) -> usize {
        let fingerprint = Fingerprint::of(lf.name(), content_tag);
        self.edit_lf_with_fingerprint(lf, fingerprint)
    }

    fn edit_lf_with_fingerprint(&mut self, lf: BoxedLf, fingerprint: Fingerprint) -> usize {
        let col = self
            .column_of(lf.name())
            .unwrap_or_else(|| panic!("LF {:?} is not in the suite (use add_lf)", lf.name()));
        self.lfs[col] = SessionLf { lf, fingerprint };
        col
    }

    /// Remove an LF from the suite. Its cached column stays around (LRU)
    /// so re-adding the same version is free. Returns the removed
    /// column's index, or `None` if no such LF.
    pub fn remove_lf(&mut self, name: &str) -> Option<usize> {
        let col = self.column_of(name)?;
        self.lfs.remove(col);
        Some(col)
    }

    /// Apply the live LF suite to one candidate view, returning one vote
    /// per column (0 = abstain). This is the serving probe: a labeling
    /// service answers "label this new data point" by running the suite
    /// on a transient candidate and feeding the votes to
    /// [`Self::model`]'s posterior — no session state is touched, so it
    /// runs under a shared read lock.
    pub fn apply_lfs(&self, view: &CandidateView<'_>) -> Vec<Vote> {
        self.lfs.iter().map(|s| s.lf.label(view)).collect()
    }

    /// Snapshot the session's warm state as plain data (see
    /// [`FrozenSession`]). The session is untouched; pair with
    /// [`Self::thaw`] to restart a process without re-executing any LF
    /// or re-fitting from scratch.
    pub fn freeze(&self) -> FrozenSession {
        let mut versions: Vec<(String, u64)> = self
            .versions
            .iter()
            .map(|(name, &v)| (name.clone(), v))
            .collect();
        versions.sort();
        FrozenSession {
            candidates: self.candidates.clone(),
            versions,
            suite: self
                .lfs
                .iter()
                .map(|s| (s.lf.name().to_string(), s.fingerprint))
                .collect(),
            cache: self.cache.export(),
            lambda: self.lambda.clone(),
            plan: self.plan.as_ref().map(ShardedMatrix::to_parts),
            model: self.model.as_deref().map(LabelModel::to_snapshot),
            last_fingerprints: self.last_fingerprints.clone(),
            last_rows: self.last_rows,
            last_gm_strategy: self.last_gm_strategy.clone(),
            refresh_generation: self.refresh_generation,
            disc: self.disc.as_ref().map(|d| FrozenDisc {
                config: d.config.clone(),
                model: d.model.to_parts(),
                generation: d.generation,
            }),
            stream: self.stream.as_ref().map(StreamState::freeze),
        }
    }

    /// Restore a frozen session around a reloaded corpus and a freshly
    /// constructed LF suite.
    ///
    /// `lfs` must contain exactly the frozen layout's names (any order);
    /// each LF adopts its frozen fingerprint, i.e. it is *assumed
    /// behaviorally identical* to the version that produced the cached
    /// columns — the same contract as [`Self::add_lf_tagged`] with a
    /// reused tag. A thawed session's first
    /// [`refresh`](Self::refresh) with an unchanged suite executes zero
    /// LF invocations and warm-starts training at the frozen optimum, so
    /// it reproduces the frozen marginals bit-for-bit.
    ///
    /// Every structural invariant of the frozen state is validated
    /// against the corpus and `config` — corrupt or mismatched state
    /// returns a typed [`ThawError`] instead of panicking later.
    pub fn thaw(
        corpus: Corpus,
        config: SessionConfig,
        frozen: FrozenSession,
        lfs: Vec<BoxedLf>,
    ) -> Result<Self, ThawError> {
        let FrozenSession {
            candidates,
            versions,
            suite,
            cache,
            lambda,
            plan,
            model,
            last_fingerprints,
            last_rows,
            last_gm_strategy,
            refresh_generation,
            disc,
            stream,
        } = frozen;

        // --- Re-attach the supplied LFs to the frozen layout by name.
        if lfs.len() != suite.len() {
            return Err(ThawError::SuiteMismatch(format!(
                "frozen suite has {} LFs, {} supplied",
                suite.len(),
                lfs.len()
            )));
        }
        let mut by_name: std::collections::HashMap<String, BoxedLf> =
            std::collections::HashMap::new();
        for lf in lfs {
            let name = lf.name().to_string();
            if by_name.insert(name.clone(), lf).is_some() {
                return Err(ThawError::SuiteMismatch(format!("duplicate LF {name:?}")));
            }
        }
        let mut session_lfs = Vec::with_capacity(suite.len());
        for (name, fingerprint) in &suite {
            let Some(lf) = by_name.remove(name) else {
                return Err(ThawError::SuiteMismatch(format!(
                    "frozen suite expects LF {name:?}, not supplied"
                )));
            };
            session_lfs.push(SessionLf {
                lf,
                fingerprint: *fingerprint,
            });
        }

        // --- Validate the frozen state against corpus and config.
        let cardinality = config.executor.cardinality;
        let mut seen = std::collections::HashSet::new();
        for id in &candidates {
            if id.index() >= corpus.num_candidates() {
                return Err(ThawError::Inconsistent(format!(
                    "registered candidate {id} not present in the corpus \
                     ({} candidates)",
                    corpus.num_candidates()
                )));
            }
            if !seen.insert(*id) {
                return Err(ThawError::Inconsistent(format!(
                    "candidate {id} registered twice"
                )));
            }
        }
        if last_rows > candidates.len() {
            return Err(ThawError::Inconsistent(format!(
                "last refresh covered {last_rows} rows but only {} candidates are registered",
                candidates.len()
            )));
        }
        // Collect into the live map up front so duplicates are caught
        // regardless of the snapshot's ordering (a later duplicate would
        // otherwise silently rewind the counter, letting an auto-tagged
        // re-add reproduce an old fingerprint still in the cache).
        let mut version_map = std::collections::HashMap::new();
        for (name, v) in versions {
            if version_map.insert(name.clone(), v).is_some() {
                return Err(ThawError::Inconsistent(format!(
                    "duplicate version counter for {name:?}"
                )));
            }
        }
        let cache = LfResultCache::import(cache, cardinality).map_err(ThawError::Inconsistent)?;
        if let Some(lambda) = &lambda {
            if lambda.num_points() != last_rows {
                return Err(ThawError::Inconsistent(format!(
                    "Λ has {} rows but the last refresh covered {last_rows}",
                    lambda.num_points()
                )));
            }
            if lambda.num_lfs() != last_fingerprints.len() {
                return Err(ThawError::Inconsistent(format!(
                    "Λ has {} columns but the last refresh had {}",
                    lambda.num_lfs(),
                    last_fingerprints.len()
                )));
            }
            if lambda.cardinality() != cardinality {
                return Err(ThawError::Inconsistent(format!(
                    "Λ cardinality {} != executor cardinality {cardinality}",
                    lambda.cardinality()
                )));
            }
        } else if last_rows > 0 || !last_fingerprints.is_empty() {
            return Err(ThawError::Inconsistent(
                "a refresh happened but Λ is missing".into(),
            ));
        }
        let plan = match (plan, &lambda) {
            (None, _) => None,
            (Some(_), None) => {
                return Err(ThawError::Inconsistent(
                    "a sharded plan without a matrix".into(),
                ))
            }
            (Some(parts), Some(lambda)) => {
                let plan = ShardedMatrix::from_parts(parts).map_err(ThawError::Inconsistent)?;
                plan.validate(lambda).map_err(ThawError::Inconsistent)?;
                Some(plan)
            }
        };
        let model = match model {
            None => None,
            Some(snapshot) => {
                let model = snapshot.restore()?;
                if model.num_lfs() != last_fingerprints.len() {
                    return Err(ThawError::Inconsistent(format!(
                        "{} model covers {} LFs but the last refresh had {}",
                        model.backend_name(),
                        model.num_lfs(),
                        last_fingerprints.len()
                    )));
                }
                if model.scheme() != LabelScheme::from_cardinality(cardinality) {
                    return Err(ThawError::Inconsistent(
                        "model scheme != executor cardinality".into(),
                    ));
                }
                Some(model)
            }
        };
        if let Some((
            ModelingStrategy::GenerativeModel {
                correlations,
                strengths,
                ..
            },
            layout,
        )) = &last_gm_strategy
        {
            if strengths.len() != correlations.len() {
                return Err(ThawError::Inconsistent(
                    "correlation strengths not parallel to pairs".into(),
                ));
            }
            if correlations
                .iter()
                .any(|&(a, b)| a >= layout.len() || b >= layout.len() || a == b)
            {
                return Err(ThawError::Inconsistent(
                    "stored correlation pair indexes outside its layout".into(),
                ));
            }
        }

        let disc = match disc {
            None => None,
            Some(frozen_disc) => {
                if frozen_disc.generation > refresh_generation {
                    return Err(ThawError::Inconsistent(format!(
                        "disc model generation {} is ahead of the session's {}",
                        frozen_disc.generation, refresh_generation
                    )));
                }
                if frozen_disc.config.train.dim != frozen_disc.config.featurizer.buckets {
                    return Err(ThawError::Inconsistent(format!(
                        "disc model dim {} != featurizer buckets {}",
                        frozen_disc.config.train.dim, frozen_disc.config.featurizer.buckets
                    )));
                }
                let model = DistilledModel::from_parts(&frozen_disc.model)
                    .map_err(ThawError::Inconsistent)?;
                if model.dim() != frozen_disc.config.train.dim {
                    return Err(ThawError::Inconsistent(format!(
                        "disc model dim {} != its config dim {}",
                        model.dim(),
                        frozen_disc.config.train.dim
                    )));
                }
                Some(DiscState {
                    config: frozen_disc.config,
                    model,
                    generation: frozen_disc.generation,
                })
            }
        };

        let stream = match stream {
            None => None,
            Some(frozen_stream) => {
                let state = StreamState::thaw(frozen_stream)
                    .map_err(|e| ThawError::Inconsistent(e.to_string()))?;
                if state.num_lfs() != last_fingerprints.len() {
                    return Err(ThawError::Inconsistent(format!(
                        "stream statistics cover {} LFs but the last refresh had {}",
                        state.num_lfs(),
                        last_fingerprints.len()
                    )));
                }
                if state.scheme() != LabelScheme::from_cardinality(cardinality) {
                    return Err(ThawError::Inconsistent(
                        "stream scheme != executor cardinality".into(),
                    ));
                }
                Some(state)
            }
        };

        let session = IncrementalSession {
            corpus,
            config,
            candidates,
            lfs: session_lfs,
            versions: version_map,
            cache,
            lambda,
            plan,
            model,
            last_fingerprints,
            last_rows,
            last_gm_strategy,
            refresh_generation,
            features: std::sync::Arc::new(Vec::new()),
            features_featurizer: None,
            last_marginals: None,
            disc,
            stream,
            resign_scratch: ResignScratch::new(),
        };
        // A thawed process starts with fresh (zero) counters, but the
        // gauges describe reconstructed state — publish them now so the
        // first scrape after a restart already shows the generation the
        // snapshot carried.
        session.publish_gauges();
        Ok(session)
    }

    /// Bring labels up to date after any sequence of edits: re-execute
    /// exactly the LF columns (and candidate rows) the cache cannot
    /// serve, patch Λ in place, re-select the modeling strategy (reusing
    /// the previous structure sweep on one-column edits), and train —
    /// warm-started from the previous model when possible.
    ///
    /// Returns per-class probabilistic labels (`labels[row][class]`) and
    /// the [`RefreshReport`].
    pub fn refresh(&mut self) -> (Vec<Vec<f64>>, RefreshReport) {
        let total_span = stage_span("total");
        let stats_before = self.cache.stats();
        let m = self.candidates.len();
        let n = self.lfs.len();
        let cardinality = self.config.executor.cardinality;

        // ------------------------------------------------------------------
        // 1. Bring every live column up to date in the cache, executing
        //    only what it cannot serve.
        // ------------------------------------------------------------------
        let lf_span = stage_span("lf_exec");
        let mut columns_reused = 0usize;
        let mut columns_recomputed = 0usize;
        let mut columns_extended = 0usize;
        let mut lf_invocations = 0usize;
        for j in 0..n {
            let fp = self.lfs[j].fingerprint;
            let covered = self.cache.rows(fp);
            if covered >= m {
                self.cache.note_hit();
                columns_reused += 1;
                continue;
            }
            // Execute rows covered..m of this column — in parallel across
            // candidates via the executor (a 1-LF suite).
            let slice = &self.candidates[covered..];
            let mini = self.config.executor.apply(
                std::slice::from_ref(&self.lfs[j].lf),
                &self.corpus,
                slice,
            );
            let mut entries = mini.column(0);
            for e in &mut entries {
                e.0 += covered as u32;
            }
            lf_invocations += slice.len();
            if covered == 0 {
                columns_recomputed += 1;
                self.cache.insert(fp, m, entries);
            } else {
                columns_extended += 1;
                self.cache.extend(fp, m, entries);
            }
        }
        let live: Vec<Fingerprint> = self.lfs.iter().map(|s| s.fingerprint).collect();
        self.cache.evict_to_capacity(&live);
        let lf_time = lf_span.finish();

        // ------------------------------------------------------------------
        // 2. Patch or assemble Λ.
        // ------------------------------------------------------------------
        let asm_span = stage_span("splice");
        let structural = live.len() != self.last_fingerprints.len();
        let changed_cols: Vec<usize> = if structural {
            Vec::new()
        } else {
            (0..n)
                .filter(|&j| live[j] != self.last_fingerprints[j])
                .collect()
        };
        let new_rows = m.saturating_sub(self.last_rows);
        // The stored correlation structure indexes columns of one exact
        // suite layout; drop it whenever the layout's LF identities no
        // longer match (add/remove, including length-preserving
        // shuffles — edits keep the name, so they survive).
        let layout: Vec<String> = self.lfs.iter().map(|s| s.lf.name().to_string()).collect();
        if self
            .last_gm_strategy
            .as_ref()
            .is_some_and(|(_, stored)| *stored != layout)
        {
            self.last_gm_strategy = None;
        }

        let lambda_update;
        if let (Some(lambda), false) = (self.lambda.as_mut(), structural) {
            if changed_cols.is_empty() && new_rows == 0 {
                lambda_update = LambdaUpdate::Unchanged;
            } else {
                // Rows first (changed columns' new-row votes are included
                // here and then overwritten wholesale by their column
                // splice — both sourced from the same cached column, so
                // the result is consistent either way).
                if new_rows > 0 {
                    let old_m = self.last_rows;
                    let mut rows: Vec<Vec<(u32, Vote)>> = vec![Vec::new(); new_rows];
                    for (j, fp) in live.iter().enumerate() {
                        let entries = self.cache.entries(*fp).expect("live column cached");
                        let start = entries.partition_point(|e| (e.0 as usize) < old_m);
                        for &(row, v) in &entries[start..] {
                            rows[row as usize - old_m].push((j as u32, v));
                        }
                    }
                    lambda.apply_delta(&MatrixDelta::AppendRows { rows });
                }
                for &j in &changed_cols {
                    let entries = self
                        .cache
                        .entries(live[j])
                        .expect("live column cached")
                        .to_vec();
                    lambda.apply_delta(&MatrixDelta::ReplaceColumn { col: j, entries });
                }
                lambda_update = LambdaUpdate::Patched {
                    columns_replaced: changed_cols.len(),
                    rows_appended: new_rows,
                };
            }
        } else {
            let cols: Vec<Vec<(u32, Vote)>> = live
                .iter()
                .map(|fp| {
                    self.cache
                        .entries(*fp)
                        .expect("live column cached")
                        .to_vec()
                })
                .collect();
            self.lambda = Some(LabelMatrix::from_columns(m, cardinality, &cols));
            lambda_update = LambdaUpdate::Assembled;
        }
        // Keep the sharded pattern plan in sync with Λ. Delta refreshes
        // touch only the affected patterns: an appended batch interns
        // just the new rows into the tail shard; a column splice
        // re-signs just the rows that voted in the old or new column.
        // Structural suite changes (and plan activation) rebuild.
        let want_plan = match self.config.scaleout {
            Scaleout::RowWise => false,
            Scaleout::Sharded { .. } => true,
            Scaleout::Auto => m >= SCALEOUT_MIN_ROWS,
        };
        let shard_count = match self.config.scaleout {
            Scaleout::Sharded { shards } => shards,
            _ => 0,
        };
        {
            let lambda = self.lambda.as_ref().expect("Λ assembled above");
            if !want_plan {
                self.plan = None;
            } else {
                let rebuild = match (&mut self.plan, lambda_update) {
                    (Some(plan), LambdaUpdate::Patched { .. }) => {
                        if new_rows > 0 {
                            plan.append_rows(lambda);
                        }
                        for &j in &changed_cols {
                            plan.refresh_column_with(lambda, j, &mut self.resign_scratch);
                        }
                        false
                    }
                    (Some(_), LambdaUpdate::Unchanged) => false,
                    _ => true,
                };
                if rebuild {
                    self.plan = Some(ShardedMatrix::build(lambda, shard_count));
                }
            }
        }
        let lambda = self.lambda.as_ref().expect("Λ assembled above");
        let assembly_time = asm_span.finish();

        // ------------------------------------------------------------------
        // 3. Strategy selection (Algorithm 1, with sweep reuse).
        // ------------------------------------------------------------------
        let strat_span = stage_span("strategy");
        let mut structure_reused = false;
        let (strategy, predicted) = if let Some(s) = &self.config.force_strategy {
            (s.clone(), f64::NAN)
        } else if !lambda.is_binary() {
            // Mirrors the batch pipeline: the advantage analysis is
            // binary-only, so multi-class tasks always train the GM.
            (
                ModelingStrategy::GenerativeModel {
                    epsilon: 0.0,
                    correlations: Vec::new(),
                    strengths: Vec::new(),
                },
                f64::NAN,
            )
        } else {
            let reuse_ok = self.config.reuse_structure_on_column_edit
                && !structural
                && new_rows == 0
                && changed_cols.len() <= 1
                && self.last_gm_strategy.is_some();
            if reuse_ok {
                // The bound is O(nnz) — always recompute it; only the
                // expensive sweep is reused.
                let predicted = advantage_upper_bound(lambda, &self.config.optimizer);
                if predicted < self.config.optimizer.gamma {
                    (ModelingStrategy::MajorityVote, predicted)
                } else {
                    structure_reused = true;
                    (
                        self.last_gm_strategy.clone().expect("reuse_ok checked").0,
                        predicted,
                    )
                }
            } else {
                let d = select_model(lambda, &self.config.optimizer, &self.config.registry);
                (d.strategy, d.predicted_advantage)
            }
        };
        if matches!(strategy, ModelingStrategy::GenerativeModel { .. })
            && self.config.force_strategy.is_none()
            && lambda.is_binary()
        {
            self.last_gm_strategy = Some((strategy.clone(), layout));
        }
        let strategy_time = strat_span.finish();

        // ------------------------------------------------------------------
        // 4. Labels: build the selected backend and fit it — warm-started
        //    from the previous refresh's model when possible.
        // ------------------------------------------------------------------
        let train_span = stage_span("fit");
        let scheme = LabelScheme::from_cardinality(lambda.cardinality());
        let mut model = self
            .config
            .registry
            .build(&strategy, n, lambda.cardinality())
            .unwrap_or_else(|e| panic!("session misconfigured: {e}"));
        let prev_compatible = self
            .model
            .as_deref()
            .is_some_and(|prev| prev.scheme() == scheme);
        // The session-level scale-out decision governs training: with a
        // live plan, train and infer through it; without one, pin the
        // model to the row-wise path so it does not rebuild a plan of
        // its own every refresh.
        let plan = self.plan.as_ref();
        let train_cfg = if plan.is_some() {
            self.config.train.clone()
        } else {
            TrainConfig {
                scaleout: Scaleout::RowWise,
                ..self.config.train.clone()
            }
        };
        let report = if self.config.warm_start && prev_compatible {
            let prev = self.model.take().expect("prev_compatible checked");
            if structural || prev.num_lfs() != n {
                // Map surviving columns to their previous per-column
                // state by fingerprint; new/edited columns start fresh.
                let col_map: Vec<Option<usize>> = live
                    .iter()
                    .map(|fp| self.last_fingerprints.iter().position(|p| p == fp))
                    .collect();
                let fresh: Vec<usize> = (0..n).filter(|&j| col_map[j].is_none()).collect();
                let remapped = prev.remapped(&col_map);
                model.fit_warm(lambda, plan, &train_cfg, remapped.as_ref(), &fresh)
            } else {
                model.fit_warm(lambda, plan, &train_cfg, prev.as_ref(), &changed_cols)
            }
        } else {
            model.fit(lambda, plan, &train_cfg)
        };
        let warm_started = report.warm_started;
        let fit_epochs = report.epochs;
        let labels = model.marginals(lambda, plan);
        let backend = model.backend_name();
        self.model = Some(model);
        let training_time = train_span.finish();

        // ------------------------------------------------------------------
        // 5. Commit refresh bookkeeping and report.
        // ------------------------------------------------------------------
        self.last_fingerprints = live;
        self.last_rows = m;
        // Keep the streaming plane consistent with the refreshed Λ:
        // suite edits and batch-path row appends change per-LF counts,
        // so the running moment statistics are rebuilt from Λ (edits
        // are rare; ingest — the hot path — never comes through here)
        // and the drift baseline restarts. A no-op refresh (e.g. the
        // automatic post-drift warm refit) leaves the stream untouched.
        if lambda_update != LambdaUpdate::Unchanged {
            if let Some(stream) = &mut self.stream {
                stream.rebuild_from_matrix(lambda);
            }
        }
        // The disc model (if any) now lags these marginals; readers keep
        // serving it while a retrain runs, comparing its generation
        // against this counter. Cache the marginals so the upcoming
        // distillation pass does not redo this refresh's inference.
        self.refresh_generation += 1;
        self.last_marginals = if self.distill_config().is_some() {
            Some(std::sync::Arc::new(labels.clone()))
        } else {
            None
        };
        // Publish this refresh's cache activity (deltas of the session's
        // cumulative stats) and the session-shape gauges.
        let label_density = lambda.label_density();
        let stats_after = self.cache.stats();
        let metrics = incr_metrics();
        metrics.refreshes.inc();
        metrics.cache_hits.add(stats_after.hits - stats_before.hits);
        metrics
            .cache_misses
            .add(stats_after.misses - stats_before.misses);
        metrics
            .cache_extensions
            .add(stats_after.extensions - stats_before.extensions);
        metrics
            .cache_evictions
            .add(stats_after.evictions - stats_before.evictions);
        let unique_patterns = self.plan.as_ref().map(ShardedMatrix::num_patterns);
        self.publish_gauges();

        let report = RefreshReport {
            strategy,
            backend,
            predicted_advantage: predicted,
            label_density,
            lambda_update,
            columns_reused,
            columns_recomputed,
            columns_extended,
            lf_invocations,
            structure_reused,
            warm_started,
            fit_epochs,
            unique_patterns,
            cache: stats_after,
            timings: RefreshTimings {
                lf_application: lf_time,
                matrix_assembly: assembly_time,
                strategy_selection: strategy_time,
                training: training_time,
                total: total_span.finish(),
            },
        };
        (labels, report)
    }

    /// Absorb one streamed candidate batch — the continuous-arrival
    /// counterpart of `ingest_candidates` + [`Self::refresh`], built to
    /// run forever without the per-batch cost growing with the corpus:
    ///
    /// 1. the live LF columns are *extended* onto just the new rows
    ///    (content-addressed cache, same as a refresh extension);
    /// 2. the new rows are spliced into Λ ([`MatrixDelta::AppendRows`])
    ///    and interned into the live sharded plan's tail;
    /// 3. each row is folded into the running moment statistics and the
    ///    drift detector's current window;
    /// 4. the label model is re-solved from the running statistics via
    ///    [`LabelModel::fit_online`] — **no pass over Λ** (backends
    ///    without an online path keep their weights until the next
    ///    refresh);
    /// 5. if the batch pushed the drift score past the configured
    ///    threshold, an automatic warm [`Self::refresh`] runs and the
    ///    detector re-anchors on the post-refit regime.
    ///
    /// An online-refit (and the automatic drift refit) advances
    /// [`Self::refresh_generation`]: the model changed, so posterior
    /// memoizations keyed by generation must not serve stale answers.
    ///
    /// When the steady-state preconditions do not hold (no refresh yet,
    /// or suite edits pending), the batch falls back to registering the
    /// candidates and running a full [`Self::refresh`].
    pub fn ingest_batch(&mut self, ids: &[CandidateId]) -> IngestReport {
        let span = ingest_span();
        if self.lambda.is_none() || !self.suite_matches_last_refresh() {
            self.ingest_candidates(ids);
            let (_, refresh) = self.refresh();
            self.enable_streaming();
            let stream = self.stream.as_ref().expect("enabled above");
            let report = IngestReport {
                rows: ids.len(),
                lf_invocations: refresh.lf_invocations,
                online_fit: false,
                drift_score: stream.drift_score(),
                drifted: stream.drifted(),
                auto_refit: false,
                generation: self.refresh_generation,
            };
            drop(span);
            return report;
        }
        self.enable_streaming();
        self.ingest_candidates(ids);
        let m = self.candidates.len();
        let old_m = self.last_rows;
        let new_rows = m - old_m;
        let n = self.lfs.len();

        // 1. Extend every live column onto the new rows.
        let mut lf_invocations = 0usize;
        for j in 0..n {
            let fp = self.lfs[j].fingerprint;
            let covered = self.cache.rows(fp);
            if covered >= m {
                self.cache.note_hit();
                continue;
            }
            let slice = &self.candidates[covered..];
            let mini = self.config.executor.apply(
                std::slice::from_ref(&self.lfs[j].lf),
                &self.corpus,
                slice,
            );
            let mut entries = mini.column(0);
            for e in &mut entries {
                e.0 += covered as u32;
            }
            lf_invocations += slice.len();
            if covered == 0 {
                self.cache.insert(fp, m, entries);
            } else {
                self.cache.extend(fp, m, entries);
            }
        }
        let live: Vec<Fingerprint> = self.lfs.iter().map(|s| s.fingerprint).collect();
        self.cache.evict_to_capacity(&live);

        // 2. Splice the new rows into Λ and the live plan's tail shard.
        let lambda = self.lambda.as_mut().expect("checked above");
        if new_rows > 0 {
            let mut rows: Vec<Vec<(u32, Vote)>> = vec![Vec::new(); new_rows];
            for (j, fp) in live.iter().enumerate() {
                let entries = self.cache.entries(*fp).expect("live column cached");
                let start = entries.partition_point(|e| (e.0 as usize) < old_m);
                for &(row, v) in &entries[start..] {
                    rows[row as usize - old_m].push((j as u32, v));
                }
            }
            lambda.apply_delta(&MatrixDelta::AppendRows { rows });
            if let Some(plan) = &mut self.plan {
                plan.append_rows(lambda);
            }
        }

        // 3. Fold the new rows into the streaming statistics.
        let stream = self.stream.as_mut().expect("enabled above");
        for i in old_m..m {
            let (cols, votes) = lambda.row(i);
            stream.observe_row(cols, votes);
        }
        stream.note_batch(new_rows);
        publish_drift_gauges(self.lfs.iter().map(|s| s.lf.name()), stream.per_lf_scores());

        // 4. Online refit from the running statistics — the steady-state
        //    fast path the streaming bench gates: O(n³) in the LF count,
        //    independent of the corpus size.
        let train_cfg = if self.plan.is_some() {
            self.config.train.clone()
        } else {
            TrainConfig {
                scaleout: Scaleout::RowWise,
                ..self.config.train.clone()
            }
        };
        let online_fit = match self.model.as_deref_mut() {
            Some(model) => model.fit_online(stream.stats(), &train_cfg).is_some(),
            None => false,
        };

        // 5. Bookkeeping: the splice is committed; an online-refitted
        //    model invalidates generation-keyed posterior memos.
        self.last_rows = m;
        if online_fit {
            self.refresh_generation += 1;
            self.last_marginals = None;
        }

        // 6. Drift response: automatic warm refit, then re-anchor.
        let (drift_score, drifted) = {
            let stream = self.stream.as_ref().expect("enabled above");
            (stream.drift_score(), stream.drifted())
        };
        let mut auto_refit = false;
        if drifted {
            // Λ is already up to date, so this is the warm no-splice
            // path: strategy re-selection + warm training + fresh
            // marginals, bumping the generation.
            let _ = self.refresh();
            if let Some(stream) = &mut self.stream {
                stream.record_auto_refit();
            }
            auto_refit = true;
        }
        self.publish_gauges();
        drop(span);
        IngestReport {
            rows: new_rows,
            lf_invocations,
            online_fit,
            drift_score,
            drifted,
            auto_refit,
            generation: self.refresh_generation,
        }
    }
}
