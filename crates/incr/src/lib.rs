//! # snorkel-incr
//!
//! The **incremental labeling engine**: turns the batch
//! `LFs → Λ → strategy → training` pipeline into an interactive dev loop
//! where editing one labeling function out of `n` costs `O(m)` instead
//! of `O(n·m + training-from-scratch)`.
//!
//! The paper's core workflow is a *loop* — users iteratively write and
//! edit labeling functions, re-apply the suite, and re-fit the
//! generative model (§2.1, appendix C); its §3 timing results exist
//! because iteration latency is the product bottleneck. This crate makes
//! each turn of that loop incremental:
//!
//! * [`LfResultCache`] — a content-addressed cache of LF outputs keyed
//!   by `(lf_fingerprint, candidate)`, stored column-wise. Editing one
//!   LF re-executes only that LF's column (in parallel, via the existing
//!   [`snorkel_lf::LfExecutor`]); ingesting a candidate batch executes
//!   only the new rows of each column.
//! * **Delta Λ updates** — the cache feeds
//!   [`snorkel_matrix::MatrixDelta`] column splices and row appends, so
//!   Λ is patched in place, bit-identical to a full rebuild.
//! * **Warm-start training** — the session holds whatever
//!   [`snorkel_core::label_model::LabelModel`] backend the optimizer
//!   selected and refits it through the trait's `fit_warm`: the exact
//!   generative backend restarts EM from the previous refresh's
//!   parameters (edited columns re-enter at their conditional MLE),
//!   converging to the same optimizer-independent fixed point as a cold
//!   fit — marginals agree to ≤1e-9 on the exact path. Fit-free
//!   backends (majority vote, the closed-form moment estimator) refit
//!   from scratch because a cold fit is already the cheap path.
//! * **Structure-sweep reuse** — on a one-column edit the Algorithm-1
//!   ε-sweep (the expensive half of strategy selection) is skipped and
//!   the previous correlation structure is reused; the cheap `A~*`
//!   advantage bound is always re-checked.
//! * **Reused refresh scratch** — the session owns a
//!   [`snorkel_matrix::ResignScratch`] threaded into the sharded plan's
//!   delta column re-signs, so repeated edits stop allocating once the
//!   buffers reach the workload's high-water mark (reported on the
//!   `snorkel_incr_scratch_bytes` gauge; budgets in
//!   `docs/PERFORMANCE.md`).
//!
//! [`IncrementalSession`] ties these together behind an
//! add/edit/remove/ingest/[`refresh`](IncrementalSession::refresh) API.
//!
//! ## Cache key scheme and invalidation
//!
//! A [`Fingerprint`] names one behavioral version of one LF: it hashes
//! the LF's *name* plus a content tag — caller-supplied (content hash of
//! the LF's definition; reverts become cache hits) or a session-assigned
//! per-name version counter (conservative: every untagged edit is
//! assumed to change behavior). Invalidation follows from the key:
//!
//! | event | effect |
//! |---|---|
//! | LF edited | new fingerprint ⇒ that column misses and is re-executed; all other columns hit |
//! | LF removed / re-added | old column stays cached (LRU) ⇒ re-adding the same version is free |
//! | candidates ingested | every column extends itself over the new rows only |
//! | candidate mutated in place | **not tracked** — violates the append-only contract; call [`IncrementalSession::invalidate_cache`] |
//!
//! ## Example
//!
//! ```
//! use snorkel_context::Corpus;
//! use snorkel_incr::{IncrementalSession, SessionConfig};
//! use snorkel_lf::lf;
//! use snorkel_nlp::tokenize;
//!
//! let mut corpus = Corpus::new();
//! let doc = corpus.add_document("d");
//! for i in 0..20 {
//!     let text = if i % 2 == 0 { "a causes b" } else { "a treats b" };
//!     let s = corpus.add_sentence(doc, text, tokenize(text));
//!     let x = corpus.add_span(s, 0, 1, Some("X"));
//!     let y = corpus.add_span(s, 2, 3, Some("Y"));
//!     corpus.add_candidate(vec![x, y]);
//! }
//!
//! let mut session = IncrementalSession::over_all_candidates(corpus, SessionConfig::default());
//! session.add_lf(lf("lf_causes", |x| {
//!     if x.words_between(0, 1).contains(&"causes") { 1 } else { 0 }
//! }));
//! session.add_lf(lf("lf_treats", |x| {
//!     if x.words_between(0, 1).contains(&"treats") { -1 } else { 0 }
//! }));
//! let (labels, report) = session.refresh();
//! assert_eq!(labels.len(), 20);
//! assert_eq!(report.columns_recomputed, 2); // first refresh: all cold
//!
//! // Edit one LF: only its column re-executes.
//! session.edit_lf(lf("lf_treats", |x| {
//!     if x.words_between(0, 1).iter().any(|w| *w == "treats") { -1 } else { 0 }
//! }));
//! let (_, report) = session.refresh();
//! assert_eq!(report.columns_recomputed, 1);
//! assert_eq!(report.columns_reused, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fingerprint;
mod session;

pub use cache::{CacheStats, FrozenCache, FrozenColumn, LfResultCache};
pub use fingerprint::Fingerprint;
pub use session::{
    DiscState, DiscTrainingSet, FrozenDisc, FrozenSession, IncrementalSession, IngestReport,
    LambdaUpdate, RefreshReport, RefreshTimings, SessionConfig, ThawError,
};
