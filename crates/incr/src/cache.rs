//! The content-addressed LF-result cache.
//!
//! Conceptually a map `(lf_fingerprint, candidate) → vote`; physically
//! one sparse *column* per fingerprint, aligned to the session's
//! candidate ordering, because votes are always produced and consumed a
//! column at a time. Each column records how many candidate rows it
//! covers, so ingesting a new batch extends columns in place instead of
//! recomputing them.
//!
//! ## Invalidation rules
//!
//! * **LF edited** → its fingerprint changes → the old column is simply
//!   never asked for again (and ages out by LRU); the new fingerprint
//!   misses and is recomputed. Columns of *other* LFs are untouched —
//!   this is what makes a one-LF edit an `O(m)` refresh instead of
//!   `O(n·m)`.
//! * **Candidates ingested** → every column's `rows` falls behind the
//!   session's candidate count → each column is *extended* by executing
//!   only the new rows.
//! * **Candidate content mutated in place** (outside the append-only
//!   contract) → nothing in the key changes, so the cache would serve
//!   stale votes: callers must invalidate explicitly
//!   ([`LfResultCache::clear`]). The `IncrementalSession` documents this
//!   as the append-only corpus contract.
//!
//! Superseded columns (old LF versions) are kept until LRU capacity
//! pressure evicts them, so *reverting* an edit whose fingerprint is
//! content-derived is a full cache hit.

use std::collections::HashMap;

use snorkel_matrix::Vote;

use crate::fingerprint::Fingerprint;

/// One cached sparse column: non-abstain `(row, vote)` entries sorted by
/// row, covering candidate rows `0..rows`.
#[derive(Clone, Debug)]
struct CachedColumn {
    rows: usize,
    entries: Vec<(u32, Vote)>,
    last_used: u64,
}

/// Cumulative cache statistics (monotone across the session).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Column lookups that were fully served from cache.
    pub hits: u64,
    /// Column lookups that required computing the column from scratch.
    pub misses: u64,
    /// Column lookups served by extending a cached prefix to new rows.
    pub extensions: u64,
    /// Columns evicted by capacity pressure.
    pub evictions: u64,
}

/// One exported cache column (see [`FrozenCache`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenColumn {
    /// The LF version this column belongs to.
    pub fingerprint: Fingerprint,
    /// Candidate rows `0..rows` the column covers.
    pub rows: usize,
    /// Non-abstain `(row, vote)` entries, sorted by row.
    pub entries: Vec<(u32, Vote)>,
}

/// Owned copy of an [`LfResultCache`]'s persistent state — the stable
/// encoding surface for on-disk snapshots (`snorkel-serve`). Columns are
/// exported in least-recently-used-first order so an import reproduces
/// the original's eviction order; the internal recency ticks themselves
/// are not part of the encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenCache {
    /// Maximum cached columns.
    pub capacity: usize,
    /// Cumulative statistics at freeze time.
    pub stats: CacheStats,
    /// Cached columns, least recently used first.
    pub columns: Vec<FrozenColumn>,
}

/// The LF-result cache. See the module docs for the key scheme and the
/// invalidation rules.
#[derive(Clone, Debug)]
pub struct LfResultCache {
    columns: HashMap<Fingerprint, CachedColumn>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl LfResultCache {
    /// An empty cache holding at most `capacity` columns (old LF
    /// versions beyond the live suite age out LRU-first).
    pub fn new(capacity: usize) -> Self {
        LfResultCache {
            columns: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached columns (live + superseded).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Maximum number of cached columns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Rows covered by the column cached under `fp` (0 when absent).
    pub fn rows(&self, fp: Fingerprint) -> usize {
        self.columns.get(&fp).map_or(0, |c| c.rows)
    }

    /// The cached entries for `fp`, bumping its recency. `None` when the
    /// fingerprint is absent.
    pub fn entries(&mut self, fp: Fingerprint) -> Option<&[(u32, Vote)]> {
        self.tick += 1;
        let tick = self.tick;
        match self.columns.get_mut(&fp) {
            Some(col) => {
                col.last_used = tick;
                Some(&col.entries)
            }
            None => None,
        }
    }

    /// Record a cache-hit lookup (the caller found `rows()` sufficient).
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Install a freshly computed full column covering `rows` rows.
    pub fn insert(&mut self, fp: Fingerprint, rows: usize, entries: Vec<(u32, Vote)>) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.last().is_none_or(|e| (e.0 as usize) < rows));
        self.stats.misses += 1;
        self.tick += 1;
        self.columns.insert(
            fp,
            CachedColumn {
                rows,
                entries,
                last_used: self.tick,
            },
        );
    }

    /// Extend `fp`'s column to cover `rows` rows with `extra` entries
    /// (row indices already absolute, all ≥ the column's current
    /// coverage).
    pub fn extend(&mut self, fp: Fingerprint, rows: usize, extra: Vec<(u32, Vote)>) {
        self.stats.extensions += 1;
        self.tick += 1;
        let tick = self.tick;
        let col = self
            .columns
            .get_mut(&fp)
            .expect("extend requires a cached column");
        debug_assert!(extra.first().is_none_or(|e| (e.0 as usize) >= col.rows));
        debug_assert!(rows >= col.rows);
        col.entries.extend(extra);
        col.rows = rows;
        col.last_used = tick;
    }

    /// Evict least-recently-used columns down to capacity, never evicting
    /// a pinned (live-suite) fingerprint.
    pub fn evict_to_capacity(&mut self, pinned: &[Fingerprint]) {
        while self.columns.len() > self.capacity {
            let victim = self
                .columns
                .iter()
                .filter(|(fp, _)| !pinned.contains(fp))
                .min_by_key(|(_, col)| col.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.columns.remove(&fp);
                    self.stats.evictions += 1;
                }
                None => break, // everything live is pinned
            }
        }
    }

    /// Drop every cached column (the escape hatch when corpus content was
    /// mutated in place, breaking the append-only contract).
    pub fn clear(&mut self) {
        self.columns.clear();
    }

    /// Export the persistent state (see [`FrozenCache`]).
    pub fn export(&self) -> FrozenCache {
        let mut order: Vec<(&Fingerprint, &CachedColumn)> = self.columns.iter().collect();
        order.sort_by_key(|(_, col)| col.last_used);
        FrozenCache {
            capacity: self.capacity,
            stats: self.stats,
            columns: order
                .into_iter()
                .map(|(fp, col)| FrozenColumn {
                    fingerprint: *fp,
                    rows: col.rows,
                    entries: col.entries.clone(),
                })
                .collect(),
        }
    }

    /// Rebuild a cache from exported state, re-deriving recency from the
    /// export order. Untrusted input (a snapshot file) comes through
    /// here, so the column invariants the hot paths debug-assert are
    /// validated for real: entries sorted strictly by row, within the
    /// covered range, votes legal for the session's `cardinality` vote
    /// scheme, and one column per fingerprint.
    pub fn import(frozen: FrozenCache, cardinality: u8) -> Result<LfResultCache, String> {
        let mut cache = LfResultCache::new(frozen.capacity);
        cache.stats = frozen.stats;
        for col in frozen.columns {
            if col.entries.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(format!(
                    "column {}: entries not strictly sorted by row",
                    col.fingerprint
                ));
            }
            if let Some(&(row, v)) = col
                .entries
                .iter()
                .find(|&&(_, v)| !snorkel_matrix::is_legal_vote(cardinality, v))
            {
                return Err(format!(
                    "column {}: vote {v} at row {row} illegal for cardinality {cardinality}",
                    col.fingerprint
                ));
            }
            if col
                .entries
                .last()
                .is_some_and(|e| (e.0 as usize) >= col.rows)
            {
                return Err(format!(
                    "column {}: entry row beyond covered range {}",
                    col.fingerprint, col.rows
                ));
            }
            cache.tick += 1;
            let prev = cache.columns.insert(
                col.fingerprint,
                CachedColumn {
                    rows: col.rows,
                    entries: col.entries,
                    last_used: cache.tick,
                },
            );
            if prev.is_some() {
                return Err(format!("duplicate cached column {}", col.fingerprint));
            }
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::of("lf", n)
    }

    #[test]
    fn insert_lookup_extend() {
        let mut cache = LfResultCache::new(8);
        assert_eq!(cache.rows(fp(1)), 0);
        cache.insert(fp(1), 10, vec![(0, 1), (7, -1)]);
        assert_eq!(cache.rows(fp(1)), 10);
        assert_eq!(cache.entries(fp(1)).unwrap(), &[(0, 1), (7, -1)]);
        cache.extend(fp(1), 15, vec![(12, 1)]);
        assert_eq!(cache.rows(fp(1)), 15);
        assert_eq!(cache.entries(fp(1)).unwrap(), &[(0, 1), (7, -1), (12, 1)]);
        let s = cache.stats();
        assert_eq!((s.misses, s.extensions), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_pins() {
        let mut cache = LfResultCache::new(2);
        cache.insert(fp(1), 5, vec![]);
        cache.insert(fp(2), 5, vec![]);
        cache.insert(fp(3), 5, vec![]);
        // fp(1) is oldest but pinned; fp(2) goes.
        cache.evict_to_capacity(&[fp(1)]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.rows(fp(2)), 0, "LRU unpinned column evicted");
        assert_eq!(cache.rows(fp(1)), 5);
        assert_eq!(cache.rows(fp(3)), 5);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn export_import_preserves_state_and_lru_order() {
        let mut cache = LfResultCache::new(2);
        cache.insert(fp(1), 5, vec![(0, 1)]);
        cache.insert(fp(2), 5, vec![(3, -1)]);
        cache.entries(fp(1)); // bump fp(1) to most-recent
        let frozen = cache.export();
        assert_eq!(frozen.columns[0].fingerprint, fp(2), "LRU-first order");
        let mut back = LfResultCache::import(frozen, 2).unwrap();
        assert_eq!(back.rows(fp(1)), 5);
        assert_eq!(back.stats().misses, 2);
        // Recency carried over: under pressure, fp(2) evicts first
        // (fp(1) was bumped before the freeze).
        back.insert(fp(3), 5, vec![]);
        back.evict_to_capacity(&[]);
        assert_eq!(back.rows(fp(2)), 0, "imported LRU order drives eviction");
        assert_eq!(back.rows(fp(1)), 5);
        assert_eq!(back.entries(fp(1)).unwrap(), &[(0, 1)]);
    }

    #[test]
    fn import_rejects_corruption() {
        let mut cache = LfResultCache::new(4);
        cache.insert(fp(1), 5, vec![(0, 1), (3, -1)]);
        // Unsorted entries.
        let mut frozen = cache.export();
        frozen.columns[0].entries.reverse();
        assert!(LfResultCache::import(frozen, 2).is_err());
        // Entry beyond coverage.
        let mut frozen = cache.export();
        frozen.columns[0].rows = 2;
        assert!(LfResultCache::import(frozen, 2).is_err());
        // Illegal vote for the scheme.
        let mut frozen = cache.export();
        frozen.columns[0].entries[0].1 = 3;
        assert!(LfResultCache::import(frozen, 2).is_err());
        // Duplicate fingerprint.
        let mut frozen = cache.export();
        let dup = frozen.columns[0].clone();
        frozen.columns.push(dup);
        assert!(LfResultCache::import(frozen, 2).is_err());
    }

    #[test]
    fn fully_pinned_cache_never_evicts() {
        let mut cache = LfResultCache::new(1);
        cache.insert(fp(1), 5, vec![]);
        cache.insert(fp(2), 5, vec![]);
        cache.evict_to_capacity(&[fp(1), fp(2)]);
        assert_eq!(cache.len(), 2, "pinned columns survive over-capacity");
    }
}
