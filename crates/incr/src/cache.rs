//! The content-addressed LF-result cache.
//!
//! Conceptually a map `(lf_fingerprint, candidate) → vote`; physically
//! one sparse *column* per fingerprint, aligned to the session's
//! candidate ordering, because votes are always produced and consumed a
//! column at a time. Each column records how many candidate rows it
//! covers, so ingesting a new batch extends columns in place instead of
//! recomputing them.
//!
//! ## Invalidation rules
//!
//! * **LF edited** → its fingerprint changes → the old column is simply
//!   never asked for again (and ages out by LRU); the new fingerprint
//!   misses and is recomputed. Columns of *other* LFs are untouched —
//!   this is what makes a one-LF edit an `O(m)` refresh instead of
//!   `O(n·m)`.
//! * **Candidates ingested** → every column's `rows` falls behind the
//!   session's candidate count → each column is *extended* by executing
//!   only the new rows.
//! * **Candidate content mutated in place** (outside the append-only
//!   contract) → nothing in the key changes, so the cache would serve
//!   stale votes: callers must invalidate explicitly
//!   ([`LfResultCache::clear`]). The `IncrementalSession` documents this
//!   as the append-only corpus contract.
//!
//! Superseded columns (old LF versions) are kept until LRU capacity
//! pressure evicts them, so *reverting* an edit whose fingerprint is
//! content-derived is a full cache hit.

use std::collections::HashMap;

use snorkel_matrix::Vote;

use crate::fingerprint::Fingerprint;

/// One cached sparse column: non-abstain `(row, vote)` entries sorted by
/// row, covering candidate rows `0..rows`.
#[derive(Clone, Debug)]
struct CachedColumn {
    rows: usize,
    entries: Vec<(u32, Vote)>,
    last_used: u64,
}

/// Cumulative cache statistics (monotone across the session).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Column lookups that were fully served from cache.
    pub hits: u64,
    /// Column lookups that required computing the column from scratch.
    pub misses: u64,
    /// Column lookups served by extending a cached prefix to new rows.
    pub extensions: u64,
    /// Columns evicted by capacity pressure.
    pub evictions: u64,
}

/// The LF-result cache. See the module docs for the key scheme and the
/// invalidation rules.
#[derive(Clone, Debug)]
pub struct LfResultCache {
    columns: HashMap<Fingerprint, CachedColumn>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl LfResultCache {
    /// An empty cache holding at most `capacity` columns (old LF
    /// versions beyond the live suite age out LRU-first).
    pub fn new(capacity: usize) -> Self {
        LfResultCache {
            columns: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached columns (live + superseded).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Rows covered by the column cached under `fp` (0 when absent).
    pub fn rows(&self, fp: Fingerprint) -> usize {
        self.columns.get(&fp).map_or(0, |c| c.rows)
    }

    /// The cached entries for `fp`, bumping its recency. `None` when the
    /// fingerprint is absent.
    pub fn entries(&mut self, fp: Fingerprint) -> Option<&[(u32, Vote)]> {
        self.tick += 1;
        let tick = self.tick;
        match self.columns.get_mut(&fp) {
            Some(col) => {
                col.last_used = tick;
                Some(&col.entries)
            }
            None => None,
        }
    }

    /// Record a cache-hit lookup (the caller found `rows()` sufficient).
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Install a freshly computed full column covering `rows` rows.
    pub fn insert(&mut self, fp: Fingerprint, rows: usize, entries: Vec<(u32, Vote)>) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.last().is_none_or(|e| (e.0 as usize) < rows));
        self.stats.misses += 1;
        self.tick += 1;
        self.columns.insert(
            fp,
            CachedColumn {
                rows,
                entries,
                last_used: self.tick,
            },
        );
    }

    /// Extend `fp`'s column to cover `rows` rows with `extra` entries
    /// (row indices already absolute, all ≥ the column's current
    /// coverage).
    pub fn extend(&mut self, fp: Fingerprint, rows: usize, extra: Vec<(u32, Vote)>) {
        self.stats.extensions += 1;
        self.tick += 1;
        let tick = self.tick;
        let col = self
            .columns
            .get_mut(&fp)
            .expect("extend requires a cached column");
        debug_assert!(extra.first().is_none_or(|e| (e.0 as usize) >= col.rows));
        debug_assert!(rows >= col.rows);
        col.entries.extend(extra);
        col.rows = rows;
        col.last_used = tick;
    }

    /// Evict least-recently-used columns down to capacity, never evicting
    /// a pinned (live-suite) fingerprint.
    pub fn evict_to_capacity(&mut self, pinned: &[Fingerprint]) {
        while self.columns.len() > self.capacity {
            let victim = self
                .columns
                .iter()
                .filter(|(fp, _)| !pinned.contains(fp))
                .min_by_key(|(_, col)| col.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.columns.remove(&fp);
                    self.stats.evictions += 1;
                }
                None => break, // everything live is pinned
            }
        }
    }

    /// Drop every cached column (the escape hatch when corpus content was
    /// mutated in place, breaking the append-only contract).
    pub fn clear(&mut self) {
        self.columns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::of("lf", n)
    }

    #[test]
    fn insert_lookup_extend() {
        let mut cache = LfResultCache::new(8);
        assert_eq!(cache.rows(fp(1)), 0);
        cache.insert(fp(1), 10, vec![(0, 1), (7, -1)]);
        assert_eq!(cache.rows(fp(1)), 10);
        assert_eq!(cache.entries(fp(1)).unwrap(), &[(0, 1), (7, -1)]);
        cache.extend(fp(1), 15, vec![(12, 1)]);
        assert_eq!(cache.rows(fp(1)), 15);
        assert_eq!(cache.entries(fp(1)).unwrap(), &[(0, 1), (7, -1), (12, 1)]);
        let s = cache.stats();
        assert_eq!((s.misses, s.extensions), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_pins() {
        let mut cache = LfResultCache::new(2);
        cache.insert(fp(1), 5, vec![]);
        cache.insert(fp(2), 5, vec![]);
        cache.insert(fp(3), 5, vec![]);
        // fp(1) is oldest but pinned; fp(2) goes.
        cache.evict_to_capacity(&[fp(1)]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.rows(fp(2)), 0, "LRU unpinned column evicted");
        assert_eq!(cache.rows(fp(1)), 5);
        assert_eq!(cache.rows(fp(3)), 5);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn fully_pinned_cache_never_evicts() {
        let mut cache = LfResultCache::new(1);
        cache.insert(fp(1), 5, vec![]);
        cache.insert(fp(2), 5, vec![]);
        cache.evict_to_capacity(&[fp(1), fp(2)]);
        assert_eq!(cache.len(), 2, "pinned columns survive over-capacity");
    }
}
