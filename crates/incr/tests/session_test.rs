//! Integration tests for the incremental session: exact re-execution
//! accounting, cache semantics (tagged reverts, remove/re-add), structure
//! reuse, and the acceptance scenario — editing 1 LF in a 25-LF suite on
//! the synthetic corpus re-executes only that column and refreshes ≥5×
//! faster than a cold pipeline run, with bit-identical Λ and marginals
//! within 1e-9.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::OptimizerConfig;
use snorkel_core::pipeline::{Pipeline, PipelineConfig};
use snorkel_datasets::{cdr, TaskConfig};
use snorkel_incr::{IncrementalSession, LambdaUpdate, SessionConfig};
use snorkel_lf::{lf, BoxedLf};
use snorkel_nlp::tokenize;

fn build_corpus(n: usize) -> (Corpus, Vec<CandidateId>) {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    let mut ids = Vec::new();
    for i in 0..n {
        let verb = if i % 3 == 0 { "causes" } else { "treats" };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        ids.push(corpus.add_candidate(vec![a, b]));
    }
    (corpus, ids)
}

/// An LF that counts its own invocations.
fn counting_lf(name: &str, vote_mod: u64, counter: Arc<AtomicUsize>) -> BoxedLf {
    lf(name.to_string(), move |x| {
        counter.fetch_add(1, Ordering::Relaxed);
        let len = x.sentence().text().len() as u64;
        if len.is_multiple_of(vote_mod) {
            1
        } else {
            -1
        }
    })
}

#[test]
fn editing_one_lf_reexecutes_only_that_column() {
    let (corpus, _) = build_corpus(100);
    let mut session = IncrementalSession::over_all_candidates(corpus, SessionConfig::default());
    let counters: Vec<Arc<AtomicUsize>> = (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    for (j, counter) in counters.iter().enumerate() {
        session.add_lf(counting_lf(
            &format!("lf_{j}"),
            2 + j as u64,
            Arc::clone(counter),
        ));
    }

    let (_, report) = session.refresh();
    assert_eq!(report.columns_recomputed, 4);
    assert_eq!(report.lf_invocations, 400);
    for counter in &counters {
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    // Edit LF 1: only its column re-executes.
    let edited = Arc::new(AtomicUsize::new(0));
    session.edit_lf(counting_lf("lf_1", 5, Arc::clone(&edited)));
    let (_, report) = session.refresh();
    assert_eq!(report.columns_recomputed, 1);
    assert_eq!(report.columns_reused, 3);
    assert_eq!(report.lf_invocations, 100);
    assert_eq!(edited.load(Ordering::Relaxed), 100);
    for (j, counter) in counters.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::Relaxed),
            100,
            "unchanged LF {j} must not re-execute"
        );
    }
    assert_eq!(
        report.lambda_update,
        LambdaUpdate::Patched {
            columns_replaced: 1,
            rows_appended: 0
        }
    );

    // Refresh with no edits at all: nothing executes, Λ untouched.
    let (_, report) = session.refresh();
    assert_eq!(report.lf_invocations, 0);
    assert_eq!(report.lambda_update, LambdaUpdate::Unchanged);
}

#[test]
fn ingesting_candidates_extends_columns_only() {
    let (corpus, ids) = build_corpus(150);
    let mut session = IncrementalSession::new(corpus, SessionConfig::default());
    session.ingest_candidates(&ids[..100]);
    let counter = Arc::new(AtomicUsize::new(0));
    session.add_lf(counting_lf("lf_a", 2, Arc::clone(&counter)));
    session.add_lf(lf("lf_b", |x| {
        if x.sentence().text().contains("causes") {
            1
        } else {
            0
        }
    }));

    session.refresh();
    assert_eq!(counter.load(Ordering::Relaxed), 100);

    session.ingest_candidates(&ids[100..150]);
    let (_, report) = session.refresh();
    // Both columns extend over exactly the 50 new rows.
    assert_eq!(report.columns_extended, 2);
    assert_eq!(report.lf_invocations, 100);
    assert_eq!(counter.load(Ordering::Relaxed), 150);
    assert_eq!(
        report.lambda_update,
        LambdaUpdate::Patched {
            columns_replaced: 0,
            rows_appended: 50
        }
    );
    assert_eq!(session.label_matrix().unwrap().num_points(), 150);
}

#[test]
fn tagged_edit_reverts_are_cache_hits() {
    let (corpus, _) = build_corpus(80);
    let mut session = IncrementalSession::over_all_candidates(corpus, SessionConfig::default());
    let counter_v1 = Arc::new(AtomicUsize::new(0));
    session.add_lf_tagged(counting_lf("lf", 2, Arc::clone(&counter_v1)), 1);
    session.refresh();
    assert_eq!(counter_v1.load(Ordering::Relaxed), 80);

    // v2, then revert to v1's tag: the revert must not execute at all.
    let counter_v2 = Arc::new(AtomicUsize::new(0));
    session.edit_lf_tagged(counting_lf("lf", 3, Arc::clone(&counter_v2)), 2);
    session.refresh();
    assert_eq!(counter_v2.load(Ordering::Relaxed), 80);

    let counter_v1_again = Arc::new(AtomicUsize::new(0));
    session.edit_lf_tagged(counting_lf("lf", 2, Arc::clone(&counter_v1_again)), 1);
    let (_, report) = session.refresh();
    assert_eq!(report.columns_reused, 1);
    assert_eq!(report.lf_invocations, 0);
    assert_eq!(
        counter_v1_again.load(Ordering::Relaxed),
        0,
        "revert to a cached version must be served from cache"
    );
}

#[test]
fn remove_then_readd_same_version_is_free() {
    let (corpus, _) = build_corpus(60);
    let mut session = IncrementalSession::over_all_candidates(corpus, SessionConfig::default());
    session.add_lf_tagged(lf("keep", |_| 1), 7);
    session.add_lf_tagged(lf("toggle", |_| -1), 9);
    session.refresh();

    assert_eq!(session.remove_lf("toggle"), Some(1));
    let (_, report) = session.refresh();
    assert_eq!(session.num_lfs(), 1);
    assert_eq!(report.lf_invocations, 0);

    let counter = Arc::new(AtomicUsize::new(0));
    session.add_lf_tagged(counting_lf("toggle", 2, Arc::clone(&counter)), 9);
    let (_, report) = session.refresh();
    assert_eq!(session.num_lfs(), 2);
    assert_eq!(report.lf_invocations, 0, "re-added version must be cached");
    assert_eq!(counter.load(Ordering::Relaxed), 0);
}

#[test]
fn untagged_edits_are_conservative() {
    let (corpus, _) = build_corpus(40);
    let mut session = IncrementalSession::over_all_candidates(corpus, SessionConfig::default());
    let c1 = Arc::new(AtomicUsize::new(0));
    session.add_lf(counting_lf("lf", 2, Arc::clone(&c1)));
    session.refresh();
    // Untagged edit to a behaviorally identical LF: still recomputed.
    let c2 = Arc::new(AtomicUsize::new(0));
    session.edit_lf(counting_lf("lf", 2, Arc::clone(&c2)));
    let (_, report) = session.refresh();
    assert_eq!(report.columns_recomputed, 1);
    assert_eq!(c2.load(Ordering::Relaxed), 40);
}

#[test]
#[should_panic(expected = "already in the suite")]
fn duplicate_names_rejected() {
    let (corpus, _) = build_corpus(10);
    let mut session = IncrementalSession::over_all_candidates(corpus, SessionConfig::default());
    session.add_lf(lf("dup", |_| 1));
    session.add_lf(lf("dup", |_| -1));
}

#[test]
#[should_panic(expected = "append-only")]
fn duplicate_candidates_rejected() {
    let (corpus, ids) = build_corpus(10);
    let mut session = IncrementalSession::new(corpus, SessionConfig::default());
    session.ingest_candidates(&ids);
    session.ingest_candidates(&ids[..1]);
}

/// The acceptance scenario: 25-LF suite on the synthetic corpus, edit one
/// LF. Only the edited column re-executes; refresh beats a cold
/// `Pipeline::run` by ≥5×; Λ is bit-identical; marginals within 1e-9.
#[test]
fn acceptance_one_lf_edit_is_5x_faster_than_cold_pipeline() {
    // Tier-1 runs tests unoptimized; keep the corpus big enough to be
    // meaningful but debug-friendly. The release-mode criterion bench
    // (`crates/bench/benches/incremental.rs`) measures the full 10k.
    let num_candidates = if cfg!(debug_assertions) {
        2_500
    } else {
        10_000
    };
    let task = cdr::build(TaskConfig {
        num_candidates,
        seed: 3,
    });
    let cold_task = cdr::build(TaskConfig {
        num_candidates,
        seed: 3,
    });
    // Two behaviorally identical copies of the "edited" version of LF 7:
    // a dev-loop refinement (same heuristic, now abstaining on a
    // hash-derived 10% of candidates), one for the session and one for
    // the cold rebuild.
    let spare = cdr::build(TaskConfig {
        num_candidates: 10,
        seed: 3,
    });
    let mut refined = spare.lfs.into_iter().skip(10);
    let refine = |inner: BoxedLf, counter: Arc<AtomicUsize>| -> BoxedLf {
        lf(inner.name().to_string(), move |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            // Cheap deterministic 10% abstain mask over candidates.
            if x.sentence().text().len() % 10 == 3 {
                0
            } else {
                inner.label(x)
            }
        })
    };
    let n_lfs = 25;
    let optimizer = OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    };

    let mut session = IncrementalSession::new(
        task.corpus,
        SessionConfig {
            optimizer: optimizer.clone(),
            ..SessionConfig::default()
        },
    );
    session.ingest_candidates(&task.candidates);
    for (j, f) in task.lfs.into_iter().take(n_lfs).enumerate() {
        session.add_lf_tagged(f, j as u64);
    }
    session.refresh(); // cold first refresh primes the cache/model

    // The edit: refine LF 10. Timing is min-of-3 (each cycle re-edits to
    // a fresh untagged version, so every refresh genuinely re-executes
    // the column) — a single Instant sample under a loaded test runner is
    // too noisy to gate CI on.
    let edited = Arc::new(AtomicUsize::new(0));
    let refined_lf = refined.next().expect("LF 10");
    session.edit_lf(refine(refined_lf, Arc::clone(&edited)));
    let mut incr_time = std::time::Duration::MAX;
    let mut labels = Vec::new();
    for cycle in 0..3 {
        if cycle > 0 {
            let again = cdr::build(TaskConfig {
                num_candidates: 10,
                seed: 3,
            });
            edited.store(0, Ordering::Relaxed);
            session.edit_lf(refine(
                again.lfs.into_iter().nth(10).expect("LF 10"),
                Arc::clone(&edited),
            ));
        }
        let t_incr = std::time::Instant::now();
        let (l, r) = session.refresh();
        incr_time = incr_time.min(t_incr.elapsed());

        // Only the edited column executed, every cycle.
        assert_eq!(r.columns_recomputed, 1);
        assert_eq!(r.columns_reused, n_lfs - 1);
        assert_eq!(r.lf_invocations, session.num_candidates());
        assert_eq!(edited.load(Ordering::Relaxed), session.num_candidates());
        assert!(r.warm_started);
        labels = l;
    }

    // Cold pipeline over the same edited suite.
    let mut cold_suite: Vec<BoxedLf> = cold_task.lfs.into_iter().take(n_lfs).collect();
    let cold_counter = Arc::new(AtomicUsize::new(0));
    cold_suite[10] = refine(
        {
            let again = cdr::build(TaskConfig {
                num_candidates: 10,
                seed: 3,
            });
            again.lfs.into_iter().nth(10).expect("LF 10")
        },
        Arc::clone(&cold_counter),
    );
    let pipeline = Pipeline::new(PipelineConfig {
        optimizer,
        ..PipelineConfig::default()
    });
    let mut cold_time = std::time::Duration::MAX;
    let mut cold_labels = Vec::new();
    for _ in 0..3 {
        let t_cold = std::time::Instant::now();
        let (l, _) = pipeline.run(&cold_suite, &cold_task.corpus, &cold_task.candidates);
        cold_time = cold_time.min(t_cold.elapsed());
        cold_labels = l;
    }

    // Bit-identical Λ.
    let cold_lambda =
        snorkel_lf::LfExecutor::new().apply(&cold_suite, &cold_task.corpus, &cold_task.candidates);
    assert_eq!(session.label_matrix(), Some(&cold_lambda));

    // Marginals within 1e-9.
    let mut max_gap = 0.0f64;
    for (a, b) in labels.iter().zip(&cold_labels) {
        for (pa, pb) in a.iter().zip(b) {
            max_gap = max_gap.max((pa - pb).abs());
        }
    }
    assert!(max_gap < 1e-9, "marginal gap {max_gap:e}");

    // ≥5× faster than the cold pipeline.
    let speedup = cold_time.as_secs_f64() / incr_time.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "refresh speedup {speedup:.1}× (cold {cold_time:?} vs incremental {incr_time:?})"
    );
}

/// Scale-out integration: with a forced sharded plan, every refresh
/// keeps the pattern index consistent with Λ through delta edits
/// (column edit, candidate ingestion, LF removal), updating only the
/// touched patterns — and labels still match a cold row-wise pipeline.
#[test]
fn sharded_session_keeps_pattern_plan_consistent() {
    use snorkel_core::model::Scaleout;
    use snorkel_matrix::PatternIndex;

    let (corpus, ids) = build_corpus(400);
    let (cold_corpus, _) = build_corpus(400);
    let optimizer = OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    };
    let mut session = IncrementalSession::new(
        corpus,
        SessionConfig {
            optimizer: optimizer.clone(),
            scaleout: Scaleout::Sharded { shards: 3 },
            ..SessionConfig::default()
        },
    );
    session.ingest_candidates(&ids);
    let suite = |mods: &[u64]| -> Vec<BoxedLf> {
        mods.iter()
            .enumerate()
            .map(|(j, &m)| {
                lf(format!("lf_{j}"), move |x| {
                    let len = x.sentence().text().len() as u64;
                    if len.is_multiple_of(m) {
                        1
                    } else {
                        -1
                    }
                })
            })
            .collect()
    };
    for f in suite(&[2, 3, 4, 5]) {
        session.add_lf(f);
    }

    let check_plan = |session: &IncrementalSession| {
        let lambda = session.label_matrix().expect("Λ built");
        let plan = session.pattern_plan().expect("sharded plan forced on");
        plan.validate(lambda).unwrap();
        assert_eq!(plan.num_shards(), 3);
        // Same per-shard pattern multiset as a fresh rebuild.
        for shard in plan.shards() {
            let fresh = PatternIndex::build_range(lambda, shard.start_row(), shard.row_range().end);
            assert_eq!(shard.num_patterns(), fresh.num_patterns());
        }
    };

    let (_, report) = session.refresh();
    assert!(report.unique_patterns.is_some());
    check_plan(&session);

    // Column edit → refresh_column path.
    session.edit_lf(lf("lf_1", |x| {
        if x.sentence().text().len() % 7 == 0 {
            1
        } else {
            0
        }
    }));
    let (_, report) = session.refresh();
    assert_eq!(
        report.lambda_update,
        LambdaUpdate::Patched {
            columns_replaced: 1,
            rows_appended: 0
        }
    );
    check_plan(&session);

    // Candidate ingestion → tail-shard extension path.
    let new_ids: Vec<_> = {
        let c = session.corpus_mut();
        let doc = c.add_document("growth");
        (0..60)
            .map(|i| {
                let text = format!("gamma{} links delta{}", i % 5, i % 3);
                let s = c.add_sentence(doc, &text, tokenize(&text));
                let a = c.add_span(s, 0, 1, Some("A"));
                let b = c.add_span(s, 2, 3, Some("B"));
                c.add_candidate(vec![a, b])
            })
            .collect()
    };
    session.ingest_candidates(&new_ids);
    let (_, report) = session.refresh();
    assert_eq!(
        report.lambda_update,
        LambdaUpdate::Patched {
            columns_replaced: 0,
            rows_appended: 60
        }
    );
    check_plan(&session);

    // Structural edit (LF removal) → plan rebuild.
    session.remove_lf("lf_2");
    let (labels, report) = session.refresh();
    assert_eq!(report.lambda_update, LambdaUpdate::Assembled);
    check_plan(&session);

    // Equivalence with a cold, row-wise pipeline over the final suite.
    let mut cold_suite = suite(&[2, 3, 4, 5]);
    cold_suite.remove(2);
    cold_suite[1] = lf("lf_1", |x| {
        if x.sentence().text().len() % 7 == 0 {
            1
        } else {
            0
        }
    });
    let mut cold_corpus = cold_corpus;
    let cold_ids: Vec<_> = {
        let doc = cold_corpus.add_document("growth");
        (0..60)
            .map(|i| {
                let text = format!("gamma{} links delta{}", i % 5, i % 3);
                let s = cold_corpus.add_sentence(doc, &text, tokenize(&text));
                let a = cold_corpus.add_span(s, 0, 1, Some("A"));
                let b = cold_corpus.add_span(s, 2, 3, Some("B"));
                cold_corpus.add_candidate(vec![a, b])
            })
            .collect()
    };
    let all_ids: Vec<_> = cold_corpus
        .candidate_ids()
        .filter(|id| session.candidates().contains(id) || cold_ids.contains(id))
        .collect();
    let pipeline = Pipeline::new(PipelineConfig {
        optimizer,
        ..PipelineConfig::default()
    });
    let (cold_labels, _) = pipeline.run(&cold_suite, &cold_corpus, &all_ids);
    assert_eq!(labels.len(), cold_labels.len());
    let mut gap = 0.0f64;
    for (a, b) in labels.iter().zip(&cold_labels) {
        for (pa, pb) in a.iter().zip(b) {
            gap = gap.max((pa - pb).abs());
        }
    }
    assert!(
        gap < 1e-9,
        "sharded session diverged from cold pipeline by {gap:e}"
    );
}

#[test]
fn freeze_thaw_round_trip_is_warm_and_bit_identical() {
    // Force generative training so the frozen state carries a model.
    let config = || SessionConfig {
        force_strategy: Some(snorkel_core::optimizer::ModelingStrategy::GenerativeModel {
            epsilon: 0.0,
            correlations: Vec::new(),
            strengths: Vec::new(),
        }),
        ..SessionConfig::default()
    };
    let (corpus, _) = build_corpus(120);
    let thaw_corpus = corpus.clone();
    let mut session = IncrementalSession::over_all_candidates(corpus, config());
    let c0 = Arc::new(AtomicUsize::new(0));
    for j in 0..4 {
        session.add_lf(counting_lf(&format!("lf_{j}"), 2 + j, Arc::clone(&c0)));
    }
    let (_, _) = session.refresh();
    assert!(c0.load(Ordering::Relaxed) > 0, "cold refresh executed LFs");
    let frozen = session.freeze();
    let frozen_model_marginals = session
        .model()
        .expect("model trained")
        .marginals(session.label_matrix().expect("Λ built"), None);
    // What the original process would produce on its next (no-op)
    // refresh — the reference for the thawed session's first refresh.
    let (reference_labels, _) = session.refresh();
    drop(session); // "kill" the process

    // Resume: fresh corpus + freshly constructed (identical) LFs.
    let c1 = Arc::new(AtomicUsize::new(0));
    let lfs: Vec<BoxedLf> = (0..4)
        .map(|j| counting_lf(&format!("lf_{j}"), 2 + j, Arc::clone(&c1)))
        .collect();
    let mut thawed = match IncrementalSession::thaw(thaw_corpus, config(), frozen, lfs) {
        Ok(s) => s,
        Err(e) => panic!("thaw failed: {e}"),
    };
    // The thawed model answers marginal queries before any refresh,
    // bit-identical to the frozen process's model.
    let model = thawed.model().expect("model restored");
    let lambda = thawed.label_matrix().expect("Λ restored").clone();
    assert_eq!(
        model.marginals(&lambda, None),
        frozen_model_marginals,
        "restored model marginals bit-identical to the frozen model's"
    );
    // An unchanged-suite refresh executes zero LF invocations and lands
    // exactly where the original process's next refresh would have.
    let (labels, report) = thawed.refresh();
    assert_eq!(report.lf_invocations, 0, "thaw must not re-execute LFs");
    assert_eq!(c1.load(Ordering::Relaxed), 0, "no LF code ran after thaw");
    assert_eq!(labels, reference_labels, "thawed refresh bit-identical");
    assert_eq!(report.columns_reused, 4);

    // Editing one LF after thaw re-executes exactly that column.
    thawed.edit_lf(counting_lf("lf_2", 11, Arc::clone(&c1)));
    let (_, report) = thawed.refresh();
    assert_eq!(report.columns_recomputed, 1);
    assert_eq!(report.lf_invocations, 120);
}

#[test]
fn thaw_rejects_mismatched_suite_and_corpus() {
    let (corpus, _) = build_corpus(30);
    let small_corpus = build_corpus(10).0;
    let mut session =
        IncrementalSession::over_all_candidates(corpus.clone(), SessionConfig::default());
    let c = Arc::new(AtomicUsize::new(0));
    session.add_lf(counting_lf("lf_a", 2, Arc::clone(&c)));
    session.refresh();
    let frozen = session.freeze();

    // Wrong LF name.
    let thawed = IncrementalSession::thaw(
        corpus.clone(),
        SessionConfig::default(),
        frozen.clone(),
        vec![counting_lf("lf_b", 2, Arc::clone(&c))],
    );
    assert!(matches!(
        thawed.err(),
        Some(snorkel_incr::ThawError::SuiteMismatch(_))
    ));

    // Corpus too small for the registered candidates.
    let thawed = IncrementalSession::thaw(
        small_corpus,
        SessionConfig::default(),
        frozen.clone(),
        vec![counting_lf("lf_a", 2, Arc::clone(&c))],
    );
    assert!(matches!(
        thawed.err(),
        Some(snorkel_incr::ThawError::Inconsistent(_))
    ));

    // Tampered state: Λ row count out of sync.
    let mut bad = frozen.clone();
    bad.last_rows += 1;
    let thawed = IncrementalSession::thaw(
        corpus,
        SessionConfig::default(),
        bad,
        vec![counting_lf("lf_a", 2, Arc::clone(&c))],
    );
    assert!(matches!(
        thawed.err(),
        Some(snorkel_incr::ThawError::Inconsistent(_))
    ));
}

#[test]
fn optimizer_switches_to_moment_backend_at_scale() {
    // With the moment threshold scaled down, the optimizer selects the
    // closed-form moment backend for this session; the report and the
    // live model agree on the backend, and a subsequent edit refits the
    // same backend without touching untouched columns.
    let (corpus, _) = build_corpus(400);
    let config = SessionConfig {
        optimizer: OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 100,
            // Always model accuracies so the moment-vs-generative branch
            // (what this test is about) is reached on this tiny corpus.
            gamma: 0.0,
            ..OptimizerConfig::default()
        },
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus, config);
    let counters: Vec<Arc<AtomicUsize>> = (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    for (j, counter) in counters.iter().enumerate() {
        session.add_lf(counting_lf(
            &format!("lf_{j}"),
            2 + j as u64,
            Arc::clone(counter),
        ));
    }
    let (labels, report) = session.refresh();
    assert_eq!(report.backend, "moment");
    assert_eq!(session.backend_name(), Some("moment"));
    assert!(labels
        .iter()
        .all(|p| (p.iter().sum::<f64>() - 1.0).abs() < 1e-9));

    // Freeze/thaw keeps the backend tag.
    let frozen = session.freeze();
    assert_eq!(
        frozen.model.as_ref().map(|m| m.backend_name()),
        Some("moment")
    );

    // One edit: only that column re-executes, and the moment backend
    // refits (closed form — no warm start needed or claimed).
    session.edit_lf(counting_lf("lf_2", 7, Arc::new(AtomicUsize::new(0))));
    let (_, report) = session.refresh();
    assert_eq!(report.backend, "moment");
    assert_eq!(report.columns_recomputed, 1);
    assert_eq!(report.columns_reused, 3);
    assert!(!report.warm_started);
}

#[test]
fn distillation_staleness_and_install_flow() {
    use snorkel_core::pipeline::DiscTrainerConfig;

    let (corpus, _) = build_corpus(200);
    let config = SessionConfig {
        distill: Some(DiscTrainerConfig::with_dim(1 << 12)),
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus, config);
    session.add_lf(keyword_lf("lf_causes", &["causes"], 1));
    session.add_lf(keyword_lf("lf_treats", &["treats"], -1));

    // No refresh yet: nothing to distill.
    assert_eq!(session.refresh_generation(), 0);
    assert!(session.disc_training_set().is_none());
    assert!(session.distill().is_none());
    assert!(!session.disc_is_stale(), "no disc model, nothing lags");

    session.refresh();
    assert_eq!(session.refresh_generation(), 1);
    let report = session.distill().expect("training set available");
    assert!(report.rows_trained > 0, "covered rows carry signal");
    let disc = session.disc().expect("disc model installed");
    assert_eq!(disc.generation, 1);
    assert!(!session.disc_is_stale());

    // The disc model scores a candidate with zero LF coverage.
    let dim = disc.model.dim();
    let x = snorkel_disc::hash_features(["btw=causes"], dim);
    assert_eq!(disc.model.predict_proba(&x).len(), 2);

    // A refresh makes the disc model stale without touching it —
    // reads never block on retraining.
    session.edit_lf(keyword_lf("lf_treats", &["treats", "cures"], -1));
    session.refresh();
    assert_eq!(session.refresh_generation(), 2);
    assert!(session.disc_is_stale());
    assert_eq!(session.disc().expect("still serving").generation, 1);

    // The non-blocking flow: clone the training set out, train, install.
    let set = session.disc_training_set().expect("set");
    assert_eq!(set.generation, 2);
    assert!(set.warm.is_some(), "warm-starts from the live model");
    let (state, _) = set.train();
    assert!(
        session.install_disc(state),
        "trained on the live generation"
    );
    assert!(!session.disc_is_stale());

    // Installing an older model than the live one is refused.
    let stale = snorkel_incr::DiscState {
        generation: 0,
        ..session.disc().unwrap().clone()
    };
    assert!(!session.install_disc(stale));
    assert_eq!(
        session.disc().unwrap().generation,
        2,
        "kept the newer model"
    );
}

#[test]
fn freeze_thaw_preserves_disc_model_and_staleness() {
    use snorkel_core::pipeline::DiscTrainerConfig;

    let (corpus, _) = build_corpus(150);
    let config = SessionConfig {
        distill: Some(DiscTrainerConfig::with_dim(1 << 12)),
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus.clone(), config.clone());
    session.add_lf(keyword_lf("lf_causes", &["causes"], 1));
    session.refresh();
    session.distill().expect("distilled");
    // Make it stale before freezing: staleness must survive the trip.
    session.edit_lf(keyword_lf("lf_causes", &["causes", "induces"], 1));
    session.refresh();
    assert!(session.disc_is_stale());
    let probe = snorkel_disc::hash_features(["btw=causes", "u=alpha1"], 1 << 12);
    let before = session.disc().unwrap().model.predict_proba(&probe);

    let frozen = session.freeze();
    let lfs = vec![keyword_lf("lf_causes", &["causes", "induces"], 1)];
    let thawed = IncrementalSession::thaw(corpus, config, frozen, lfs).expect("thaw");
    assert_eq!(thawed.refresh_generation(), session.refresh_generation());
    assert!(thawed.disc_is_stale(), "staleness survives the round trip");
    let after = thawed.disc().unwrap().model.predict_proba(&probe);
    assert_eq!(before, after, "disc predictions are bit-identical");
}

fn keyword_lf(name: &str, kws: &[&str], label: i8) -> BoxedLf {
    Box::new(snorkel_lf::KeywordBetweenLf::new(
        name.to_string(),
        kws,
        label,
        label,
    ))
}

#[test]
fn distill_after_ingest_without_refresh_trains_on_labeled_rows_only() {
    use snorkel_core::pipeline::DiscTrainerConfig;

    let (corpus, _) = build_corpus(120);
    let config = SessionConfig {
        distill: Some(DiscTrainerConfig::with_dim(1 << 12)),
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::over_all_candidates(corpus, config);
    session.add_lf(keyword_lf("lf_causes", &["causes"], 1));
    session.refresh();
    session.distill().expect("first distill");

    // Grow the corpus and register the new candidates WITHOUT a
    // refresh: they have features but no marginal row yet. Distilling
    // must train on the labeled prefix, not panic on a length mismatch.
    let new_ids: Vec<_> = {
        let corpus = session.corpus_mut();
        let doc = corpus.add_document("late");
        (0..20)
            .map(|i| {
                let text = format!("gamma{i} causes delta{i}");
                let s = corpus.add_sentence(doc, &text, tokenize(&text));
                let a = corpus.add_span(s, 0, 1, Some("A"));
                let b = corpus.add_span(s, 2, 3, Some("B"));
                corpus.add_candidate(vec![a, b])
            })
            .collect()
    };
    session.ingest_candidates(&new_ids);
    let report = session.distill().expect("distill with unlabeled tail");
    assert_eq!(report.rows_total, 120, "only refreshed rows train");

    // After the next refresh the new rows are labeled and join in.
    session.refresh();
    let report = session.distill().expect("post-refresh distill");
    assert_eq!(report.rows_total, 140);
}
