//! Streaming-ingest integration tests: the steady-state `ingest_batch`
//! fast path (per-batch LF execution only, online moment refit from
//! running statistics that matches a cold fit bit-for-bit), the
//! fallback to a full refresh when the steady-state preconditions do
//! not hold, and the acceptance scenario — a drifted stream (one
//! flipped LF) trips the windowed detector, triggers an automatic warm
//! refit, and the refit model restores held-out accuracy on the
//! post-drift regime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::label_model::MomentStats;
use snorkel_core::model::LabelScheme;
use snorkel_core::optimizer::OptimizerConfig;
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf};
use snorkel_nlp::tokenize;
use snorkel_stream::DriftConfig;

/// Session config that forces the optimizer onto the moment backend at
/// test scale (the backend with an online refit path), with a drift
/// window small enough for tests to seal.
fn moment_config(window_rows: usize) -> SessionConfig {
    SessionConfig {
        optimizer: OptimizerConfig {
            skip_structure_search: true,
            moment_min_rows: 100,
            // Always model accuracies so the moment-vs-generative branch
            // is reached on this tiny corpus.
            gamma: 0.0,
            ..OptimizerConfig::default()
        },
        drift: DriftConfig {
            window_rows,
            ..DriftConfig::default()
        },
        ..SessionConfig::default()
    }
}

fn row_text(i: usize) -> String {
    let verb = if i.is_multiple_of(3) {
        "causes"
    } else {
        "treats"
    };
    format!("alpha{} {} beta{}", i % 7, verb, i % 5)
}

fn add_row(corpus: &mut Corpus, doc: snorkel_context::DocId, text: &str) -> CandidateId {
    let s = corpus.add_sentence(doc, text, tokenize(text));
    let a = corpus.add_span(s, 0, 1, Some("A"));
    let b = corpus.add_span(s, 2, 3, Some("B"));
    corpus.add_candidate(vec![a, b])
}

fn build_corpus(n: usize) -> Corpus {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..n {
        add_row(&mut corpus, doc, &row_text(i));
    }
    corpus
}

/// Append `count` rows (continuing the deterministic text formula at
/// index `start`) to the session's corpus, returning their ids — the
/// arrival of one streamed batch.
fn grow_corpus(session: &mut IncrementalSession, start: usize, count: usize) -> Vec<CandidateId> {
    let corpus = session.corpus_mut();
    let doc = corpus.add_document(format!("ingest-{start}"));
    (start..start + count)
        .map(|i| add_row(corpus, doc, &row_text(i)))
        .collect()
}

/// An LF that counts its own invocations.
fn counting_lf(name: &str, vote_mod: u64, counter: Arc<AtomicUsize>) -> BoxedLf {
    lf(name.to_string(), move |x| {
        counter.fetch_add(1, Ordering::Relaxed);
        let len = x.sentence().text().len() as u64;
        if len.is_multiple_of(vote_mod) {
            1
        } else {
            -1
        }
    })
}

#[test]
fn steady_state_ingest_refits_online_without_a_cold_fit() {
    let mut session =
        IncrementalSession::over_all_candidates(build_corpus(400), moment_config(512));
    let counters: Vec<Arc<AtomicUsize>> = (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    for (j, counter) in counters.iter().enumerate() {
        session.add_lf(counting_lf(
            &format!("lf_{j}"),
            2 + j as u64,
            Arc::clone(counter),
        ));
    }
    let (_, refresh) = session.refresh();
    assert_eq!(refresh.backend, "moment");
    let gen_after_refresh = session.refresh_generation();

    // Three streamed batches. Each must execute LFs on exactly the new
    // rows, refit online (no cold fit), and bump the generation so
    // posterior memos keyed by it cannot serve the stale model.
    let mut total = 400usize;
    for batch in 0u64..3 {
        let ids = grow_corpus(&mut session, total, 40);
        total += 40;
        let report = session.ingest_batch(&ids);
        assert_eq!(report.rows, 40);
        assert!(report.online_fit, "steady state must refit online");
        assert!(!report.auto_refit, "no drift in a stationary stream");
        assert_eq!(
            report.lf_invocations,
            40 * 4,
            "ingest may execute LFs on the new rows only"
        );
        assert_eq!(report.generation, gen_after_refresh + batch + 1);
        for counter in &counters {
            assert_eq!(counter.load(Ordering::Relaxed), total);
        }
    }

    let lambda = session.label_matrix().expect("Λ built");
    assert_eq!(lambda.num_points(), total, "batches spliced into Λ");
    let stream = session.stream().expect("first ingest enabled streaming");
    assert_eq!(stream.rows(), 120);
    assert_eq!(stream.batches(), 3);

    // The running statistics equal a batch recompute over the spliced Λ
    // bit-for-bit — the invariant that makes the online refit exact.
    let mut batch_stats = MomentStats::new(4, LabelScheme::Binary);
    batch_stats.accumulate_matrix(lambda);
    assert_eq!(stream.stats(), &batch_stats);

    // And the online-refitted model is the one a cold session fitting
    // the same 520 rows from scratch would produce, to the last bit.
    let mut cold = IncrementalSession::over_all_candidates(build_corpus(total), moment_config(512));
    for j in 0..4 {
        cold.add_lf(counting_lf(
            &format!("lf_{j}"),
            2 + j as u64,
            Arc::new(AtomicUsize::new(0)),
        ));
    }
    let (_, cold_refresh) = cold.refresh();
    assert_eq!(cold_refresh.backend, "moment");
    assert_eq!(
        session
            .model()
            .expect("online model")
            .marginals(lambda, None),
        cold.model().expect("cold model").marginals(lambda, None),
        "online refit must match the cold fit bit-for-bit"
    );
}

#[test]
fn ingest_falls_back_to_a_full_refresh_outside_steady_state() {
    let mut session =
        IncrementalSession::over_all_candidates(build_corpus(200), moment_config(512));
    let counter = Arc::new(AtomicUsize::new(0));
    for j in 0..4 {
        session.add_lf(counting_lf(&format!("lf_{j}"), 2 + j, Arc::clone(&counter)));
    }

    // No refresh has run: the first ingest registers the batch and pays
    // a full refresh (every LF over every row), not an online refit.
    let ids = grow_corpus(&mut session, 200, 20);
    let report = session.ingest_batch(&ids);
    assert!(!report.online_fit);
    assert!(!report.auto_refit);
    assert_eq!(report.lf_invocations, 220 * 4);

    // Now in steady state: the next batch is online and per-batch.
    let ids = grow_corpus(&mut session, 220, 20);
    let report = session.ingest_batch(&ids);
    assert!(report.online_fit);
    assert_eq!(report.lf_invocations, 20 * 4);

    // A pending suite edit breaks steady state: the next ingest falls
    // back to the full refresh again (the edited column re-executes).
    session.edit_lf(counting_lf("lf_0", 11, Arc::clone(&counter)));
    let ids = grow_corpus(&mut session, 240, 20);
    let report = session.ingest_batch(&ids);
    assert!(!report.online_fit);
    assert!(report.lf_invocations >= 260, "edited column re-executed");

    // And steady state resumes after the fallback refresh.
    let ids = grow_corpus(&mut session, 260, 20);
    let report = session.ingest_batch(&ids);
    assert!(report.online_fit);
    assert_eq!(report.lf_invocations, 20 * 4);
}

// --- The drift acceptance scenario -----------------------------------

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x632B_E5AB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Deterministic ground truth for row `i`.
fn truth(i: usize) -> i8 {
    if mix(i as u64, 0xD1).is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// Row text for the drift corpus: one hint token per LF (`h{j}p` /
/// `h{j}n`), each agreeing with the row's ground truth 90% of the
/// time. When `flipped`, LF 0's hint is inverted — the drifted regime.
fn drift_row_text(i: usize, flipped: bool) -> String {
    let y = truth(i);
    let tok = |j: usize, flip: bool| {
        let correct = !mix(i as u64, 1000 + j as u64).is_multiple_of(10);
        let mut vote = if correct { y } else { -y };
        if flip {
            vote = -vote;
        }
        format!("h{}{}", j, if vote == 1 { 'p' } else { 'n' })
    };
    format!(
        "{} {} {} {}",
        tok(0, flipped),
        tok(1, false),
        tok(2, false),
        tok(3, false)
    )
}

/// The LF reading hint token `j` (full coverage, binary votes).
fn hint_lf(j: usize) -> BoxedLf {
    lf(format!("lf_h{j}"), move |x| {
        if x.sentence().text().contains(&format!("h{j}p")) {
            1
        } else {
            -1
        }
    })
}

fn grow_drift_corpus(
    session: &mut IncrementalSession,
    start: usize,
    count: usize,
    flipped: bool,
) -> Vec<CandidateId> {
    let corpus = session.corpus_mut();
    let doc = corpus.add_document(format!("ingest-{start}"));
    (start..start + count)
        .map(|i| add_row(corpus, doc, &drift_row_text(i, flipped)))
        .collect()
}

#[test]
fn drifted_stream_triggers_auto_refit_and_restores_heldout_accuracy() {
    const WINDOW: usize = 64;
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    for i in 0..400 {
        add_row(&mut corpus, doc, &drift_row_text(i, false));
    }
    let mut session = IncrementalSession::over_all_candidates(corpus, moment_config(WINDOW));
    for j in 0..4 {
        session.add_lf(hint_lf(j));
    }
    let (_, refresh) = session.refresh();
    assert_eq!(refresh.backend, "moment");

    // One stationary window seals the reference: no drift.
    let ids = grow_drift_corpus(&mut session, 400, WINDOW, false);
    let report = session.ingest_batch(&ids);
    assert!(report.online_fit);
    assert!(!report.drifted, "stationary stream must not count as drift");
    assert!(!report.auto_refit);

    // The regime shifts: LF 0 flips. The first drifted window seals,
    // its agreement rate diverges from the reference past the
    // threshold, and the session answers with an automatic warm refit.
    let mut total = 400 + WINDOW;
    let ids = grow_drift_corpus(&mut session, total, WINDOW, true);
    total += WINDOW;
    let report = session.ingest_batch(&ids);
    assert!(
        report.drifted,
        "flipped LF must push the score over the threshold"
    );
    assert!(report.auto_refit, "drift must trigger the automatic refit");
    let stream = session.stream().expect("streaming active");
    assert_eq!(stream.auto_refits(), 1);

    // The detector re-anchored on the post-drift regime: continued
    // drifted traffic is the new stationary state, no refit storm.
    for _ in 0..6 {
        let ids = grow_drift_corpus(&mut session, total, WINDOW, true);
        total += WINDOW;
        let report = session.ingest_batch(&ids);
        assert!(report.online_fit);
        assert!(!report.auto_refit, "re-anchored detector must not re-fire");
    }
    assert_eq!(session.stream().expect("stream").auto_refits(), 1);

    // Held-out accuracy on the drifted regime: by now the refit model
    // has learned LF 0 is useless (≈50% accurate over the mixed Λ), so
    // predictions follow the three faithful LFs — restoring accuracy a
    // model still trusting LF 0's pre-drift weight could not reach.
    let lambda = session.label_matrix().expect("Λ");
    assert_eq!(lambda.num_points(), total);
    let marginals = session.model().expect("model").marginals(lambda, None);
    let eval = (total - 256)..total;
    let correct = eval
        .clone()
        .filter(|&i| {
            let p = &marginals[i];
            let pred: i8 = if p[0] >= p[1] { 1 } else { -1 };
            pred == truth(i)
        })
        .count();
    let accuracy = correct as f64 / eval.len() as f64;
    assert!(
        accuracy >= 0.85,
        "post-refit held-out accuracy {accuracy} on the drifted tail"
    );
}
