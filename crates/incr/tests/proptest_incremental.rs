//! Property tests: for *any* edit sequence, an incremental session's Λ
//! is bit-identical to rebuilding from scratch, and its (warm-started)
//! generative marginals match a cold pipeline's within 1e-9.

use proptest::prelude::*;

use snorkel_context::{CandidateId, Corpus};
use snorkel_core::optimizer::{ModelingStrategy, OptimizerConfig};
use snorkel_core::pipeline::{Pipeline, PipelineConfig};
use snorkel_incr::{IncrementalSession, SessionConfig};
use snorkel_lf::{lf, BoxedLf, LfExecutor};
use snorkel_nlp::tokenize;

/// Deterministic corpus of `n` two-span candidates. Candidate `i`'s gold
/// label is a hash bit, surfaced through the sentence text so LFs can
/// correlate with it.
fn build_corpus(n: usize) -> (Corpus, Vec<CandidateId>) {
    let mut corpus = Corpus::new();
    let doc = corpus.add_document("d");
    let mut ids = Vec::new();
    for i in 0..n {
        let gold_pos = mix(i as u64, 0xC0FFEE).is_multiple_of(2);
        // Verb correlates with gold; suffix varies the surface form.
        let verb = if gold_pos { "causes" } else { "treats" };
        let text = format!("alpha{} {} beta{}", i % 7, verb, i % 5);
        let s = corpus.add_sentence(doc, &text, tokenize(&text));
        let a = corpus.add_span(s, 0, 1, Some("A"));
        let b = corpus.add_span(s, 2, 3, Some("B"));
        ids.push(corpus.add_candidate(vec![a, b]));
    }
    (corpus, ids)
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x632B_E5AB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// A deterministic planted-accuracy LF: votes on ~55% of candidates,
/// agreeing with the text's gold signal at an accuracy derived from the
/// salt (0.62..0.92). Votes depend only on (salt, sentence text), so two
/// constructions with the same salt are behaviorally identical.
fn planted_lf(name: &str, salt: u64) -> BoxedLf {
    let acc_mille = 620 + (mix(salt, 17) % 300); // 0.620..0.919
    lf(name.to_string(), move |x| {
        let text = x.sentence().text().to_string();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        if mix(h, salt) % 1000 >= 550 {
            return 0; // abstain
        }
        let gold: i8 = if text.contains("causes") { 1 } else { -1 };
        if mix(h, salt.wrapping_add(1)) % 1000 < acc_mille {
            gold
        } else {
            -gold
        }
    })
}

/// One step of a simulated dev session.
#[derive(Clone, Debug)]
enum Op {
    /// Re-write LF at (index % suite size) with a new salt.
    Edit(usize, u64),
    /// Append a brand-new LF.
    Add(u64),
    /// Remove LF at (index % suite size), unless that would empty the suite.
    Remove(usize),
    /// Register the next batch of held-back candidates.
    Ingest(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0u64..1_000_000).prop_map(|(i, s)| Op::Edit(i, s)),
        (1_000_000u64..2_000_000).prop_map(Op::Add),
        (0usize..64).prop_map(Op::Remove),
        (10usize..60).prop_map(Op::Ingest),
    ]
}

struct Mirror {
    names: Vec<(String, u64)>, // (name, salt) of the live suite, in order
    next_name: usize,
}

impl Mirror {
    fn suite(&self) -> Vec<BoxedLf> {
        self.names
            .iter()
            .map(|(name, salt)| planted_lf(name, *salt))
            .collect()
    }
}

/// Drive the session and an eager mirror through `ops`, checking the
/// equivalence invariants after every refresh.
fn check_sequence(initial_lfs: usize, initial_rows: usize, ops: &[Op], force_gm: bool) {
    let pool = 600usize;
    let (corpus, ids) = build_corpus(pool);
    let (cold_corpus, _) = build_corpus(pool);

    let optimizer = OptimizerConfig {
        skip_structure_search: true,
        ..OptimizerConfig::default()
    };
    let force_strategy = force_gm.then(|| ModelingStrategy::GenerativeModel {
        epsilon: 0.0,
        correlations: Vec::new(),
        strengths: Vec::new(),
    });
    let config = SessionConfig {
        optimizer: optimizer.clone(),
        force_strategy: force_strategy.clone(),
        ..SessionConfig::default()
    };
    let mut session = IncrementalSession::new(corpus, config);
    session.ingest_candidates(&ids[..initial_rows]);
    let mut registered = initial_rows;

    let mut mirror = Mirror {
        names: Vec::new(),
        next_name: 0,
    };
    for j in 0..initial_lfs {
        let name = format!("lf_{j}");
        let salt = mix(j as u64, 0xBEEF);
        session.add_lf_tagged(planted_lf(&name, salt), salt);
        mirror.names.push((name, salt));
        mirror.next_name = initial_lfs;
    }

    let cold_pipeline = Pipeline::new(PipelineConfig {
        optimizer,
        force_strategy,
        ..PipelineConfig::default()
    });

    let check = |session: &mut IncrementalSession, mirror: &Mirror, rows: usize| {
        let (labels, _report) = session.refresh();
        // Λ must be bit-identical to a from-scratch application.
        let suite = mirror.suite();
        let cold_lambda = LfExecutor::new().apply(&suite, &cold_corpus, &ids[..rows]);
        assert_eq!(
            session.label_matrix(),
            Some(&cold_lambda),
            "incremental Λ diverged from rebuild"
        );
        // Labels must match the cold pipeline within 1e-9.
        let (cold_labels, _) = cold_pipeline.run_from_matrix(&cold_lambda);
        assert_eq!(labels.len(), cold_labels.len());
        for (a, b) in labels.iter().zip(&cold_labels) {
            for (pa, pb) in a.iter().zip(b) {
                assert!(
                    (pa - pb).abs() < 1e-9,
                    "marginal gap {:e} (incremental {pa} vs cold {pb})",
                    (pa - pb).abs()
                );
            }
        }
    };

    check(&mut session, &mirror, registered);
    for op in ops {
        match op {
            Op::Edit(i, salt) => {
                if mirror.names.is_empty() {
                    continue;
                }
                let j = i % mirror.names.len();
                let name = mirror.names[j].0.clone();
                session.edit_lf_tagged(planted_lf(&name, *salt), *salt);
                mirror.names[j].1 = *salt;
            }
            Op::Add(salt) => {
                let name = format!("lf_{}", mirror.next_name);
                mirror.next_name += 1;
                session.add_lf_tagged(planted_lf(&name, *salt), *salt);
                mirror.names.push((name, *salt));
            }
            Op::Remove(i) => {
                if mirror.names.len() <= 1 {
                    continue;
                }
                let j = i % mirror.names.len();
                let (name, _) = mirror.names.remove(j);
                assert_eq!(session.remove_lf(&name), Some(j));
            }
            Op::Ingest(extra) => {
                let upto = (registered + extra).min(pool);
                if upto > registered {
                    session.ingest_candidates(&ids[registered..upto]);
                    registered = upto;
                }
            }
        }
        check(&mut session, &mirror, registered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-identical Λ and ≤1e-9 marginals for arbitrary edit sequences,
    /// with the strategy optimizer in the loop.
    #[test]
    fn edit_sequences_match_cold_rebuild(
        initial_lfs in 4usize..9,
        initial_rows in 150usize..350,
        ops in prop::collection::vec(op_strategy(), 1..5),
    ) {
        check_sequence(initial_lfs, initial_rows, &ops, false);
    }

    /// Same, with generative training forced on every refresh — pins the
    /// warm-start ≤1e-9 equivalence specifically.
    #[test]
    fn edit_sequences_match_cold_rebuild_forced_gm(
        initial_lfs in 5usize..9,
        initial_rows in 150usize..350,
        ops in prop::collection::vec(op_strategy(), 1..4),
    ) {
        check_sequence(initial_lfs, initial_rows, &ops, true);
    }
}
