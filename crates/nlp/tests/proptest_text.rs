//! Property tests for the NLP substrate: tokenizer offsets, sentence
//! ranges, tagger consistency.

use proptest::prelude::*;
use snorkel_nlp::{split_sentences, tokenize, DictionaryTagger};

proptest! {
    /// Token offsets always slice back to the token's surface text, are
    /// ordered, non-overlapping, and char-aligned.
    #[test]
    fn tokens_slice_back_exactly(text in "\\PC{0,120}") {
        let tokens = tokenize(&text);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end);
            prop_assert!(t.end > t.start);
            prop_assert!(text.is_char_boundary(t.start) && text.is_char_boundary(t.end));
            prop_assert_eq!(&text[t.start..t.end], t.text.as_str());
            prop_assert!(!t.text.chars().any(char::is_whitespace));
            prev_end = t.end;
        }
    }

    /// Every non-whitespace char of the input is covered by some token.
    #[test]
    fn tokens_cover_all_non_whitespace(text in "[a-zA-Z0-9 .,;!?-]{0,80}") {
        let tokens = tokenize(&text);
        let covered: usize = tokens.iter().map(|t| t.end - t.start).sum();
        let non_ws = text.chars().filter(|c| !c.is_whitespace()).count();
        // ASCII input: byte length == char count.
        prop_assert_eq!(covered, non_ws);
    }

    /// Sentence ranges are ordered, disjoint, char-aligned, and trimmed.
    #[test]
    fn sentence_ranges_are_well_formed(text in "\\PC{0,160}") {
        let ranges = split_sentences(&text);
        let mut prev_end = 0usize;
        for &(s, e) in &ranges {
            prop_assert!(s >= prev_end);
            prop_assert!(e > s && e <= text.len());
            prop_assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
            let slice = &text[s..e];
            prop_assert_eq!(slice.trim(), slice, "sentences are trimmed");
            prev_end = e;
        }
    }

    /// Splitting then tokenizing never panics and preserves word content
    /// for simple prose.
    #[test]
    fn split_then_tokenize_is_total(text in "([A-Z][a-z]{1,8}( [a-z]{1,8}){0,6}[.!?] ?){0,5}") {
        let mut sentence_words = 0usize;
        for (s, e) in split_sentences(&text) {
            sentence_words += tokenize(&text[s..e])
                .iter()
                .filter(|t| t.text.chars().any(char::is_alphanumeric))
                .count();
        }
        let direct_words = tokenize(&text)
            .iter()
            .filter(|t| t.text.chars().any(char::is_alphanumeric))
            .count();
        prop_assert_eq!(sentence_words, direct_words);
    }

    /// Tagged spans are in-range, non-overlapping, and ordered.
    #[test]
    fn tagger_spans_are_disjoint(
        words in prop::collection::vec("[a-z]{2,8}", 1..20),
        dict_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
    ) {
        let text = words.join(" ");
        let tokens = tokenize(&text);
        let mut tagger = DictionaryTagger::new();
        for pick in &dict_picks {
            tagger.add_phrase(&words[pick.index(words.len())], "X");
        }
        let tags = tagger.tag(&tokens);
        let mut prev_end = 0usize;
        for &(s, e, ty) in &tags {
            prop_assert!(s >= prev_end);
            prop_assert!(e > s && e <= tokens.len());
            prop_assert_eq!(ty, "X");
            prev_end = e;
        }
    }
}
