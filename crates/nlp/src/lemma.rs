//! Rule-based English lemmatizer.
//!
//! Enough morphology for lemma-level labeling functions: plural nouns,
//! 3rd-person-singular verbs, past tense, and progressive forms map to
//! their stem. An exception table handles the common irregulars seen in
//! the synthetic corpora; everything else falls through deterministic
//! suffix rules. Output is always lowercase.

/// Irregular forms that the suffix rules would mangle.
const EXCEPTIONS: &[(&str, &str)] = &[
    ("was", "be"),
    ("were", "be"),
    ("is", "be"),
    ("are", "be"),
    ("been", "be"),
    ("has", "have"),
    ("had", "have"),
    ("does", "do"),
    ("did", "do"),
    ("said", "say"),
    ("found", "find"),
    ("men", "man"),
    ("women", "woman"),
    ("children", "child"),
    ("feet", "foot"),
    ("mice", "mouse"),
    ("wives", "wife"),
    ("lives", "life"),
    ("this", "this"),
    ("his", "his"),
    ("its", "its"),
    ("was", "be"),
    ("during", "during"),
    ("anything", "anything"),
    ("something", "something"),
    ("nothing", "nothing"),
    ("caused", "cause"),
    ("causes", "cause"),
    ("causing", "cause"),
    ("running", "run"),
    ("diagnosed", "diagnose"),
    ("diagnoses", "diagnose"),
    ("studies", "study"),
    ("married", "marry"),
    ("marries", "marry"),
];

/// Words ending in "ss"/"us"/"is" that the plural rule must not touch.
fn protected_s_ending(w: &str) -> bool {
    w.ends_with("ss") || w.ends_with("us") || w.ends_with("is") || w.len() <= 3
}

/// Lemmatize a single token (lowercases first).
///
/// ```
/// use snorkel_nlp::lemmatize;
/// assert_eq!(lemmatize("Causes"), "cause");
/// assert_eq!(lemmatize("induced"), "induce");
/// assert_eq!(lemmatize("studies"), "study");
/// assert_eq!(lemmatize("weakness"), "weakness");
/// ```
pub fn lemmatize(word: &str) -> String {
    let w = word.to_lowercase();
    if !w.chars().all(|c| c.is_alphabetic()) {
        return w; // numbers, punctuation, mixed tokens: leave alone
    }
    for &(form, lemma) in EXCEPTIONS {
        if w == form {
            return lemma.to_string();
        }
    }
    // -ies → -y (studies → study)
    if let Some(stem) = w.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    // -sses → -ss, -ches/-shes/-xes/-zes → drop "es"
    if let Some(stem) = w.strip_suffix("es") {
        if stem.ends_with("ss")
            || stem.ends_with("ch")
            || stem.ends_with("sh")
            || stem.ends_with('x')
            || stem.ends_with('z')
        {
            return stem.to_string();
        }
    }
    // -ing → stem (+e heuristic: "inducing" → "induce")
    if let Some(stem) = w.strip_suffix("ing") {
        if stem.len() >= 3 {
            if ends_cvc(stem) {
                return format!("{stem}e");
            }
            return undouble(stem);
        }
    }
    // -ed → stem ("induced" → "induce", "aggravated" → "aggravate")
    if let Some(stem) = w.strip_suffix("ed") {
        if stem.len() >= 3 {
            if ends_cvc(stem) {
                return format!("{stem}e");
            }
            return undouble(stem);
        }
    }
    // plural / 3rd-person -s
    if w.ends_with('s') && !protected_s_ending(&w) {
        return w[..w.len() - 1].to_string();
    }
    w
}

/// Stem ends consonant-vowel-consonant (suggesting a dropped final 'e').
fn ends_cvc(stem: &str) -> bool {
    let chars: Vec<char> = stem.chars().collect();
    let n = chars.len();
    if n < 3 {
        return false;
    }
    let vowel = |c: char| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u');
    !vowel(chars[n - 1])
        && vowel(chars[n - 2])
        && !vowel(chars[n - 3])
        && !matches!(chars[n - 1], 'w' | 'x' | 'y')
}

/// Undouble a final doubled consonant ("stopp" → "stop").
fn undouble(stem: &str) -> String {
    let chars: Vec<char> = stem.chars().collect();
    let n = chars.len();
    if n >= 2 && chars[n - 1] == chars[n - 2] && !matches!(chars[n - 1], 'l' | 's' | 'z') {
        chars[..n - 1].iter().collect()
    } else {
        stem.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs() {
        assert_eq!(lemmatize("causes"), "cause");
        assert_eq!(lemmatize("caused"), "cause");
        assert_eq!(lemmatize("causing"), "cause");
        assert_eq!(lemmatize("induces"), "induce");
        assert_eq!(lemmatize("induced"), "induce");
        assert_eq!(lemmatize("treats"), "treat");
        assert_eq!(lemmatize("treated"), "treat");
        assert_eq!(lemmatize("aggravates"), "aggravate");
    }

    #[test]
    fn nouns() {
        assert_eq!(lemmatize("patients"), "patient");
        assert_eq!(lemmatize("studies"), "study");
        assert_eq!(lemmatize("children"), "child");
        assert_eq!(lemmatize("diagnoses"), "diagnose");
    }

    #[test]
    fn protected_endings() {
        assert_eq!(lemmatize("weakness"), "weakness");
        assert_eq!(lemmatize("analysis"), "analysis");
        assert_eq!(lemmatize("virus"), "virus");
        assert_eq!(lemmatize("gas"), "gas"); // short-word guard (len ≤ 3)
    }

    #[test]
    fn case_folding() {
        assert_eq!(lemmatize("CAUSES"), "cause");
        assert_eq!(lemmatize("Marries"), "marry");
    }

    #[test]
    fn non_alpha_untouched() {
        assert_eq!(lemmatize("3.5"), "3.5");
        assert_eq!(lemmatize("don't"), "don't");
        assert_eq!(lemmatize(","), ",");
    }

    #[test]
    fn irregulars() {
        assert_eq!(lemmatize("was"), "be");
        assert_eq!(lemmatize("has"), "have");
        assert_eq!(lemmatize("found"), "find");
    }

    #[test]
    fn doubling_undone() {
        assert_eq!(lemmatize("stopped"), "stop");
        assert_eq!(lemmatize("running"), "run");
    }
}
