//! # snorkel-nlp
//!
//! Lightweight NLP preprocessing: the substitute for the SpaCy / Stanford
//! CoreNLP wrappers the original Snorkel ships.
//!
//! The paper's pipeline needs four things from its NLP layer, all of which
//! this crate provides from scratch:
//!
//! 1. **Sentence splitting** ([`split_sentences`]) — abbreviation-aware
//!    boundary detection.
//! 2. **Tokenization** ([`tokenize`]) — offset-preserving word/punctuation
//!    tokens.
//! 3. **Lemmatization** ([`lemmatize`]) — rule-based English suffix
//!    stripping with an exception list, enough for lemma-level labeling
//!    functions ("cause" matching "causes"/"caused"/"causing").
//! 4. **Entity tagging** ([`DictionaryTagger`]) — longest-match dictionary
//!    NER, the analogue of the paper's pre-tagged chemical/disease/person
//!    mentions.
//!
//! [`DocumentIngester`] glues these together: raw text in, populated
//! [`snorkel_context::Corpus`] out. [`CandidateExtractor`] then forms
//! candidates from co-occurring tagged spans, mirroring the paper's
//! "all pairs of chemical and disease mentions co-occurring in a
//! sentence" candidate definition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod ingest;
mod lemma;
mod ner;
mod sentence;
mod tokenize;

pub use candidates::{CandidateExtractor, UnaryCandidateExtractor};
pub use ingest::DocumentIngester;
pub use lemma::lemmatize;
pub use ner::DictionaryTagger;
pub use sentence::split_sentences;
pub use tokenize::tokenize;
