//! Offset-preserving tokenizer.
//!
//! Splits on whitespace, then peels leading/trailing punctuation into
//! separate tokens (so "weakness." yields `weakness` + `.`), while
//! keeping token-internal punctuation intact (hyphens in
//! "chemical-disease", apostrophes in "don't", decimal points in "3.5").
//! Every token records its byte offsets into the input, which the span
//! machinery relies on.

use snorkel_context::Token;

use crate::lemma::lemmatize;

/// Characters peeled off token edges as standalone punctuation tokens.
fn is_edge_punct(c: char) -> bool {
    matches!(
        c,
        '.' | ','
            | ';'
            | ':'
            | '!'
            | '?'
            | '('
            | ')'
            | '['
            | ']'
            | '{'
            | '}'
            | '"'
            | '\''
            | '`'
            | '<'
            | '>'
            | '/'
            | '\\'
            | '|'
            | '~'
            | '@'
            | '#'
            | '$'
            | '%'
            | '^'
            | '&'
            | '*'
            | '='
            | '+'
    )
}

/// Tokenize `text` into offset-bearing tokens with lemmas.
///
/// ```
/// use snorkel_nlp::tokenize;
/// let toks = tokenize("Magnesium causes weakness.");
/// let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(words, vec!["Magnesium", "causes", "weakness", "."]);
/// assert_eq!(toks[1].lemma, "cause");
/// assert_eq!(&"Magnesium causes weakness."[toks[2].start..toks[2].end], "weakness");
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let bytes_len = text.len();
    let mut chunk_start = None::<usize>;

    let flush = |start: usize, end: usize, out: &mut Vec<Token>, text: &str| {
        if start >= end {
            return;
        }
        let chunk = &text[start..end];
        // Peel leading punctuation.
        let mut lo = start;
        for c in chunk.chars() {
            if is_edge_punct(c) {
                out.push(make_token(text, lo, lo + c.len_utf8()));
                lo += c.len_utf8();
            } else {
                break;
            }
        }
        // Peel trailing punctuation (collect first, emit after the core).
        let mut hi = end;
        let mut trailing: Vec<(usize, usize)> = Vec::new();
        while hi > lo {
            let c = text[lo..hi].chars().next_back().expect("non-empty");
            // Keep a token-internal period that's part of a number
            // ("3.5"): only peel if what remains is non-numeric-ish or
            // the punct is at the very edge anyway — a final '.' after a
            // digit is still sentence punctuation, so peel it.
            if is_edge_punct(c) {
                hi -= c.len_utf8();
                trailing.push((hi, hi + c.len_utf8()));
            } else {
                break;
            }
        }
        if lo < hi {
            // Restore interior decimal points that were wrongly peeled:
            // if the core ends with a digit and the first trailing char
            // is '.' followed by digits that were also peeled, we would
            // have peeled them one by one — but digits are not edge
            // punctuation, so "3.5" never splits. Nothing to do.
            out.push(make_token(text, lo, hi));
        }
        for (s, e) in trailing.into_iter().rev() {
            out.push(make_token(text, s, e));
        }
    };

    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = chunk_start.take() {
                flush(s, i, &mut out, text);
            }
        } else if chunk_start.is_none() {
            chunk_start = Some(i);
        }
    }
    if let Some(s) = chunk_start {
        flush(s, bytes_len, &mut out, text);
    }
    out
}

fn make_token(text: &str, start: usize, end: usize) -> Token {
    let surface = &text[start..end];
    Token::with_lemma(surface, start, end, lemmatize(surface))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_split() {
        assert_eq!(words("a b  c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn punctuation_peeling() {
        assert_eq!(
            words("Hello, world! (really)"),
            vec!["Hello", ",", "world", "!", "(", "really", ")"]
        );
    }

    #[test]
    fn interior_punctuation_kept() {
        assert_eq!(
            words("chemical-disease don't"),
            vec!["chemical-disease", "don't"]
        );
        // Leading apostrophe is peeled, interior kept.
        assert_eq!(words("'tis don't"), vec!["'", "tis", "don't"]);
    }

    #[test]
    fn decimals_stay_whole() {
        assert_eq!(
            words("dose of 3.5 mg."),
            vec!["dose", "of", "3.5", "mg", "."]
        );
    }

    #[test]
    fn offsets_slice_back_to_surface() {
        let text = "  Magnesium, causes  weakness.  ";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn all_punctuation_chunk() {
        assert_eq!(words("..."), vec![".", ".", "."]);
    }

    #[test]
    fn unicode_safe() {
        let text = "naïve café-owner résumé.";
        let toks = tokenize(text);
        for t in &toks {
            assert_eq!(&text[t.start..t.end], t.text);
        }
        assert_eq!(toks.last().unwrap().text, ".");
    }

    #[test]
    fn lemmas_attached() {
        let toks = tokenize("causes induced running");
        let lemmas: Vec<&str> = toks.iter().map(|t| t.lemma.as_str()).collect();
        assert_eq!(lemmas, vec!["cause", "induce", "run"]);
    }
}
