//! Document ingestion: raw text → populated corpus.
//!
//! [`DocumentIngester`] is the preprocessing front door, standing in for
//! Snorkel's CoreNLP/SpaCy wrappers: it splits sentences, tokenizes,
//! lemmatizes (inside [`crate::tokenize`]), runs the dictionary NER
//! tagger, and writes everything into a [`snorkel_context::Corpus`].

use snorkel_context::{Corpus, DocId};

use crate::ner::DictionaryTagger;
use crate::sentence::split_sentences;
use crate::tokenize::tokenize;

/// Raw-text-to-corpus preprocessing pipeline.
#[derive(Clone, Debug, Default)]
pub struct DocumentIngester {
    tagger: DictionaryTagger,
}

impl DocumentIngester {
    /// An ingester with no entity dictionary (no spans will be tagged).
    pub fn new() -> Self {
        DocumentIngester::default()
    }

    /// An ingester using `tagger` for entity mentions.
    pub fn with_tagger(tagger: DictionaryTagger) -> Self {
        DocumentIngester { tagger }
    }

    /// Access the underlying tagger (e.g. to extend the dictionary).
    pub fn tagger_mut(&mut self) -> &mut DictionaryTagger {
        &mut self.tagger
    }

    /// Ingest one document: split, tokenize, tag, store. Returns the new
    /// document id.
    pub fn ingest(&self, corpus: &mut Corpus, name: &str, text: &str) -> DocId {
        let doc = corpus.add_document(name);
        for (s, e) in split_sentences(text) {
            let sent_text = &text[s..e];
            let tokens = tokenize(sent_text);
            let tags: Vec<(usize, usize, String)> = self
                .tagger
                .tag(&tokens)
                .into_iter()
                .map(|(a, b, ty)| (a, b, ty.to_string()))
                .collect();
            let sent = corpus.add_sentence(doc, sent_text, tokens);
            for (a, b, ty) in tags {
                corpus.add_span(sent, a, b, Some(&ty));
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_builds_full_hierarchy() {
        let mut tagger = DictionaryTagger::new();
        tagger.add_phrase("magnesium", "Chemical");
        tagger.add_phrase("preeclampsia", "Disease");
        let ing = DocumentIngester::with_tagger(tagger);

        let mut corpus = Corpus::new();
        let text = "We study a patient. Magnesium was given for preeclampsia.";
        let doc = ing.ingest(&mut corpus, "doc-7", text);

        let dv = corpus.document(doc);
        assert_eq!(dv.name(), "doc-7");
        assert_eq!(dv.num_sentences(), 2);
        let second = dv.sentences().nth(1).unwrap();
        assert_eq!(second.position(), 1);
        let spans: Vec<_> = second.spans().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].text(), "Magnesium");
        assert_eq!(spans[0].entity_type(), Some("Chemical"));
        assert_eq!(spans[1].text(), "preeclampsia");
    }

    #[test]
    fn ingest_without_tagger_creates_no_spans() {
        let ing = DocumentIngester::new();
        let mut corpus = Corpus::new();
        ing.ingest(&mut corpus, "d", "Nothing tagged here. At all.");
        assert_eq!(corpus.num_sentences(), 2);
        assert_eq!(corpus.num_spans(), 0);
    }

    #[test]
    fn empty_document() {
        let ing = DocumentIngester::new();
        let mut corpus = Corpus::new();
        let doc = ing.ingest(&mut corpus, "empty", "");
        assert_eq!(corpus.document(doc).num_sentences(), 0);
    }
}
