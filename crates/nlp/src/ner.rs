//! Dictionary-based named-entity tagging.
//!
//! The paper's tasks arrive with entity mentions pre-tagged (chemicals
//! and diseases by PubTator, persons by SpaCy NER). Our substitute is a
//! greedy longest-match dictionary tagger over token sequences: phrases
//! are registered with an entity type; tagging scans each sentence left
//! to right, preferring the longest phrase starting at each position, and
//! never produces overlapping spans.

use std::collections::HashMap;

use snorkel_context::Token;

/// A longest-match phrase tagger.
#[derive(Clone, Debug, Default)]
pub struct DictionaryTagger {
    /// Lowercased token-sequence → entity type.
    phrases: HashMap<Vec<String>, String>,
    /// Longest registered phrase, in tokens.
    max_len: usize,
}

impl DictionaryTagger {
    /// Empty tagger.
    pub fn new() -> Self {
        DictionaryTagger::default()
    }

    /// Register a phrase (whitespace-tokenized, case-insensitive) under
    /// an entity type. Later registrations of the same phrase overwrite
    /// earlier ones.
    pub fn add_phrase(&mut self, phrase: &str, entity_type: &str) {
        let toks: Vec<String> = phrase.split_whitespace().map(str::to_lowercase).collect();
        if toks.is_empty() {
            return;
        }
        self.max_len = self.max_len.max(toks.len());
        self.phrases.insert(toks, entity_type.to_string());
    }

    /// Register many phrases under one type.
    pub fn add_phrases<'a>(
        &mut self,
        phrases: impl IntoIterator<Item = &'a str>,
        entity_type: &str,
    ) {
        for p in phrases {
            self.add_phrase(p, entity_type);
        }
    }

    /// Number of registered phrases.
    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    /// True when no phrases are registered.
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Tag a token sequence. Returns `(token_start, token_end, type)`
    /// triples, non-overlapping, in left-to-right order.
    pub fn tag(&self, tokens: &[Token]) -> Vec<(usize, usize, &str)> {
        let lowered: Vec<String> = tokens.iter().map(|t| t.text.to_lowercase()).collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < lowered.len() {
            let mut matched = None;
            let longest = self.max_len.min(lowered.len() - i);
            for len in (1..=longest).rev() {
                if let Some(ty) = self.phrases.get(&lowered[i..i + len]) {
                    matched = Some((len, ty.as_str()));
                    break;
                }
            }
            match matched {
                Some((len, ty)) => {
                    out.push((i, i + len, ty));
                    i += len;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn tagger() -> DictionaryTagger {
        let mut t = DictionaryTagger::new();
        t.add_phrases(["magnesium", "aspirin"], "Chemical");
        t.add_phrases(
            ["quadriplegic state", "preeclampsia", "myasthenia gravis"],
            "Disease",
        );
        t
    }

    #[test]
    fn single_and_multi_token_matches() {
        let toks = tokenize("magnesium causes quadriplegic state");
        let t = tagger();
        let tags = t.tag(&toks);
        assert_eq!(tags, vec![(0, 1, "Chemical"), (2, 4, "Disease")]);
    }

    #[test]
    fn case_insensitive() {
        let toks = tokenize("MAGNESIUM and Preeclampsia");
        let t = tagger();
        let tags = t.tag(&toks);
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn longest_match_wins() {
        let mut t = DictionaryTagger::new();
        t.add_phrase("state", "Short");
        t.add_phrase("quadriplegic state", "Long");
        let toks = tokenize("a quadriplegic state here");
        assert_eq!(t.tag(&toks), vec![(1, 3, "Long")]);
    }

    #[test]
    fn no_overlaps() {
        let mut t = DictionaryTagger::new();
        t.add_phrase("a b", "X");
        t.add_phrase("b c", "Y");
        let toks = tokenize("a b c");
        // Greedy left-to-right: "a b" consumed, "c" alone doesn't match.
        assert_eq!(t.tag(&toks), vec![(0, 2, "X")]);
    }

    #[test]
    fn overwrite_same_phrase() {
        let mut t = DictionaryTagger::new();
        t.add_phrase("x", "Old");
        t.add_phrase("x", "New");
        assert_eq!(t.len(), 1);
        let toks = tokenize("x");
        assert_eq!(t.tag(&toks), vec![(0, 1, "New")]);
    }

    #[test]
    fn empty_cases() {
        let t = DictionaryTagger::new();
        assert!(t.is_empty());
        assert!(t.tag(&tokenize("anything at all")).is_empty());
        let tagged = tagger();
        assert!(tagged.tag(&[]).is_empty());
    }
}
