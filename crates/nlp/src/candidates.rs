//! Candidate extraction from tagged corpora.
//!
//! Mirrors the paper's candidate definitions: binary relation candidates
//! are *all pairs of spans with the right entity types co-occurring in a
//! sentence* (optionally distance-bounded); unary candidates wrap a
//! single tagged span (used for document-level classification tasks such
//! as Radiology, where one span covers the report head).

use snorkel_context::{CandidateId, Corpus};

/// Extracts binary (two-span) candidates.
#[derive(Clone, Debug)]
pub struct CandidateExtractor {
    /// Entity type of the first argument.
    pub type_a: String,
    /// Entity type of the second argument.
    pub type_b: String,
    /// Skip pairs farther apart than this many tokens (None = unbounded).
    pub max_token_distance: Option<usize>,
    /// Emit both (a,b) and (b,a) orderings when the types are equal
    /// (needed for symmetric relations like Spouses where argument order
    /// is not meaningful but candidates must be deduplicated).
    pub symmetric_dedup: bool,
}

impl CandidateExtractor {
    /// Extractor for `(type_a, type_b)` pairs with default settings:
    /// unbounded distance, symmetric dedup on.
    pub fn new(type_a: &str, type_b: &str) -> Self {
        CandidateExtractor {
            type_a: type_a.to_string(),
            type_b: type_b.to_string(),
            max_token_distance: None,
            symmetric_dedup: true,
        }
    }

    /// Bound the token distance between the two argument spans.
    pub fn with_max_distance(mut self, d: usize) -> Self {
        self.max_token_distance = Some(d);
        self
    }

    /// Walk every sentence and create candidates; returns the new ids in
    /// creation order. Arguments are ordered `(type_a span, type_b span)`;
    /// when `type_a == type_b`, each unordered pair yields exactly one
    /// candidate (textual order) if `symmetric_dedup` is set.
    pub fn extract(&self, corpus: &mut Corpus) -> Vec<CandidateId> {
        // Collect the span pairs read-only first, then mutate.
        let mut pairs: Vec<(snorkel_context::SpanId, snorkel_context::SpanId)> = Vec::new();
        for si in 0..corpus.num_sentences() {
            let sent = corpus.sentence(snorkel_context::SentenceId::from_index(si));
            let spans: Vec<_> = sent.spans().collect();
            for (i, a) in spans.iter().enumerate() {
                if a.entity_type() != Some(self.type_a.as_str()) {
                    continue;
                }
                for (j, b) in spans.iter().enumerate() {
                    if i == j || b.entity_type() != Some(self.type_b.as_str()) {
                        continue;
                    }
                    if self.type_a == self.type_b && self.symmetric_dedup && i > j {
                        continue; // count each unordered pair once
                    }
                    if let Some(maxd) = self.max_token_distance {
                        let (_, ea) = a.word_range();
                        let (sb, _) = b.word_range();
                        let (_, eb) = b.word_range();
                        let (sa, _) = a.word_range();
                        let dist = if ea <= sb {
                            sb - ea
                        } else {
                            sa.saturating_sub(eb)
                        };
                        if dist > maxd {
                            continue;
                        }
                    }
                    pairs.push((a.id(), b.id()));
                }
            }
        }
        pairs
            .into_iter()
            .map(|(a, b)| corpus.add_candidate(vec![a, b]))
            .collect()
    }
}

/// Extracts unary (single-span) candidates for a given entity type.
#[derive(Clone, Debug)]
pub struct UnaryCandidateExtractor {
    /// Entity type to wrap.
    pub entity_type: String,
}

impl UnaryCandidateExtractor {
    /// Extractor for spans of `entity_type`.
    pub fn new(entity_type: &str) -> Self {
        UnaryCandidateExtractor {
            entity_type: entity_type.to_string(),
        }
    }

    /// Create one candidate per matching span.
    pub fn extract(&self, corpus: &mut Corpus) -> Vec<CandidateId> {
        let mut span_ids = Vec::new();
        for si in 0..corpus.num_sentences() {
            let sent = corpus.sentence(snorkel_context::SentenceId::from_index(si));
            for sp in sent.spans() {
                if sp.entity_type() == Some(self.entity_type.as_str()) {
                    span_ids.push(sp.id());
                }
            }
        }
        span_ids
            .into_iter()
            .map(|s| corpus.add_candidate(vec![s]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DictionaryTagger, DocumentIngester};

    fn tagged_corpus() -> Corpus {
        let mut tagger = DictionaryTagger::new();
        tagger.add_phrases(["magnesium", "aspirin"], "Chemical");
        tagger.add_phrases(["headache", "preeclampsia"], "Disease");
        let ing = DocumentIngester::with_tagger(tagger);
        let mut corpus = Corpus::new();
        ing.ingest(
            &mut corpus,
            "d1",
            "Magnesium was given for preeclampsia. Aspirin helps headache but aspirin is risky.",
        );
        corpus
    }

    #[test]
    fn pair_extraction_counts() {
        let mut corpus = tagged_corpus();
        let ids = CandidateExtractor::new("Chemical", "Disease").extract(&mut corpus);
        // Sentence 1: (magnesium, preeclampsia). Sentence 2: two aspirin
        // mentions x one headache = 2 candidates.
        assert_eq!(ids.len(), 3);
        let v = corpus.candidate(ids[0]);
        assert_eq!(v.span(0).entity_type(), Some("Chemical"));
        assert_eq!(v.span(1).entity_type(), Some("Disease"));
    }

    #[test]
    fn distance_bound_prunes() {
        let mut corpus = tagged_corpus();
        let ids = CandidateExtractor::new("Chemical", "Disease")
            .with_max_distance(2)
            .extract(&mut corpus);
        // "Aspirin helps headache": distance 1 → kept.
        // "headache but aspirin": distance 1 → kept.
        // "Magnesium was given for preeclampsia": distance 3 → pruned.
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn same_type_pairs_deduplicate() {
        let mut tagger = DictionaryTagger::new();
        tagger.add_phrases(["alice", "bob", "carol"], "Person");
        let ing = DocumentIngester::with_tagger(tagger);
        let mut corpus = Corpus::new();
        ing.ingest(&mut corpus, "d", "Alice met Bob and Carol.");
        let ids = CandidateExtractor::new("Person", "Person").extract(&mut corpus);
        // C(3, 2) = 3 unordered pairs.
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn unary_extraction() {
        let mut corpus = tagged_corpus();
        let ids = UnaryCandidateExtractor::new("Chemical").extract(&mut corpus);
        assert_eq!(ids.len(), 3); // magnesium + two aspirins
        for id in ids {
            assert_eq!(corpus.candidate(id).arity(), 1);
        }
    }

    #[test]
    fn empty_corpus_yields_no_candidates() {
        let mut corpus = Corpus::new();
        assert!(CandidateExtractor::new("A", "B")
            .extract(&mut corpus)
            .is_empty());
        assert!(UnaryCandidateExtractor::new("A")
            .extract(&mut corpus)
            .is_empty());
    }
}
