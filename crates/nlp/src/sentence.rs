//! Abbreviation-aware sentence splitting.
//!
//! Boundaries are `.`, `!`, `?` followed by whitespace and an uppercase
//! letter / digit / end of text, unless the period terminates a known
//! abbreviation ("Dr.", "e.g.", "Fig.") or an initial ("J. Smith").

/// Common abbreviations whose trailing period is not a boundary.
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "st", "jr", "sr", "vs", "etc", "e.g", "i.e", "fig", "al",
    "approx", "dept", "est", "inc", "ltd", "no", "vol", "pp", "cf",
];

/// Split text into sentence byte ranges `(start, end)`.
///
/// Ranges cover the trimmed sentence (no leading/trailing whitespace) and
/// include the terminating punctuation.
///
/// ```
/// use snorkel_nlp::split_sentences;
/// let text = "Dr. Smith saw the patient. The patient improved!";
/// let sents: Vec<&str> = split_sentences(text)
///     .into_iter()
///     .map(|(s, e)| &text[s..e])
///     .collect();
/// assert_eq!(sents, vec!["Dr. Smith saw the patient.", "The patient improved!"]);
/// ```
pub fn split_sentences(text: &str) -> Vec<(usize, usize)> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let mut boundaries: Vec<usize> = Vec::new(); // byte offsets AFTER the boundary char

    for (ci, &(bi, c)) in chars.iter().enumerate() {
        if !matches!(c, '.' | '!' | '?') {
            continue;
        }
        // Must be followed by whitespace (or end of text).
        let next = chars.get(ci + 1);
        match next {
            None => {
                boundaries.push(bi + c.len_utf8());
                continue;
            }
            Some(&(_, nc)) if !nc.is_whitespace() => continue,
            _ => {}
        }
        if c == '.' {
            // Reject abbreviation periods and single-letter initials.
            let word_start = chars[..ci]
                .iter()
                .rposition(|&(_, pc)| pc.is_whitespace())
                .map(|p| p + 1)
                .unwrap_or(0);
            let prev_word: String = chars[word_start..ci]
                .iter()
                .map(|&(_, pc)| pc)
                .collect::<String>()
                .to_lowercase();
            let prev_word = prev_word.trim_matches(|c: char| !c.is_alphanumeric() && c != '.');
            if ABBREVIATIONS.contains(&prev_word) {
                continue;
            }
            if prev_word.len() == 1 && prev_word.chars().all(|c| c.is_alphabetic()) {
                continue; // initial like "J."
            }
            // Next non-space char should start a new sentence-ish unit.
            let upcoming = chars[ci + 1..]
                .iter()
                .map(|&(_, nc)| nc)
                .find(|nc| !nc.is_whitespace());
            if let Some(u) = upcoming {
                if !(u.is_uppercase() || u.is_numeric() || u == '"' || u == '(') {
                    continue;
                }
            }
        }
        boundaries.push(bi + c.len_utf8());
    }

    // Convert boundaries into trimmed ranges.
    let mut out = Vec::new();
    let mut start = 0usize;
    for &b in &boundaries {
        push_trimmed(text, start, b, &mut out);
        start = b;
    }
    push_trimmed(text, start, text.len(), &mut out);
    out
}

fn push_trimmed(text: &str, start: usize, end: usize, out: &mut Vec<(usize, usize)>) {
    let slice = &text[start..end];
    let trimmed_start = slice.len() - slice.trim_start().len();
    let trimmed_end = slice.trim_end().len();
    if trimmed_end > trimmed_start {
        out.push((start + trimmed_start, start + trimmed_end));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentences(text: &str) -> Vec<&str> {
        split_sentences(text)
            .into_iter()
            .map(|(s, e)| &text[s..e])
            .collect()
    }

    #[test]
    fn splits_on_terminators() {
        assert_eq!(
            sentences("One here. Two here! Three here? Four."),
            vec!["One here.", "Two here!", "Three here?", "Four."]
        );
    }

    #[test]
    fn respects_abbreviations() {
        assert_eq!(
            sentences("Dr. Smith treated Mrs. Jones. She improved."),
            vec!["Dr. Smith treated Mrs. Jones.", "She improved."]
        );
    }

    #[test]
    fn respects_initials() {
        assert_eq!(
            sentences("J. K. Rowling wrote it. It sold."),
            vec!["J. K. Rowling wrote it.", "It sold."]
        );
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        assert_eq!(
            sentences("The dose was 3.5 mg. It worked."),
            vec!["The dose was 3.5 mg.", "It worked."]
        );
    }

    #[test]
    fn lowercase_continuation_is_not_a_boundary() {
        assert_eq!(
            sentences("approved by the F.D.A. for use in adults. Next sentence."),
            vec![
                "approved by the F.D.A. for use in adults.",
                "Next sentence."
            ]
        );
    }

    #[test]
    fn unterminated_tail_is_kept() {
        assert_eq!(
            sentences("First. and then no end"),
            vec!["First. and then no end"]
        );
        assert_eq!(sentences("Only one sentence"), vec!["Only one sentence"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(sentences("").is_empty());
        assert!(sentences("  \n ").is_empty());
    }

    #[test]
    fn ranges_are_valid_slices() {
        let text = "A b. C d! E f?";
        for (s, e) in split_sentences(text) {
            assert!(s < e && e <= text.len());
            assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
        }
    }
}
