//! Edge-case coverage for [`MatrixDelta`] — the delta shapes the
//! incremental scale-out path leans on: empty-column appends, removing
//! the last column, splices on zero-nnz matrices, and row-batch appends
//! followed by a pattern-index refresh.

use snorkel_matrix::{
    LabelMatrix, LabelMatrixBuilder, MatrixDelta, PatternIndex, ShardedMatrix, Vote,
};

fn build(grid: &[Vec<Vote>]) -> LabelMatrix {
    let m = grid.len();
    let n = grid.first().map_or(0, Vec::len);
    let mut b = LabelMatrixBuilder::new(m, n);
    for (i, row) in grid.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            b.set(i, j, v);
        }
    }
    b.build()
}

fn sample_grid() -> Vec<Vec<Vote>> {
    vec![
        vec![1, -1, 0],
        vec![0, 0, 0],
        vec![1, -1, 0],
        vec![0, 1, -1],
        vec![-1, 0, 1],
    ]
}

#[test]
fn empty_column_append_matches_rebuild() {
    let mut grid = sample_grid();
    let mut lambda = build(&grid);
    lambda.apply_delta(&MatrixDelta::AppendColumn { entries: vec![] });
    for row in grid.iter_mut() {
        row.push(0);
    }
    assert_eq!(lambda, build(&grid));
    assert_eq!(lambda.num_lfs(), 4);
    assert_eq!(lambda.column(3), vec![]);
    // A second empty append on top still matches.
    lambda.apply_delta(&MatrixDelta::AppendColumn { entries: vec![] });
    for row in grid.iter_mut() {
        row.push(0);
    }
    assert_eq!(lambda, build(&grid));
}

#[test]
fn removing_the_last_column_matches_rebuild() {
    let mut grid = sample_grid();
    let mut lambda = build(&grid);
    // Remove the highest-index column (no index remapping work at all),
    // then keep removing until no columns remain.
    lambda.apply_delta(&MatrixDelta::RemoveColumn { col: 2 });
    for row in grid.iter_mut() {
        row.pop();
    }
    assert_eq!(lambda, build(&grid));
    lambda.apply_delta(&MatrixDelta::RemoveColumn { col: 1 });
    lambda.apply_delta(&MatrixDelta::RemoveColumn { col: 0 });
    assert_eq!(lambda.num_lfs(), 0);
    assert_eq!(lambda.nnz(), 0);
    assert_eq!(lambda.num_points(), 5); // rows survive with empty signatures
    let idx = PatternIndex::build(&lambda);
    idx.validate(&lambda).unwrap();
    assert_eq!(idx.num_patterns(), 1); // the all-abstain pattern
}

#[test]
fn splice_on_zero_nnz_matrix_matches_rebuild() {
    // A matrix with rows and columns but not a single vote.
    let mut grid = vec![vec![0 as Vote; 3]; 6];
    let mut lambda = build(&grid);
    assert_eq!(lambda.nnz(), 0);

    // Replace a column of nothing with actual votes…
    lambda.apply_delta(&MatrixDelta::ReplaceColumn {
        col: 1,
        entries: vec![(0, 1), (5, -1)],
    });
    grid[0][1] = 1;
    grid[5][1] = -1;
    assert_eq!(lambda, build(&grid));

    // …and splice it back to empty (zero-nnz again).
    lambda.apply_delta(&MatrixDelta::ReplaceColumn {
        col: 1,
        entries: vec![],
    });
    grid[0][1] = 0;
    grid[5][1] = 0;
    assert_eq!(lambda, build(&grid));
    assert_eq!(lambda.nnz(), 0);

    // Removing a column of a zero-nnz matrix is also a pure shape edit.
    lambda.apply_delta(&MatrixDelta::RemoveColumn { col: 0 });
    assert_eq!(lambda.num_lfs(), 2);
    assert_eq!(lambda.nnz(), 0);
}

#[test]
fn row_batch_append_then_pattern_index_refresh() {
    let grid = sample_grid();
    let mut lambda = build(&grid);
    let mut idx = PatternIndex::build(&lambda);
    let mut plan = ShardedMatrix::build(&lambda, 2);

    // Append a batch: one duplicate of an existing signature, one brand
    // new signature, one empty row.
    lambda.apply_delta(&MatrixDelta::AppendRows {
        rows: vec![vec![(0, 1), (1, -1)], vec![(2, 1)], vec![]],
    });
    idx.extend_to(&lambda, lambda.num_points());
    plan.append_rows(&lambda);

    idx.validate(&lambda).unwrap();
    plan.validate(&lambda).unwrap();
    let fresh = PatternIndex::build(&lambda);
    assert_eq!(idx.num_patterns(), fresh.num_patterns());
    assert_eq!(idx.num_rows(), 8);
    // The duplicate joined its pattern rather than minting a new one.
    assert_eq!(idx.pattern_of_row(5), idx.pattern_of_row(0));
    assert_eq!(idx.count(idx.pattern_of_row(0)), 3);

    // A column splice right after the append refreshes incrementally.
    lambda.apply_delta(&MatrixDelta::ReplaceColumn {
        col: 2,
        entries: vec![(1, 1), (6, -1)],
    });
    idx.refresh_column(&lambda, 2);
    plan.refresh_column(&lambda, 2);
    idx.validate(&lambda).unwrap();
    plan.validate(&lambda).unwrap();
    assert_eq!(
        idx.num_patterns(),
        PatternIndex::build(&lambda).num_patterns()
    );
}

#[test]
fn append_rows_on_empty_matrix() {
    // Zero-row, nonzero-column matrix: the append is the first content.
    let mut lambda = LabelMatrixBuilder::new(0, 2).build();
    let mut idx = PatternIndex::build(&lambda);
    lambda.apply_delta(&MatrixDelta::AppendRows {
        rows: vec![vec![(0, 1)], vec![(0, 1)], vec![(1, -1)]],
    });
    idx.extend_to(&lambda, lambda.num_points());
    idx.validate(&lambda).unwrap();
    assert_eq!(idx.num_patterns(), 2);
    assert_eq!(idx.count(idx.pattern_of_row(0)), 2);
}
