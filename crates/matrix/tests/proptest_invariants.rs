//! Property tests for the label matrix: CSR round-trips, selection
//! invariants, and diagnostic bounds.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use snorkel_matrix::stats::{class_balance, empirical_accuracies, matrix_stats};
use snorkel_matrix::{
    LabelMatrix, LabelMatrixBuilder, MatrixDelta, PatternIndex, ShardedMatrix, Vote,
};

/// Generate a random binary label matrix as a dense grid, then build.
fn matrix_strategy() -> impl Strategy<Value = (LabelMatrix, Vec<Vec<Vote>>)> {
    (1usize..24, 1usize..10).prop_flat_map(|(m, n)| {
        prop::collection::vec(prop::collection::vec(-1i8..=1, n), m).prop_map(move |grid| {
            let mut b = LabelMatrixBuilder::new(m, n);
            for (i, row) in grid.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    b.set(i, j, v);
                }
            }
            (b.build(), grid)
        })
    })
}

proptest! {
    #[test]
    fn dense_round_trip((lambda, grid) in matrix_strategy()) {
        prop_assert_eq!(lambda.to_dense(), grid);
    }

    #[test]
    fn nnz_matches_non_zero_count((lambda, grid) in matrix_strategy()) {
        let expected: usize = grid.iter().flatten().filter(|&&v| v != 0).count();
        prop_assert_eq!(lambda.nnz(), expected);
        let density = lambda.label_density();
        prop_assert!((density - expected as f64 / grid.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn rows_are_sorted_and_deduplicated((lambda, _) in matrix_strategy()) {
        for i in 0..lambda.num_points() {
            let (cols, votes) = lambda.row(i);
            prop_assert_eq!(cols.len(), votes.len());
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {} unsorted", i);
            prop_assert!(votes.iter().all(|&v| v != 0));
        }
    }

    #[test]
    fn select_rows_preserves_content((lambda, grid) in matrix_strategy()) {
        let rows: Vec<usize> = (0..lambda.num_points()).step_by(2).collect();
        let sub = lambda.select_rows(&rows).unwrap();
        prop_assert_eq!(sub.num_points(), rows.len());
        for (new_i, &old_i) in rows.iter().enumerate() {
            for j in 0..lambda.num_lfs() {
                prop_assert_eq!(sub.get(new_i, j), grid[old_i][j]);
            }
        }
    }

    #[test]
    fn select_columns_then_rows_commute((lambda, _) in matrix_strategy()) {
        let rows: Vec<usize> = (0..lambda.num_points()).filter(|i| i % 3 != 0).collect();
        let cols: Vec<usize> = (0..lambda.num_lfs()).rev().collect();
        let a = lambda.select_rows(&rows).unwrap().select_columns(&cols).unwrap();
        let b = lambda.select_columns(&cols).unwrap().select_rows(&rows).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn columns_view_is_transpose((lambda, _) in matrix_strategy()) {
        let cols = lambda.to_columns();
        let mut total = 0usize;
        for (j, col) in cols.iter().enumerate() {
            for &(i, v) in col {
                prop_assert_eq!(lambda.get(i as usize, j), v);
                total += 1;
            }
        }
        prop_assert_eq!(total, lambda.nnz());
    }

    #[test]
    fn stats_are_bounded((lambda, _) in matrix_strategy()) {
        let stats = matrix_stats(&lambda);
        prop_assert!((0.0..=1.0).contains(&stats.coverage));
        prop_assert!((0.0..=1.0).contains(&stats.conflict_rate));
        prop_assert!(stats.conflict_rate <= stats.coverage + 1e-12);
        for lf in &stats.lfs {
            prop_assert!((0.0..=1.0).contains(&lf.coverage));
            prop_assert!(lf.conflict <= lf.overlap + 1e-12);
            prop_assert!(lf.overlap <= lf.coverage + 1e-12);
        }
    }

    #[test]
    fn accuracies_in_unit_interval((lambda, _) in matrix_strategy(), seed in 0u64..100) {
        // Random gold labels.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gold: Vec<Vote> = (0..lambda.num_points())
            .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
            .collect();
        for acc in empirical_accuracies(&lambda, &gold).into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn class_balance_sums_to_one_when_nonempty((lambda, _) in matrix_strategy()) {
        let balance = class_balance(&lambda);
        if !balance.is_empty() {
            let total: f64 = balance.values().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// A fresh pattern index satisfies its invariants and partitions the
    /// rows exactly, at any shard count.
    #[test]
    fn pattern_index_groups_rows_exactly(
        (lambda, grid) in matrix_strategy(),
        shards in 0usize..5,
    ) {
        let idx = PatternIndex::build(&lambda);
        idx.validate(&lambda).unwrap();
        let total: usize = idx
            .live_patterns()
            .map(|(_, _, _, cnt)| cnt)
            .sum();
        prop_assert_eq!(total, grid.len());
        // Two rows share a pattern iff their dense rows are equal.
        for a in 0..grid.len() {
            for b in (a + 1)..grid.len() {
                prop_assert_eq!(
                    idx.pattern_of_row(a) == idx.pattern_of_row(b),
                    grid[a] == grid[b],
                    "rows {} and {}", a, b
                );
            }
        }
        ShardedMatrix::build(&lambda, shards).validate(&lambda).unwrap();
    }

    /// Incremental maintenance over an arbitrary delta sequence keeps
    /// the index equivalent to a fresh rebuild (same row→signature map,
    /// same multiplicities — checked by `validate` + pattern count).
    #[test]
    fn pattern_index_survives_arbitrary_delta_sequences(
        (lambda, _) in matrix_strategy(),
        ops in prop::collection::vec((0u8..3, 0usize..64, prop::collection::vec((0usize..64, -1i8..=1), 0..10)), 1..6),
        shards in 1usize..4,
    ) {
        let mut lambda = lambda;
        let mut plan = ShardedMatrix::build(&lambda, shards);
        for (kind, pick, entries) in ops {
            match kind {
                // Column replace.
                0 => {
                    let col = pick % lambda.num_lfs();
                    let mut es: Vec<(u32, Vote)> = entries
                        .iter()
                        .filter(|&&(r, v)| r < lambda.num_points() && v != 0)
                        .map(|&(r, v)| (r as u32, v))
                        .collect();
                    es.sort_by_key(|e| e.0);
                    es.dedup_by_key(|e| e.0);
                    lambda.apply_delta(&MatrixDelta::ReplaceColumn { col, entries: es });
                    plan.refresh_column(&lambda, col);
                }
                // Row-batch append.
                1 => {
                    let n = lambda.num_lfs();
                    let rows: Vec<Vec<(u32, Vote)>> = (0..(pick % 4))
                        .map(|r| {
                            let mut row: Vec<(u32, Vote)> = entries
                                .iter()
                                .filter(|&&(c, v)| c < n && v != 0 && (c + r) % 2 == 0)
                                .map(|&(c, v)| (c as u32, v))
                                .collect();
                            row.sort_by_key(|e| e.0);
                            row.dedup_by_key(|e| e.0);
                            row
                        })
                        .collect();
                    lambda.apply_delta(&MatrixDelta::AppendRows { rows });
                    plan.append_rows(&lambda);
                }
                // Column append (touched rows only).
                _ => {
                    let mut es: Vec<(u32, Vote)> = entries
                        .iter()
                        .filter(|&&(r, v)| r < lambda.num_points() && v != 0)
                        .map(|&(r, v)| (r as u32, v))
                        .collect();
                    es.sort_by_key(|e| e.0);
                    es.dedup_by_key(|e| e.0);
                    let new_col = lambda.num_lfs();
                    lambda.apply_delta(&MatrixDelta::AppendColumn { entries: es });
                    plan.refresh_column(&lambda, new_col);
                }
            }
            plan.validate(&lambda).unwrap();
            for shard in plan.shards() {
                let fresh = PatternIndex::build_range(
                    &lambda,
                    shard.start_row(),
                    shard.row_range().end,
                );
                prop_assert_eq!(shard.num_patterns(), fresh.num_patterns());
            }
        }
    }
}
