//! # snorkel-matrix
//!
//! The label matrix `Λ ∈ (Y ∪ {∅})^{m×n}` (paper §2) and its diagnostics.
//!
//! Applying `n` labeling functions to `m` unlabeled data points yields a
//! sparse matrix of votes: most LFs abstain on most points. This crate
//! stores Λ in compressed-sparse-row form ([`LabelMatrix`]), supports both
//! the binary scheme (votes in `{−1, +1}`, abstain = 0) and the
//! multi-class scheme (votes in `{1..=k}`, abstain = 0), and computes the
//! diagnostics Snorkel surfaces to LF developers and to the modeling
//! optimizer:
//!
//! * per-LF **coverage / overlap / conflict** ([`stats::LfSummary`])
//! * the **label density** `d_Λ` driving the MV-vs-GM tradeoff (§3.1)
//! * **empirical accuracy** against a labeled development set
//! * class balance and polarity checks
//!
//! For the interactive dev loop, Λ also supports **delta updates**
//! ([`MatrixDelta`]): single-pass column replace/append/remove splices and
//! row-batch appends that are bit-identical to a full rebuild — the storage
//! substrate of the `snorkel-incr` incremental engine.
//!
//! For scale-out inference over millions of candidates, rows can be
//! **deduplicated by vote signature** ([`PatternIndex`]) and partitioned
//! into deterministic row-range shards ([`ShardedMatrix`]) so model
//! passes run once per unique pattern, weighted by multiplicity, instead
//! of once per row.
//!
//! ```
//! use snorkel_matrix::LabelMatrixBuilder;
//!
//! let mut b = LabelMatrixBuilder::new(3, 2);
//! b.set(0, 0, 1);
//! b.set(0, 1, -1);
//! b.set(2, 1, 1);
//! let lambda = b.build();
//! assert_eq!(lambda.nnz(), 3);
//! assert!((lambda.label_density() - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod delta;
mod pattern;
mod shard;
pub mod stats;

pub use csr::{
    is_legal_vote, CsrParts, LabelMatrix, LabelMatrixBuilder, SelectError, Vote, ABSTAIN,
};
pub use delta::MatrixDelta;
pub use pattern::{PatternIndex, PatternIndexParts, ResignScratch};
pub use shard::{ShardedMatrix, ShardedMatrixParts};
pub use stats::{LfSummary, MatrixStats};
